#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/logistic_regression.h"
#include "datagen/emr_generator.h"
#include "datagen/temperature_generator.h"
#include "obs/autograd_profiler.h"
#include "obs/obs.h"
#include "train/trainer.h"
#include "tests/json_check.h"

namespace tracer {
namespace train {
namespace {

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeFixture(int samples = 400) {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = samples;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  norm.Apply(&f.splits.test);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Fixture f = MakeFixture();
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 10;
  tc.patience = 10;
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  ASSERT_EQ(result.train_loss.size(), static_cast<size_t>(result.epochs_run));
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
}

TEST(TrainerTest, EarlyStoppingHaltsAndRestoresBest) {
  Fixture f = MakeFixture(200);
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 200;
  tc.patience = 3;
  tc.learning_rate = 5e-2f;  // aggressive: will overshoot and trigger stop
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  EXPECT_LT(result.epochs_run, 200);
  // The model must be restored to the best epoch's parameters: its val
  // loss must equal the minimum recorded val loss.
  const double current = DatasetLoss(&model, f.splits.val);
  double best = result.val_loss[0];
  for (double v : result.val_loss) best = std::min(best, v);
  EXPECT_NEAR(current, best, 1e-5);
  EXPECT_EQ(result.val_loss[result.best_epoch - 1], best);
}

TEST(TrainerTest, RegressionTaskUsesMse) {
  datagen::TemperatureConfig gen;
  gen.series_length = 400;
  datagen::TemperatureCohort cohort =
      datagen::GenerateTemperatureTrace(gen);
  Rng rng(4);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(splits.train);
  norm.Apply(&splits.train);
  norm.Apply(&splits.val);
  norm.Apply(&splits.test);
  baselines::LogisticRegression model(cohort.dataset.num_features());
  TrainConfig tc;
  tc.max_epochs = 30;
  tc.patience = 30;
  tc.learning_rate = 5e-2f;
  Fit(&model, splits.train, splits.val, tc);
  const EvalResult eval = Evaluate(&model, splits.test);
  EXPECT_GT(eval.rmse, 0.0);
  EXPECT_GE(eval.rmse, eval.mae);  // RMSE ≥ MAE always
  EXPECT_EQ(eval.auc, 0.0);        // classification metrics untouched
  // Indoor temperature is highly autocorrelated: the lagged-temperature
  // feature alone makes a linear model quite accurate.
  EXPECT_LT(eval.rmse, 2.0);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  Fixture f = MakeFixture(200);
  TrainConfig tc;
  tc.max_epochs = 3;
  tc.seed = 11;
  baselines::LogisticRegression m1(f.input_dim, baselines::LrInputMode::kAggregate, 0, 9);
  baselines::LogisticRegression m2(f.input_dim, baselines::LrInputMode::kAggregate, 0, 9);
  const TrainResult r1 = Fit(&m1, f.splits.train, f.splits.val, tc);
  const TrainResult r2 = Fit(&m2, f.splits.train, f.splits.val, tc);
  ASSERT_EQ(r1.train_loss.size(), r2.train_loss.size());
  for (size_t i = 0; i < r1.train_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.train_loss[i], r2.train_loss[i]);
  }
}

TEST(TrainerTest, TelemetryEmitsOneValidJsonRecordPerEpoch) {
  Fixture f = MakeFixture(200);
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 4;
  tc.telemetry = true;
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  ASSERT_EQ(result.telemetry.size(),
            static_cast<size_t>(result.epochs_run));
  const std::vector<std::string> expected_keys = {
      "event",   "model",          "epoch",         "train_loss",
      "val_loss", "grad_norm",     "examples_per_sec",
      "epoch_seconds", "batches"};
  for (size_t i = 0; i < result.telemetry.size(); ++i) {
    const std::string& line = result.telemetry[i];
    ASSERT_TRUE(testutil::IsValidJson(line)) << line;
    const std::vector<std::string> keys = testutil::JsonObjectKeys(line);
    for (const std::string& key : expected_keys) {
      EXPECT_NE(std::find(keys.begin(), keys.end(), key), keys.end())
          << "missing key '" << key << "' in: " << line;
    }
    EXPECT_NE(line.find("\"event\":\"epoch\""), std::string::npos) << line;
    // Epochs are 1-based and in order.
    EXPECT_NE(line.find("\"epoch\":" + std::to_string(i + 1)),
              std::string::npos)
        << line;
  }
}

TEST(TrainerTest, TelemetryOffByDefault) {
  // Telemetry is implied by the obs runtime switch; pin it off so the test
  // is deterministic even when run with TRACER_OBS=1 in the environment.
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(false);
  Fixture f = MakeFixture(200);
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 2;
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  EXPECT_TRUE(result.telemetry.empty());
  obs::SetEnabled(was_enabled);
}

TEST(TrainerTest, ProfiledOpTimeIsBoundedByWallTime) {
  Fixture f = MakeFixture(200);
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 3;
  tc.patience = 3;
  obs::AutogradProfiler& profiler = obs::AutogradProfiler::Global();
  profiler.Reset();
  profiler.SetEnabled(true);
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  profiler.SetEnabled(false);
  // Only leaf ops are timed (delegating ops are not), and the trainer is
  // single-threaded, so the per-op total can never exceed the run's wall
  // time.
  EXPECT_GT(profiler.TotalNs(), 0u);
  EXPECT_LE(static_cast<double>(profiler.TotalNs()),
            result.seconds * 1e9);
  profiler.Reset();
}

TEST(TrainerTest, EvaluateClassificationMetrics) {
  Fixture f = MakeFixture();
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 8;
  Fit(&model, f.splits.train, f.splits.val, tc);
  const EvalResult eval = Evaluate(&model, f.splits.test);
  EXPECT_GT(eval.auc, 0.5);
  EXPECT_LE(eval.auc, 1.0);
  EXPECT_GT(eval.cel, 0.0);
  EXPECT_EQ(eval.rmse, 0.0);
}

}  // namespace
}  // namespace train
}  // namespace tracer
