#include <gtest/gtest.h>

#include "baselines/logistic_regression.h"
#include "datagen/emr_generator.h"
#include "datagen/temperature_generator.h"
#include "train/trainer.h"

namespace tracer {
namespace train {
namespace {

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeFixture(int samples = 400) {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = samples;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  norm.Apply(&f.splits.test);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Fixture f = MakeFixture();
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 10;
  tc.patience = 10;
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  ASSERT_EQ(result.train_loss.size(), static_cast<size_t>(result.epochs_run));
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());
}

TEST(TrainerTest, EarlyStoppingHaltsAndRestoresBest) {
  Fixture f = MakeFixture(200);
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 200;
  tc.patience = 3;
  tc.learning_rate = 5e-2f;  // aggressive: will overshoot and trigger stop
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  EXPECT_LT(result.epochs_run, 200);
  // The model must be restored to the best epoch's parameters: its val
  // loss must equal the minimum recorded val loss.
  const double current = DatasetLoss(&model, f.splits.val);
  double best = result.val_loss[0];
  for (double v : result.val_loss) best = std::min(best, v);
  EXPECT_NEAR(current, best, 1e-5);
  EXPECT_EQ(result.val_loss[result.best_epoch - 1], best);
}

TEST(TrainerTest, RegressionTaskUsesMse) {
  datagen::TemperatureConfig gen;
  gen.series_length = 400;
  datagen::TemperatureCohort cohort =
      datagen::GenerateTemperatureTrace(gen);
  Rng rng(4);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(splits.train);
  norm.Apply(&splits.train);
  norm.Apply(&splits.val);
  norm.Apply(&splits.test);
  baselines::LogisticRegression model(cohort.dataset.num_features());
  TrainConfig tc;
  tc.max_epochs = 30;
  tc.patience = 30;
  tc.learning_rate = 5e-2f;
  Fit(&model, splits.train, splits.val, tc);
  const EvalResult eval = Evaluate(&model, splits.test);
  EXPECT_GT(eval.rmse, 0.0);
  EXPECT_GE(eval.rmse, eval.mae);  // RMSE ≥ MAE always
  EXPECT_EQ(eval.auc, 0.0);        // classification metrics untouched
  // Indoor temperature is highly autocorrelated: the lagged-temperature
  // feature alone makes a linear model quite accurate.
  EXPECT_LT(eval.rmse, 2.0);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  Fixture f = MakeFixture(200);
  TrainConfig tc;
  tc.max_epochs = 3;
  tc.seed = 11;
  baselines::LogisticRegression m1(f.input_dim, baselines::LrInputMode::kAggregate, 0, 9);
  baselines::LogisticRegression m2(f.input_dim, baselines::LrInputMode::kAggregate, 0, 9);
  const TrainResult r1 = Fit(&m1, f.splits.train, f.splits.val, tc);
  const TrainResult r2 = Fit(&m2, f.splits.train, f.splits.val, tc);
  ASSERT_EQ(r1.train_loss.size(), r2.train_loss.size());
  for (size_t i = 0; i < r1.train_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.train_loss[i], r2.train_loss[i]);
  }
}

TEST(TrainerTest, EvaluateClassificationMetrics) {
  Fixture f = MakeFixture();
  baselines::LogisticRegression model(f.input_dim);
  TrainConfig tc;
  tc.max_epochs = 8;
  Fit(&model, f.splits.train, f.splits.val, tc);
  const EvalResult eval = Evaluate(&model, f.splits.test);
  EXPECT_GT(eval.auc, 0.5);
  EXPECT_LE(eval.auc, 1.0);
  EXPECT_GT(eval.cel, 0.0);
  EXPECT_EQ(eval.rmse, 0.0);
}

}  // namespace
}  // namespace train
}  // namespace tracer
