#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "nn/lstm.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace nn {
namespace {

using autograd::Variable;

TEST(LstmCellTest, StepShapes) {
  Rng rng(1);
  LstmCell cell(3, 5, rng);
  const Variable x = Variable::Constant(Tensor::Randn({2, 3}, rng));
  LstmCell::State state = cell.InitialState(2);
  state = cell.Step(x, state);
  EXPECT_EQ(state.h.value().rows(), 2);
  EXPECT_EQ(state.h.value().cols(), 5);
  EXPECT_EQ(state.c.value().cols(), 5);
}

TEST(LstmCellTest, HiddenStateBounded) {
  Rng rng(2);
  LstmCell cell(4, 6, rng);
  const Variable x = Variable::Constant(Tensor::Randn({3, 4}, rng, 3.0f));
  LstmCell::State state = cell.InitialState(3);
  for (int step = 0; step < 5; ++step) state = cell.Step(x, state);
  // h = o ⊙ tanh(c) ∈ (-1, 1).
  const Tensor& h = state.h.value();
  for (int64_t i = 0; i < h.size(); ++i) {
    EXPECT_GT(h[i], -1.0f);
    EXPECT_LT(h[i], 1.0f);
  }
}

TEST(LstmCellTest, ForgetBiasInitialisedToOne) {
  Rng rng(3);
  LstmCell cell(2, 3, rng);
  bool found = false;
  for (const auto& [name, param] : cell.NamedParameters()) {
    if (name == "b_f") {
      found = true;
      for (int64_t i = 0; i < param.value().size(); ++i) {
        EXPECT_FLOAT_EQ(param.value()[i], 1.0f);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(LstmCellTest, GradCheckThroughTwoSteps) {
  Rng rng(4);
  LstmCell cell(2, 3, rng);
  const Variable x = Variable::Constant(Tensor::Randn({2, 2}, rng, 0.5f));
  auto forward = [&] {
    LstmCell::State state = cell.InitialState(2);
    state = cell.Step(x, state);
    state = cell.Step(x, state);
    return autograd::MeanAll(state.h);
  };
  for (const auto& [name, param] : cell.NamedParameters()) {
    EXPECT_LT(autograd::MaxGradError(forward, param), 3e-2f) << name;
  }
}

TEST(LstmTest, RunLengthAndCausality) {
  Rng rng(5);
  Lstm lstm(2, 4, rng);
  Rng data_rng(6);
  std::vector<Tensor> inputs;
  for (int t = 0; t < 4; ++t) {
    inputs.push_back(Tensor::Randn({1, 2}, data_rng));
  }
  auto run = [&](const std::vector<Tensor>& raw) {
    std::vector<Variable> xs;
    for (const Tensor& x : raw) xs.push_back(Variable::Constant(x));
    return lstm.Run(xs, false);
  };
  const auto base = run(inputs);
  ASSERT_EQ(base.size(), 4u);
  std::vector<Tensor> perturbed = inputs;
  perturbed[3].at(0, 0) += 5.0f;
  const auto changed = run(perturbed);
  for (int t = 0; t < 3; ++t) {
    EXPECT_LT(MaxAbsDiff(base[t].value(), changed[t].value()), 1e-7f);
  }
  EXPECT_GT(MaxAbsDiff(base[3].value(), changed[3].value()), 1e-6f);
}

TEST(BiLstmTest, OutputDimAndDirectionality) {
  Rng rng(7);
  BiLstm rnn(3, 4, rng);
  std::vector<Variable> xs;
  for (int t = 0; t < 3; ++t) {
    xs.push_back(Variable::Constant(Tensor::Randn({2, 3}, rng)));
  }
  const auto states = rnn.Run(xs);
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0].value().cols(), 8);
  EXPECT_EQ(rnn.output_dim(), 8);
  // Forward and backward halves differ for generic inputs.
  const Tensor fwd = SliceCols(states[1].value(), 0, 4);
  const Tensor bwd = SliceCols(states[1].value(), 4, 8);
  EXPECT_GT(MaxAbsDiff(fwd, bwd), 1e-6f);
}

TEST(BiLstmTest, ParameterCountMatchesTwoLstms) {
  Rng rng(8);
  BiLstm rnn(3, 4, rng);
  Lstm single(3, 4, rng);
  EXPECT_EQ(rnn.NumParameters(), 2 * single.NumParameters());
}

}  // namespace
}  // namespace nn
}  // namespace tracer
