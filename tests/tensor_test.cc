#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace tracer {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.size(), 0);
}

TEST(TensorTest, ZerosShapeAndContents) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
  Tensor ones = Tensor::Ones({2, 2});
  EXPECT_FLOAT_EQ(ones.at(1, 1), 1.0f);
}

TEST(TensorTest, ConstructFromValues) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, Rank3Access) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 7.0f);
  EXPECT_FLOAT_EQ(t[t.size() - 1], 7.0f);  // last element
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng rng1(5), rng2(5);
  Tensor a = Tensor::Randn({3, 3}, rng1);
  Tensor b = Tensor::Randn({3, 3}, rng2);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(6);
  Tensor t = Tensor::RandUniform({100}, rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(TensorTest, XavierBoundsRespectFanInOut) {
  Rng rng(7);
  Tensor t = Tensor::XavierUniform(10, 20, rng);
  const float bound = std::sqrt(6.0f / 30.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), bound);
  }
  EXPECT_EQ(t.rows(), 10);
  EXPECT_EQ(t.cols(), 20);
}

TEST(TensorTest, FillAndSetZero) {
  Tensor t({2, 2});
  t.Fill(3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
  t.SetZero();
  EXPECT_FLOAT_EQ(t.at(1, 0), 0.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.rows(), 3);
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, SameShape) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  Tensor c({3, 2});
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor t({2, 2});
  EXPECT_NE(t.ToString().find("shape=[2, 2]"), std::string::npos);
}

TEST(TensorDeathTest, ReshapeSizeMismatchChecks) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "reshape size mismatch");
}

TEST(TensorDeathTest, ValueCountMismatchChecks) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0f, 2.0f}), "value count");
}

}  // namespace
}  // namespace tracer
