#include <gtest/gtest.h>

#include "core/report.h"

namespace tracer {
namespace core {
namespace {

TEST(SparklineTest, EmptyAndConstant) {
  EXPECT_EQ(Sparkline({}), "");
  const std::string flat = Sparkline({2.0f, 2.0f, 2.0f});
  // A constant series renders three identical mid-height glyphs.
  EXPECT_EQ(flat, "▅▅▅");
}

TEST(SparklineTest, MonotoneRampUsesFullRange) {
  const std::string ramp =
      Sparkline({0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f});
  EXPECT_EQ(ramp, "▁▂▃▄▅▆▇█");
}

TEST(SparklineTest, ExtremesMapToEndGlyphs) {
  const std::string line = Sparkline({0.0f, 100.0f});
  EXPECT_EQ(line, "▁█");
}

PatientInterpretation MakeInterp() {
  PatientInterpretation interp;
  interp.sample_index = 7;
  interp.probability = 0.85f;
  interp.feature_names = {"Urea", "HbA1c", "WBC"};
  // 4 windows × 3 features: Urea rising, HbA1c flat tiny, WBC stable.
  interp.fi = {{0.10f, 0.001f, 0.20f},
               {0.20f, 0.001f, 0.21f},
               {0.30f, 0.001f, 0.20f},
               {0.45f, 0.001f, 0.21f}};
  return interp;
}

TEST(PatientReportTest, ContainsRiskAlertAndTopFeatures) {
  AlertDecision decision;
  decision.probability = 0.85f;
  decision.alert = true;
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 8, 4, 3);
  ds.feature_names() = {"Urea", "HbA1c", "WBC"};
  const std::string report =
      RenderPatientReport(MakeInterp(), decision, ds);
  EXPECT_NE(report.find("85.0%"), std::string::npos);
  EXPECT_NE(report.find("ALERT"), std::string::npos);
  EXPECT_NE(report.find("Urea"), std::string::npos);
  EXPECT_NE(report.find("rising"), std::string::npos);
  EXPECT_NE(report.find("stable"), std::string::npos);
}

TEST(PatientReportTest, TopKLimitsFeatures) {
  AlertDecision decision;
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 8, 4, 3);
  ds.feature_names() = {"Urea", "HbA1c", "WBC"};
  ReportOptions options;
  options.top_k = 2;
  const std::string report =
      RenderPatientReport(MakeInterp(), decision, ds, options);
  // Urea (0.45) and WBC (0.21) dominate the final window; HbA1c excluded.
  EXPECT_NE(report.find("Urea"), std::string::npos);
  EXPECT_NE(report.find("WBC"), std::string::npos);
  EXPECT_EQ(report.find("HbA1c"), std::string::npos);
}

TEST(PatientReportTest, ExplicitFeatureSelection) {
  AlertDecision decision;
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 8, 4, 3);
  ds.feature_names() = {"Urea", "HbA1c", "WBC"};
  ReportOptions options;
  options.features = {"HbA1c"};
  options.markdown = false;
  const std::string report =
      RenderPatientReport(MakeInterp(), decision, ds, options);
  EXPECT_NE(report.find("HbA1c"), std::string::npos);
  EXPECT_EQ(report.find("Urea "), std::string::npos);
  EXPECT_EQ(report.find("|"), std::string::npos);  // plain text, no table
}

TEST(FeatureReportTest, RendersDistributionAndTrend) {
  FeatureInterpretation interp;
  interp.feature_name = "CRP";
  for (int t = 0; t < 5; ++t) {
    FeatureImportanceDistribution dist;
    dist.window = t;
    dist.mean = 0.1f * (t + 1);
    dist.p25 = dist.mean - 0.02f;
    dist.p75 = dist.mean + 0.02f;
    interp.windows.push_back(dist);
  }
  const std::string report = RenderFeatureReport(interp);
  EXPECT_NE(report.find("CRP"), std::string::npos);
  EXPECT_NE(report.find("rising"), std::string::npos);
  EXPECT_NE(report.find("| 5 |"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace tracer
