#include "train/signal_guard.h"

#include <gtest/gtest.h>
#include <poll.h>

#include <csignal>
#include <cstdio>
#include <string>

#include "baselines/logistic_regression.h"
#include "datagen/emr_generator.h"
#include "train/trainer.h"

namespace tracer {
namespace train {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

bool WakeFdReadable() {
  pollfd pfd{SignalGuard::wake_fd(), POLLIN, 0};
  return ::poll(&pfd, 1, 0) == 1 && (pfd.revents & POLLIN) != 0;
}

TEST(SignalGuardTest, LatchesSigtermAndResets) {
  SignalGuard guard;
  SignalGuard::Reset();
  EXPECT_FALSE(SignalGuard::ShutdownRequested());
  EXPECT_FALSE(WakeFdReadable());
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(SignalGuard::ShutdownRequested());
  // The self-pipe lets an event loop poll for the signal alongside sockets.
  EXPECT_TRUE(WakeFdReadable());
  SignalGuard::Reset();
  EXPECT_FALSE(SignalGuard::ShutdownRequested());
  EXPECT_FALSE(WakeFdReadable());
}

TEST(SignalGuardTest, LatchesSigintAndNestedGuardsShareTheHandler) {
  SignalGuard outer;
  {
    SignalGuard inner;  // refcounted install: nesting must be harmless
    ASSERT_EQ(std::raise(SIGINT), 0);
    EXPECT_TRUE(SignalGuard::ShutdownRequested());
    SignalGuard::Reset();
  }
  // Inner guard destroyed; the outer one still has the handler installed.
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(SignalGuard::ShutdownRequested());
  SignalGuard::Reset();
}

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeFixture() {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 200;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

baselines::LogisticRegression MakeModel(const Fixture& f) {
  return baselines::LogisticRegression(
      f.input_dim, baselines::LrInputMode::kAggregate, 0, /*seed=*/9);
}

TrainConfig MakeConfig() {
  TrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 10;
  tc.batch_size = 32;
  tc.seed = 11;
  return tc;
}

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_TRUE(a[t].SameShape(b[t])) << "tensor " << t;
    for (int64_t i = 0; i < a[t].size(); ++i) {
      ASSERT_EQ(a[t].data()[i], b[t].data()[i])
          << "tensor " << t << " element " << i;
    }
  }
}

/// The graceful-shutdown satellite end to end: a SIGTERM during training
/// finishes the in-flight batch, persists a final run_state, returns
/// interrupted — and Resume continues to the exact parameters the
/// uninterrupted run produces.
TEST(GracefulShutdownTest, SigtermWritesFinalStateAndResumeIsBitIdentical) {
  const Fixture f = MakeFixture();
  const TrainConfig base = MakeConfig();

  // Uninterrupted reference.
  baselines::LogisticRegression reference = MakeModel(f);
  CheckpointOptions ref_ckpt;
  ref_ckpt.path = TempPath("graceful_ref_state.bin");
  const TrainResult ref_result =
      Trainer(base, ref_ckpt).Fit(&reference, f.splits.train, f.splits.val);
  ASSERT_FALSE(ref_result.interrupted);

  // Preempted run: the latch is already set when Fit starts, so the
  // trainer exits after the first batch with the cursor persisted.
  SignalGuard guard;
  SignalGuard::Reset();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  TrainConfig tc = base;
  tc.graceful_shutdown = true;
  CheckpointOptions ckpt;
  ckpt.path = TempPath("graceful_run_state.bin");
  baselines::LogisticRegression victim = MakeModel(f);
  const TrainResult preempted =
      Trainer(tc, ckpt).Fit(&victim, f.splits.train, f.splits.val);
  EXPECT_TRUE(preempted.interrupted);
  EXPECT_TRUE(preempted.status.ok());  // a signal is not an error
  SignalGuard::Reset();

  // Resume in a "new process": fresh model, state from disk, same config.
  baselines::LogisticRegression revived = MakeModel(f);
  auto resumed =
      Trainer(tc, ckpt).Resume(&revived, f.splits.train, f.splits.val);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed.value().interrupted);
  EXPECT_EQ(resumed.value().epochs_run, ref_result.epochs_run);
  ExpectBitIdentical(revived.StateDict(), reference.StateDict());
  ExpectBitIdentical(resumed.value().best_state, ref_result.best_state);
  std::remove(ckpt.path.c_str());
  std::remove(ref_ckpt.path.c_str());
}

TEST(GracefulShutdownTest, WithoutTheOptInTheSignalIsIgnored) {
  const Fixture f = MakeFixture();
  SignalGuard guard;
  SignalGuard::Reset();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  TrainConfig tc = MakeConfig();
  tc.max_epochs = 2;
  tc.graceful_shutdown = false;  // default: the latch is not consulted
  baselines::LogisticRegression model = MakeModel(f);
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.epochs_run, 2);
  SignalGuard::Reset();
}

}  // namespace
}  // namespace train
}  // namespace tracer
