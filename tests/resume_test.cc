#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baselines/logistic_regression.h"
#include "datagen/emr_generator.h"
#include "nn/serialization.h"
#include "train/run_state.h"
#include "train/trainer.h"

namespace tracer {
namespace train {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeFixture(int samples = 200) {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = samples;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  norm.Apply(&f.splits.test);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

baselines::LogisticRegression MakeModel(const Fixture& f) {
  return baselines::LogisticRegression(
      f.input_dim, baselines::LrInputMode::kAggregate, 0, /*seed=*/9);
}

TrainConfig MakeConfig() {
  TrainConfig tc;
  tc.max_epochs = 4;
  tc.patience = 10;
  tc.batch_size = 32;
  tc.seed = 11;
  return tc;
}

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_TRUE(a[t].SameShape(b[t])) << "tensor " << t;
    for (int64_t i = 0; i < a[t].size(); ++i) {
      // Bitwise, not approximate: resume must replay the exact arithmetic.
      ASSERT_EQ(a[t].data()[i], b[t].data()[i])
          << "tensor " << t << " element " << i;
    }
  }
}

TEST(RunStateTest, RoundTripsEveryFieldExactly) {
  RunState s;
  s.completed = false;
  s.epoch = 3;
  s.next_batch = 7;
  s.rng_state = {1, 0xFFFFFFFFFFFFFFFFull, 42, 0x123456789ABCDEFull, 0, 77};
  s.loss_sum = std::numeric_limits<double>::quiet_NaN();  // NaN must survive
  s.grad_norm_sum = -0.125;
  s.seen = 12345;
  s.batches = 99;
  s.epoch_nonfinite = 4;
  s.adam_step_count = 1ll << 33;
  s.lr = 2.5e-4f;
  s.adam_m = {Tensor({2, 2}, {1, 2, 3, 4})};
  s.adam_v = {Tensor({2, 2}, {5, 6, 7, 8})};
  s.stopper_best = 0.625f;
  s.stopper_best_epoch = 2;
  s.stopper_epochs = 3;
  s.stopper_stale = 1;
  s.train_loss = {0.5, 0.25, -0.0};
  s.val_loss = {0.75, 0.375, 0.1875};
  s.best_epoch = 2;
  s.epochs_run = 3;
  s.nonfinite_batches = 6;
  s.consecutive_nonfinite = 2;
  s.lr_halvings = 1;
  s.model_state = {Tensor({1, 4}, {9, 10, 11, 12})};
  s.best_state = {Tensor({1, 4}, {13, 14, 15, 16})};

  const std::string path = TempPath("run_state_roundtrip.bin");
  ASSERT_TRUE(SaveRunState(path, s).ok());
  auto loaded = LoadRunState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RunState& r = loaded.value();
  EXPECT_EQ(r.completed, s.completed);
  EXPECT_EQ(r.epoch, s.epoch);
  EXPECT_EQ(r.next_batch, s.next_batch);
  EXPECT_EQ(r.rng_state, s.rng_state);
  EXPECT_TRUE(std::isnan(r.loss_sum));
  EXPECT_EQ(r.grad_norm_sum, s.grad_norm_sum);
  EXPECT_EQ(r.seen, s.seen);
  EXPECT_EQ(r.batches, s.batches);
  EXPECT_EQ(r.epoch_nonfinite, s.epoch_nonfinite);
  EXPECT_EQ(r.adam_step_count, s.adam_step_count);
  EXPECT_EQ(r.lr, s.lr);
  EXPECT_EQ(r.stopper_best, s.stopper_best);
  EXPECT_EQ(r.stopper_best_epoch, s.stopper_best_epoch);
  EXPECT_EQ(r.stopper_epochs, s.stopper_epochs);
  EXPECT_EQ(r.stopper_stale, s.stopper_stale);
  ASSERT_EQ(r.train_loss.size(), s.train_loss.size());
  for (size_t i = 0; i < s.train_loss.size(); ++i) {
    EXPECT_EQ(r.train_loss[i], s.train_loss[i]);
  }
  EXPECT_EQ(r.val_loss, s.val_loss);
  EXPECT_EQ(r.best_epoch, s.best_epoch);
  EXPECT_EQ(r.epochs_run, s.epochs_run);
  EXPECT_EQ(r.nonfinite_batches, s.nonfinite_batches);
  EXPECT_EQ(r.consecutive_nonfinite, s.consecutive_nonfinite);
  EXPECT_EQ(r.lr_halvings, s.lr_halvings);
  ExpectBitIdentical(r.model_state, s.model_state);
  ExpectBitIdentical(r.best_state, s.best_state);
  ExpectBitIdentical(r.adam_m, s.adam_m);
  ExpectBitIdentical(r.adam_v, s.adam_v);
  std::remove(path.c_str());
}

TEST(RunStateTest, LoadRejectsForeignAndDamagedContainers) {
  EXPECT_EQ(LoadRunState(TempPath("nonexistent_run_state.bin")).status().code(),
            StatusCode::kIOError);

  // A valid TRCKPT1 container that is not a run state.
  const std::string foreign = TempPath("foreign_ckpt.bin");
  ASSERT_TRUE(
      nn::SaveCheckpoint(foreign, {{"weights", Tensor({1, 1}, {1.0f})}}).ok());
  EXPECT_EQ(LoadRunState(foreign).status().code(),
            StatusCode::kInvalidArgument);

  // A truncated run state is data loss.
  RunState s;
  s.rng_state = {1, 2, 3, 4, 5, 6};
  s.model_state = {Tensor({2, 2}, {1, 2, 3, 4})};
  s.best_state = s.model_state;
  const std::string path = TempPath("truncated_run_state.bin");
  ASSERT_TRUE(SaveRunState(path, s).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() / 2);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_EQ(LoadRunState(path).status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
  std::remove(foreign.c_str());
}

/// The tentpole acceptance test: kill the run at several batch cursors and
/// prove the resumed run reproduces the uninterrupted run bit for bit.
TEST(ResumeTest, KillAndResumeIsBitIdenticalToUninterruptedRun) {
  const Fixture f = MakeFixture();
  const TrainConfig tc = MakeConfig();

  // Uninterrupted reference run (checkpointing on: writing run states must
  // not perturb the arithmetic).
  CheckpointOptions ref_ckpt;
  ref_ckpt.path = TempPath("ref_run_state.bin");
  ref_ckpt.every_batches = 2;
  baselines::LogisticRegression reference = MakeModel(f);
  const TrainResult ref_result =
      Trainer(tc, ref_ckpt).Fit(&reference, f.splits.train, f.splits.val);
  ASSERT_FALSE(ref_result.interrupted);

  for (const int kill_after : {1, 3, 7, 11}) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    CheckpointOptions crash_ckpt;
    crash_ckpt.path =
        TempPath("crash_run_state_" + std::to_string(kill_after) + ".bin");
    crash_ckpt.every_batches = 2;
    crash_ckpt.stop_after_batches = kill_after;
    baselines::LogisticRegression victim = MakeModel(f);
    const TrainResult crashed = Trainer(tc, crash_ckpt)
                                    .Fit(&victim, f.splits.train, f.splits.val);
    ASSERT_TRUE(crashed.interrupted);

    // Restart "in a new process": fresh model object, resume from disk.
    CheckpointOptions resume_ckpt;
    resume_ckpt.path = crash_ckpt.path;
    resume_ckpt.every_batches = 2;
    baselines::LogisticRegression revived = MakeModel(f);
    auto resumed =
        Trainer(tc, resume_ckpt).Resume(&revived, f.splits.train, f.splits.val);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    const TrainResult& result = resumed.value();

    EXPECT_FALSE(result.interrupted);
    EXPECT_EQ(result.epochs_run, ref_result.epochs_run);
    EXPECT_EQ(result.best_epoch, ref_result.best_epoch);
    ASSERT_EQ(result.train_loss.size(), ref_result.train_loss.size());
    for (size_t i = 0; i < ref_result.train_loss.size(); ++i) {
      EXPECT_EQ(result.train_loss[i], ref_result.train_loss[i]) << "epoch " << i;
      EXPECT_EQ(result.val_loss[i], ref_result.val_loss[i]) << "epoch " << i;
    }
    ExpectBitIdentical(revived.StateDict(), reference.StateDict());
    ExpectBitIdentical(result.best_state, ref_result.best_state);
    std::remove(crash_ckpt.path.c_str());
  }
  std::remove(ref_ckpt.path.c_str());
}

TEST(ResumeTest, ResumeOfCompletedRunRestoresBestWithoutTraining) {
  const Fixture f = MakeFixture();
  const TrainConfig tc = MakeConfig();
  CheckpointOptions ckpt;
  ckpt.path = TempPath("completed_run_state.bin");
  baselines::LogisticRegression model = MakeModel(f);
  const TrainResult full =
      Trainer(tc, ckpt).Fit(&model, f.splits.train, f.splits.val);

  baselines::LogisticRegression revived = MakeModel(f);
  auto resumed =
      Trainer(tc, ckpt).Resume(&revived, f.splits.train, f.splits.val);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().epochs_run, full.epochs_run);
  EXPECT_EQ(resumed.value().best_epoch, full.best_epoch);
  ASSERT_EQ(resumed.value().train_loss.size(), full.train_loss.size());
  ExpectBitIdentical(revived.StateDict(), model.StateDict());
  std::remove(ckpt.path.c_str());
}

TEST(ResumeTest, ResumeValidatesArchitectureSeedAndPath) {
  const Fixture f = MakeFixture();
  const TrainConfig tc = MakeConfig();
  CheckpointOptions ckpt;
  ckpt.path = TempPath("validate_run_state.bin");
  ckpt.stop_after_batches = 3;
  ckpt.every_batches = 1;
  baselines::LogisticRegression model = MakeModel(f);
  ASSERT_TRUE(Trainer(tc, ckpt)
                  .Fit(&model, f.splits.train, f.splits.val)
                  .interrupted);
  ckpt.stop_after_batches = 0;

  // No checkpoint path configured.
  baselines::LogisticRegression revived = MakeModel(f);
  EXPECT_EQ(Trainer(tc, CheckpointOptions{})
                .Resume(&revived, f.splits.train, f.splits.val)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // Architecture mismatch: different input width.
  baselines::LogisticRegression wrong_arch(
      f.input_dim + 1, baselines::LrInputMode::kAggregate, 0, 9);
  EXPECT_EQ(Trainer(tc, ckpt)
                .Resume(&wrong_arch, f.splits.train, f.splits.val)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Shuffle-stream mismatch: resuming under a different seed would diverge
  // from the interrupted run, so it must be refused.
  TrainConfig wrong_seed = tc;
  wrong_seed.seed = tc.seed + 1;
  baselines::LogisticRegression revived2 = MakeModel(f);
  EXPECT_EQ(Trainer(wrong_seed, ckpt)
                .Resume(&revived2, f.splits.train, f.splits.val)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // The happy path still works after all the rejected attempts.
  baselines::LogisticRegression revived3 = MakeModel(f);
  EXPECT_TRUE(Trainer(tc, ckpt)
                  .Resume(&revived3, f.splits.train, f.splits.val)
                  .ok());
  std::remove(ckpt.path.c_str());
}

// ---------------------------------------------------------------------------
// Non-finite guard

TEST(NonfiniteGuardTest, SkipsPoisonedBatchesAndFinishesTraining) {
  Fixture f = MakeFixture();
  // Poison one training sample: every batch containing it yields a NaN
  // loss. The guard must skip exactly those batches and train on the rest.
  f.splits.train.at(0, 0, 0) = std::numeric_limits<float>::quiet_NaN();
  baselines::LogisticRegression model = MakeModel(f);
  TrainConfig tc = MakeConfig();
  tc.max_epochs = 3;
  tc.telemetry = true;
  tc.validate_graph = false;  // the guard, not the validator, is under test
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  EXPECT_EQ(result.epochs_run, 3);
  // The poisoned sample lands in exactly one batch per epoch.
  EXPECT_EQ(result.nonfinite_batches, 3);
  EXPECT_EQ(result.lr_halvings, 0);
  for (const std::string& line : result.telemetry) {
    EXPECT_NE(line.find("\"nonfinite_batches\":1"), std::string::npos)
        << line;
  }
  for (double loss : result.train_loss) EXPECT_TRUE(std::isfinite(loss));
}

TEST(NonfiniteGuardTest, AllPoisonedBatchesLeaveParametersUntouched) {
  Fixture f = MakeFixture();
  for (int s = 0; s < f.splits.train.num_samples(); ++s) {
    f.splits.train.at(s, 0, 0) = std::numeric_limits<float>::infinity();
  }
  baselines::LogisticRegression model = MakeModel(f);
  const std::vector<Tensor> initial = model.StateDict();
  TrainConfig tc = MakeConfig();
  tc.max_epochs = 2;
  tc.validate_graph = false;
  tc.nonfinite_lr_patience = 3;
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  const int batches_per_epoch =
      (f.splits.train.num_samples() + tc.batch_size - 1) / tc.batch_size;
  EXPECT_EQ(result.nonfinite_batches, 2ll * batches_per_epoch);
  // Every third consecutive skip halves the LR.
  EXPECT_EQ(result.lr_halvings, 2 * batches_per_epoch / 3);
  // No optimizer step ever ran, so the parameters are exactly the initial
  // ones (best_state restore puts them back regardless).
  ExpectBitIdentical(model.StateDict(), initial);
}

TEST(NonfiniteGuardTest, GuardOffPropagatesNonfiniteLoss) {
  Fixture f = MakeFixture();
  f.splits.train.at(0, 0, 0) = std::numeric_limits<float>::quiet_NaN();
  baselines::LogisticRegression model = MakeModel(f);
  TrainConfig tc = MakeConfig();
  tc.max_epochs = 1;
  tc.validate_graph = false;
  tc.nonfinite_guard = false;
  const TrainResult result = Fit(&model, f.splits.train, f.splits.val, tc);
  EXPECT_EQ(result.nonfinite_batches, 0);
  // Without the guard the NaN reaches the loss average and the parameters.
  EXPECT_TRUE(std::isnan(result.train_loss[0]));
}

}  // namespace
}  // namespace train
}  // namespace tracer
