// Chaos tests for the fault-tolerance layer (run by the CI chaos job under
// an ASan build, optionally with TRACER_FAULTS set in the environment):
//  - CircuitBreaker state machine on a fake clock,
//  - degraded-mode serving: injected scoring failures trip the breaker,
//    responses fall back with degraded=true, a half-open probe restores
//    normal service,
//  - no-fallback degradation surfaces kUnavailable without ever crashing,
//  - a multi-producer hammer under probabilistic score/dispatch/submit
//    faults: every future completes with a contractual status,
//  - training under checkpoint-write faults: the retry policy and the
//    non-fatal checkpoint contract keep the run alive and resumable.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "baselines/logistic_regression.h"
#include "common/rng.h"
#include "core/titv.h"
#include "data/dataset.h"
#include "datagen/emr_generator.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/circuit_breaker.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "train/run_state.h"
#include "train/trainer.h"

namespace tracer {
namespace serve {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

core::TitvConfig MicroConfig(uint64_t seed = 5, int input_dim = 6) {
  core::TitvConfig config;
  config.input_dim = input_dim;
  config.rnn_dim = 4;
  config.film_dim = 4;
  config.seed = seed;
  return config;
}

uint64_t RegisterFreshModel(ModelRegistry* registry,
                            const core::TitvConfig& config) {
  const core::Titv model(config);
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (const auto& [name, param] : model.NamedParameters()) {
    tensors.emplace_back(name, param.value());
  }
  auto staged = registry->Register(config, std::move(tensors), "<memory>");
  EXPECT_TRUE(staged.ok()) << staged.status().ToString();
  return staged.value();
}

ServeRequest MakeRequest(int num_windows, int dim, Rng* rng) {
  ServeRequest request;
  request.windows.assign(num_windows, std::vector<float>(dim));
  for (auto& window : request.windows) {
    for (float& v : window) {
      v = static_cast<float>(rng->Uniform(-1.0, 1.0));
    }
  }
  return request;
}

/// Arms an explicit fault spec for the test body and guarantees a disarmed
/// registry afterwards, even when the CI chaos job exported TRACER_FAULTS.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultRegistry::Global().Clear(); }
  void TearDown() override { fault::FaultRegistry::Global().Clear(); }
};

// ---------------------------------------------------------------------------
// CircuitBreaker state machine (fake clock)

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndProbesHalfOpen) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration_ns = 1000;
  CircuitBreaker breaker(options);
  uint64_t now = 0;

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Non-consecutive failures never trip.
  breaker.RecordFailure(now);
  breaker.RecordFailure(now);
  breaker.RecordSuccess();
  breaker.RecordFailure(now);
  breaker.RecordFailure(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(now));

  breaker.RecordFailure(now);  // third consecutive -> open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1);
  EXPECT_FALSE(breaker.Allow(now));
  EXPECT_FALSE(breaker.Allow(now + 999));  // still cooling down

  // Cooldown elapsed: exactly one probe is admitted.
  now += 1000;
  EXPECT_TRUE(breaker.Allow(now));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.probes(), 1);
  EXPECT_FALSE(breaker.Allow(now)) << "only one probe while half-open";

  // Probe fails: back to open, fresh cooldown.
  breaker.RecordFailure(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2);
  EXPECT_FALSE(breaker.Allow(now + 999));

  // Next probe succeeds: closed, and failures must re-accumulate from zero.
  now += 2000;
  EXPECT_TRUE(breaker.Allow(now));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(now));
  breaker.RecordFailure(now);
  breaker.RecordFailure(now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Degraded-mode serving

TEST_F(ChaosTest, BreakerOpensFallbackServesDegradedThenProbeRecovers) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Counter* opens_counter =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_breaker_open_total");
  obs::Counter* injected_counter =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_fault_injected_total");
  const int64_t opens_before = opens_counter->value();
  const int64_t injected_before = injected_counter->value();

  ModelRegistry registry;
  const uint64_t primary = RegisterFreshModel(&registry, MicroConfig(5));
  const uint64_t fallback = RegisterFreshModel(&registry, MicroConfig(7));
  ASSERT_TRUE(registry.Publish(primary).ok());
  ASSERT_TRUE(registry.SetFallback(fallback).ok());

  ServeOptions options;
  options.num_workers = 1;  // one breaker => a deterministic state walk
  options.max_batch_size = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration_ns = 0;  // probe immediately on next batch
  InferenceServer server(&registry, options);

  // The first 5 primary attempts fail (count-budgeted injection), then the
  // fault heals.
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("serve.score:1:5").ok());

  Rng rng(17);
  std::vector<ServeResponse> responses;
  for (int i = 0; i < 8; ++i) {
    responses.push_back(server.Infer(MakeRequest(3, 6, &rng)));
  }

  // Walk: 2 closed failures (trips open) -> probe/fail cycles until the
  // budget drains -> successful probe closes -> healthy tail. Every failed
  // attempt was served by the fallback, marked degraded.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << i << ": " << responses[i].status.ToString();
    EXPECT_TRUE(responses[i].degraded) << "response " << i;
    EXPECT_EQ(responses[i].model_version, fallback) << "response " << i;
  }
  for (int i = 5; i < 8; ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << i << ": " << responses[i].status.ToString();
    EXPECT_FALSE(responses[i].degraded) << "response " << i;
    EXPECT_EQ(responses[i].model_version, primary) << "response " << i;
  }

  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.degraded, 5);
  // Trip after 2 closed failures, then each failed half-open probe re-opens:
  // 1 + 3 = 4 transitions into open.
  EXPECT_EQ(stats.breaker_opens, 4);
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(opens_counter->value() - opens_before, 4);
  EXPECT_EQ(injected_counter->value() - injected_before, 5);
  EXPECT_EQ(fault::FaultRegistry::Global().FireCount("serve.score"), 5);

  server.Shutdown();
  obs::SetEnabled(was_enabled);
}

TEST_F(ChaosTest, OpenBreakerWithoutFallbackReturnsUnavailableThenHeals) {
  ModelRegistry registry;
  const uint64_t primary = RegisterFreshModel(&registry, MicroConfig(5));
  ASSERT_TRUE(registry.Publish(primary).ok());

  ServeOptions options;
  options.num_workers = 1;
  options.max_batch_size = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration_ns = 0;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("serve.score:1:3").ok());

  Rng rng(18);
  std::vector<ServeResponse> responses;
  for (int i = 0; i < 5; ++i) {
    responses.push_back(server.Infer(MakeRequest(2, 6, &rng)));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(responses[i].status.code(), StatusCode::kUnavailable)
        << "response " << i;
    EXPECT_FALSE(responses[i].degraded);
  }
  for (int i = 3; i < 5; ++i) {
    EXPECT_TRUE(responses[i].status.ok())
        << i << ": " << responses[i].status.ToString();
    EXPECT_FALSE(responses[i].degraded);
    EXPECT_EQ(responses[i].model_version, primary);
  }
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(stats.failed, 3);
  EXPECT_EQ(stats.completed, 2);
  server.Shutdown();
}

TEST_F(ChaosTest, HammerUnderProbabilisticFaultsNeverLosesAFuture) {
  ModelRegistry registry;
  const uint64_t primary = RegisterFreshModel(&registry, MicroConfig(5));
  const uint64_t fallback = RegisterFreshModel(&registry, MicroConfig(7));
  ASSERT_TRUE(registry.Publish(primary).ok());
  ASSERT_TRUE(registry.SetFallback(fallback).ok());

  ServeOptions options;
  options.num_workers = 2;
  options.max_batch_size = 4;
  options.queue_capacity = 64;
  options.breaker.failure_threshold = 3;
  options.breaker.open_duration_ns = 1000000;  // 1ms
  InferenceServer server(&registry, options);

  // Score, dispatch and pool hand-off all fail probabilistically — the
  // server must degrade, shed or fail requests, but never crash, deadlock
  // or drop a future.
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("serve.score:0.3:0,serve.dispatch:0.1:0,"
                             "pool.submit:0.05:0",
                             /*seed=*/99)
                  .ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 60;
  std::vector<std::vector<std::future<ServeResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        futures[p].push_back(
            server.Submit(MakeRequest(1 + (i % 3), 6, &rng)));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  int ok = 0;
  int degraded = 0;
  int unavailable = 0;
  for (auto& lane : futures) {
    for (auto& future : lane) {
      const ServeResponse response = future.get();  // must never hang
      if (response.status.ok()) {
        ++ok;
        if (response.degraded) ++degraded;
        EXPECT_TRUE(response.model_version == primary ||
                    response.model_version == fallback);
      } else {
        // The only contractual failure mode under these faults.
        EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
            << response.status.ToString();
        ++unavailable;
      }
    }
  }
  EXPECT_EQ(ok + unavailable, kProducers * kPerProducer);
  EXPECT_GT(ok, 0);
  EXPECT_GT(degraded, 0) << "score faults at p=0.3 must trip degraded mode";

  // Every admitted request is accounted for: completed, expired or failed.
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted + stats.shed,
            static_cast<int64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired + stats.failed);

  // Heal the faults: service must fully recover (breakers may need one
  // probe cycle to close again).
  fault::FaultRegistry::Global().Clear();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  Rng rng(77);
  int healthy = 0;
  for (int i = 0; i < 20; ++i) {
    const ServeResponse response = server.Infer(MakeRequest(2, 6, &rng));
    if (response.status.ok() && !response.degraded) ++healthy;
  }
  EXPECT_GT(healthy, 0) << "server must return to primary after faults heal";
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Environment-driven chaos: the CI chaos job exports TRACER_FAULTS /
// TRACER_FAULTS_SEED and this test re-arms that exact spec (the fixture
// cleared it for the deterministic tests above), then drives the serving
// and training paths under it. Without the env vars it falls back to a
// broad nonzero-probability spec so the coverage exists locally too.

TEST_F(ChaosTest, EnvSpecServeAndTrainSurviveArbitraryFaultStorm) {
  const char* env_spec = std::getenv("TRACER_FAULTS");
  const std::string spec =
      (env_spec != nullptr && *env_spec != '\0')
          ? env_spec
          : "ckpt.write:0.2:0,ckpt.fsync:0.1:0,ckpt.rename:0.05:0,"
            "serve.score:0.2:0,serve.dispatch:0.05:0,pool.submit:0.02:0,"
            "interpret.explain:0.2:0";
  const char* env_seed = std::getenv("TRACER_FAULTS_SEED");
  const uint64_t seed =
      (env_seed != nullptr && *env_seed != '\0')
          ? std::strtoull(env_seed, nullptr, 10)
          : 20260806ull;
  // Also validates that the spec CI exports actually parses.
  ASSERT_TRUE(fault::FaultRegistry::Global().Configure(spec, seed).ok())
      << "TRACER_FAULTS spec rejected: " << spec;

  // Serving: fallback registered, every future must complete contractually.
  ModelRegistry registry;
  const uint64_t primary = RegisterFreshModel(&registry, MicroConfig(5));
  const uint64_t fallback = RegisterFreshModel(&registry, MicroConfig(7));
  ASSERT_TRUE(registry.Publish(primary).ok());
  ASSERT_TRUE(registry.SetFallback(fallback).ok());
  ServeOptions options;
  options.num_workers = 2;
  options.max_batch_size = 4;
  InferenceServer server(&registry, options);
  std::vector<std::future<ServeResponse>> futures;
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    // Every fourth request asks for attributions, so the storm also drives
    // the interpret.explain fault point on the serve path.
    if (i % 4 == 3) {
      futures.push_back(server.SubmitExplain(MakeRequest(1 + (i % 3), 6, &rng),
                                             ExplainSpec{}));
    } else {
      futures.push_back(server.Submit(MakeRequest(1 + (i % 3), 6, &rng)));
    }
  }
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
          << response.status.ToString();
    }
  }
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired + stats.failed);
  server.Shutdown();

  // Training with retried checkpointing: arithmetic must be unaffected by
  // any checkpoint-IO faults, and non-finite guards keep the run alive.
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 80;
  gen.num_filler_features = 2;
  gen.seed = 56;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng split_rng(3);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, split_rng);
  data::MinMaxNormalizer norm;
  norm.Fit(splits.train);
  norm.Apply(&splits.train);
  norm.Apply(&splits.val);
  train::TrainConfig tc;
  tc.max_epochs = 2;
  tc.patience = 10;
  tc.batch_size = 32;
  tc.seed = 11;
  train::CheckpointOptions ckpt;
  ckpt.path = TempPath("env_chaos_run_state.bin");
  ckpt.every_batches = 1;
  ckpt.retry.max_attempts = 3;
  ckpt.retry.initial_backoff_us = 0;
  baselines::LogisticRegression model(cohort.dataset.num_features(),
                                      baselines::LrInputMode::kAggregate, 0,
                                      9);
  const train::TrainResult result =
      train::Trainer(tc, ckpt).Fit(&model, splits.train, splits.val);
  EXPECT_EQ(result.epochs_run, tc.max_epochs);
  std::remove(ckpt.path.c_str());
}

// ---------------------------------------------------------------------------
// Training under checkpoint faults

TEST_F(ChaosTest, TrainingSurvivesCheckpointWriteFaultsAndStaysResumable) {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 120;
  gen.num_filler_features = 2;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(splits.train);
  norm.Apply(&splits.train);
  norm.Apply(&splits.val);

  // Half of all checkpoint writes fail at the stream layer; the trainer's
  // retry policy rides most out, and a persistently failing write must only
  // degrade durability, never the training arithmetic.
  ASSERT_TRUE(fault::FaultRegistry::Global()
                  .Configure("ckpt.write:0.5:0", /*seed=*/4)
                  .ok());

  train::TrainConfig tc;
  tc.max_epochs = 3;
  tc.patience = 10;
  tc.batch_size = 32;
  tc.seed = 11;
  train::CheckpointOptions ckpt;
  ckpt.path = TempPath("chaos_run_state.bin");
  ckpt.every_batches = 1;
  ckpt.retry.max_attempts = 3;
  ckpt.retry.initial_backoff_us = 0;  // no real sleeping in tests

  const int input_dim = cohort.dataset.num_features();
  baselines::LogisticRegression noisy(
      input_dim, baselines::LrInputMode::kAggregate, 0, 9);
  const train::TrainResult under_faults =
      train::Trainer(tc, ckpt).Fit(&noisy, splits.train, splits.val);
  EXPECT_EQ(under_faults.epochs_run, tc.max_epochs);
  EXPECT_GT(fault::FaultRegistry::Global().FireCount("ckpt.write"), 0);

  // Identical run with no faults: the arithmetic must match exactly.
  fault::FaultRegistry::Global().Clear();
  train::CheckpointOptions clean_ckpt = ckpt;
  clean_ckpt.path = TempPath("chaos_run_state_clean.bin");
  baselines::LogisticRegression clean(
      input_dim, baselines::LrInputMode::kAggregate, 0, 9);
  const train::TrainResult reference =
      train::Trainer(tc, clean_ckpt).Fit(&clean, splits.train, splits.val);
  ASSERT_EQ(under_faults.train_loss.size(), reference.train_loss.size());
  for (size_t i = 0; i < reference.train_loss.size(); ++i) {
    EXPECT_EQ(under_faults.train_loss[i], reference.train_loss[i]);
  }

  // Whatever checkpoint survived the fault storm is a valid container (the
  // atomic temp+rename write can lose recency — a late write may have lost
  // all its retries — but never integrity).
  auto state = train::LoadRunState(ckpt.path);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_LE(state.value().epoch, tc.max_epochs);
  std::remove(ckpt.path.c_str());
  std::remove(clean_ckpt.path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace tracer
