#include <memory>

#include <gtest/gtest.h>

#include "datagen/emr_generator.h"
#include "pipeline/emr_pipeline.h"

namespace tracer {
namespace pipeline {
namespace {

datagen::EmrCohort MakeCohort(int samples = 600) {
  datagen::EmrCohortConfig config = datagen::NuhAkiDefaultConfig();
  config.num_samples = samples;
  config.num_filler_features = 2;
  config.deteriorating_rate = 0.3;
  config.seed = 77;
  return datagen::GenerateNuhAkiCohort(config);
}

EmrPipelineConfig FastConfig(int input_dim) {
  EmrPipelineConfig config;
  config.tracer.model.input_dim = input_dim;
  config.tracer.model.rnn_dim = 8;
  config.tracer.model.film_dim = 8;
  config.tracer.training.max_epochs = 12;
  config.tracer.training.learning_rate = 3e-3f;
  config.tracer.alert_threshold = 0.5f;
  config.report_features = {"Urea", "CRP"};
  return config;
}

TEST(EmrPipelineTest, EndToEndProducesAllArtifacts) {
  const datagen::EmrCohort cohort = MakeCohort();
  std::unique_ptr<core::Tracer> tracer_framework;
  const EmrPipelineResult result =
      RunEmrPipeline(cohort.dataset, nullptr,
                     FastConfig(cohort.dataset.num_features()),
                     &tracer_framework);
  ASSERT_NE(tracer_framework, nullptr);
  EXPECT_GT(result.training.epochs_run, 0);
  EXPECT_GT(result.test_metrics.auc, 0.6);
  EXPECT_EQ(result.feature_reports.size(), 2u);
  EXPECT_LE(result.patient_reports.size(), 2u);
  for (const std::string& report : result.patient_reports) {
    EXPECT_NE(report.find("Predicted risk"), std::string::npos);
  }
  EXPECT_NE(result.feature_reports[0].find("Urea"), std::string::npos);
  EXPECT_GE(result.test_alerts, result.test_alerts_correct);
}

TEST(EmrPipelineTest, CleaningStageRepairsMissingness) {
  datagen::EmrCohort cohort = MakeCohort();
  data::TimeSeriesDataset damaged = cohort.dataset;
  Rng rng(5);
  const data::MissingnessMask mask =
      data::ApplyRandomMissingness(&damaged, 0.3, rng);

  std::unique_ptr<core::Tracer> with_cleaning;
  EmrPipelineConfig config = FastConfig(cohort.dataset.num_features());
  const EmrPipelineResult repaired =
      RunEmrPipeline(damaged, &mask, config, &with_cleaning);

  std::unique_ptr<core::Tracer> without_cleaning;
  config.imputation = data::ImputationStrategy::kZero;
  const EmrPipelineResult zeroed =
      RunEmrPipeline(damaged, &mask, config, &without_cleaning);

  // Both must run; the repaired pipeline should not be (much) worse.
  EXPECT_GT(repaired.test_metrics.auc, 0.55);
  EXPECT_GT(repaired.test_metrics.auc, zeroed.test_metrics.auc - 0.1);
}

TEST(EmrPipelineTest, InputDimZeroIsInferred) {
  const datagen::EmrCohort cohort = MakeCohort(300);
  EmrPipelineConfig config = FastConfig(cohort.dataset.num_features());
  config.tracer.model.input_dim = 0;  // infer from the cohort
  config.tracer.training.max_epochs = 3;
  config.patient_reports = 0;
  config.report_features.clear();
  std::unique_ptr<core::Tracer> tracer_framework;
  const EmrPipelineResult result = RunEmrPipeline(
      cohort.dataset, nullptr, config, &tracer_framework);
  EXPECT_EQ(tracer_framework->config().model.input_dim,
            cohort.dataset.num_features());
  EXPECT_TRUE(result.patient_reports.empty());
  EXPECT_TRUE(result.feature_reports.empty());
}

}  // namespace
}  // namespace pipeline
}  // namespace tracer
