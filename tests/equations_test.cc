// Differential tests of the paper's equations: each module's output is
// recomputed with independent scalar arithmetic (no tensor library) and
// compared against the layer implementation, at dimension 1 where every
// quantity can be followed by hand.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/titv.h"
#include "nn/gru.h"

namespace tracer {
namespace {

using autograd::Variable;

float SigmoidScalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Finds a parameter by name and overwrites its single entry.
void SetScalarParam(nn::Module& module, const std::string& name,
                    float value) {
  for (auto& [param_name, param] : module.NamedParameters()) {
    if (param_name == name) {
      TRACER_CHECK_EQ(param.value().size(), 1);
      param.mutable_value()[0] = value;
      return;
    }
  }
  TRACER_CHECK(false) << "no parameter " << name;
}

TEST(GruEquationsTest, StepMatchesScalarFormulas) {
  // 1-dim GRU: set every weight explicitly, follow Eq. 6–9 by hand.
  Rng rng(1);
  nn::GruCell cell(1, 1, rng);
  const float wz = 0.7f, uz = -0.3f, bz = 0.1f;
  const float wr = 0.5f, ur = 0.2f, br = -0.2f;
  const float wh = 1.1f, uh = 0.4f, bh = 0.05f;
  SetScalarParam(cell, "w_z", wz);
  SetScalarParam(cell, "u_z", uz);
  SetScalarParam(cell, "b_z", bz);
  SetScalarParam(cell, "w_r", wr);
  SetScalarParam(cell, "u_r", ur);
  SetScalarParam(cell, "b_r", br);
  SetScalarParam(cell, "w_h", wh);
  SetScalarParam(cell, "u_h", uh);
  SetScalarParam(cell, "b_h", bh);

  const float x = 0.8f;
  const float h_prev = -0.25f;
  const Variable xv = Variable::Constant(Tensor({1, 1}, {x}));
  const Variable hv = Variable::Constant(Tensor({1, 1}, {h_prev}));
  const float actual = cell.Step(xv, hv).value()[0];

  // Eq. 6: z = σ(x·Wz + h·Uz + bz)
  const float z = SigmoidScalar(x * wz + h_prev * uz + bz);
  // Eq. 7: r = σ(x·Wr + h·Ur + br)
  const float r = SigmoidScalar(x * wr + h_prev * ur + br);
  // Eq. 8: h̃ = tanh(x·Wh + r ⊙ (h·Uh) + bh)  (paper's gate placement)
  const float h_tilde = std::tanh(x * wh + r * (h_prev * uh) + bh);
  // Eq. 9: h' = (1−z)·h̃ + z·h
  const float expected = (1.0f - z) * h_tilde + z * h_prev;

  EXPECT_NEAR(actual, expected, 1e-6f);
}

TEST(FilmEquationsTest, ModulatedInputMatchesEq10) {
  // Eq. 10: FiLM(x; β, θ) = β ⊙ x + θ, realised in TITV as the modulated
  // input x̃ = β⊙x + θ. Verify with explicit tensors via autograd ops.
  const Variable x = Variable::Constant(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}));
  const Variable beta =
      Variable::Constant(Tensor({2, 3}, {2, 2, 2, 0.5f, 0.5f, 0.5f}));
  const Variable theta =
      Variable::Constant(Tensor({2, 3}, {1, 1, 1, -1, -1, -1}));
  const Tensor modulated =
      autograd::Add(autograd::Mul(beta, x), theta).value();
  const float expected[] = {3, 5, 7, 1, 1.5f, 2};
  for (int i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(modulated[i], expected[i]);
  }
}

TEST(PredictionEquationsTest, ContextAndLogitMatchEq12to14) {
  // Build a 1-feature, 2-window TITV-like prediction by hand:
  // ξ_t = β + α_t; c = Σ ξ_t x_t; logit = w·c + b. Then check the Titv
  // trace agrees with its own Forward via the already-tested consistency,
  // and that a hand computation from the trace's β/α/w reproduces it.
  core::TitvConfig config;
  config.input_dim = 2;
  config.rnn_dim = 4;
  config.film_dim = 4;
  config.seed = 3;
  core::Titv model(config);
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 1, 2,
                             2);
  ds.at(0, 0, 0) = 0.3f;
  ds.at(0, 0, 1) = 0.9f;
  ds.at(0, 1, 0) = 0.5f;
  ds.at(0, 1, 1) = 0.1f;
  const data::Batch batch = data::FullBatch(ds);
  const core::FeatureImportanceTrace trace =
      model.ComputeFeatureImportance(batch);
  // Hand computation from the trace internals.
  double logit = 0.0;
  for (int t = 0; t < 2; ++t) {
    for (int d = 0; d < 2; ++d) {
      const double xi = trace.beta.at(0, d) + trace.alpha[t].at(0, d);
      logit += xi * batch.xs[t].at(0, d) * trace.w.at(d, 0);
    }
  }
  const Variable forward =
      model.Forward(nn::SequenceModel::ToVariables(batch));
  // The output layer bias completes Eq. 14.
  const double bias = forward.value().at(0, 0) - logit;
  const double prob = 1.0 / (1.0 + std::exp(-(logit + bias)));
  EXPECT_NEAR(trace.outputs.at(0, 0), prob, 1e-5);
}

TEST(BceEquationTest, MatchesEq15) {
  // Eq. 15: L(ŷ, y) = −y log ŷ − (1−y) log(1−ŷ).
  const float logit = 0.4f;
  const Variable logits = Variable::Constant(Tensor({1, 1}, {logit}));
  const Tensor target({1, 1}, {1.0f});
  // Constant input — wrap in a parameter to allow the op (loss value is
  // what is being checked).
  const Variable param_logits =
      Variable::Parameter(Tensor({1, 1}, {logit}));
  const float loss =
      autograd::BinaryCrossEntropyWithLogits(param_logits, target)
          .value()[0];
  const float y_hat = SigmoidScalar(logit);
  EXPECT_NEAR(loss, -std::log(y_hat), 1e-6f);
  (void)logits;
}

}  // namespace
}  // namespace tracer
