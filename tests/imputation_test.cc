#include <cmath>

#include <gtest/gtest.h>

#include "data/imputation.h"

namespace tracer {
namespace data {
namespace {

TimeSeriesDataset Filled(int n, int t, int d, float base = 10.0f) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, n, t, d);
  for (int i = 0; i < n; ++i) {
    for (int w = 0; w < t; ++w) {
      for (int f = 0; f < d; ++f) {
        ds.at(i, w, f) = base + i + w + f;
      }
    }
  }
  return ds;
}

TEST(MissingnessMaskTest, DefaultsToAllObserved) {
  MissingnessMask mask(2, 3, 4);
  EXPECT_TRUE(mask.observed(1, 2, 3));
  EXPECT_DOUBLE_EQ(mask.ObservedRate(), 1.0);
}

TEST(MissingnessMaskTest, SetAndRate) {
  MissingnessMask mask(1, 2, 2);
  mask.set_observed(0, 0, 0, false);
  EXPECT_FALSE(mask.observed(0, 0, 0));
  EXPECT_DOUBLE_EQ(mask.ObservedRate(), 0.75);
}

TEST(ApplyRandomMissingnessTest, RateIsRespectedAndEntriesZeroed) {
  TimeSeriesDataset ds = Filled(50, 6, 8);
  Rng rng(3);
  const MissingnessMask mask = ApplyRandomMissingness(&ds, 0.3, rng);
  EXPECT_NEAR(mask.ObservedRate(), 0.7, 0.03);
  for (int i = 0; i < ds.num_samples(); ++i) {
    for (int t = 0; t < ds.num_windows(); ++t) {
      for (int d = 0; d < ds.num_features(); ++d) {
        if (!mask.observed(i, t, d)) {
          EXPECT_FLOAT_EQ(ds.at(i, t, d), 0.0f);
        }
      }
    }
  }
}

TEST(ImputeTest, ObservedEntriesAreNeverTouched) {
  for (ImputationStrategy strategy :
       {ImputationStrategy::kZero, ImputationStrategy::kForwardFill,
        ImputationStrategy::kCohortMean,
        ImputationStrategy::kLinearInterpolate}) {
    TimeSeriesDataset ds = Filled(10, 5, 3);
    TimeSeriesDataset original = ds;
    Rng rng(4);
    const MissingnessMask mask = ApplyRandomMissingness(&ds, 0.4, rng);
    Impute(&ds, mask, strategy);
    for (int i = 0; i < ds.num_samples(); ++i) {
      for (int t = 0; t < ds.num_windows(); ++t) {
        for (int d = 0; d < ds.num_features(); ++d) {
          if (mask.observed(i, t, d)) {
            EXPECT_FLOAT_EQ(ds.at(i, t, d), original.at(i, t, d));
          }
        }
      }
    }
  }
}

TEST(ImputeTest, ForwardFillCarriesLastObservation) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 1, 4, 1);
  ds.at(0, 0, 0) = 5.0f;
  ds.at(0, 1, 0) = 0.0f;  // missing
  ds.at(0, 2, 0) = 9.0f;
  ds.at(0, 3, 0) = 0.0f;  // missing
  MissingnessMask mask(1, 4, 1);
  mask.set_observed(0, 1, 0, false);
  mask.set_observed(0, 3, 0, false);
  Impute(&ds, mask, ImputationStrategy::kForwardFill);
  EXPECT_FLOAT_EQ(ds.at(0, 1, 0), 5.0f);
  EXPECT_FLOAT_EQ(ds.at(0, 3, 0), 9.0f);
}

TEST(ImputeTest, ForwardFillLeadingGapUsesCohortMean) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 2, 2, 1);
  // Sample 0 contributes observed values 4 and 8 (mean 6); sample 1 is
  // fully missing at window 0.
  ds.at(0, 0, 0) = 4.0f;
  ds.at(0, 1, 0) = 8.0f;
  ds.at(1, 0, 0) = 0.0f;
  ds.at(1, 1, 0) = 6.0f;
  MissingnessMask mask(2, 2, 1);
  mask.set_observed(1, 0, 0, false);
  Impute(&ds, mask, ImputationStrategy::kForwardFill);
  EXPECT_FLOAT_EQ(ds.at(1, 0, 0), 6.0f);  // (4+8+6)/3
}

TEST(ImputeTest, CohortMeanUsesOnlyObserved) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 1, 3, 1);
  ds.at(0, 0, 0) = 2.0f;
  ds.at(0, 1, 0) = 0.0f;  // missing; must not pollute the mean
  ds.at(0, 2, 0) = 4.0f;
  MissingnessMask mask(1, 3, 1);
  mask.set_observed(0, 1, 0, false);
  Impute(&ds, mask, ImputationStrategy::kCohortMean);
  EXPECT_FLOAT_EQ(ds.at(0, 1, 0), 3.0f);
}

TEST(ImputeTest, LinearInterpolationBetweenObservations) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 1, 5, 1);
  ds.at(0, 0, 0) = 10.0f;
  ds.at(0, 4, 0) = 30.0f;
  MissingnessMask mask(1, 5, 1);
  for (int t = 1; t <= 3; ++t) mask.set_observed(0, t, 0, false);
  Impute(&ds, mask, ImputationStrategy::kLinearInterpolate);
  EXPECT_FLOAT_EQ(ds.at(0, 1, 0), 15.0f);
  EXPECT_FLOAT_EQ(ds.at(0, 2, 0), 20.0f);
  EXPECT_FLOAT_EQ(ds.at(0, 3, 0), 25.0f);
}

TEST(ImputeTest, LinearInterpolationBoundaryGapsUseNearest) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 1, 4, 1);
  ds.at(0, 1, 0) = 7.0f;
  ds.at(0, 2, 0) = 9.0f;
  MissingnessMask mask(1, 4, 1);
  mask.set_observed(0, 0, 0, false);
  mask.set_observed(0, 3, 0, false);
  Impute(&ds, mask, ImputationStrategy::kLinearInterpolate);
  EXPECT_FLOAT_EQ(ds.at(0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(ds.at(0, 3, 0), 9.0f);
}

TEST(ImputeTest, FullyMissingSeriesFallsBackToMean) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 2, 2, 1);
  ds.at(0, 0, 0) = 4.0f;
  ds.at(0, 1, 0) = 6.0f;
  MissingnessMask mask(2, 2, 1);
  mask.set_observed(1, 0, 0, false);
  mask.set_observed(1, 1, 0, false);
  Impute(&ds, mask, ImputationStrategy::kLinearInterpolate);
  EXPECT_FLOAT_EQ(ds.at(1, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(ds.at(1, 1, 0), 5.0f);
}

// Property sweep: at every strategy and missing rate, imputation leaves no
// zeroed holes where the surrounding data is far from zero.
class ImputationPropertyTest
    : public ::testing::TestWithParam<std::tuple<ImputationStrategy, double>> {
};

TEST_P(ImputationPropertyTest, NoHolesLeftBehind) {
  const auto [strategy, rate] = GetParam();
  if (strategy == ImputationStrategy::kZero) GTEST_SKIP();
  TimeSeriesDataset ds = Filled(30, 6, 4, /*base=*/100.0f);
  Rng rng(11);
  const MissingnessMask mask = ApplyRandomMissingness(&ds, rate, rng);
  Impute(&ds, mask, strategy);
  for (int i = 0; i < ds.num_samples(); ++i) {
    for (int t = 0; t < ds.num_windows(); ++t) {
      for (int d = 0; d < ds.num_features(); ++d) {
        EXPECT_GT(ds.at(i, t, d), 50.0f)
            << "hole at (" << i << "," << t << "," << d << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndRates, ImputationPropertyTest,
    ::testing::Combine(
        ::testing::Values(ImputationStrategy::kForwardFill,
                          ImputationStrategy::kCohortMean,
                          ImputationStrategy::kLinearInterpolate),
        ::testing::Values(0.1, 0.4, 0.7)));

}  // namespace
}  // namespace data
}  // namespace tracer
