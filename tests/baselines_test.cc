#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/birnn_model.h"
#include "baselines/dipole.h"
#include "baselines/gbdt.h"
#include "baselines/logistic_regression.h"
#include "baselines/retain.h"
#include "datagen/emr_generator.h"
#include "metrics/metrics.h"
#include "train/trainer.h"

namespace tracer {
namespace baselines {
namespace {

// A small cohort with planted signal, shared across learning tests.
struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeAkiFixture(int samples = 600, double rate = 0.3) {
  datagen::EmrCohortConfig config = datagen::NuhAkiDefaultConfig();
  config.num_samples = samples;
  config.num_filler_features = 4;
  config.deteriorating_rate = rate;
  config.seed = 123;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(config);
  Rng rng(9);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  norm.Apply(&f.splits.test);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

train::TrainConfig FastConfig() {
  train::TrainConfig tc;
  tc.max_epochs = 12;
  tc.batch_size = 32;
  tc.patience = 12;
  return tc;
}

TEST(LogisticRegressionTest, LearnsAkiCohort) {
  Fixture f = MakeAkiFixture();
  LogisticRegression model(f.input_dim);
  // A linear model on [0,1]-normalised inputs needs a larger step size and
  // more epochs than the RNNs to converge.
  train::TrainConfig tc = FastConfig();
  tc.learning_rate = 2e-2f;
  tc.max_epochs = 40;
  tc.patience = 40;
  train::Fit(&model, f.splits.train, f.splits.val, tc);
  const train::EvalResult eval = train::Evaluate(&model, f.splits.test);
  EXPECT_GT(eval.auc, 0.65);
}

TEST(LogisticRegressionTest, SingleWindowModeUsesOnlyThatWindow) {
  Fixture f = MakeAkiFixture(300);
  LogisticRegression model(f.input_dim, LrInputMode::kSingleWindow, 2);
  // Zero every window except 2 in a copy; predictions must be unchanged.
  const std::vector<float> base = model.Predict(f.splits.test);
  data::TimeSeriesDataset zeroed = f.splits.test;
  for (int i = 0; i < zeroed.num_samples(); ++i) {
    for (int t = 0; t < zeroed.num_windows(); ++t) {
      if (t == 2) continue;
      for (int d = 0; d < zeroed.num_features(); ++d) {
        zeroed.at(i, t, d) = 0.0f;
      }
    }
  }
  const std::vector<float> masked = model.Predict(zeroed);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_FLOAT_EQ(base[i], masked[i]);
  }
}

TEST(LogisticRegressionTest, SoftmaxNormalizeSumsToOne) {
  const auto norm =
      LogisticRegression::SoftmaxNormalize({0.5f, -1.5f, 2.0f, 0.0f});
  double sum = 0.0;
  for (float v : norm) {
    sum += v;
    EXPECT_GT(v, 0.0f);
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // Largest-|coefficient| feature gets the largest share.
  EXPECT_GT(norm[2], norm[0]);
  EXPECT_GT(norm[1], norm[3]);  // |-1.5| > |0|
}

TEST(LogisticRegressionTest, CoefficientsExposeWeights) {
  LogisticRegression model(3);
  EXPECT_EQ(model.Coefficients().size(), 3u);
}

TEST(BirnnModelTest, LearnsAkiCohort) {
  Fixture f = MakeAkiFixture();
  BirnnModel model(f.input_dim, 16);
  train::Fit(&model, f.splits.train, f.splits.val, FastConfig());
  const train::EvalResult eval = train::Evaluate(&model, f.splits.test);
  EXPECT_GT(eval.auc, 0.7);
}

TEST(RetainTest, LearnsAkiCohort) {
  Fixture f = MakeAkiFixture();
  Retain model(f.input_dim, 16, 16);
  train::Fit(&model, f.splits.train, f.splits.val, FastConfig());
  const train::EvalResult eval = train::Evaluate(&model, f.splits.test);
  EXPECT_GT(eval.auc, 0.7);
}

TEST(DipoleTest, AllVariantsProduceFiniteOutputsAndLearn) {
  Fixture f = MakeAkiFixture();
  for (DipoleAttention attention :
       {DipoleAttention::kLocation, DipoleAttention::kGeneral,
        DipoleAttention::kConcat}) {
    Dipole model(f.input_dim, 12, attention);
    train::TrainConfig tc = FastConfig();
    tc.max_epochs = 8;
    train::Fit(&model, f.splits.train, f.splits.val, tc);
    const train::EvalResult eval = train::Evaluate(&model, f.splits.test);
    EXPECT_GT(eval.auc, 0.6) << model.name();
  }
}

TEST(DipoleTest, NamesDistinguishVariants) {
  EXPECT_EQ(Dipole(3, 4, DipoleAttention::kLocation).name(), "Dipole_loc");
  EXPECT_EQ(Dipole(3, 4, DipoleAttention::kGeneral).name(), "Dipole_gen");
  EXPECT_EQ(Dipole(3, 4, DipoleAttention::kConcat).name(), "Dipole_con");
}

// ---- GBDT ----

TEST(AggregateTest, MeansOverWindows) {
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 1, 3, 2);
  ds.at(0, 0, 0) = 1.0f;
  ds.at(0, 1, 0) = 2.0f;
  ds.at(0, 2, 0) = 3.0f;
  ds.at(0, 0, 1) = -1.0f;
  ds.at(0, 1, 1) = 0.0f;
  ds.at(0, 2, 1) = 1.0f;
  const TabularData tab = AggregateOverTime(ds);
  EXPECT_EQ(tab.num_rows, 1);
  EXPECT_EQ(tab.num_cols, 2);
  EXPECT_FLOAT_EQ(tab.row(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(tab.row(0)[1], 0.0f);
}

TabularData XorData(int n, uint64_t seed) {
  Rng rng(seed);
  TabularData data;
  data.num_rows = n;
  data.num_cols = 2;
  for (int i = 0; i < n; ++i) {
    const float a = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    const float b = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
    data.values.push_back(a + static_cast<float>(rng.Normal(0, 0.1)));
    data.values.push_back(b + static_cast<float>(rng.Normal(0, 0.1)));
    data.labels.push_back(a != b ? 1.0f : 0.0f);
  }
  return data;
}

TEST(GbdtTest, SolvesXorWhichLrCannot) {
  const TabularData train = XorData(800, 1);
  const TabularData test = XorData(400, 2);
  GbdtConfig config;
  config.num_trees = 60;
  config.max_depth = 3;
  Gbdt model(config, data::TaskType::kBinaryClassification);
  model.Fit(train);
  const std::vector<float> probs = model.Predict(test);
  EXPECT_GT(metrics::Auc(probs, test.labels), 0.95)
      << "depth-3 trees must capture the XOR interaction";
}

TEST(GbdtTest, RegressionFitsNonlinearFunction) {
  Rng rng(3);
  TabularData train, test;
  for (TabularData* d : {&train, &test}) {
    d->num_cols = 1;
    d->num_rows = 600;
    for (int i = 0; i < 600; ++i) {
      const float x = static_cast<float>(rng.Uniform(-3.0, 3.0));
      d->values.push_back(x);
      d->labels.push_back(std::sin(x) +
                          static_cast<float>(rng.Normal(0, 0.05)));
    }
  }
  GbdtConfig config;
  config.num_trees = 150;
  config.max_depth = 4;
  Gbdt model(config, data::TaskType::kRegression);
  model.Fit(train);
  const std::vector<float> pred = model.Predict(test);
  EXPECT_LT(metrics::Rmse(pred, test.labels), 0.15);
}

TEST(GbdtTest, LearnsAkiCohortViaAggregation) {
  Fixture f = MakeAkiFixture();
  GbdtConfig config;
  config.num_trees = 80;
  Gbdt model(config, data::TaskType::kBinaryClassification);
  model.FitDataset(f.splits.train);
  const std::vector<float> probs = model.PredictDataset(f.splits.test);
  EXPECT_GT(metrics::Auc(probs, f.splits.test.labels()), 0.65);
}

TEST(GbdtTest, PredictionsAreProbabilities) {
  const TabularData train = XorData(200, 4);
  Gbdt model({}, data::TaskType::kBinaryClassification);
  model.Fit(train);
  for (float p : model.Predict(train)) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(GbdtTest, MoreTreesReduceTrainLoss) {
  const TabularData train = XorData(500, 5);
  GbdtConfig small_config;
  small_config.num_trees = 5;
  small_config.subsample = 1.0;
  GbdtConfig big_config = small_config;
  big_config.num_trees = 80;
  Gbdt small(small_config, data::TaskType::kBinaryClassification);
  Gbdt big(big_config, data::TaskType::kBinaryClassification);
  small.Fit(train);
  big.Fit(train);
  EXPECT_LT(metrics::CrossEntropyLoss(big.Predict(train), train.labels),
            metrics::CrossEntropyLoss(small.Predict(train), train.labels));
}

TEST(RegressionTreeTest, SingleSplitRecoversStepFunction) {
  TabularData data;
  data.num_cols = 1;
  data.num_rows = 100;
  std::vector<float> grad(100), hess(100, 1.0f);
  std::vector<int> rows(100);
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(i) / 100.0f;
    data.values.push_back(x);
    // Newton leaf fits -grad/hess: target +1 right of 0.5, -1 left.
    grad[i] = x < 0.5f ? 1.0f : -1.0f;
    rows[i] = i;
  }
  GbdtConfig config;
  config.max_depth = 1;
  config.min_samples_leaf = 5;
  config.lambda = 0.0f;
  RegressionTree tree;
  tree.Fit(data, grad, hess, rows, config);
  const float left_value = tree.Predict(&data.values[10]);
  const float right_value = tree.Predict(&data.values[90]);
  EXPECT_NEAR(left_value, -1.0f, 0.05f);
  EXPECT_NEAR(right_value, 1.0f, 0.05f);
}


TEST(BirnnModelTest, LstmVariantLearnsAkiCohort) {
  Fixture f = MakeAkiFixture();
  BirnnModel model(f.input_dim, 16, 3, RnnKind::kLstm);
  EXPECT_EQ(model.name(), "BIRNN-LSTM");
  train::TrainConfig tc = FastConfig();
  tc.learning_rate = 3e-3f;
  train::Fit(&model, f.splits.train, f.splits.val, tc);
  const train::EvalResult eval = train::Evaluate(&model, f.splits.test);
  EXPECT_GT(eval.auc, 0.65);
}

TEST(BirnnModelTest, GruAndLstmVariantsDiffer) {
  Fixture f = MakeAkiFixture(200);
  BirnnModel gru(f.input_dim, 8, 3, RnnKind::kGru);
  BirnnModel lstm(f.input_dim, 8, 3, RnnKind::kLstm);
  const auto pg = gru.Predict(f.splits.test);
  const auto pl = lstm.Predict(f.splits.test);
  bool any_diff = false;
  for (size_t i = 0; i < pg.size(); ++i) {
    if (std::fabs(pg[i] - pl[i]) > 1e-6f) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace baselines
}  // namespace tracer
