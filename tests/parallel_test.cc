#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/logistic_regression.h"
#include "core/titv.h"
#include "datagen/emr_generator.h"
#include "parallel/data_parallel.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "train/trainer.h"

namespace tracer {
namespace parallel {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitAllOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitAll();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitAll();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
  SUCCEED();
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
        ran.fetch_add(1);
      }));
    }
  }  // destructor: every accepted task must still run before teardown
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentSubmitAndShutdownHammer) {
  // Regression for the enqueue-after-stop race: submitter threads hammer
  // Submit while the owner calls Shutdown. Every Submit must either run its
  // task to completion or return false — no lost task, no hang, no
  // late-queued task with nobody left to run it.
  for (int round = 0; round < 25; ++round) {
    ThreadPool pool(3);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::vector<std::thread> submitters;
    submitters.reserve(4);
    for (int s = 0; s < 4; ++s) {
      submitters.emplace_back([&pool, &accepted, &ran] {
        for (int i = 0; i < 64; ++i) {
          if (pool.Submit([&ran] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          } else {
            return;  // pool stopped; later submits would also be rejected
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    pool.Shutdown();  // races the submitters by design
    for (std::thread& t : submitters) t.join();
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
  }
}

class ThreadBudgetGuard {
 public:
  ThreadBudgetGuard() : prev_(MaxThreads()) {}
  ~ThreadBudgetGuard() { SetMaxThreads(prev_); }

 private:
  int prev_;
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadBudgetGuard guard;
  SetMaxThreads(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(10, kN, [&counts](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      counts[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<int> calls{0};
  ParallelFor(1, 0, [&calls](int64_t, int64_t) { calls.fetch_add(1); });
  ParallelFor(1, -5, [&calls](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ChunkCountRespectsGrainAndThreadBudget) {
  ThreadBudgetGuard guard;
  SetMaxThreads(8);
  std::atomic<int> calls{0};
  std::atomic<int64_t> covered{0};
  // ceil(100 / 30) = 4 chunks even though 8 threads are allowed.
  ParallelFor(30, 100, [&](int64_t begin, int64_t end) {
    calls.fetch_add(1);
    covered.fetch_add(end - begin);
  });
  EXPECT_LE(calls.load(), 4);
  EXPECT_EQ(covered.load(), 100);
  // A range below the grain runs as one inline call.
  calls.store(0);
  ParallelFor(1000, 100, [&calls](int64_t begin, int64_t end) {
    calls.fetch_add(1);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 100);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, NestedCallsDegradeToSerialWithoutDeadlock) {
  // An inner ParallelFor issued from inside a chunk must run serially
  // instead of queueing behind its blocked parent on the shared pool. A
  // regression here deadlocks, which ctest's timeout converts to a failure.
  ThreadBudgetGuard guard;
  SetMaxThreads(4);
  std::atomic<int> total{0};
  ParallelFor(1, 4, [&total](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      ParallelFor(1, 100, [&total](int64_t b, int64_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 400);
}

TEST(ParallelForTest, ConcurrentCallersShareThePool) {
  // Multiple caller threads interleave their chunks on SharedPool(); each
  // call must still cover exactly its own range (per-call latch, not a
  // pool-global wait).
  ThreadBudgetGuard guard;
  SetMaxThreads(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr int kN = 256;
  std::vector<std::thread> callers;
  std::vector<int> failures(kCallers, 0);
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&failures, t] {
      std::vector<std::atomic<int>> counts(kN);
      for (int round = 0; round < kRounds; ++round) {
        for (auto& c : counts) c.store(0);
        ParallelFor(8, kN, [&counts](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            counts[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int i = 0; i < kN; ++i) {
          if (counts[i].load() != 1) ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(failures[t], 0) << "caller " << t;
  }
}

TEST(ParallelForTest, SetMaxThreadsRoundTrips) {
  ThreadBudgetGuard guard;
  SetMaxThreads(3);
  EXPECT_EQ(MaxThreads(), 3);
  SetMaxThreads(1);
  EXPECT_EQ(MaxThreads(), 1);
}

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeFixture() {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 300;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 31;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(2);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

core::TitvConfig SmallTitv(int input_dim) {
  core::TitvConfig config;
  config.input_dim = input_dim;
  config.rnn_dim = 6;
  config.film_dim = 6;
  config.seed = 7;
  return config;
}

TEST(DataParallelTest, MultiWorkerMatchesSingleWorkerTrajectory) {
  // With identical seeds and deterministic sharding, K-worker training
  // computes the same averaged gradient as 1-worker training, so the loss
  // trajectories must agree closely.
  Fixture f = MakeFixture();
  train::TrainConfig tc;
  tc.max_epochs = 3;
  tc.batch_size = 32;
  tc.patience = 10;
  tc.seed = 4;

  core::Titv single_model(SmallTitv(f.input_dim));
  DataParallelTrainer single(
      &single_model,
      [&] { return std::make_unique<core::Titv>(SmallTitv(f.input_dim)); },
      1);
  const ParallelTrainResult r1 = single.Fit(f.splits.train, f.splits.val, tc);

  core::Titv multi_model(SmallTitv(f.input_dim));
  DataParallelTrainer multi(
      &multi_model,
      [&] { return std::make_unique<core::Titv>(SmallTitv(f.input_dim)); },
      4);
  const ParallelTrainResult r4 = multi.Fit(f.splits.train, f.splits.val, tc);

  ASSERT_EQ(r1.val_loss.size(), r4.val_loss.size());
  for (size_t e = 0; e < r1.val_loss.size(); ++e) {
    EXPECT_NEAR(r1.val_loss[e], r4.val_loss[e], 5e-3)
        << "epoch " << e << " diverged between 1 and 4 workers";
  }
}

TEST(DataParallelTest, TrainingReducesLoss) {
  Fixture f = MakeFixture();
  train::TrainConfig tc;
  tc.max_epochs = 6;
  tc.batch_size = 32;
  tc.patience = 10;
  core::Titv model(SmallTitv(f.input_dim));
  DataParallelTrainer trainer(
      &model,
      [&] { return std::make_unique<core::Titv>(SmallTitv(f.input_dim)); },
      2);
  const ParallelTrainResult r = trainer.Fit(f.splits.train, f.splits.val, tc);
  EXPECT_LT(r.train_loss.back(), r.train_loss.front());
  EXPECT_GT(r.controlling_seconds, 0.0);
  EXPECT_LE(r.controlling_seconds, r.seconds);
}

TEST(ScalabilityModelTest, MoreWorkersNeverSlower) {
  double prev = ModeledConvergenceSeconds(10.0, 0.5, 1, 20);
  for (int workers : {2, 4, 8}) {
    const double t = ModeledConvergenceSeconds(10.0, 0.5, workers, 20);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(ScalabilityModelTest, ControllingCostBoundsSpeedup) {
  // As workers → ∞ the convergence time approaches epochs × controlling.
  const double t = ModeledConvergenceSeconds(10.0, 0.5, 1 << 20, 20);
  EXPECT_NEAR(t, 20 * 0.5, 1e-3);
}

TEST(ScalabilityModelTest, SubLinearSpeedupWhenControllingDominates) {
  // Small dataset: compute 1s/epoch, controlling 0.5s/epoch → speedup at 8
  // workers is far below 8× (the NUH-AKI panel of Figure 14).
  const double t1 = ModeledConvergenceSeconds(1.0, 0.5, 1, 10);
  const double t8 = ModeledConvergenceSeconds(1.0, 0.5, 8, 10);
  EXPECT_LT(t1 / t8, 3.0);
  // Large dataset: compute 20s/epoch → near-linear scaling (MIMIC panel).
  const double big1 = ModeledConvergenceSeconds(20.0, 0.5, 1, 10);
  const double big8 = ModeledConvergenceSeconds(20.0, 0.5, 8, 10);
  EXPECT_GT(big1 / big8, 5.0);
}

}  // namespace
}  // namespace parallel
}  // namespace tracer
