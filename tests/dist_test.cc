#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baselines/logistic_regression.h"
#include "datagen/emr_generator.h"
#include "dist/coordinator.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "fault/fault.h"
#include "train/trainer.h"

namespace tracer {
namespace dist {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Wire format

TEST(WireTest, PayloadScalarsAndVectorsRoundTrip) {
  PayloadWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF32(-0.0f);
  w.PutF32Vector({1.5f, -2.25f, 3.0f});
  const std::string payload = w.Take();

  PayloadReader r(payload);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f = 1.0f;
  std::vector<float> vec;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetF32(&f).ok());
  ASSERT_TRUE(r.GetF32Vector(&vec).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f, -0.0f);
  EXPECT_TRUE(std::signbit(f));  // bit-exact, not just equal
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(vec[1], -2.25f);
}

TEST(WireTest, TruncatedPayloadIsDataLoss) {
  PayloadWriter w;
  w.PutU32(7);
  const std::string payload = w.Take();
  PayloadReader r(payload);
  uint64_t u64 = 0;
  EXPECT_EQ(r.GetU64(&u64).code(), StatusCode::kDataLoss);
  // A length-prefixed vector whose prefix promises more than the payload
  // holds must fail, not allocate garbage.
  PayloadWriter w2;
  w2.PutU32(1000);  // claims 1000 floats, provides none
  const std::string lying = w2.Take();
  PayloadReader r2(lying);
  std::vector<float> vec;
  EXPECT_EQ(r2.GetF32Vector(&vec).code(), StatusCode::kDataLoss);
}

TEST(WireTest, FrameRoundTripsAndCrcCatchesCorruption) {
  Frame frame;
  frame.type = MsgType::kShardGrad;
  frame.payload = std::string("\x01\x02\x03\x04 gradient bytes", 19);
  const std::string encoded = EncodeFrame(frame);
  ASSERT_EQ(encoded.size(), kFrameHeaderBytes + frame.payload.size());

  MsgType type = MsgType::kAbort;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
  ASSERT_TRUE(
      DecodeFrameHeader(encoded.data(), &type, &payload_len, &crc).ok());
  EXPECT_EQ(type, MsgType::kShardGrad);
  ASSERT_EQ(payload_len, frame.payload.size());
  const std::string payload = encoded.substr(kFrameHeaderBytes);
  EXPECT_TRUE(VerifyFrame(type, payload, crc).ok());

  // Flip one payload bit: the CRC must reject it as kDataLoss.
  std::string corrupted = payload;
  corrupted[5] = static_cast<char>(corrupted[5] ^ 0x10);
  EXPECT_EQ(VerifyFrame(type, corrupted, crc).code(), StatusCode::kDataLoss);

  // Bad magic and absurd lengths are rejected at the header.
  std::string bad_magic = encoded;
  bad_magic[0] = 'X';
  EXPECT_EQ(
      DecodeFrameHeader(bad_magic.data(), &type, &payload_len, &crc).code(),
      StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Shard slicing

TEST(ShardSliceTest, SlicesPartitionTheBatchInOrder) {
  std::vector<int> batch;
  for (int i = 0; i < 11; ++i) batch.push_back(100 + i);
  for (const int shards : {1, 2, 3, 4, 11, 16}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::vector<int> joined;
    size_t max_size = 0;
    size_t min_size = batch.size();
    for (int s = 0; s < shards; ++s) {
      const std::vector<int> slice = data::ShardSlice(batch, s, shards);
      joined.insert(joined.end(), slice.begin(), slice.end());
      max_size = std::max(max_size, slice.size());
      min_size = std::min(min_size, slice.size());
    }
    // Concatenating the slices in shard order reproduces the batch
    // exactly — the partition is contiguous, ordered and complete.
    EXPECT_EQ(joined, batch);
    if (shards <= static_cast<int>(batch.size())) {
      EXPECT_LE(max_size - min_size, 1u);  // balanced
    }
  }
  // More shards than examples: trailing shards are empty, still a partition.
  const std::vector<int> tail = data::ShardSlice(batch, 15, 16);
  EXPECT_TRUE(tail.empty());
}

// ---------------------------------------------------------------------------
// Transport

TEST(TransportTest, FramesCrossAUnixSocketIntact) {
  const std::string path = TempPath("dist_transport.sock");
  UdsListener listener;
  ASSERT_TRUE(listener.Bind(path).ok());
  RetryPolicy retry;

  std::thread client([&] {
    Result<std::unique_ptr<Conn>> conn = ConnectUds(path, 5000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    PayloadWriter w;
    w.PutU64(42);
    w.PutF32Vector({1.0f, 2.0f});
    ASSERT_TRUE(conn.value()
                    ->SendFrame(MsgType::kShardGrad, w.Take(), retry)
                    .ok());
    // And a large frame: 100k floats exercises the chunked read path.
    PayloadWriter big;
    big.PutF32Vector(std::vector<float>(100000, 0.5f));
    ASSERT_TRUE(
        conn.value()->SendFrame(MsgType::kSnapshot, big.Take(), retry).ok());
  });

  Result<std::unique_ptr<Conn>> accepted = listener.Accept(5000);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  Frame frame;
  ASSERT_TRUE(accepted.value()->RecvFrame(&frame, 5000, retry).ok());
  EXPECT_EQ(frame.type, MsgType::kShardGrad);
  PayloadReader r(frame.payload);
  uint64_t step = 0;
  std::vector<float> vec;
  ASSERT_TRUE(r.GetU64(&step).ok());
  ASSERT_TRUE(r.GetF32Vector(&vec).ok());
  EXPECT_EQ(step, 42u);
  ASSERT_EQ(vec.size(), 2u);

  Frame big_frame;
  ASSERT_TRUE(accepted.value()->RecvFrame(&big_frame, 5000, retry).ok());
  PayloadReader r2(big_frame.payload);
  std::vector<float> big_vec;
  ASSERT_TRUE(r2.GetF32Vector(&big_vec).ok());
  EXPECT_EQ(big_vec.size(), 100000u);
  EXPECT_EQ(big_vec[99999], 0.5f);
  client.join();
}

TEST(TransportTest, RecvTimesOutAsDeadlineExceeded) {
  const std::string path = TempPath("dist_timeout.sock");
  UdsListener listener;
  ASSERT_TRUE(listener.Bind(path).ok());
  std::thread client([&] {
    Result<std::unique_ptr<Conn>> conn = ConnectUds(path, 5000);
    ASSERT_TRUE(conn.ok());
    // Connect and go silent; the server's recv must time out cleanly.
    Frame f;
    RetryPolicy no_retry;
    no_retry.max_attempts = 1;
    (void)conn.value()->RecvFrame(&f, 400, no_retry);
  });
  Result<std::unique_ptr<Conn>> accepted = listener.Accept(5000);
  ASSERT_TRUE(accepted.ok());
  Frame frame;
  RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  EXPECT_EQ(accepted.value()->RecvFrame(&frame, 100, no_retry).code(),
            StatusCode::kDeadlineExceeded);
  client.join();
}

TEST(TransportTest, CorruptBytesOnTheWireSurfaceAsDataLoss) {
  const std::string path = TempPath("dist_corrupt.sock");
  UdsListener listener;
  ASSERT_TRUE(listener.Bind(path).ok());
  std::thread client([&] {
    Result<std::unique_ptr<Conn>> conn = ConnectUds(path, 5000);
    ASSERT_TRUE(conn.ok());
    Frame frame;
    frame.type = MsgType::kReduced;
    frame.payload = "reduced gradient";
    std::string encoded = EncodeFrame(frame);
    encoded[kFrameHeaderBytes + 3] ^= 0x40;  // bit-flip inside the payload
    ASSERT_EQ(::send(conn.value()->fd(), encoded.data(), encoded.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(encoded.size()));
  });
  Result<std::unique_ptr<Conn>> accepted = listener.Accept(5000);
  ASSERT_TRUE(accepted.ok());
  Frame frame;
  RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  // kDataLoss, not a retryable transient: a corrupt gradient must never be
  // silently summed.
  EXPECT_EQ(accepted.value()->RecvFrame(&frame, 5000, no_retry).code(),
            StatusCode::kDataLoss);
  client.join();
}

TEST(TransportTest, InjectedTransportFaultsAreRetriedToSuccess) {
  auto& faults = fault::FaultRegistry::Global();
  // dist.send fails its first 2 hits then heals; the policy retries past.
  ASSERT_TRUE(faults.Configure("dist.send:1:2,dist.recv:1:2", 7).ok());
  const std::string path = TempPath("dist_fault.sock");
  UdsListener listener;
  ASSERT_TRUE(listener.Bind(path).ok());
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_us = 50;
  retry.jitter = true;
  retry.retryable = {StatusCode::kUnavailable};

  std::thread client([&] {
    Result<std::unique_ptr<Conn>> conn = ConnectUds(path, 5000);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        conn.value()->SendFrame(MsgType::kHeartbeat, "hb", retry).ok());
  });
  Result<std::unique_ptr<Conn>> accepted = listener.Accept(5000);
  ASSERT_TRUE(accepted.ok());
  Frame frame;
  ASSERT_TRUE(accepted.value()->RecvFrame(&frame, 5000, retry).ok());
  EXPECT_EQ(frame.type, MsgType::kHeartbeat);
  EXPECT_EQ(frame.payload, "hb");
  client.join();
  EXPECT_EQ(faults.FireCount("dist.send"), 2);
  EXPECT_EQ(faults.FireCount("dist.recv"), 2);
  faults.Clear();
}

// ---------------------------------------------------------------------------
// End-to-end in-process data-parallel training

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

Fixture MakeFixture() {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 160;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

baselines::LogisticRegression MakeModel(const Fixture& f) {
  return baselines::LogisticRegression(
      f.input_dim, baselines::LrInputMode::kAggregate, 0, /*seed=*/9);
}

train::TrainConfig MakeConfig() {
  train::TrainConfig tc;
  tc.max_epochs = 3;
  tc.patience = 10;
  tc.batch_size = 32;
  tc.seed = 11;
  return tc;
}

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_TRUE(a[t].SameShape(b[t])) << "tensor " << t;
    for (int64_t i = 0; i < a[t].size(); ++i) {
      ASSERT_EQ(a[t].data()[i], b[t].data()[i])
          << "tensor " << t << " element " << i;
    }
  }
}

struct WorkerOut {
  Status status = Status::OK();
  std::vector<Tensor> state;
  std::vector<double> train_loss;
};

/// Runs `world` workers against a coordinator, all in this process (each
/// worker on its own thread with its own model replica). Returns one
/// WorkerOut per worker.
std::vector<WorkerOut> RunEnsemble(const Fixture& f,
                                   const train::TrainConfig& tc,
                                   DistConfig dc, const std::string& tag) {
  dc.socket_path = TempPath("dist_" + tag + ".sock");
  Coordinator coordinator(dc);
  Status started = coordinator.Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  std::vector<WorkerOut> outs(static_cast<size_t>(dc.world_size));
  std::vector<std::thread> threads;
  for (int wi = 0; wi < dc.world_size; ++wi) {
    threads.emplace_back([&, wi] {
      DistConfig mine = dc;
      mine.run_state_path = TempPath("dist_" + tag + "_w" +
                                     std::to_string(wi) + ".runstate");
      std::remove(mine.run_state_path.c_str());
      baselines::LogisticRegression model = MakeModel(f);
      Result<train::TrainResult> res = RunElasticWorker(
          &model, f.splits.train, f.splits.val, tc,
          train::CheckpointOptions{}, mine);
      WorkerOut& out = outs[static_cast<size_t>(wi)];
      if (res.ok()) {
        out.status = res.value().status;
        out.train_loss = res.value().train_loss;
      } else {
        out.status = res.status();
      }
      out.state = model.StateDict();
      std::remove(mine.run_state_path.c_str());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(coordinator.WaitForCompletion(30000));
  EXPECT_TRUE(coordinator.run_status().ok())
      << coordinator.run_status().ToString();
  coordinator.Stop();
  return outs;
}

TEST(DistTrainTest, SingleWorkerSingleShardMatchesLocalTrainingBitwise) {
  const Fixture f = MakeFixture();
  const train::TrainConfig tc = MakeConfig();
  baselines::LogisticRegression local = MakeModel(f);
  const train::TrainResult local_result =
      train::Fit(&local, f.splits.train, f.splits.val, tc);

  DistConfig dc;
  dc.world_size = 1;
  dc.num_shards = 1;
  const std::vector<WorkerOut> outs = RunEnsemble(f, tc, dc, "w1s1");
  ASSERT_TRUE(outs[0].status.ok()) << outs[0].status.ToString();
  // One shard means the reduction is 1.0f * g — the distributed run is the
  // local run, bit for bit.
  ExpectBitIdentical(outs[0].state, local.StateDict());
  ASSERT_EQ(outs[0].train_loss.size(), local_result.train_loss.size());
  for (size_t i = 0; i < local_result.train_loss.size(); ++i) {
    EXPECT_EQ(outs[0].train_loss[i], local_result.train_loss[i]);
  }
}

TEST(DistTrainTest, WorldSizeIsInvisibleToTheMathForAFixedShardCount) {
  const Fixture f = MakeFixture();
  const train::TrainConfig tc = MakeConfig();

  DistConfig one;
  one.world_size = 1;
  one.num_shards = 4;
  const std::vector<WorkerOut> single = RunEnsemble(f, tc, one, "w1s4");
  ASSERT_TRUE(single[0].status.ok()) << single[0].status.ToString();

  DistConfig two;
  two.world_size = 2;
  two.num_shards = 4;
  const std::vector<WorkerOut> pair = RunEnsemble(f, tc, two, "w2s4");
  ASSERT_TRUE(pair[0].status.ok()) << pair[0].status.ToString();
  ASSERT_TRUE(pair[1].status.ok()) << pair[1].status.ToString();

  // The determinism contract: for a fixed shard count the reduced
  // gradients — and therefore the full parameter trajectory — are bitwise
  // invariant to how many workers computed them.
  ExpectBitIdentical(pair[0].state, single[0].state);
  // And lockstep replication: both workers end with identical parameters.
  ExpectBitIdentical(pair[0].state, pair[1].state);
  ASSERT_EQ(pair[0].train_loss.size(), single[0].train_loss.size());
  for (size_t i = 0; i < single[0].train_loss.size(); ++i) {
    EXPECT_EQ(pair[0].train_loss[i], single[0].train_loss[i]);
    EXPECT_EQ(pair[1].train_loss[i], single[0].train_loss[i]);
  }
}

TEST(DistTrainTest, TransportFaultStormDoesNotChangeTheResult) {
  const Fixture f = MakeFixture();
  train::TrainConfig tc = MakeConfig();
  tc.max_epochs = 2;

  DistConfig dc;
  dc.world_size = 2;
  dc.num_shards = 4;
  const std::vector<WorkerOut> calm = RunEnsemble(f, tc, dc, "calm");
  ASSERT_TRUE(calm[0].status.ok()) << calm[0].status.ToString();

  // Low-probability transient faults on every dist fault point: retries
  // (send/recv) and heartbeat tolerance must absorb them with zero effect
  // on the arithmetic.
  auto& faults = fault::FaultRegistry::Global();
  ASSERT_TRUE(
      faults
          .Configure("dist.send:0.02:0,dist.recv:0.02:0,dist.heartbeat:0.05:0",
                     1234)
          .ok());
  const std::vector<WorkerOut> stormy = RunEnsemble(f, tc, dc, "storm");
  faults.Clear();
  ASSERT_TRUE(stormy[0].status.ok()) << stormy[0].status.ToString();
  ASSERT_TRUE(stormy[1].status.ok()) << stormy[1].status.ToString();
  ExpectBitIdentical(stormy[0].state, calm[0].state);
  ExpectBitIdentical(stormy[1].state, calm[0].state);
}

}  // namespace
}  // namespace dist
}  // namespace tracer
