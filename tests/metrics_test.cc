#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/metrics.h"

namespace tracer {
namespace metrics {
namespace {

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(Auc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, PerfectInversion) {
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.2f, 0.8f, 0.9f}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, KnownPartialOrdering) {
  // pos scores {0.8, 0.3}, neg {0.5, 0.1}: pairs won = (0.8>0.5, 0.8>0.1,
  // 0.3<0.5, 0.3>0.1) = 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.8f, 0.3f, 0.5f, 0.1f}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, InvariantToMonotonicTransform) {
  Rng rng(1);
  std::vector<float> scores, labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  // Ensure both classes.
  labels[0] = 1.0f;
  labels[1] = 0.0f;
  std::vector<float> transformed(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    transformed[i] = std::exp(3.0f * scores[i]);  // strictly increasing
  }
  EXPECT_NEAR(Auc(scores, labels), Auc(transformed, labels), 1e-9);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(2);
  std::vector<float> scores, labels;
  for (int i = 0; i < 5000; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(Auc(scores, labels), 0.5, 0.03);
}

TEST(AucDeathTest, SingleClassUndefined) {
  EXPECT_DEATH(Auc({0.5f, 0.6f}, {1, 1}), "both classes");
}

TEST(CelTest, MatchesManualComputation) {
  const double expected =
      0.5 * (-std::log(0.8) - std::log(1.0 - 0.3));
  EXPECT_NEAR(CrossEntropyLoss({0.8f, 0.3f}, {1, 0}), expected, 1e-7);
}

TEST(CelTest, ClampsExtremeProbabilities) {
  const double cel = CrossEntropyLoss({1.0f, 0.0f}, {0, 1});
  EXPECT_TRUE(std::isfinite(cel));
  EXPECT_GT(cel, 10.0);  // very wrong, but finite
}

TEST(RegressionMetricsTest, RmseMae) {
  EXPECT_DOUBLE_EQ(Rmse({1.0f, 2.0f}, {1.0f, 4.0f}), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Mae({1.0f, 2.0f}, {1.0f, 4.0f}), 1.0);
  EXPECT_DOUBLE_EQ(Rmse({3.0f}, {3.0f}), 0.0);
}

TEST(AccuracyTest, ThresholdBehaviour) {
  EXPECT_DOUBLE_EQ(Accuracy({0.9f, 0.1f}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0.9f, 0.1f}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({0.6f, 0.6f}, {1, 0}, 0.7f), 0.5);
}

TEST(ConfusionTest, CountsAndDerivedRates) {
  const Confusion c =
      ConfusionAt({0.9f, 0.8f, 0.2f, 0.6f}, {1, 0, 0, 1}, 0.5f);
  EXPECT_EQ(c.true_positive, 2);
  EXPECT_EQ(c.false_positive, 1);
  EXPECT_EQ(c.true_negative, 1);
  EXPECT_EQ(c.false_negative, 0);
  EXPECT_NEAR(c.Precision(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_NEAR(c.F1(), 0.8, 1e-9);
}

TEST(ConfusionTest, EmptyDenominatorsAreZero) {
  const Confusion c = ConfusionAt({0.1f}, {0}, 0.5f);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(EceTest, PerfectCalibrationIsNearZero) {
  // In each bin, confidence equals empirical accuracy.
  std::vector<float> probs, labels;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const float p = static_cast<float>(rng.Uniform());
    probs.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1.0f : 0.0f);
  }
  EXPECT_LT(ExpectedCalibrationError(probs, labels, 10), 0.02);
}

TEST(EceTest, OverconfidenceDetected) {
  std::vector<float> probs(1000, 0.95f);
  std::vector<float> labels(1000, 0.0f);
  for (int i = 0; i < 500; ++i) labels[i] = 1.0f;  // true rate 0.5
  EXPECT_NEAR(ExpectedCalibrationError(probs, labels, 10), 0.45, 1e-6);
}

TEST(SummarizeTest, MeanAndStd) {
  const MeanStd s = Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
  const MeanStd single = Summarize({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
}


TEST(PrAucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(PrAuc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(PrAucTest, WorstRankingApproachesBaseRate) {
  // All positives ranked last: AP = mean over positives of k_pos/rank.
  // pos at ranks 3,4 of 4: AP = (1/3 + 2/4)/2 = 0.4166...
  EXPECT_NEAR(PrAuc({0.9f, 0.8f, 0.2f, 0.1f}, {0, 0, 1, 1}), 5.0 / 12.0,
              1e-9);
}

TEST(PrAucTest, SinglePositiveAtTop) {
  EXPECT_DOUBLE_EQ(PrAuc({0.9f, 0.5f, 0.1f}, {1, 0, 0}), 1.0);
}

TEST(PrAucTest, RandomScoresNearBaseRate) {
  Rng rng(5);
  std::vector<float> scores, labels;
  for (int i = 0; i < 8000; ++i) {
    scores.push_back(static_cast<float>(rng.Uniform()));
    labels.push_back(rng.Bernoulli(0.2) ? 1.0f : 0.0f);
  }
  EXPECT_NEAR(PrAuc(scores, labels), 0.2, 0.03);
}

TEST(PrAucDeathTest, NoPositivesUndefined) {
  EXPECT_DEATH(PrAuc({0.5f, 0.6f}, {0, 0}), "positives");
}

TEST(BrierTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(BrierScore({1.0f, 0.0f}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.0f, 1.0f}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(BrierScore({0.5f, 0.5f}, {1, 0}), 0.25);
}

// Property sweep: AUC of a noisy-but-informative score should rise with the
// signal-to-noise ratio.
class AucMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(AucMonotoneTest, SignalRaisesAuc) {
  const double signal = GetParam();
  Rng rng(42);
  std::vector<float> scores, labels;
  for (int i = 0; i < 4000; ++i) {
    const bool y = rng.Bernoulli(0.5);
    labels.push_back(y ? 1.0f : 0.0f);
    scores.push_back(
        static_cast<float>(signal * (y ? 1.0 : 0.0) + rng.Normal()));
  }
  const double auc = Auc(scores, labels);
  if (signal == 0.0) {
    EXPECT_NEAR(auc, 0.5, 0.05);
  } else if (signal >= 2.0) {
    EXPECT_GT(auc, 0.85);
  } else {
    EXPECT_GT(auc, 0.55);
  }
}

INSTANTIATE_TEST_SUITE_P(SignalLevels, AucMonotoneTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace metrics
}  // namespace tracer
