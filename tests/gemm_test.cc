// Exactness and determinism tests for the compute-kernel layer
// (src/tensor/gemm.h). The contract under test: for a given build, the
// blocked kernel is bit-identical to the naive reference for every shape,
// every transpose variant and every thread count — see DESIGN.md
// "Compute kernels".

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.h"
#include "tensor/gemm.h"

namespace tracer {
namespace gemm {
namespace {

/// Deterministic pseudo-random fill in [-1, 1); plain LCG so the fixture has
/// no dependency on the tensor layer the kernels sit beneath.
void FillPseudo(std::vector<float>* v, uint32_t seed) {
  uint32_t state = seed * 2654435761u + 12345u;
  for (float& x : *v) {
    state = state * 1664525u + 1013904223u;
    x = static_cast<float>(state >> 8) * (2.0f / 16777216.0f) - 1.0f;
  }
}

struct Shape {
  int m, n, k;
};

/// Square, tails (non-multiple of every block/tile size), single row/col,
/// TITV-like skinny, and degenerate-dimension shapes.
const Shape kShapeGrid[] = {
    {1, 1, 1},     {4, 8, 16},    {5, 7, 9},      {37, 33, 41},
    {64, 48, 76},  {64, 16, 64},  {128, 128, 128}, {129, 65, 33},
    {1, 64, 64},   {64, 1, 64},   {64, 64, 1},    {3, 130, 5},
    {130, 3, 257}, {96, 72, 300},
};

const Variant kVariants[] = {Variant::kNN, Variant::kTN, Variant::kNT};

class ThreadBudgetGuard {
 public:
  ThreadBudgetGuard() : prev_(parallel::MaxThreads()) {}
  ~ThreadBudgetGuard() { parallel::SetMaxThreads(prev_); }

 private:
  int prev_;
};

TEST(GemmTest, BlockedMatchesNaiveBitwiseAcrossShapeGrid) {
  ThreadBudgetGuard guard;
  parallel::SetMaxThreads(4);
  for (const Shape& s : kShapeGrid) {
    // Element counts are variant-independent: op(A) is m×k and op(B) is k×n,
    // so A always holds m·k values and B holds k·n.
    std::vector<float> a(static_cast<size_t>(s.m) * s.k);
    std::vector<float> b(static_cast<size_t>(s.k) * s.n);
    std::vector<float> c0(static_cast<size_t>(s.m) * s.n);
    FillPseudo(&a, 11u * s.m + s.k);
    FillPseudo(&b, 13u * s.n + s.k);
    FillPseudo(&c0, 17u * s.m + s.n);  // nonzero seed: += must root at C
    for (const Variant v : kVariants) {
      std::vector<float> c_naive = c0;
      std::vector<float> c_blocked = c0;
      GemmNaive(v, s.m, s.n, s.k, a.data(), b.data(), c_naive.data());
      GemmBlocked(v, s.m, s.n, s.k, a.data(), b.data(), c_blocked.data());
      EXPECT_EQ(std::memcmp(c_naive.data(), c_blocked.data(),
                            c_naive.size() * sizeof(float)),
                0)
          << "variant " << static_cast<int>(v) << " shape " << s.m << "x"
          << s.n << "x" << s.k;
    }
  }
}

TEST(GemmTest, ZeroSizedDimsAreNoOps) {
  std::vector<float> a(64), b(64);
  FillPseudo(&a, 1);
  FillPseudo(&b, 2);
  // m == 0 / n == 0: C is empty; must not touch memory or crash.
  for (const Variant v : kVariants) {
    Gemm(v, 0, 8, 8, a.data(), b.data(), nullptr);
    Gemm(v, 8, 0, 8, a.data(), b.data(), nullptr);
  }
  // k == 0: C has elements but the k-chain is empty, so C is left untouched.
  std::vector<float> c(8 * 8);
  FillPseudo(&c, 3);
  const std::vector<float> before = c;
  for (const Variant v : kVariants) {
    GemmNaive(v, 8, 8, 0, a.data(), b.data(), c.data());
    GemmBlocked(v, 8, 8, 0, a.data(), b.data(), c.data());
  }
  EXPECT_EQ(std::memcmp(c.data(), before.data(), c.size() * sizeof(float)),
            0);
  // Batched degenerate dims: batch == 0 and k == 0 leave C untouched.
  for (const Variant v : kVariants) {
    BatchGemm(v, 0, 8, 8, 8, a.data(), 64, b.data(), 64, c.data(), 64);
    BatchGemm(v, 2, 8, 8, 0, a.data(), 0, b.data(), 0, c.data(), 64);
  }
  EXPECT_EQ(std::memcmp(c.data(), before.data(), c.size() * sizeof(float)),
            0);
}

TEST(GemmTest, BlockedIsBitIdenticalAcrossThreadCounts) {
  ThreadBudgetGuard guard;
  // Large enough that ParallelFor actually splits (several MR row units per
  // chunk at every budget below).
  const Shape s{512, 96, 96};
  std::vector<float> a(static_cast<size_t>(s.m) * s.k);
  std::vector<float> b(static_cast<size_t>(s.k) * s.n);
  std::vector<float> c0(static_cast<size_t>(s.m) * s.n);
  FillPseudo(&a, 101);
  FillPseudo(&b, 202);
  FillPseudo(&c0, 303);
  for (const Variant v : kVariants) {
    parallel::SetMaxThreads(1);
    std::vector<float> reference = c0;
    GemmBlocked(v, s.m, s.n, s.k, a.data(), b.data(), reference.data());
    for (const int threads : {2, 3, 4, 8}) {
      parallel::SetMaxThreads(threads);
      std::vector<float> c = c0;
      GemmBlocked(v, s.m, s.n, s.k, a.data(), b.data(), c.data());
      EXPECT_EQ(std::memcmp(c.data(), reference.data(),
                            c.size() * sizeof(float)),
                0)
          << "variant " << static_cast<int>(v) << " at " << threads
          << " threads";
    }
  }
}

TEST(GemmTest, AccumulatesIntoExistingC) {
  // Two calls into the same C must equal one call into a doubled copy —
  // i.e. the kernels genuinely C += and never zero the output.
  const Shape s{12, 10, 9};
  std::vector<float> a(static_cast<size_t>(s.m) * s.k);
  std::vector<float> b(static_cast<size_t>(s.k) * s.n);
  std::vector<float> c(static_cast<size_t>(s.m) * s.n, 0.0f);
  FillPseudo(&a, 5);
  FillPseudo(&b, 6);
  GemmNaive(Variant::kNN, s.m, s.n, s.k, a.data(), b.data(), c.data());
  const std::vector<float> once = c;
  GemmNaive(Variant::kNN, s.m, s.n, s.k, a.data(), b.data(), c.data());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NE(c[i], once[i]) << "second call did not accumulate at " << i;
  }
}

TEST(GemmTest, ChooseKernelHeuristicAndEnvOverride) {
  // Guard against a stale cached value from another test.
  unsetenv("TRACER_GEMM");
  ReloadKernelEnvForTesting();
  // Small problems and single rows stay on the reference kernel; large
  // batched problems go blocked.
  EXPECT_EQ(ChooseKernel(8, 8, 8), Kernel::kNaive);
  EXPECT_EQ(ChooseKernel(1, 512, 512), Kernel::kNaive);  // serve row path
  EXPECT_EQ(ChooseKernel(256, 256, 256), Kernel::kBlocked);

  // The kNT variant (backward input gradients) blocks from two rows up:
  // its naive kernel is an unvectorizable dot reduction, so only the
  // single-row shape keeps the reference kernel.
  EXPECT_EQ(ChooseKernel(1, 512, 512, Variant::kNT), Kernel::kNaive);
  EXPECT_EQ(ChooseKernel(2, 512, 512, Variant::kNT), Kernel::kBlocked);
  EXPECT_EQ(ChooseKernel(4, 128, 128, Variant::kNT), Kernel::kBlocked);
  EXPECT_EQ(ChooseKernel(4, 128, 128, Variant::kNN), Kernel::kNaive);
  EXPECT_EQ(ChooseKernel(4, 128, 128, Variant::kTN), Kernel::kNaive);
  // Volume floor still applies to kNT.
  EXPECT_EQ(ChooseKernel(2, 32, 32, Variant::kNT), Kernel::kNaive);

  setenv("TRACER_GEMM", "naive", 1);
  ReloadKernelEnvForTesting();
  EXPECT_EQ(ChooseKernel(256, 256, 256), Kernel::kNaive);

  setenv("TRACER_GEMM", "blocked", 1);
  ReloadKernelEnvForTesting();
  EXPECT_EQ(ChooseKernel(8, 8, 8), Kernel::kBlocked);

  setenv("TRACER_GEMM", "auto", 1);
  ReloadKernelEnvForTesting();
  EXPECT_EQ(ChooseKernel(8, 8, 8), Kernel::kNaive);
  EXPECT_EQ(ChooseKernel(256, 256, 256), Kernel::kBlocked);

  unsetenv("TRACER_GEMM");
  ReloadKernelEnvForTesting();
}

TEST(GemmTest, ConcurrentCallersOverSharedPoolStayExact) {
  // TSan hammer: several caller threads run blocked GEMMs simultaneously,
  // so their ParallelFor chunks interleave on the shared pool. Each caller
  // owns its C, so every result must still match the serial reference.
  ThreadBudgetGuard guard;
  parallel::SetMaxThreads(4);
  const Shape s{256, 64, 64};  // big enough to split into multiple chunks
  std::vector<float> a(static_cast<size_t>(s.m) * s.k);
  std::vector<float> b(static_cast<size_t>(s.k) * s.n);
  FillPseudo(&a, 7);
  FillPseudo(&b, 8);
  std::vector<float> reference(static_cast<size_t>(s.m) * s.n, 0.0f);
  GemmNaive(Variant::kNN, s.m, s.n, s.k, a.data(), b.data(),
            reference.data());

  constexpr int kCallers = 4;
  constexpr int kRounds = 16;
  std::vector<int> mismatches(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      std::vector<float> c(static_cast<size_t>(s.m) * s.n);
      for (int round = 0; round < kRounds; ++round) {
        std::fill(c.begin(), c.end(), 0.0f);
        GemmBlocked(Variant::kNN, s.m, s.n, s.k, a.data(), b.data(),
                    c.data());
        if (std::memcmp(c.data(), reference.data(),
                        c.size() * sizeof(float)) != 0) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "caller " << t;
  }
}

TEST(GemmTest, FlopCountIsTwoMnk) {
  EXPECT_EQ(FlopCount(2, 3, 4), 48);
  EXPECT_EQ(FlopCount(0, 3, 4), 0);
  EXPECT_EQ(FlopCount(1024, 1024, 1024), 2LL * 1024 * 1024 * 1024);
}

struct BatchShape {
  int batch, m, n, k;
};

/// Batched layouts the autograd ops actually emit: broadcast-B forward
/// (b_stride 0), per-slice B, reducing kTN weight gradient (c_stride 0),
/// plus skinny per-slice shapes where only the batch supplies the rows.
const BatchShape kBatchGrid[] = {
    {1, 5, 7, 9},   {4, 8, 8, 8},    {7, 3, 33, 5},
    {16, 4, 24, 12}, {3, 37, 17, 29}, {32, 2, 48, 48},
};

/// Definitional reference: one 2-D Gemm per slice, same kernel.
void SliceLoop(Variant v, const BatchShape& s, const float* a,
               int64_t a_stride, const float* b, int64_t b_stride, float* c,
               int64_t c_stride, Kernel kernel) {
  for (int i = 0; i < s.batch; ++i) {
    Gemm(v, s.m, s.n, s.k, a + i * a_stride, b + i * b_stride,
         c + i * c_stride, kernel);
  }
}

TEST(GemmTest, BatchGemmMatchesSliceLoopBitwise) {
  ThreadBudgetGuard guard;
  parallel::SetMaxThreads(4);
  for (const BatchShape& s : kBatchGrid) {
    std::vector<float> a(static_cast<size_t>(s.batch) * s.m * s.k);
    std::vector<float> b(static_cast<size_t>(s.batch) * s.k * s.n);
    std::vector<float> c0(static_cast<size_t>(s.batch) * s.m * s.n);
    FillPseudo(&a, 19u * s.batch + s.m);
    FillPseudo(&b, 23u * s.n + s.k);
    FillPseudo(&c0, 29u * s.batch + s.n);
    const int64_t am = static_cast<int64_t>(s.m) * s.k;
    const int64_t bm = static_cast<int64_t>(s.k) * s.n;
    const int64_t cm = static_cast<int64_t>(s.m) * s.n;
    for (const Variant v : kVariants) {
      for (const Kernel kernel :
           {Kernel::kAuto, Kernel::kNaive, Kernel::kBlocked}) {
        // Per-slice B (general layout).
        std::vector<float> c_batch = c0, c_loop = c0;
        BatchGemm(v, s.batch, s.m, s.n, s.k, a.data(), am, b.data(), bm,
                  c_batch.data(), cm, kernel);
        SliceLoop(v, s, a.data(), am, b.data(), bm, c_loop.data(), cm,
                  kernel);
        EXPECT_EQ(std::memcmp(c_batch.data(), c_loop.data(),
                              c_batch.size() * sizeof(float)),
                  0)
            << "per-slice B, variant " << static_cast<int>(v);
        // Broadcast B (the forward collapse path).
        c_batch = c0;
        c_loop = c0;
        BatchGemm(v, s.batch, s.m, s.n, s.k, a.data(), am, b.data(), 0,
                  c_batch.data(), cm, kernel);
        SliceLoop(v, s, a.data(), am, b.data(), 0, c_loop.data(), cm,
                  kernel);
        EXPECT_EQ(std::memcmp(c_batch.data(), c_loop.data(),
                              c_batch.size() * sizeof(float)),
                  0)
            << "broadcast B, variant " << static_cast<int>(v);
      }
    }
    // Reducing kTN (the broadcast-weight gradient): every slice accumulates
    // into one k×n output, and the K-stacked collapse must walk the exact
    // same per-element chain as the slice loop.
    std::vector<float> cr0(static_cast<size_t>(s.k) * s.n);
    FillPseudo(&cr0, 31u * s.k + s.n);
    for (const Kernel kernel :
         {Kernel::kAuto, Kernel::kNaive, Kernel::kBlocked}) {
      std::vector<float> c_batch = cr0, c_loop = cr0;
      // kTN: per-slice op(A) is k×m → problem (m'=k, n'=n, k'=m) with
      // operands A slice m×k, B slice m×n. Reuse a as A (stride m·k) and
      // c0's worth of data as B (stride m·n).
      BatchGemm(Variant::kTN, s.batch, s.k, s.n, s.m, a.data(), am,
                c0.data(), cm, c_batch.data(), 0, kernel);
      for (int i = 0; i < s.batch; ++i) {
        Gemm(Variant::kTN, s.k, s.n, s.m, a.data() + i * am,
             c0.data() + i * cm, c_loop.data(), kernel);
      }
      EXPECT_EQ(std::memcmp(c_batch.data(), c_loop.data(),
                            c_batch.size() * sizeof(float)),
                0)
          << "reducing kTN, batch " << s.batch;
    }
  }
}

TEST(GemmTest, BatchGemmBitIdenticalAcrossThreadCountsAndKernelEnv) {
  ThreadBudgetGuard guard;
  // Skinny slices, large batch: per-slice the heuristic would go naive,
  // stacked it goes blocked — exactly the shape class whose bits must not
  // depend on that choice or on the thread budget.
  const BatchShape s{48, 4, 64, 64};
  std::vector<float> a(static_cast<size_t>(s.batch) * s.m * s.k);
  std::vector<float> b(static_cast<size_t>(s.k) * s.n);
  std::vector<float> c0(static_cast<size_t>(s.batch) * s.m * s.n);
  FillPseudo(&a, 41);
  FillPseudo(&b, 43);
  FillPseudo(&c0, 47);
  const int64_t am = static_cast<int64_t>(s.m) * s.k;
  const int64_t cm = static_cast<int64_t>(s.m) * s.n;
  unsetenv("TRACER_GEMM");
  ReloadKernelEnvForTesting();
  parallel::SetMaxThreads(1);
  std::vector<float> reference = c0;
  BatchGemm(Variant::kNN, s.batch, s.m, s.n, s.k, a.data(), am, b.data(),
            0, reference.data(), cm);
  for (const char* env : {"naive", "blocked", "auto"}) {
    setenv("TRACER_GEMM", env, 1);
    ReloadKernelEnvForTesting();
    for (const int threads : {1, 2, 4, 8}) {
      parallel::SetMaxThreads(threads);
      std::vector<float> c = c0;
      BatchGemm(Variant::kNN, s.batch, s.m, s.n, s.k, a.data(), am,
                b.data(), 0, c.data(), cm);
      EXPECT_EQ(std::memcmp(c.data(), reference.data(),
                            c.size() * sizeof(float)),
                0)
          << "TRACER_GEMM=" << env << " at " << threads << " threads";
    }
  }
  unsetenv("TRACER_GEMM");
  ReloadKernelEnvForTesting();
}

TEST(GemmTest, BatchedChooseKernelJudgesStackedShape) {
  unsetenv("TRACER_GEMM");
  ReloadKernelEnvForTesting();
  // Per-slice the TITV attention projection is skinny (m = 4 < 8) and
  // small (4·64·64 < 32768): naive. Stacked over the sequence it is one
  // 256-row problem: blocked.
  EXPECT_EQ(ChooseKernel(4, 64, 64), Kernel::kNaive);
  EXPECT_EQ(ChooseKernel(/*batch=*/64, 4, 64, 64), Kernel::kBlocked);
  // A batch of scalar rows still isn't worth packing.
  EXPECT_EQ(ChooseKernel(/*batch=*/4, 1, 8, 8), Kernel::kNaive);
  // Env override flows through the batched overload too.
  setenv("TRACER_GEMM", "naive", 1);
  ReloadKernelEnvForTesting();
  EXPECT_EQ(ChooseKernel(/*batch=*/64, 4, 64, 64), Kernel::kNaive);
  unsetenv("TRACER_GEMM");
  ReloadKernelEnvForTesting();
}

}  // namespace
}  // namespace gemm
}  // namespace tracer
