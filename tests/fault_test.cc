#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "datagen/emr_generator.h"
#include "fault/fault.h"
#include "nn/serialization.h"
#include "pipeline/emr_pipeline.h"
#include "tensor/tensor.h"

namespace tracer {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Restores a pristine (disarmed) registry around each test so armed faults
/// never leak into neighbouring tests in this binary.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultRegistry::Global().Clear(); }
};

TEST_F(FaultRegistryTest, DisarmedByDefaultAndZeroFires) {
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  reg.Clear();
  EXPECT_FALSE(reg.Armed());
  EXPECT_FALSE(TRACER_FAULT_POINT("ckpt.write"));
  EXPECT_EQ(reg.TotalFired(), 0);
  EXPECT_EQ(reg.FireCount("ckpt.write"), 0);
}

TEST_F(FaultRegistryTest, ConfigureValidatesSpecs) {
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  EXPECT_TRUE(reg.Configure("ckpt.write:0.5:0").ok());
  EXPECT_TRUE(reg.Armed());
  EXPECT_TRUE(reg.Configure("ckpt.write:1:3,serve.score:0.25:10").ok());

  // Unknown point names, malformed fields and out-of-range values are all
  // rejected — and rejection must leave the previous configuration armed.
  EXPECT_EQ(reg.Configure("no.such.point:1:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("ckpt.write:1.5:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("ckpt.write:-0.1:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("ckpt.write:1:-2").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("ckpt.write:1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reg.Configure("ckpt.write:x:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(reg.Armed()) << "failed Configure must not disarm";

  // Empty spec disarms.
  EXPECT_TRUE(reg.Configure("").ok());
  EXPECT_FALSE(reg.Armed());
}

TEST_F(FaultRegistryTest, KnownPointsAreSortedAndNonEmpty) {
  const std::vector<std::string>& points =
      fault::FaultRegistry::KnownPoints();
  ASSERT_FALSE(points.empty());
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  EXPECT_NE(std::find(points.begin(), points.end(), "ckpt.write"),
            points.end());
  EXPECT_NE(std::find(points.begin(), points.end(), "serve.score"),
            points.end());
}

TEST_F(FaultRegistryTest, CountBudgetFiresExactlyNThenHeals) {
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  ASSERT_TRUE(reg.Configure("ckpt.write:1:5").ok());
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (TRACER_FAULT_POINT("ckpt.write")) ++fired;
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(reg.FireCount("ckpt.write"), 5);
  EXPECT_EQ(reg.TotalFired(), 5);
  // Other points stay untouched.
  EXPECT_FALSE(TRACER_FAULT_POINT("serve.score"));
  EXPECT_EQ(reg.FireCount("serve.score"), 0);
}

TEST_F(FaultRegistryTest, SameSeedSameFirePattern) {
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  const auto draw_pattern = [&](uint64_t seed) {
    EXPECT_TRUE(reg.Configure("ckpt.write:0.3:0", seed).ok());
    std::vector<bool> pattern;
    pattern.reserve(200);
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(TRACER_FAULT_POINT("ckpt.write"));
    }
    return pattern;
  };
  const std::vector<bool> a = draw_pattern(7);
  const std::vector<bool> b = draw_pattern(7);
  const std::vector<bool> c = draw_pattern(8);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fire pattern";
  EXPECT_NE(a, c) << "different seeds must diverge";
  const int fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 20);   // ~60 expected at p=0.3
  EXPECT_LT(fires, 120);
}

TEST_F(FaultRegistryTest, ClearDisarms) {
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  ASSERT_TRUE(reg.Configure("ckpt.write:1:0").ok());
  EXPECT_TRUE(TRACER_FAULT_POINT("ckpt.write"));
  reg.Clear();
  EXPECT_FALSE(reg.Armed());
  EXPECT_FALSE(TRACER_FAULT_POINT("ckpt.write"));
  EXPECT_EQ(reg.TotalFired(), 0);
}

// ---------------------------------------------------------------------------
// common/retry.h

TEST(RetryPolicyTest, BackoffScheduleIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_us = 1000;
  policy.multiplier = 2.0;
  policy.max_backoff_us = 6000;
  EXPECT_EQ(policy.BackoffUs(0), 1000u);
  EXPECT_EQ(policy.BackoffUs(1), 2000u);
  EXPECT_EQ(policy.BackoffUs(2), 4000u);
  EXPECT_EQ(policy.BackoffUs(3), 6000u);  // capped
  EXPECT_EQ(policy.BackoffUs(4), 6000u);

  // CallWithRetry must sleep exactly that schedule between attempts.
  std::vector<uint64_t> slept;
  int calls = 0;
  const Status status = CallWithRetry(
      policy,
      [&] {
        ++calls;
        return Status::Unavailable("transient");
      },
      [&](uint64_t us) { slept.push_back(us); });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 6);
  EXPECT_EQ(slept,
            (std::vector<uint64_t>{1000, 2000, 4000, 6000, 6000}));
}

TEST(RetryPolicyTest, NonRetryableCodesFailFast) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  std::vector<uint64_t> slept;
  const Status status = CallWithRetry(
      policy,
      [&] {
        ++calls;
        return Status::DataLoss("corrupt container");
      },
      [&](uint64_t us) { slept.push_back(us); });
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1) << "kDataLoss is not retryable: re-reading a corrupt "
                         "file cannot heal it";
  EXPECT_TRUE(slept.empty());
}

TEST(RetryPolicyTest, ExhaustionReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  const Status status = CallWithRetry(
      policy,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("early")
                         : Status::IOError("final attempt error");
      },
      [](uint64_t) {});
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "final attempt error");
}

TEST(RetryPolicyTest, SucceedsMidwayAndStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  const Status status = CallWithRetry(
      policy,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("transient") : Status::OK();
      },
      [](uint64_t) {});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
}

TEST_F(FaultRegistryTest, RetryRidesOutInjectedCheckpointFaults) {
  // A count-budgeted write fault heals after two fires; the retry loop must
  // absorb exactly those failures and land the checkpoint.
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  ASSERT_TRUE(reg.Configure("ckpt.write:1:2").ok());
  const std::string path = TempPath("retry_fault_ckpt.bin");
  RetryPolicy policy;
  policy.max_attempts = 4;
  int attempts = 0;
  const Status status = CallWithRetry(
      policy,
      [&] {
        ++attempts;
        return nn::SaveCheckpoint(path, {{"w", Tensor({1, 2}, {1, 2})}});
      },
      [](uint64_t) {});
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(reg.FireCount("ckpt.write"), 2);
  auto loaded = nn::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  std::remove(path.c_str());
}

TEST_F(FaultRegistryTest, RetryRidesOutInjectedCheckpointReadFaults) {
  // The read-side twin: the file on disk is intact, the injected failures
  // model a transient storage layer, so re-reading heals — unlike kDataLoss
  // corruption, which the policy refuses to retry.
  const std::string path = TempPath("retry_fault_ckpt_read.bin");
  ASSERT_TRUE(nn::SaveCheckpoint(path, {{"w", Tensor({1, 2}, {3, 4})}}).ok());
  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  ASSERT_TRUE(reg.Configure("ckpt.read:1:2").ok());
  RetryPolicy policy;
  policy.max_attempts = 4;
  int attempts = 0;
  std::vector<std::pair<std::string, Tensor>> tensors;
  const Status status = CallWithRetry(
      policy,
      [&] {
        ++attempts;
        auto loaded = nn::LoadCheckpoint(path);
        if (!loaded.ok()) return loaded.status();
        tensors = std::move(loaded).value();
        return Status::OK();
      },
      [](uint64_t) {});
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(reg.FireCount("ckpt.read"), 2);
  ASSERT_EQ(tensors.size(), 1u);
  EXPECT_EQ(tensors[0].first, "w");
  std::remove(path.c_str());
}

TEST_F(FaultRegistryTest, PipelineDegradesWhenCleaningFaultsPersist) {
  // A persistently failing cleaning stage must not abort the pipeline: it
  // exhausts its retry budget, logs, and continues on the uncleaned cohort.
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 150;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 77;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  data::TimeSeriesDataset damaged = cohort.dataset;
  Rng rng(5);
  const data::MissingnessMask mask =
      data::ApplyRandomMissingness(&damaged, 0.2, rng);

  pipeline::EmrPipelineConfig config;
  config.tracer.model.input_dim = damaged.num_features();
  config.tracer.model.rnn_dim = 4;
  config.tracer.model.film_dim = 4;
  config.tracer.training.max_epochs = 1;
  config.patient_reports = 0;
  config.clean_retry.max_attempts = 3;
  config.clean_retry.initial_backoff_us = 10;

  fault::FaultRegistry& reg = fault::FaultRegistry::Global();
  ASSERT_TRUE(reg.Configure("pipeline.clean:1:0").ok());  // never heals
  std::unique_ptr<core::Tracer> tracer_framework;
  const pipeline::EmrPipelineResult result = pipeline::RunEmrPipeline(
      damaged, &mask, config, &tracer_framework);
  // All three attempts hit the armed point, then the run still finished.
  EXPECT_EQ(reg.FireCount("pipeline.clean"), 3);
  ASSERT_NE(tracer_framework, nullptr);
  EXPECT_GT(result.training.epochs_run, 0);
}

// ---------------------------------------------------------------------------
// LoadCheckpoint under random corruption (satellite to the truncation test)

TEST(CheckpointFuzzTest, RandomCorruptionNeverCrashesOrMisparses) {
  const std::string path = TempPath("fuzz_ckpt.bin");
  const std::vector<std::pair<std::string, Tensor>> tensors = {
      {"weights", Tensor({4, 3}, std::vector<float>(12, 0.5f))},
      {"bias", Tensor({1, 3}, {1, 2, 3})},
      {"step", Tensor({1, 1}, {42})},
  };
  ASSERT_TRUE(nn::SaveCheckpoint(path, tensors).ok());
  std::ifstream in(path, std::ios::binary);
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(golden.size(), 24u);

  const std::string fuzzed = TempPath("fuzz_ckpt_mut.bin");
  Rng rng(2026);
  int rejected = 0;
  for (int round = 0; round < 400; ++round) {
    std::string bytes = golden;
    // Mutate 1-4 random bytes, and in half the rounds also truncate at a
    // random offset — the reader must survive arbitrary damage.
    const int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < flips; ++i) {
      const size_t pos = rng.UniformInt(bytes.size());
      bytes[pos] = static_cast<char>(rng.UniformInt(256));
    }
    if (rng.UniformInt(2) == 0) {
      bytes.resize(rng.UniformInt(bytes.size()));
    }
    std::ofstream out(fuzzed, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();

    const auto loaded = nn::LoadCheckpoint(fuzzed);
    if (loaded.ok()) {
      // Damage confined to name/payload bytes is structurally undetectable
      // in a checksum-less container; accepting it is fine. The property
      // under test is that parsing never crashes, never over-allocates and
      // never reports success through a wrong error path.
      EXPECT_LE(loaded.value().size(), tensors.size());
    } else {
      ++rejected;
      const StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kDataLoss ||
                  code == StatusCode::kInvalidArgument)
          << "round " << round << ": " << loaded.status().ToString();
    }
  }
  // Most mutations hit structure (header/name/shape bytes), so the reader
  // must actually exercise its rejection paths, not rubber-stamp.
  EXPECT_GT(rejected, 100);
  std::remove(path.c_str());
  std::remove(fuzzed.c_str());
}

}  // namespace
}  // namespace tracer
