// Tests for the online inference serving subsystem (src/serve/):
//  - ModelRegistry load / validate / publish / rollback,
//  - crash-safe checkpoint writes and torn-checkpoint rejection,
//  - the dynamic micro-batching scheduler: batched == unbatched
//    bit-identically, bounded-queue shedding (kUnavailable), per-request
//    deadline expiry (kDeadlineExceeded), hot-swap consistency while
//    requests are in flight,
//  - PatientSession streaming re-scoring,
//  - serving metrics through src/obs.
//
// The contention tests are sized for the sanitizer CI matrix; set
// TRACER_SERVE_STRESS to a multiplier (e.g. 4) for longer hammering.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "core/titv.h"
#include "core/tracer.h"
#include "nn/serialization.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace serve {
namespace {

int StressMultiplier() {
  const char* env = std::getenv("TRACER_SERVE_STRESS");
  const int value = env != nullptr ? std::atoi(env) : 1;
  return value > 0 ? value : 1;
}

core::TitvConfig MicroConfig(uint64_t seed = 5, int input_dim = 6) {
  core::TitvConfig config;
  config.input_dim = input_dim;
  config.rnn_dim = 4;
  config.film_dim = 4;
  config.seed = seed;
  return config;
}

// Registers the freshly initialised TITV of `config` (deterministic per
// seed) directly from memory.
uint64_t RegisterFreshModel(ModelRegistry* registry,
                            const core::TitvConfig& config) {
  const core::Titv model(config);
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (const auto& [name, param] : model.NamedParameters()) {
    tensors.emplace_back(name, param.value());
  }
  auto staged = registry->Register(config, std::move(tensors), "<memory>");
  EXPECT_TRUE(staged.ok()) << staged.status().ToString();
  return staged.value();
}

std::vector<std::vector<float>> RandomWindows(int num_windows, int dim,
                                              Rng* rng) {
  std::vector<std::vector<float>> windows(num_windows,
                                          std::vector<float>(dim));
  for (auto& window : windows) {
    for (float& v : window) {
      v = static_cast<float>(rng->Uniform(-1.0, 1.0));
    }
  }
  return windows;
}

// Unbatched single-sample forward through the snapshot's own replica — the
// ground truth the batched path must reproduce bit-for-bit.
float ScoreSingle(const ModelRegistry& registry, uint64_t version,
                  const std::vector<std::vector<float>>& windows) {
  auto snapshot = registry.Get(version);
  EXPECT_NE(snapshot, nullptr);
  auto replica = snapshot->NewReplica();
  std::vector<autograd::Variable> xs;
  xs.reserve(windows.size());
  for (const auto& window : windows) {
    Tensor x({1, static_cast<int>(window.size())});
    for (size_t j = 0; j < window.size(); ++j) {
      x.at(0, static_cast<int>(j)) = window[j];
    }
    xs.push_back(autograd::Variable::Constant(std::move(x)));
  }
  return tracer::Sigmoid(replica->Forward(xs).value()).at(0, 0);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// ModelRegistry

TEST(ModelRegistryTest, LoadPublishRollback) {
  const core::TitvConfig config = MicroConfig(/*seed=*/11);
  const std::string path = TempPath("registry_ckpt.bin");
  core::Tracer framework({config, {}, 0.75f});
  ASSERT_TRUE(framework.SaveCheckpoint(path).ok());

  ModelRegistry registry;
  EXPECT_EQ(registry.live(), nullptr);
  EXPECT_EQ(registry.live_version(), 0u);

  auto v1 = registry.Load(path, config);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  auto v2 = registry.Load(path, config);
  ASSERT_TRUE(v2.ok());
  EXPECT_LT(v1.value(), v2.value());
  EXPECT_EQ(registry.Versions().size(), 2u);

  // Staging does not publish.
  EXPECT_EQ(registry.live_version(), 0u);
  ASSERT_TRUE(registry.Publish(v1.value()).ok());
  EXPECT_EQ(registry.live_version(), v1.value());
  ASSERT_TRUE(registry.Publish(v2.value()).ok());
  EXPECT_EQ(registry.live_version(), v2.value());

  // Rollback swaps live and previous; twice returns to where we were.
  ASSERT_TRUE(registry.Rollback().ok());
  EXPECT_EQ(registry.live_version(), v1.value());
  ASSERT_TRUE(registry.Rollback().ok());
  EXPECT_EQ(registry.live_version(), v2.value());

  EXPECT_EQ(registry.Publish(999).code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, RollbackWithoutHistoryFails) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Rollback().code(), StatusCode::kFailedPrecondition);
}

TEST(ModelRegistryTest, RejectsArchitectureMismatch) {
  const std::string path = TempPath("mismatch_ckpt.bin");
  core::Tracer framework({MicroConfig(), {}, 0.75f});
  ASSERT_TRUE(framework.SaveCheckpoint(path).ok());

  ModelRegistry registry;
  core::TitvConfig wrong = MicroConfig();
  wrong.input_dim = 9;  // checkpoint was written for input_dim = 6
  auto staged = registry.Load(path, wrong);
  EXPECT_FALSE(staged.ok());
  EXPECT_EQ(staged.status().code(), StatusCode::kInvalidArgument);

  wrong = MicroConfig();
  wrong.rnn_dim = 7;
  EXPECT_FALSE(registry.Load(path, wrong).ok());

  auto bad_config = registry.Load(path, core::TitvConfig{});
  EXPECT_EQ(bad_config.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, SnapshotRoundTripsOutputTransform) {
  const core::TitvConfig config = MicroConfig();
  const std::string path = TempPath("transform_ckpt.bin");
  core::Tracer framework({config, {}, 0.75f});
  framework.model().SetOutputTransform(2.5f, -1.25f);
  ASSERT_TRUE(framework.SaveCheckpoint(path).ok());

  ModelRegistry registry;
  auto version = registry.Load(path, config);
  ASSERT_TRUE(version.ok());
  auto snapshot = registry.Get(version.value());
  ASSERT_NE(snapshot, nullptr);
  EXPECT_FLOAT_EQ(snapshot->output_scale, 2.5f);
  EXPECT_FLOAT_EQ(snapshot->output_offset, -1.25f);
  auto replica = snapshot->NewReplica();
  EXPECT_FLOAT_EQ(replica->output_scale(), 2.5f);
  EXPECT_FLOAT_EQ(replica->output_offset(), -1.25f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash-safe checkpoints

TEST(CheckpointSafetyTest, EveryTruncationIsRejected) {
  const std::string path = TempPath("trunc_ckpt.bin");
  const std::vector<std::pair<std::string, Tensor>> tensors = {
      {"a", Tensor({2, 3}, {1, 2, 3, 4, 5, 6})},
      {"b", Tensor({1, 2}, {7, 8})},
  };
  ASSERT_TRUE(nn::SaveCheckpoint(path, tensors).ok());

  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 12u);

  const std::string cut = TempPath("trunc_ckpt_cut.bin");
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::ofstream out(cut, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    auto loaded = nn::LoadCheckpoint(cut);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes accepted";
    // Torn containers are data loss (retrying cannot help), and the error
    // names the failing byte offset for forensics.
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "prefix of " << len << ": " << loaded.status().ToString();
    EXPECT_NE(loaded.status().message().find("offset"), std::string::npos)
        << loaded.status().ToString();
  }

  // Trailing garbage after a valid container is just as torn.
  std::ofstream out(cut, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.put('x');
  out.close();
  auto trailing = nn::LoadCheckpoint(cut);
  EXPECT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kDataLoss);

  // The untouched original still loads.
  auto loaded = nn::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(CheckpointSafetyTest, CorruptMagicIsRejected) {
  const std::string path = TempPath("magic_ckpt.bin");
  std::ofstream out(path, std::ios::binary);
  out << "NOTACKPT and then some bytes";
  out.close();
  auto loaded = nn::LoadCheckpoint(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointSafetyTest, FailedSaveLeavesNoPartialFile) {
  // Writing into a missing directory fails up front — and must not leave
  // the destination or any temp file behind.
  const std::string path = TempPath("no_such_dir/x.bin");
  const Status status =
      nn::SaveCheckpoint(path, {{"a", Tensor({1, 1}, {1.0f})}});
  EXPECT_FALSE(status.ok());
  std::ifstream probe(path, std::ios::binary);
  EXPECT_FALSE(probe.is_open());
}

TEST(CheckpointSafetyTest, SaveAtomicallyReplacesExisting) {
  const std::string path = TempPath("replace_ckpt.bin");
  ASSERT_TRUE(
      nn::SaveCheckpoint(path, {{"a", Tensor({1, 1}, {1.0f})}}).ok());
  ASSERT_TRUE(
      nn::SaveCheckpoint(path, {{"a", Tensor({1, 1}, {2.0f})}}).ok());
  auto loaded = nn::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FLOAT_EQ(loaded.value()[0].second.at(0, 0), 2.0f);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// InferenceServer

TEST(InferenceServerTest, NoModelPublishedFailsPrecondition) {
  ModelRegistry registry;
  InferenceServer server(&registry, ServeOptions{});
  ServeRequest request;
  request.windows = {{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f}};
  const ServeResponse response = server.Infer(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

TEST(InferenceServerTest, MalformedRequestsAreRejected) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());
  InferenceServer server(&registry, ServeOptions{});

  EXPECT_EQ(server.Infer(ServeRequest{}).status.code(),
            StatusCode::kInvalidArgument);

  ServeRequest ragged;
  ragged.windows = {{1.0f, 2.0f}, {1.0f}};
  EXPECT_EQ(server.Infer(std::move(ragged)).status.code(),
            StatusCode::kInvalidArgument);

  ServeRequest wrong_dim;  // model expects 6 features
  wrong_dim.windows = {{1.0f, 2.0f}};
  EXPECT_EQ(server.Infer(std::move(wrong_dim)).status.code(),
            StatusCode::kInvalidArgument);
}

// Acceptance (a): a batched forward must be bit-identical to scoring each
// sample alone against the same checkpoint.
TEST(InferenceServerTest, BatchedBitIdenticalToUnbatched) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig(/*seed=*/21);
  const uint64_t version = RegisterFreshModel(&registry, config);
  ASSERT_TRUE(registry.Publish(version).ok());

  ServeOptions options;
  options.max_batch_size = 8;
  options.close_on_idle = false;  // force size/age-driven coalescing
  options.max_queue_delay_us = 200000;
  InferenceServer server(&registry, options);

  Rng rng(99);
  constexpr int kRequests = 32;
  std::vector<std::vector<std::vector<float>>> inputs;
  std::vector<std::future<ServeResponse>> futures;
  inputs.reserve(kRequests);
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(RandomWindows(/*num_windows=*/5, config.input_dim,
                                   &rng));
    ServeRequest request;
    request.windows = inputs.back();
    futures.push_back(server.Submit(std::move(request)));
  }

  int64_t batched = 0;
  for (int i = 0; i < kRequests; ++i) {
    const ServeResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.model_version, version);
    const float reference = ScoreSingle(registry, version, inputs[i]);
    EXPECT_EQ(response.decision.probability, reference)
        << "batched row diverged from single-sample forward";
    if (response.batch_size > 1) ++batched;
  }
  EXPECT_GT(batched, 0) << "coalescing never produced a batch > 1";
  EXPECT_GE(server.stats().max_batch, 2);
}

// Acceptance (b): a saturated bounded queue sheds with kUnavailable
// immediately — it never blocks producers and never grows without bound.
TEST(InferenceServerTest, SaturationShedsWithUnavailable) {
  ModelRegistry registry;
  // A heavier model so forwards are slow relative to submissions.
  core::TitvConfig config = MicroConfig(/*seed=*/3, /*input_dim=*/16);
  config.rnn_dim = 32;
  config.film_dim = 32;
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions options;
  options.max_batch_size = 1;
  options.num_workers = 1;
  options.queue_capacity = 2;
  InferenceServer server(&registry, options);

  constexpr int kThreads = 4;
  const int per_thread = 50 * StressMultiplier();
  std::vector<std::thread> producers;
  common::Mutex futures_mutex;
  std::vector<std::future<ServeResponse>> futures;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        ServeRequest request;
        request.windows = RandomWindows(12, config.input_dim, &rng);
        auto future = server.Submit(std::move(request));
        common::MutexLock lock(&futures_mutex);
        futures.push_back(std::move(future));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  int ok = 0;
  int shed = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();  // every future completes
    if (response.status.ok()) {
      ++ok;
      EXPECT_GE(response.decision.probability, 0.0f);
      EXPECT_LE(response.decision.probability, 1.0f);
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kThreads * per_thread);
  EXPECT_GT(shed, 0) << "queue of capacity 2 never saturated";
  EXPECT_GT(ok, 0);
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.completed, ok);
}

TEST(InferenceServerTest, ExpiredDeadlinesCompleteWithDeadlineExceeded) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions options;
  options.max_batch_size = 1;
  options.num_workers = 1;
  InferenceServer server(&registry, options);

  Rng rng(7);
  // A healthy request keeps the pipeline busy...
  ServeRequest healthy;
  healthy.windows = RandomWindows(4, config.input_dim, &rng);
  auto first = server.Submit(std::move(healthy));

  // ...while these arrive already expired: they must never be scored.
  constexpr int kExpired = 20;
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < kExpired; ++i) {
    ServeRequest request;
    request.windows = RandomWindows(4, config.input_dim, &rng);
    request.deadline_ns = obs::MonotonicNowNs() - 1;
    futures.push_back(server.Submit(std::move(request)));
  }
  EXPECT_TRUE(first.get().status.ok());
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(server.stats().expired, kExpired);
}

TEST(InferenceServerTest, DelayDrivenCoalescingBatchesWaitingRequests) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions options;
  options.max_batch_size = 16;
  options.max_queue_delay_us = 30000;
  options.close_on_idle = false;
  InferenceServer server(&registry, options);

  Rng rng(15);
  constexpr int kRequests = 5;
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    ServeRequest request;
    request.windows = RandomWindows(3, config.input_dim, &rng);
    futures.push_back(server.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    // All five were waiting when the age window lapsed → one batch.
    EXPECT_EQ(response.batch_size, kRequests);
    EXPECT_GT(response.queue_ns, 0u);
  }
  EXPECT_EQ(server.stats().batches, 1);
}

// Acceptance (c): hot-swapping the live model while traffic is in flight
// must give every request exactly one consistent version — each response's
// probability is exactly the one its reported version produces, never a
// blend.
TEST(InferenceServerTest, HotSwapKeepsEveryRequestOnOneVersion) {
  ModelRegistry registry;
  const core::TitvConfig config_a = MicroConfig(/*seed=*/31);
  const core::TitvConfig config_b = MicroConfig(/*seed=*/77);
  const uint64_t v1 = RegisterFreshModel(&registry, config_a);
  const uint64_t v2 = RegisterFreshModel(&registry, config_b);
  ASSERT_TRUE(registry.Publish(v1).ok());

  Rng rng(5);
  const auto input = RandomWindows(6, config_a.input_dim, &rng);
  const float expected_v1 = ScoreSingle(registry, v1, input);
  const float expected_v2 = ScoreSingle(registry, v2, input);
  ASSERT_NE(expected_v1, expected_v2);

  ServeOptions options;
  options.max_batch_size = 8;
  options.num_workers = 2;
  InferenceServer server(&registry, options);

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    int round = 0;
    while (!done.load()) {
      ASSERT_TRUE(registry.Publish(round % 2 == 0 ? v2 : v1).ok());
      if (round % 5 == 4) {
        ASSERT_TRUE(registry.Rollback().ok());
      }
      ++round;
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 4;
  const int per_thread = 50 * StressMultiplier();
  std::atomic<int> mismatches{0};
  std::atomic<int> v1_seen{0};
  std::atomic<int> v2_seen{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i) {
        ServeRequest request;
        request.windows = input;
        const ServeResponse response = server.Infer(std::move(request));
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        const float expected =
            response.model_version == v1 ? expected_v1 : expected_v2;
        (response.model_version == v1 ? v1_seen : v2_seen).fetch_add(1);
        if (response.decision.probability != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  done.store(true);
  swapper.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "a request was scored against a torn or mixed model version";
  // The swap loop runs concurrently with the traffic, so both versions
  // should actually have served (sanity that the test exercised the swap).
  EXPECT_GT(v1_seen.load() + v2_seen.load(), 0);
}

// Contention hammer for the TSan job: variable window counts, a tiny
// queue, live hot-swaps and deadlines all at once. Every future must
// complete with one of the contract's status codes.
TEST(InferenceServerTest, MixedContentionHammer) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig(/*seed=*/13);
  const uint64_t v1 = RegisterFreshModel(&registry, config);
  const uint64_t v2 = RegisterFreshModel(&registry, config);
  ASSERT_TRUE(registry.Publish(v1).ok());

  ServeOptions options;
  options.max_batch_size = 4;
  options.num_workers = 2;
  options.queue_capacity = 8;
  options.max_queue_delay_us = 500;
  InferenceServer server(&registry, options);

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    int round = 0;
    while (!done.load()) {
      ASSERT_TRUE(registry.Publish(round % 2 == 0 ? v2 : v1).ok());
      ++round;
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 4;
  const int per_thread = 60 * StressMultiplier();
  std::atomic<int> completed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Rng rng(400 + static_cast<uint64_t>(t));
      for (int i = 0; i < per_thread; ++i) {
        ServeRequest request;
        request.windows =
            RandomWindows(i % 2 == 0 ? 3 : 5, config.input_dim, &rng);
        if (i % 3 == 0) {
          request.deadline_ns = obs::MonotonicNowNs() + 200000;  // 200µs
        }
        const ServeResponse response = server.Infer(std::move(request));
        const StatusCode code = response.status.code();
        ASSERT_TRUE(code == StatusCode::kOk ||
                    code == StatusCode::kUnavailable ||
                    code == StatusCode::kDeadlineExceeded)
            << response.status.ToString();
        if (code == StatusCode::kOk) {
          ASSERT_TRUE(response.model_version == v1 ||
                      response.model_version == v2);
          ASSERT_GE(response.decision.probability, 0.0f);
          ASSERT_LE(response.decision.probability, 1.0f);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  done.store(true);
  swapper.join();
  EXPECT_EQ(completed.load(), kThreads * per_thread);

  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired);
  EXPECT_EQ(stats.accepted + stats.shed,
            static_cast<int64_t>(kThreads) * per_thread);
}

TEST(InferenceServerTest, ShutdownCompletesEveryAcceptedFuture) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions options;
  options.max_batch_size = 2;
  options.num_workers = 1;
  options.max_queue_delay_us = 50000;
  options.close_on_idle = false;
  auto server = std::make_unique<InferenceServer>(&registry, options);

  Rng rng(23);
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 30; ++i) {
    ServeRequest request;
    request.windows = RandomWindows(4, config.input_dim, &rng);
    futures.push_back(server->Submit(std::move(request)));
  }
  server.reset();  // destructor shuts down with work still queued
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    EXPECT_TRUE(response.status.ok() ||
                response.status.code() == StatusCode::kUnavailable)
        << response.status.ToString();
  }
}

TEST(InferenceServerTest, SubmitAfterShutdownIsUnavailable) {
  ModelRegistry registry;
  InferenceServer server(&registry, ServeOptions{});
  server.Shutdown();
  server.Shutdown();  // idempotent
  ServeRequest request;
  request.windows = {{1.0f}};
  EXPECT_EQ(server.Infer(std::move(request)).status.code(),
            StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// PatientSession

TEST(PatientSessionTest, GrowingHistoryMatchesDirectScoring) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig(/*seed=*/41);
  const uint64_t version = RegisterFreshModel(&registry, config);
  ASSERT_TRUE(registry.Publish(version).ok());
  InferenceServer server(&registry, ServeOptions{});

  Rng rng(17);
  PatientSession session(&server, "patient-0");
  std::vector<std::vector<float>> history;
  for (int day = 0; day < 4; ++day) {
    std::vector<float> window(config.input_dim);
    for (float& v : window) v = static_cast<float>(rng.Uniform(0.0, 1.0));
    history.push_back(window);
    const ServeResponse response = session.ObserveSync(window);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(session.num_windows(), day + 1);
    EXPECT_EQ(response.decision.probability,
              ScoreSingle(registry, version, history))
        << "session day " << day << " diverged from direct scoring";
  }
}

TEST(PatientSessionTest, AlertTransitionsTrackThreshold) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions always;
  always.alert_threshold = 0.0f;  // every probability alerts
  InferenceServer alert_server(&registry, always);
  PatientSession alerting(&alert_server, "p-alert");
  const std::vector<float> window(config.input_dim, 0.5f);
  ASSERT_TRUE(alerting.ObserveSync(window).status.ok());
  EXPECT_TRUE(alerting.alerting());
  EXPECT_TRUE(alerting.newly_alerted());
  ASSERT_TRUE(alerting.ObserveSync(window).status.ok());
  EXPECT_TRUE(alerting.alerting());
  EXPECT_FALSE(alerting.newly_alerted());  // still above, not a transition

  ServeOptions never;
  never.alert_threshold = 1.1f;  // probabilities cannot reach this
  InferenceServer quiet_server(&registry, never);
  PatientSession quiet(&quiet_server, "p-quiet");
  ASSERT_TRUE(quiet.ObserveSync(window).status.ok());
  EXPECT_FALSE(quiet.alerting());
  EXPECT_FALSE(quiet.newly_alerted());
}

// ---------------------------------------------------------------------------
// Observability wiring

TEST(ServeMetricsTest, ServingExportsTracerServeMetrics) {
  obs::SetEnabled(true);
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());
  {
    InferenceServer server(&registry, ServeOptions{});
    Rng rng(3);
    for (int i = 0; i < 4; ++i) {
      ServeRequest request;
      request.windows = RandomWindows(3, config.input_dim, &rng);
      EXPECT_TRUE(server.Infer(std::move(request)).status.ok());
    }
  }
  obs::SetEnabled(false);

  const std::string dump = obs::MetricsRegistry::Global().ExportPrometheus();
  for (const char* metric :
       {"tracer_serve_requests_total", "tracer_serve_batches_total",
        "tracer_serve_batch_size", "tracer_serve_queue_ns",
        "tracer_serve_latency_ns", "tracer_serve_queue_depth",
        "tracer_serve_model_loads_total", "tracer_serve_hot_swaps_total",
        "tracer_serve_live_version"}) {
    EXPECT_NE(dump.find(metric), std::string::npos)
        << metric << " missing from export";
  }
}

}  // namespace
}  // namespace serve
}  // namespace tracer
