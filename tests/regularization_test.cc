#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/dropout.h"
#include "optim/lr_schedule.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace {

using autograd::Variable;

TEST(DropoutTest, EvalModeIsIdentity) {
  nn::Dropout dropout(0.5f);
  Rng rng(1);
  const Tensor input = Tensor::Randn({4, 8}, rng);
  const Variable x = Variable::Constant(input);
  const Variable y = dropout.Apply(x, /*training=*/false);
  EXPECT_LT(MaxAbsDiff(y.value(), input), 1e-9f);
}

TEST(DropoutTest, ZeroRateIsIdentityEvenInTraining) {
  nn::Dropout dropout(0.0f);
  Rng rng(2);
  const Tensor input = Tensor::Randn({4, 8}, rng);
  const Variable x = Variable::Constant(input);
  const Variable y = dropout.Apply(x, /*training=*/true);
  EXPECT_LT(MaxAbsDiff(y.value(), input), 1e-9f);
}

TEST(DropoutTest, DropsApproximatelyRateFraction) {
  nn::Dropout dropout(0.3f);
  const Variable x = Variable::Constant(Tensor::Ones({100, 100}));
  const Variable y = dropout.Apply(x, /*training=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().size(); ++i) {
    if (y.value()[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.value().size(), 0.3, 0.02);
}

TEST(DropoutTest, SurvivorsScaledToPreserveExpectation) {
  nn::Dropout dropout(0.25f);
  const Variable x = Variable::Constant(Tensor::Ones({200, 200}));
  const Variable y = dropout.Apply(x, /*training=*/true);
  // Survivors carry 1/(1-rate); the mean stays ≈ 1.
  double sum = 0.0;
  for (int64_t i = 0; i < y.value().size(); ++i) sum += y.value()[i];
  EXPECT_NEAR(sum / y.value().size(), 1.0, 0.02);
}

TEST(DropoutTest, GradientFlowsOnlyThroughSurvivors) {
  nn::Dropout dropout(0.5f);
  Variable x = Variable::Parameter(Tensor::Ones({10, 10}));
  Variable y = dropout.Apply(x, /*training=*/true);
  autograd::SumAll(y).Backward();
  for (int64_t i = 0; i < x.grad().size(); ++i) {
    if (y.value()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);  // 1/(1-0.5)
    }
  }
}

TEST(LrScheduleTest, ConstantIsOne) {
  optim::ConstantLr schedule;
  EXPECT_FLOAT_EQ(schedule.Multiplier(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(1000), 1.0f);
}

TEST(LrScheduleTest, StepDecayHalvesAtBoundaries) {
  optim::StepDecayLr schedule(10, 0.5f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(9), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(10), 0.5f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(25), 0.25f);
}

TEST(LrScheduleTest, CosineDecaysMonotonicallyToFloor) {
  optim::CosineLr schedule(50, 0.05f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(0), 1.0f);
  float prev = 1.0f;
  for (int epoch = 1; epoch <= 50; ++epoch) {
    const float m = schedule.Multiplier(epoch);
    EXPECT_LE(m, prev + 1e-6f);
    prev = m;
  }
  EXPECT_NEAR(schedule.Multiplier(50), 0.05f, 1e-5f);
  EXPECT_NEAR(schedule.Multiplier(500), 0.05f, 1e-5f);  // clamped
}

TEST(LrScheduleTest, WarmupRampsUpThenHolds) {
  optim::WarmupLr schedule(4);
  EXPECT_LT(schedule.Multiplier(0), schedule.Multiplier(1));
  EXPECT_LT(schedule.Multiplier(2), schedule.Multiplier(3));
  EXPECT_FLOAT_EQ(schedule.Multiplier(4), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(100), 1.0f);
}

}  // namespace
}  // namespace tracer
