// Fixture: violates A5 — an interpret-layer metric that breaks the
// `tracer_<layer>_<name>` lower_snake convention (the real serve explain
// path exports tracer_interpret_requests_total etc.; a camelCase suffix
// must be caught before it fragments the metric family).
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void RecordInterpretBadName() {
  GetOrCreateCounter("tracer_interpret_requestsTotal");  // A5: camelCase
}

}  // namespace fx
