// Fixture: violates A4 by injecting at a fault point that the registry
// (src/fault/fault_points.h of this fixture tree) does not list.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void Op() {
  TRACER_FAULT_POINT("fx.used");     // ok: registered
  TRACER_FAULT_POINT("fx.unknown");  // A4: not in fault_points.h
}

}  // namespace fx
