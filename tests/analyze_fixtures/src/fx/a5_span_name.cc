// Fixture: violates A5 — span name does not follow the
// `<subsystem>.<operation>` lowercase-dotted convention.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void BadSpan() {
  TRACER_SPAN("Fx.BadSpan");  // A5: uppercase; must be subsystem.operation
}

}  // namespace fx
