// Fixture support header: declares the Status-returning function the A2
// fixtures call. Not built; scanned by tools/analyze.py --self-test.
#ifndef FX_STATUS_H_
#define FX_STATUS_H_

namespace fx {

class Status;

Status DoThing();

}  // namespace fx

#endif  // FX_STATUS_H_
