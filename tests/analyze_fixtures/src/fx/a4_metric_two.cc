// Fixture: violates A4 — registers metric "tracer_fx_dup_total" a second time
// (first site: a4_metric_one.cc). One name, one cached handle.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void RecordTwo() {
  GetOrCreateCounter("tracer_fx_dup_total");  // A4: duplicate registration
}

}  // namespace fx
