// Fixture: violates A1 (raw std:: synchronization primitive outside
// common/mutex.h). Not built; scanned by tools/analyze.py --self-test.
#include <mutex>

namespace fx {

std::mutex state_mutex;  // A1: should be common::Mutex

int guarded_value = 0;

}  // namespace fx
