// Fixture: violates A2 twice (bare dropped Status, (void)-cast Status).
// Also shows the three accepted forms, which must NOT be flagged.
// Not built; scanned by tools/analyze.py --self-test.
#include "fx/fx_status.h"

namespace fx {

void Caller() {
  DoThing();        // A2: dropped result of a Status-returning call
  (void)DoThing();  // A2: invisible drop; must be TRACER_IGNORE_STATUS

  const Status consumed = DoThing();   // ok: assigned
  if (!DoThing().ok()) {               // ok: examined
    return;
  }
  TRACER_IGNORE_STATUS(DoThing());     // ok: auditable explicit drop
}

}  // namespace fx
