// Fixture: one half of the A3 include cycle a.h <-> b.h.
// Not built; scanned by tools/analyze.py --self-test.
#ifndef FX_A_H_
#define FX_A_H_

#include "fx/b.h"

namespace fx {
struct A {
  B* peer;
};
}  // namespace fx

#endif  // FX_A_H_
