// Fixture: violates A5 — opens span "fx.dup" at a second site (first:
// a5_span_dup_one.cc). One span name, one place in the code; duplicated
// names make a trace ambiguous about which code path ran.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void SpanTwo() {
  TRACER_SPAN("fx.dup");  // A5: duplicate span registration site
}

}  // namespace fx
