// Fixture: violates A5 — an interpret-subsystem span that breaks the
// `<subsystem>.<operation>` lowercase-dotted convention (the real serve
// explain path records "interpret.explain"; an uppercase operation must
// be caught before it lands in trace dumps).
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void BadInterpretSpan() {
  RecordSpan("interpret.Explain");  // A5: operation must be lowercase
}

}  // namespace fx
