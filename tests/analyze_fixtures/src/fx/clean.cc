// Fixture: violates nothing — the negative control proving the analyzer
// does not over-report: consumes one Status, explicitly ignores
// another, and registers a unique metric exactly once.
// Not built; scanned by tools/analyze.py --self-test.
#include "fx/fx_status.h"

namespace fx {

void Quiet() {
  const Status status = DoThing();
  if (!status.ok()) {
    TRACER_IGNORE_STATUS(DoThing());
  }
  GetOrCreateGauge("tracer_fx_clean_depth");
}

}  // namespace fx
