// Fixture: first site opening span "fx.dup" — legal on its own; the
// second site in a5_span_dup_two.cc is the A5 finding.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void SpanOne() {
  TRACER_SPAN("fx.dup");
}

}  // namespace fx
