// Fixture: violates A5 — metric name does not follow the
// `tracer_<layer>_<name>` lower_snake convention.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void RecordBadName() {
  GetOrCreateCounter("FxBadMetricName");  // A5: not tracer_[a-z0-9_]+
}

}  // namespace fx
