// Fixture: first registration site of metric "tracer_fx_dup_total" — legal on
// its own; the duplicate in a4_metric_two.cc is the A4 finding.
// Not built; scanned by tools/analyze.py --self-test.

namespace fx {

void RecordOne() {
  GetOrCreateCounter("tracer_fx_dup_total");
}

}  // namespace fx
