// Fixture: the other half of the A3 include cycle a.h <-> b.h. The
// analyzer attributes the cycle to this file, whose include edge closes
// it. Not built; scanned by tools/analyze.py --self-test.
#ifndef FX_B_H_
#define FX_B_H_

#include "fx/a.h"

namespace fx {
struct B {
  A* peer;
};
}  // namespace fx

#endif  // FX_B_H_
