// Fixture registry for A4: "fx.used" is consumed by a4_fault_use.cc;
// "fx.unused" is registered but never used, which is itself the A4
// finding this file carries. Not built; scanned by --self-test.
#ifndef FX_FAULT_POINTS_H_
#define FX_FAULT_POINTS_H_

#define FX_FAULT_POINT_LIST(X)                        \
  X("fx.used", "consumed by a4_fault_use.cc")         \
  X("fx.unused", "A4: registered but never injected")

#endif  // FX_FAULT_POINTS_H_
