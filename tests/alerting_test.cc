#include <gtest/gtest.h>

#include "core/alerting.h"

namespace tracer {
namespace core {
namespace {

// A well-separated validation set: positives cluster at high scores.
const std::vector<float> kProbs = {0.95f, 0.9f, 0.8f, 0.7f, 0.6f,
                                   0.4f,  0.3f, 0.2f, 0.1f, 0.05f};
const std::vector<float> kLabels = {1, 1, 1, 0, 1, 0, 0, 0, 0, 0};

TEST(EvaluateThresholdTest, CountsAtMidThreshold) {
  const OperatingPoint point = EvaluateThreshold(kProbs, kLabels, 0.5f);
  // Alerts: 0.95,0.9,0.8,0.7,0.6 → 5 alerts, 4 true positives.
  EXPECT_DOUBLE_EQ(point.alert_rate, 0.5);
  EXPECT_DOUBLE_EQ(point.precision, 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(point.recall, 1.0);
}

TEST(ThresholdForPrecisionTest, MeetsTargetWithMaxRecall) {
  const OperatingPoint point =
      ThresholdForPrecision(kProbs, kLabels, 0.99);
  // Perfect precision requires excluding the 0.7-scored negative: the
  // feasible set with precision 1.0 peaks at recall 3/4 (alert on ≥0.8).
  EXPECT_GE(point.precision, 0.99);
  EXPECT_DOUBLE_EQ(point.recall, 0.75);
  EXPECT_GT(point.threshold, 0.7f);
  EXPECT_LE(point.threshold, 0.8f);
}

TEST(ThresholdForPrecisionTest, InfeasibleTargetFallsBackToBest) {
  // All-same scores: precision is fixed at the base rate; target 0.99 is
  // infeasible and the best achievable point is returned.
  const std::vector<float> probs(4, 0.5f);
  const std::vector<float> labels = {1, 0, 0, 0};
  const OperatingPoint point = ThresholdForPrecision(probs, labels, 0.99);
  EXPECT_LE(point.precision, 0.26);
}

TEST(ThresholdForRecallTest, CatchesAllPositivesWithFewestAlerts) {
  const OperatingPoint point = ThresholdForRecall(kProbs, kLabels, 1.0);
  EXPECT_DOUBLE_EQ(point.recall, 1.0);
  // Minimum alerts with full recall = alert on ≥0.6 → 5 alerts.
  EXPECT_DOUBLE_EQ(point.alert_rate, 0.5);
}

TEST(ThresholdForRecallTest, PartialRecallUsesFewerAlerts) {
  const OperatingPoint point = ThresholdForRecall(kProbs, kLabels, 0.75);
  EXPECT_GE(point.recall, 0.75);
  EXPECT_LE(point.alert_rate, 0.3 + 1e-9);
}

TEST(ThresholdForAlertBudgetTest, RespectsBudget) {
  const OperatingPoint point =
      ThresholdForAlertBudget(kProbs, kLabels, 0.2);
  EXPECT_LE(point.alert_rate, 0.2 + 1e-9);
  // Best use of 2 alerts: the two top-scored positives.
  EXPECT_DOUBLE_EQ(point.recall, 0.5);
  EXPECT_DOUBLE_EQ(point.precision, 1.0);
}

TEST(ThresholdForAlertBudgetTest, ZeroBudgetAlertsNobody) {
  const OperatingPoint point =
      ThresholdForAlertBudget(kProbs, kLabels, 0.0);
  EXPECT_DOUBLE_EQ(point.alert_rate, 0.0);
  EXPECT_DOUBLE_EQ(point.recall, 0.0);
}

TEST(BestF1Test, FindsSeparatingThreshold) {
  const OperatingPoint point = BestF1Threshold(kProbs, kLabels);
  // Alerting on ≥0.6 gives precision 0.8, recall 1.0 → F1 8/9 ≈ 0.889,
  // the maximum on this set.
  EXPECT_NEAR(point.f1, 8.0 / 9.0, 1e-9);
}

TEST(OperatingPointTest, PerfectlySeparableReachesF1One) {
  const std::vector<float> probs = {0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<float> labels = {1, 1, 0, 0};
  const OperatingPoint point = BestF1Threshold(probs, labels);
  EXPECT_DOUBLE_EQ(point.f1, 1.0);
  EXPECT_GT(point.threshold, 0.2f);
  EXPECT_LT(point.threshold, 0.8f);
}

}  // namespace
}  // namespace core
}  // namespace tracer
