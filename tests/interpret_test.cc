// Tests for the attribution subsystem (src/interpret/):
//  - integrated gradients and occlusion are exact on a linear model (and IG
//    satisfies completeness: Σ fi = f(x) − f(baseline)),
//  - BaselineBuilder reproduces the pipeline's carry-forward semantics and
//    the fitted population mean,
//  - tie-aware Spearman rank correlation,
//  - the determinism contract: IG and occlusion attributions of a real TITV
//    model are bitwise identical across thread budgets {1,2,4,8} and both
//    GEMM kernels (TRACER_GEMM=naive|blocked) — the same contract the serve
//    path's batched scoring already holds.

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "core/titv.h"
#include "data/dataset.h"
#include "interpret/adapters.h"
#include "interpret/attribution.h"
#include "interpret/fidelity.h"
#include "parallel/parallel_for.h"
#include "tensor/gemm.h"

namespace tracer {
namespace interpret {
namespace {

class ThreadBudgetGuard {
 public:
  ThreadBudgetGuard() : prev_(parallel::MaxThreads()) {}
  ~ThreadBudgetGuard() { parallel::SetMaxThreads(prev_); }

 private:
  int prev_;
};

/// Known linear model f(xs) = Σ_t xs[t]·w[t]: attributions have a closed
/// form (fi(t,d) = w[t][d]·(x − baseline)_{t,d}), so exactness is checkable
/// without tolerance gymnastics.
struct LinearModel {
  std::vector<Tensor> weights;  // weights[t] is D×1

  TapeScoreFn Tape() const {
    return [this](const std::vector<autograd::Variable>& xs) {
      autograd::Variable out;
      for (size_t t = 0; t < xs.size(); ++t) {
        autograd::Variable term = autograd::MatMul(
            xs[t], autograd::Variable::Constant(weights[t]));
        out = t == 0 ? term : autograd::Add(out, term);
      }
      return out;
    };
  }

  ScoreFn Score() const {
    return [this](const std::vector<Tensor>& xs) {
      std::vector<autograd::Variable> vars;
      vars.reserve(xs.size());
      for (const Tensor& x : xs) {
        vars.push_back(autograd::Variable::Constant(x));
      }
      return Tape()(vars).value();
    };
  }
};

LinearModel MakeLinearModel(int num_windows, int dim, uint64_t seed) {
  LinearModel model;
  Rng rng(seed);
  for (int t = 0; t < num_windows; ++t) {
    Tensor w({dim, 1});
    for (int d = 0; d < dim; ++d) {
      w.at(d, 0) = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    model.weights.push_back(std::move(w));
  }
  return model;
}

std::vector<Tensor> RandomBatch(int batch, int num_windows, int dim,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> xs;
  xs.reserve(num_windows);
  for (int t = 0; t < num_windows; ++t) {
    Tensor x({batch, dim});
    for (int b = 0; b < batch; ++b) {
      for (int d = 0; d < dim; ++d) {
        x.at(b, d) = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
    }
    xs.push_back(std::move(x));
  }
  return xs;
}

/// Flattens an attribution result for bitwise comparison.
std::vector<float> Flatten(const AttributionResult& result) {
  std::vector<float> out;
  for (const SampleAttribution& sample : result.samples) {
    for (const std::vector<float>& window : sample.fi) {
      out.insert(out.end(), window.begin(), window.end());
    }
    out.push_back(sample.score);
    out.push_back(sample.baseline_score);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exactness on a linear model

TEST(IntegratedGradientsTest, ExactOnLinearModelAtAnyStepCount) {
  const int T = 3, D = 4, B = 5;
  const LinearModel model = MakeLinearModel(T, D, 21);
  const std::vector<Tensor> xs = RandomBatch(B, T, D, 22);
  for (int steps : {1, 4, 16}) {
    IntegratedGradientsOptions options;
    options.steps = steps;
    IntegratedGradients attributor(model.Tape(),
                                   BaselineBuilder(BaselineKind::kZero),
                                   options);
    const AttributionResult result = attributor.Attribute(xs);
    ASSERT_EQ(result.samples.size(), static_cast<size_t>(B));
    for (int b = 0; b < B; ++b) {
      const SampleAttribution& sample = result.samples[b];
      float total = 0.0f;
      for (int t = 0; t < T; ++t) {
        for (int d = 0; d < D; ++d) {
          // Constant gradient along the path: fi = w_td · x_td exactly.
          EXPECT_NEAR(sample.fi[t][d],
                      model.weights[t].at(d, 0) * xs[t].at(b, d), 1e-5f)
              << "steps " << steps << " b " << b << " t " << t << " d " << d;
          total += sample.fi[t][d];
        }
      }
      // Completeness: Σ fi = f(x) − f(baseline).
      EXPECT_NEAR(total, sample.score - sample.baseline_score, 1e-4f);
    }
  }
}

TEST(OcclusionTest, ExactOnLinearModel) {
  const int T = 3, D = 4, B = 5;
  const LinearModel model = MakeLinearModel(T, D, 31);
  const std::vector<Tensor> xs = RandomBatch(B, T, D, 32);
  Occlusion attributor(model.Score(), BaselineBuilder(BaselineKind::kZero));
  const AttributionResult result = attributor.Attribute(xs);
  ASSERT_EQ(result.samples.size(), static_cast<size_t>(B));
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < T; ++t) {
      for (int d = 0; d < D; ++d) {
        // Zeroing cell (t,d) of a linear model drops the score by w·x.
        EXPECT_NEAR(result.samples[b].fi[t][d],
                    model.weights[t].at(d, 0) * xs[t].at(b, d), 1e-5f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Baselines

TEST(BaselineBuilderTest, CarryForwardFreezesAdmissionState) {
  BaselineBuilder builder(BaselineKind::kCarryForward);
  const std::vector<std::vector<float>> series = {
      {1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  const std::vector<std::vector<float>> baseline = builder.Series(series);
  ASSERT_EQ(baseline.size(), series.size());
  for (size_t t = 0; t < series.size(); ++t) {
    // Window 0 carried forward over the whole series.
    EXPECT_FLOAT_EQ(baseline[t][0], 1.0f);
    EXPECT_FLOAT_EQ(baseline[t][1], 2.0f);
  }
  // Occluding one cell carries the previous window's value forward.
  EXPECT_FLOAT_EQ(builder.Cell(series, 2, 1), series[1][1]);
  // Window 0 has no prior observation: the imputation contract falls back
  // to the feature's observed mean (mean of windows 1..2 here).
  EXPECT_FLOAT_EQ(builder.Cell(series, 0, 0),
                  (series[1][0] + series[2][0]) / 2.0f);
}

TEST(BaselineBuilderTest, PopulationMeanUsesFittedCohort) {
  data::TimeSeriesDataset reference(data::TaskType::kBinaryClassification,
                                    /*num_samples=*/2, /*num_windows=*/2,
                                    /*num_features=*/2);
  // Feature 0 values: {1, 3, 5, 7} → mean 4; feature 1: {2, 2, 2, 2} → 2.
  float v = 1.0f;
  for (int s = 0; s < 2; ++s) {
    for (int w = 0; w < 2; ++w) {
      reference.at(s, w, 0) = v;
      reference.at(s, w, 1) = 2.0f;
      v += 2.0f;
    }
  }
  BaselineBuilder builder(BaselineKind::kPopulationMean);
  EXPECT_FALSE(builder.fitted());
  builder.FitPopulation(reference);
  EXPECT_TRUE(builder.fitted());
  const std::vector<std::vector<float>> series = {{9.0f, 9.0f}, {9.0f, 9.0f}};
  const std::vector<std::vector<float>> baseline = builder.Series(series);
  for (const std::vector<float>& window : baseline) {
    EXPECT_FLOAT_EQ(window[0], 4.0f);
    EXPECT_FLOAT_EQ(window[1], 2.0f);
  }
  EXPECT_FLOAT_EQ(builder.Cell(series, 1, 0), 4.0f);
}

TEST(BaselineBuilderTest, ZeroBaselineIsAllZeros) {
  BaselineBuilder builder(BaselineKind::kZero);
  const std::vector<std::vector<float>> series = {{1.0f, -2.0f},
                                                  {3.0f, 4.0f}};
  for (const std::vector<float>& window : builder.Series(series)) {
    for (float value : window) EXPECT_FLOAT_EQ(value, 0.0f);
  }
  EXPECT_FLOAT_EQ(builder.Cell(series, 1, 1), 0.0f);
}

// ---------------------------------------------------------------------------
// Rank correlation

TEST(FidelityTest, SpearmanHandlesTiesAndDirection) {
  EXPECT_DOUBLE_EQ(
      SpearmanRankCorrelation({1.0, 2.0, 3.0, 4.0}, {2.0, 4.0, 6.0, 8.0}),
      1.0);
  EXPECT_DOUBLE_EQ(
      SpearmanRankCorrelation({1.0, 2.0, 3.0, 4.0}, {8.0, 6.0, 4.0, 2.0}),
      -1.0);
  // Ties get average ranks: {1, 2, 2, 3} vs itself is still perfect.
  EXPECT_DOUBLE_EQ(
      SpearmanRankCorrelation({1.0, 2.0, 2.0, 3.0}, {1.0, 2.0, 2.0, 3.0}),
      1.0);
  // A constant vector has no ranking to correlate with.
  EXPECT_DOUBLE_EQ(
      SpearmanRankCorrelation({5.0, 5.0, 5.0, 5.0}, {1.0, 2.0, 3.0, 4.0}),
      0.0);
}

// ---------------------------------------------------------------------------
// Determinism contract

class InterpretDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("TRACER_GEMM");
    gemm::ReloadKernelEnvForTesting();
  }

  static core::Titv MakeModel() {
    core::TitvConfig config;
    config.input_dim = 6;
    config.rnn_dim = 5;
    config.film_dim = 4;
    config.seed = 77;
    return core::Titv(config);
  }
};

TEST_F(InterpretDeterminismTest, AttributionsBitwiseStableAcrossThreadsAndKernels) {
  ThreadBudgetGuard guard;
  core::Titv model = MakeModel();
  const std::vector<Tensor> xs = RandomBatch(/*batch=*/7, /*num_windows=*/4,
                                             /*dim=*/6, /*seed=*/55);

  auto attribute_both = [&] {
    ModelScorer scorer = WrapSequenceModel(&model);
    IntegratedGradientsOptions options;
    options.steps = 8;
    IntegratedGradients ig(scorer.tape,
                           BaselineBuilder(BaselineKind::kCarryForward),
                           options, scorer.reset);
    Occlusion occlusion(scorer.score, BaselineBuilder(BaselineKind::kZero));
    std::vector<float> flat = Flatten(ig.Attribute(xs));
    const std::vector<float> occ = Flatten(occlusion.Attribute(xs));
    flat.insert(flat.end(), occ.begin(), occ.end());
    return flat;
  };

  setenv("TRACER_GEMM", "naive", 1);
  gemm::ReloadKernelEnvForTesting();
  parallel::SetMaxThreads(1);
  const std::vector<float> reference = attribute_both();
  ASSERT_FALSE(reference.empty());

  for (const char* kernel : {"naive", "blocked"}) {
    setenv("TRACER_GEMM", kernel, 1);
    gemm::ReloadKernelEnvForTesting();
    for (int threads : {1, 2, 4, 8}) {
      parallel::SetMaxThreads(threads);
      const std::vector<float> got = attribute_both();
      ASSERT_EQ(got.size(), reference.size());
      EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                            reference.size() * sizeof(float)),
                0)
          << "kernel " << kernel << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace interpret
}  // namespace tracer
