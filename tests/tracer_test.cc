#include <cstdio>

#include <gtest/gtest.h>

#include "core/tracer.h"
#include "datagen/emr_generator.h"
#include "datagen/temperature_generator.h"

namespace tracer {
namespace core {
namespace {

struct Fixture {
  data::DatasetSplits splits;
  TracerConfig config;
};

Fixture MakeFixture() {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 900;
  gen.num_filler_features = 4;
  gen.deteriorating_rate = 0.3;
  gen.seed = 77;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(5);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  norm.Apply(&f.splits.test);
  f.config.model.input_dim = cohort.dataset.num_features();
  f.config.model.rnn_dim = 8;
  f.config.model.film_dim = 8;
  f.config.training.max_epochs = 25;
  f.config.training.learning_rate = 3e-3f;
  f.config.training.batch_size = 32;
  f.config.training.patience = 10;
  return f;
}

TEST(TracerTest, TrainEvaluateInterpretEndToEnd) {
  Fixture f = MakeFixture();
  Tracer tracer_framework(f.config);
  const train::TrainResult result =
      tracer_framework.Train(f.splits.train, f.splits.val);
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_GE(result.best_epoch, 1);

  const train::EvalResult eval = tracer_framework.Evaluate(f.splits.test);
  EXPECT_GT(eval.auc, 0.68);
  EXPECT_GT(eval.cel, 0.0);

  // Patient-level interpretation is well-formed.
  const PatientInterpretation patient =
      tracer_framework.InterpretPatient(f.splits.test, 0);
  EXPECT_EQ(patient.fi.size(),
            static_cast<size_t>(f.splits.test.num_windows()));
  EXPECT_EQ(patient.fi[0].size(),
            static_cast<size_t>(f.splits.test.num_features()));
  EXPECT_GE(patient.probability, 0.0f);
  EXPECT_LE(patient.probability, 1.0f);

  // Feature-level interpretation is well-formed and ordered.
  const FeatureInterpretation urea =
      tracer_framework.InterpretFeature(f.splits.test, "Urea");
  EXPECT_EQ(urea.windows.size(),
            static_cast<size_t>(f.splits.test.num_windows()));
  for (const auto& w : urea.windows) {
    EXPECT_LE(w.min, w.p25);
    EXPECT_LE(w.p25, w.median);
    EXPECT_LE(w.median, w.p75);
    EXPECT_LE(w.p75, w.max);
    EXPECT_GE(w.stddev, 0.0f);
  }
}

TEST(TracerTest, AlertFiresAboveThresholdOnly) {
  Fixture f = MakeFixture();
  f.config.alert_threshold = 0.0f;  // everything alerts
  Tracer always(f.config);
  const AlertDecision a = always.PredictAndAlert(f.splits.test, 0);
  EXPECT_TRUE(a.alert);

  f.config.alert_threshold = 1.1f;  // nothing alerts
  Tracer never(f.config);
  const AlertDecision b = never.PredictAndAlert(f.splits.test, 0);
  EXPECT_FALSE(b.alert);
  EXPECT_GE(b.probability, 0.0f);
  EXPECT_LE(b.probability, 1.0f);
}

TEST(TracerTest, InterpretFeatureRestrictedCohort) {
  Fixture f = MakeFixture();
  Tracer tracer_framework(f.config);
  const FeatureInterpretation all =
      tracer_framework.InterpretFeature(f.splits.test, "Urea");
  const FeatureInterpretation some =
      tracer_framework.InterpretFeature(f.splits.test, "Urea", {0, 1, 2});
  EXPECT_EQ(all.windows.size(), some.windows.size());
  // A 3-sample cohort has min == quantile bounds collapsing more often;
  // just verify it is well-formed and uses the right feature.
  EXPECT_EQ(some.feature_index, f.splits.test.FeatureIndex("Urea"));
}

TEST(TracerTest, CheckpointSaveLoadRoundTrip) {
  Fixture f = MakeFixture();
  Tracer a(f.config);
  f.config.training.max_epochs = 2;
  a.Train(f.splits.train, f.splits.val);
  const std::string path = ::testing::TempDir() + "/tracer_ckpt.bin";
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  Tracer b(f.config);
  ASSERT_TRUE(b.LoadCheckpoint(path).ok());
  // Predictions must now agree exactly.
  const auto pa = a.model().Predict(f.splits.test);
  const auto pb = b.model().Predict(f.splits.test);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(pa[i], pb[i]);
  }
  std::remove(path.c_str());
}

TEST(TracerTest, LoadCheckpointRejectsWrongArchitecture) {
  Fixture f = MakeFixture();
  Tracer a(f.config);
  const std::string path = ::testing::TempDir() + "/tracer_ckpt2.bin";
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());
  TracerConfig other = f.config;
  other.model.rnn_dim = f.config.model.rnn_dim * 2;
  Tracer b(other);
  EXPECT_FALSE(b.LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}


TEST(TracerTest, RegressionCheckpointPreservesOutputTransform) {
  // Train a tiny regression TRACER (the trainer standardises labels via
  // the output transform), save, reload into a fresh instance and check
  // predictions agree in the *original* label units.
  datagen::TemperatureConfig gen;
  gen.series_length = 300;
  datagen::TemperatureCohort cohort =
      datagen::GenerateTemperatureTrace(gen);
  Rng rng(9);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(splits.train);
  norm.Apply(&splits.train);
  norm.Apply(&splits.val);
  norm.Apply(&splits.test);

  TracerConfig config;
  config.model.input_dim = cohort.dataset.num_features();
  config.model.rnn_dim = 6;
  config.model.film_dim = 6;
  config.training.max_epochs = 4;
  Tracer a(config);
  a.Train(splits.train, splits.val);
  EXPECT_NE(a.model().output_scale(), 1.0f);  // transform was set

  const std::string path = ::testing::TempDir() + "/reg_ckpt.bin";
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());
  Tracer b(config);
  ASSERT_TRUE(b.LoadCheckpoint(path).ok());
  EXPECT_FLOAT_EQ(b.model().output_scale(), a.model().output_scale());
  EXPECT_FLOAT_EQ(b.model().output_offset(), a.model().output_offset());
  const auto pa = a.model().Predict(splits.test);
  const auto pb = b.model().Predict(splits.test);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(pa[i], pb[i]);
  }
  // Sanity: predictions are in °C, not standardized units.
  EXPECT_GT(pa[0], 5.0f);
  std::remove(path.c_str());
}

TEST(TracerDeathTest, UnknownFeatureNameChecks) {
  Fixture f = MakeFixture();
  Tracer tracer_framework(f.config);
  EXPECT_DEATH(
      tracer_framework.InterpretFeature(f.splits.test, "NOT_A_FEATURE"),
      "unknown feature");
}

}  // namespace
}  // namespace core
}  // namespace tracer
