// Property-based stress tests for the autograd engine: random expression
// DAGs built from the op library must match finite differences, regardless
// of shape, depth and sharing.

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "common/rng.h"

namespace tracer {
namespace autograd {
namespace {

// Builds a random scalar-valued expression over `leaves` (all same shape)
// by repeatedly combining intermediate values with random ops. Reuses
// intermediates, so the graph is a DAG with sharing, not a tree.
Variable RandomExpression(const std::vector<Variable>& leaves, Rng& rng,
                          int ops) {
  std::vector<Variable> pool = leaves;
  for (int k = 0; k < ops; ++k) {
    const Variable& a = pool[rng.UniformInt(pool.size())];
    const Variable& b = pool[rng.UniformInt(pool.size())];
    Variable next;
    switch (rng.UniformInt(7)) {
      case 0:
        next = Add(a, b);
        break;
      case 1:
        next = Sub(a, b);
        break;
      case 2:
        next = Mul(a, b);
        break;
      case 3:
        next = Tanh(a);
        break;
      case 4:
        next = Sigmoid(a);
        break;
      case 5:
        next = Scale(a, static_cast<float>(rng.Uniform(-2.0, 2.0)));
        break;
      default:
        next = AddScalar(a, static_cast<float>(rng.Uniform(-1.0, 1.0)));
    }
    pool.push_back(next);
  }
  // Always mix in the first leaf so the output depends on a trainable
  // parameter even when the random walk ends on a constant-only branch.
  return MeanAll(Add(pool.back(), Scale(leaves[0], 0.5f)));
}

class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, MatchesFiniteDifferences) {
  Rng rng(GetParam());
  Variable p0 = Variable::Parameter(Tensor::Randn({2, 3}, rng, 0.4f));
  Variable p1 = Variable::Parameter(Tensor::Randn({2, 3}, rng, 0.4f));
  Variable c = Variable::Constant(Tensor::Randn({2, 3}, rng, 0.4f));
  Rng graph_rng(GetParam() + 1000);
  // The same graph must be rebuilt identically inside the checker, so
  // capture the construction in a deterministic closure.
  auto forward = [&]() {
    Rng local(GetParam() + 2000);
    return RandomExpression({p0, p1, c}, local, 12);
  };
  EXPECT_LT(MaxGradError(forward, p0), 5e-2f);
  EXPECT_LT(MaxGradError(forward, p1), 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(AutogradStressTest, DeepChainGradientIsStable) {
  // 100 tanh compositions: gradients must stay finite (saturating but not
  // NaN/inf).
  Variable x = Variable::Parameter(Tensor::Full({1, 4}, 0.3f));
  Variable y = x;
  for (int i = 0; i < 100; ++i) y = Tanh(y);
  MeanAll(y).Backward();
  for (int64_t i = 0; i < x.grad().size(); ++i) {
    EXPECT_TRUE(std::isfinite(x.grad()[i]));
  }
}

TEST(AutogradStressTest, WideFanOutAccumulates) {
  // One parameter consumed by 64 branches: gradient = sum over branches.
  Variable x = Variable::Parameter(Tensor::Full({1, 1}, 2.0f));
  Variable acc;
  for (int i = 0; i < 64; ++i) {
    const Variable branch = Scale(x, 1.0f);
    acc = i == 0 ? branch : Add(acc, branch);
  }
  SumAll(acc).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 64.0f);
}

TEST(AutogradStressTest, RepeatedBackwardWithZeroGradIsIdempotent) {
  Rng rng(11);
  Variable x = Variable::Parameter(Tensor::Randn({3, 3}, rng));
  for (int round = 0; round < 3; ++round) {
    x.ZeroGrad();
    Variable y = MeanAll(Mul(x, x));
    y.Backward();
  }
  // After the final round the gradient equals 2x/9 exactly once.
  for (int64_t i = 0; i < x.grad().size(); ++i) {
    EXPECT_NEAR(x.grad()[i], 2.0f * x.value()[i] / 9.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace autograd
}  // namespace tracer
