// Property-based stress tests for the autograd engine: random expression
// DAGs built from the op library must match finite differences, regardless
// of shape, depth and sharing.

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "common/rng.h"

namespace tracer {
namespace autograd {
namespace {

// Builds a random scalar-valued expression over `leaves` (all same shape)
// by repeatedly combining intermediate values with random ops. Reuses
// intermediates, so the graph is a DAG with sharing, not a tree.
Variable RandomExpression(const std::vector<Variable>& leaves, Rng& rng,
                          int ops) {
  std::vector<Variable> pool = leaves;
  for (int k = 0; k < ops; ++k) {
    const Variable& a = pool[rng.UniformInt(pool.size())];
    const Variable& b = pool[rng.UniformInt(pool.size())];
    Variable next;
    switch (rng.UniformInt(7)) {
      case 0:
        next = Add(a, b);
        break;
      case 1:
        next = Sub(a, b);
        break;
      case 2:
        next = Mul(a, b);
        break;
      case 3:
        next = Tanh(a);
        break;
      case 4:
        next = Sigmoid(a);
        break;
      case 5:
        next = Scale(a, static_cast<float>(rng.Uniform(-2.0, 2.0)));
        break;
      default:
        next = AddScalar(a, static_cast<float>(rng.Uniform(-1.0, 1.0)));
    }
    pool.push_back(next);
  }
  // Always mix in the first leaf so the output depends on a trainable
  // parameter even when the random walk ends on a constant-only branch.
  return MeanAll(Add(pool.back(), Scale(leaves[0], 0.5f)));
}

class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, MatchesFiniteDifferences) {
  Rng rng(GetParam());
  Variable p0 = Variable::Parameter(Tensor::Randn({2, 3}, rng, 0.4f));
  Variable p1 = Variable::Parameter(Tensor::Randn({2, 3}, rng, 0.4f));
  Variable c = Variable::Constant(Tensor::Randn({2, 3}, rng, 0.4f));
  Rng graph_rng(GetParam() + 1000);
  // The same graph must be rebuilt identically inside the checker, so
  // capture the construction in a deterministic closure.
  auto forward = [&]() {
    Rng local(GetParam() + 2000);
    return RandomExpression({p0, p1, c}, local, 12);
  };
  EXPECT_LT(MaxGradError(forward, p0), 5e-2f);
  EXPECT_LT(MaxGradError(forward, p1), 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(AutogradStressTest, DeepChainGradientIsStable) {
  // 100 tanh compositions: gradients must stay finite (saturating but not
  // NaN/inf).
  Variable x = Variable::Parameter(Tensor::Full({1, 4}, 0.3f));
  Variable y = x;
  for (int i = 0; i < 100; ++i) y = Tanh(y);
  MeanAll(y).Backward();
  for (int64_t i = 0; i < x.grad().size(); ++i) {
    EXPECT_TRUE(std::isfinite(x.grad()[i]));
  }
}

TEST(AutogradStressTest, WideFanOutAccumulates) {
  // One parameter consumed by 64 branches: gradient = sum over branches.
  Variable x = Variable::Parameter(Tensor::Full({1, 1}, 2.0f));
  Variable acc;
  for (int i = 0; i < 64; ++i) {
    const Variable branch = Scale(x, 1.0f);
    acc = i == 0 ? branch : Add(acc, branch);
  }
  SumAll(acc).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 64.0f);
}

// --- Per-op finite-difference coverage -------------------------------------
//
// Every differentiable op in autograd/ops.h appears below exactly once, so
// a new op cannot ship without finite-difference verification: add a case
// here when adding an op (the graph validator's shape rules in
// graph_check.cc should gain a matching entry too).

struct OpGradCase {
  const char* name;
  std::vector<int> shape_a;
  std::vector<int> shape_b;
  /// Builds a scalar expression exercising the op from two parameters.
  Variable (*build)(const Variable& a, const Variable& b);
};

// Fixed targets for the loss ops (shapes match BuildBce/BuildMse below).
Tensor BceTargets() { return Tensor({4, 1}, {0.0f, 1.0f, 1.0f, 0.0f}); }
Tensor MseTargets() { return Tensor({4, 1}, {0.2f, -0.5f, 1.3f, 0.0f}); }

std::vector<OpGradCase> AllOpCases() {
  return {
      {"MatMul", {2, 3}, {3, 4},
       [](const Variable& a, const Variable& b) {
         return MeanAll(MatMul(a, b));
       }},
      {"BatchMatMul", {2, 3, 4}, {2, 4, 5},
       [](const Variable& a, const Variable& b) {
         return MeanAll(BatchMatMul(a, b));
       }},
      {"BatchMatMulBroadcastB", {3, 2, 4}, {4, 5},
       [](const Variable& a, const Variable& b) {
         // Rank-2 B shared by every slice: its gradient reduces over the
         // batch in ascending slice order.
         return MeanAll(BatchMatMul(a, b));
       }},
      {"BatchMatMulBatch1", {1, 3, 4}, {1, 4, 5},
       [](const Variable& a, const Variable& b) {
         return MeanAll(BatchMatMul(a, b));
       }},
      {"ConcatRows", {3, 4}, {2, 4},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Tanh(ConcatRows({a, b, a})));
       }},
      {"SliceRows", {5, 3}, {5, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(SliceRows(Mul(a, b), 1, 4));
       }},
      {"Reshape", {2, 6}, {2, 6},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Tanh(Reshape(Mul(a, b), {3, 4})));
       }},
      {"Add", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Add(a, b));
       }},
      {"Sub", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Sub(a, b));
       }},
      {"Mul", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Mul(a, b));
       }},
      {"AddRows", {3, 4}, {1, 4},
       [](const Variable& a, const Variable& b) {
         return MeanAll(AddRows(Tanh(a), b));
       }},
      {"MulColBroadcast", {3, 4}, {3, 1},
       [](const Variable& a, const Variable& b) {
         return MeanAll(MulColBroadcast(a, b));
       }},
      {"Scale", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Scale(Mul(a, b), 1.7f));
       }},
      {"AddScalar", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(AddScalar(Mul(a, b), -0.4f));
       }},
      {"Neg", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Neg(Mul(a, b)));
       }},
      {"OneMinus", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(OneMinus(Mul(a, b)));
       }},
      {"Sigmoid", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Sigmoid(Mul(a, b)));
       }},
      {"Tanh", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Tanh(Mul(a, b)));
       }},
      {"Relu", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         // Shifted away from the kink at 0: central differences straddling
         // it would disagree with the subgradient.
         return MeanAll(Relu(AddScalar(Mul(a, b), 1.5f)));
       }},
      {"ConcatCols", {3, 2}, {3, 4},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Tanh(ConcatCols(a, b)));
       }},
      {"ConcatColsMany", {3, 2}, {3, 2},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Sigmoid(ConcatColsMany({a, b, a})));
       }},
      {"SliceCols", {3, 5}, {3, 5},
       [](const Variable& a, const Variable& b) {
         return MeanAll(SliceCols(Mul(a, b), 1, 4));
       }},
      {"SoftmaxRows", {3, 4}, {3, 4},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Mul(SoftmaxRows(a), b));
       }},
      {"RowSums", {3, 4}, {3, 4},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Tanh(RowSums(Mul(a, b))));
       }},
      {"MeanAll", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Mul(a, b));
       }},
      {"SumAll", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return SumAll(Scale(Mul(a, b), 0.1f));
       }},
      {"Average", {2, 3}, {2, 3},
       [](const Variable& a, const Variable& b) {
         return MeanAll(Average({a, b, Mul(a, b)}));
       }},
      {"BinaryCrossEntropyWithLogits", {4, 1}, {4, 1},
       [](const Variable& a, const Variable& b) {
         return BinaryCrossEntropyWithLogits(Mul(a, b), BceTargets());
       }},
      {"MeanSquaredError", {4, 1}, {4, 1},
       [](const Variable& a, const Variable& b) {
         return MeanSquaredError(Mul(a, b), MseTargets());
       }},
  };
}

class OpGradCheckTest : public ::testing::TestWithParam<OpGradCase> {};

TEST_P(OpGradCheckTest, MatchesFiniteDifferences) {
  const OpGradCase& op_case = GetParam();
  Rng rng(99);
  Variable a =
      Variable::Parameter(Tensor::Randn(op_case.shape_a, rng, 0.5f));
  Variable b =
      Variable::Parameter(Tensor::Randn(op_case.shape_b, rng, 0.5f));
  auto forward = [&] { return op_case.build(a, b); };
  EXPECT_LT(MaxGradError(forward, a), 5e-2f) << op_case.name << " d/da";
  EXPECT_LT(MaxGradError(forward, b), 5e-2f) << op_case.name << " d/db";
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradCheckTest, ::testing::ValuesIn(AllOpCases()),
    [](const ::testing::TestParamInfo<OpGradCase>& param_info) {
      return std::string(param_info.param.name);
    });

TEST(AutogradStressTest, RepeatedBackwardWithZeroGradIsIdempotent) {
  Rng rng(11);
  Variable x = Variable::Parameter(Tensor::Randn({3, 3}, rng));
  for (int round = 0; round < 3; ++round) {
    x.ZeroGrad();
    Variable y = MeanAll(Mul(x, x));
    y.Backward();
  }
  // After the final round the gradient equals 2x/9 exactly once.
  for (int64_t i = 0; i < x.grad().size(); ++i) {
    EXPECT_NEAR(x.grad()[i], 2.0f * x.value()[i] / 9.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace autograd
}  // namespace tracer
