#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace autograd {
namespace {

constexpr float kTol = 2e-2f;  // float32 central differences

Tensor SmallRandom(std::vector<int> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, 0.5f);
}

TEST(VariableTest, ParameterAndConstantFlags) {
  Variable p = Variable::Parameter(Tensor::Ones({2, 2}));
  Variable c = Variable::Constant(Tensor::Ones({2, 2}));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_FALSE(c.requires_grad());
}

TEST(VariableTest, BackwardAccumulatesAcrossCalls) {
  Variable p = Variable::Parameter(Tensor::Full({1, 1}, 3.0f));
  Variable out1 = Scale(p, 2.0f);
  out1.Backward();
  EXPECT_FLOAT_EQ(p.grad()[0], 2.0f);
  Variable out2 = Scale(p, 2.0f);
  out2.Backward();
  EXPECT_FLOAT_EQ(p.grad()[0], 4.0f);  // accumulated
  p.ZeroGrad();
  EXPECT_FLOAT_EQ(p.grad()[0], 0.0f);
}

TEST(VariableTest, DiamondGraphGradientIsSummed) {
  // y = x*x + x*x should have dy/dx = 4x.
  Variable x = Variable::Parameter(Tensor::Full({1, 1}, 1.5f));
  Variable sq = Mul(x, x);
  Variable y = Add(sq, sq);
  y.Backward();
  EXPECT_NEAR(x.grad()[0], 4.0f * 1.5f, 1e-5f);
}

TEST(VariableTest, NoGradFlowsToConstants) {
  Variable x = Variable::Parameter(Tensor::Full({1, 1}, 2.0f));
  Variable c = Variable::Constant(Tensor::Full({1, 1}, 5.0f));
  Variable y = Mul(x, c);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
}

// ---- Gradient checks per op ----

TEST(GradCheckTest, MatMulLeft) {
  Variable a = Variable::Parameter(SmallRandom({3, 4}, 1));
  Variable b = Variable::Constant(SmallRandom({4, 2}, 2));
  const float err =
      MaxGradError([&] { return MeanAll(MatMul(a, b)); }, a);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, MatMulRight) {
  Variable a = Variable::Constant(SmallRandom({3, 4}, 3));
  Variable b = Variable::Parameter(SmallRandom({4, 2}, 4));
  const float err =
      MaxGradError([&] { return MeanAll(MatMul(a, b)); }, b);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, AddSubMul) {
  Variable a = Variable::Parameter(SmallRandom({3, 3}, 5));
  Variable b = Variable::Constant(SmallRandom({3, 3}, 6));
  EXPECT_LT(MaxGradError([&] { return MeanAll(Add(a, b)); }, a), kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(Sub(a, b)); }, a), kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(Mul(a, b)); }, a), kTol);
}

TEST(GradCheckTest, AddRowsBothInputs) {
  Variable a = Variable::Parameter(SmallRandom({4, 3}, 7));
  Variable row = Variable::Parameter(SmallRandom({1, 3}, 8));
  EXPECT_LT(MaxGradError([&] { return MeanAll(AddRows(a, row)); }, a), kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(AddRows(a, row)); }, row),
            kTol);
}

TEST(GradCheckTest, MulColBroadcastBothInputs) {
  Variable mat = Variable::Parameter(SmallRandom({4, 3}, 9));
  Variable col = Variable::Parameter(SmallRandom({4, 1}, 10));
  EXPECT_LT(
      MaxGradError([&] { return MeanAll(MulColBroadcast(mat, col)); }, mat),
      kTol);
  EXPECT_LT(
      MaxGradError([&] { return MeanAll(MulColBroadcast(mat, col)); }, col),
      kTol);
}

TEST(GradCheckTest, Nonlinearities) {
  Variable a = Variable::Parameter(SmallRandom({3, 4}, 11));
  EXPECT_LT(MaxGradError([&] { return MeanAll(Sigmoid(a)); }, a), kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(Tanh(a)); }, a), kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(Scale(a, -2.5f)); }, a), kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(AddScalar(a, 1.0f)); }, a),
            kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(OneMinus(a)); }, a), kTol);
}

TEST(GradCheckTest, ReluAwayFromKink) {
  // Keep values away from 0 so finite differences are valid.
  Tensor init({2, 3}, {0.5f, -0.7f, 1.2f, -1.1f, 0.9f, -0.3f});
  Variable a = Variable::Parameter(init);
  EXPECT_LT(MaxGradError([&] { return MeanAll(Relu(a)); }, a, 1e-3f), kTol);
}

TEST(GradCheckTest, ConcatAndSlice) {
  Variable a = Variable::Parameter(SmallRandom({3, 2}, 12));
  Variable b = Variable::Parameter(SmallRandom({3, 4}, 13));
  EXPECT_LT(MaxGradError([&] { return MeanAll(ConcatCols(a, b)); }, a),
            kTol);
  EXPECT_LT(MaxGradError([&] { return MeanAll(ConcatCols(a, b)); }, b),
            kTol);
  EXPECT_LT(
      MaxGradError([&] { return MeanAll(SliceCols(b, 1, 3)); }, b), kTol);
}

TEST(GradCheckTest, SoftmaxRows) {
  Variable a = Variable::Parameter(SmallRandom({3, 5}, 14));
  Variable weights = Variable::Constant(SmallRandom({3, 5}, 15));
  const float err = MaxGradError(
      [&] { return MeanAll(Mul(SoftmaxRows(a), weights)); }, a);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, RowSums) {
  Variable a = Variable::Parameter(SmallRandom({4, 3}, 16));
  Variable weights = Variable::Constant(SmallRandom({4, 1}, 17));
  const float err =
      MaxGradError([&] { return MeanAll(Mul(RowSums(a), weights)); }, a);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, SumAllAndAverage) {
  Variable a = Variable::Parameter(SmallRandom({2, 3}, 18));
  Variable b = Variable::Parameter(SmallRandom({2, 3}, 19));
  EXPECT_LT(MaxGradError([&] { return SumAll(a); }, a), kTol);
  EXPECT_LT(MaxGradError(
                [&] {
                  return MeanAll(Average({a, b, a}));
                },
                a),
            kTol);
}

TEST(GradCheckTest, BceWithLogits) {
  Variable logits = Variable::Parameter(SmallRandom({6, 1}, 20));
  Tensor targets({6, 1}, {1.0f, 0.0f, 1.0f, 1.0f, 0.0f, 0.0f});
  const float err = MaxGradError(
      [&] { return BinaryCrossEntropyWithLogits(logits, targets); },
      logits);
  EXPECT_LT(err, kTol);
}

TEST(GradCheckTest, MseLoss) {
  Variable pred = Variable::Parameter(SmallRandom({5, 1}, 21));
  Tensor targets = SmallRandom({5, 1}, 22);
  const float err = MaxGradError(
      [&] { return MeanSquaredError(pred, targets); }, pred);
  EXPECT_LT(err, kTol);
}

TEST(OpsValueTest, BceMatchesManualFormula) {
  Tensor logit_values({2, 1}, {0.8f, -1.3f});
  Tensor targets({2, 1}, {1.0f, 0.0f});
  Variable logits = Variable::Parameter(logit_values);
  Variable loss = BinaryCrossEntropyWithLogits(logits, targets);
  auto manual = [](double z, double y) {
    const double p = 1.0 / (1.0 + std::exp(-z));
    return -y * std::log(p) - (1.0 - y) * std::log(1.0 - p);
  };
  const double expected = 0.5 * (manual(0.8, 1.0) + manual(-1.3, 0.0));
  EXPECT_NEAR(loss.value()[0], expected, 1e-5);
}

TEST(OpsValueTest, BceStableForExtremeLogits) {
  Tensor logit_values({2, 1}, {60.0f, -60.0f});
  Tensor targets({2, 1}, {1.0f, 0.0f});
  Variable logits = Variable::Parameter(logit_values);
  Variable loss = BinaryCrossEntropyWithLogits(logits, targets);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], 0.0, 1e-5);
  loss.Backward();
  EXPECT_TRUE(std::isfinite(logits.grad()[0]));
}

TEST(OpsValueTest, SoftmaxRowsSumToOne) {
  Variable a = Variable::Constant(SmallRandom({4, 7}, 23));
  const Tensor s = SoftmaxRows(a).value();
  for (int i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 7; ++j) sum += s.at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace autograd
}  // namespace tracer
