// Tests for the autograd tape validator (autograd/graph_check.h): it must
// reject deliberately malformed tapes with the right issue kind, attribute
// non-finite values to the op that produced them, and pass the full TITV
// training graph clean.

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/graph_check.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "core/titv.h"
#include "data/dataset.h"
#include "datagen/emr_generator.h"
#include "train/trainer.h"

namespace tracer {
namespace autograd {
namespace {

bool HasIssue(const GraphReport& report, GraphIssueKind kind) {
  for (const GraphIssue& issue : report.issues) {
    if (issue.kind == kind) return true;
  }
  return false;
}

const GraphIssue* FindIssue(const GraphReport& report, GraphIssueKind kind) {
  for (const GraphIssue& issue : report.issues) {
    if (issue.kind == kind) return &issue;
  }
  return nullptr;
}

// Hand-assembles a tape node the way a buggy op implementation might: the
// public op library can no longer produce these shapes, so the malformed
// tapes are constructed directly from Node.
NodePtr MakeRawNode(const char* op, Tensor value, std::vector<NodePtr> parents,
                    bool with_backward) {
  auto node = std::make_shared<Node>();
  node->op = op;
  node->value = std::move(value);
  node->requires_grad = true;
  node->parents = std::move(parents);
  if (with_backward) node->backward_fn = [](Node&) {};
  return node;
}

TEST(GraphCheckTest, CleanElementwiseGraphPasses) {
  Rng rng(3);
  Variable x = Variable::Parameter(Tensor::Randn({4, 5}, rng));
  Variable y = Variable::Parameter(Tensor::Randn({4, 5}, rng));
  Variable loss = MeanAll(Mul(Sigmoid(Add(x, y)), Tanh(x)));
  const GraphReport report = ValidateGraph(loss);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.nodes_visited, 5);
  EXPECT_EQ(report.ToString(), "graph ok");
}

TEST(GraphCheckTest, DetectsMatMulShapeMismatch) {
  Variable a = Variable::Parameter(Tensor::Zeros({2, 3}));
  Variable b = Variable::Parameter(Tensor::Zeros({4, 5}));
  // 2x3 · 4x5 is undefined; a buggy kernel "produced" a 2x5 output anyway.
  Variable root(MakeRawNode("matmul", Tensor::Zeros({2, 5}),
                            {a.node(), b.node()}, /*with_backward=*/true));
  const GraphReport report = ValidateGraph(root);
  ASSERT_TRUE(HasIssue(report, GraphIssueKind::kShapeMismatch))
      << report.ToString();
  const GraphIssue* issue =
      FindIssue(report, GraphIssueKind::kShapeMismatch);
  EXPECT_EQ(issue->op, "matmul");
  EXPECT_NE(issue->message.find("inner dimensions"), std::string::npos)
      << issue->message;
}

TEST(GraphCheckTest, DetectsElementwiseShapeDrift) {
  Variable a = Variable::Parameter(Tensor::Zeros({2, 3}));
  Variable b = Variable::Parameter(Tensor::Zeros({2, 3}));
  // Output shape drifted from the inputs'.
  Variable root(MakeRawNode("add", Tensor::Zeros({3, 2}),
                            {a.node(), b.node()}, /*with_backward=*/true));
  EXPECT_TRUE(
      HasIssue(ValidateGraph(root), GraphIssueKind::kShapeMismatch));
}

TEST(GraphCheckTest, DetectsWrongArity) {
  Variable a = Variable::Parameter(Tensor::Zeros({2, 2}));
  Variable root(MakeRawNode("matmul", Tensor::Zeros({2, 2}), {a.node()},
                            /*with_backward=*/true));
  const GraphReport report = ValidateGraph(root);
  const GraphIssue* issue =
      FindIssue(report, GraphIssueKind::kShapeMismatch);
  ASSERT_NE(issue, nullptr) << report.ToString();
  EXPECT_NE(issue->message.find("expects 2 input(s)"), std::string::npos);
}

TEST(GraphCheckTest, DetectsDanglingNode) {
  Variable a = Variable::Parameter(Tensor::Zeros({2, 2}));
  // Interior node with parents but no backward closure: gradient flow into
  // `a` is silently severed.
  Variable root(MakeRawNode("tanh", Tensor::Zeros({2, 2}), {a.node()},
                            /*with_backward=*/false));
  EXPECT_TRUE(HasIssue(ValidateGraph(root), GraphIssueKind::kDanglingNode));
}

TEST(GraphCheckTest, DetectsNullParent) {
  Variable a = Variable::Parameter(Tensor::Zeros({2, 2}));
  Variable root(MakeRawNode("tanh", Tensor::Zeros({2, 2}),
                            {a.node(), nullptr}, /*with_backward=*/true));
  EXPECT_TRUE(HasIssue(ValidateGraph(root), GraphIssueKind::kNullParent));
}

TEST(GraphCheckTest, DetectsReferenceCycle) {
  // Ops without shape rules, so the only reportable defect is the cycle.
  NodePtr n1 = MakeRawNode("custom_a", Tensor::Zeros({1, 1}), {},
                           /*with_backward=*/true);
  NodePtr n2 = MakeRawNode("custom_b", Tensor::Zeros({1, 1}), {n1},
                           /*with_backward=*/true);
  n1->parents.push_back(n2);
  const GraphReport report = ValidateGraph(Variable(n2));
  EXPECT_TRUE(HasIssue(report, GraphIssueKind::kCycle)) << report.ToString();
  // Break the shared_ptr cycle so the test itself does not leak (the leak
  // on a real cycle is exactly what the validator warns about).
  n1->parents.clear();
}

TEST(GraphCheckTest, DetectsDoubleBackward) {
  Rng rng(7);
  Variable x = Variable::Parameter(Tensor::Randn({3, 3}, rng));
  Variable loss = MeanAll(Mul(x, x));
  loss.Backward();
  EXPECT_TRUE(ValidateGraph(loss).ok());
  loss.Backward();  // second pass over the same tape: interior grads doubled
  const GraphReport report = ValidateGraph(loss);
  EXPECT_TRUE(HasIssue(report, GraphIssueKind::kDoubleBackward))
      << report.ToString();
}

TEST(GraphCheckTest, NanTripwireNamesOriginatingOp) {
  Variable x = Variable::Parameter(Tensor::Full({2, 2}, 1.0e30f));
  // 1e30 * 1e30 overflows float: the mul node originates the Inf, and the
  // downstream mean only propagates it.
  Variable inf = Mul(x, x);
  Variable loss = MeanAll(inf);
  ValidateOptions options;
  options.check_nonfinite = true;
  const GraphReport report = ValidateGraph(loss, options);
  const GraphIssue* issue = FindIssue(report, GraphIssueKind::kNonFinite);
  ASSERT_NE(issue, nullptr) << report.ToString();
  EXPECT_EQ(issue->op, "mul");
  // Exactly one origin: mean_all's non-finite output is explained by its
  // input and must not be double-reported.
  int origins = 0;
  for (const GraphIssue& i : report.issues) {
    if (i.kind == GraphIssueKind::kNonFinite) ++origins;
  }
  EXPECT_EQ(origins, 1);
}

TEST(GraphCheckTest, NanTripwireFlagsPoisonedLeaf) {
  Tensor bad({2, 2});
  bad[3] = std::numeric_limits<float>::quiet_NaN();
  Variable x = Variable::Parameter(Tensor::Ones({2, 2}));
  Variable leaf = Variable::Constant(std::move(bad));
  Variable loss = MeanAll(Mul(x, leaf));
  ValidateOptions options;
  options.check_nonfinite = true;
  const GraphReport report = ValidateGraph(loss, options);
  const GraphIssue* issue = FindIssue(report, GraphIssueKind::kNonFinite);
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->op, "leaf");
}

TEST(GraphCheckTest, NanTripwireOffByDefault) {
  Variable x = Variable::Parameter(Tensor::Full({2, 2}, 1.0e30f));
  Variable loss = MeanAll(Mul(x, x));
  EXPECT_TRUE(ValidateGraph(loss).ok());
}

TEST(GraphCheckTest, IssueCapBoundsReportSize) {
  // A chain of dangling nodes: one issue per node, capped by max_issues.
  Variable a = Variable::Parameter(Tensor::Zeros({1, 1}));
  NodePtr tip = a.node();
  for (int i = 0; i < 16; ++i) {
    tip = MakeRawNode("custom_op", Tensor::Zeros({1, 1}), {tip},
                      /*with_backward=*/false);
  }
  ValidateOptions options;
  options.max_issues = 4;
  const GraphReport report = ValidateGraph(Variable(tip), options);
  EXPECT_EQ(static_cast<int>(report.issues.size()), 4);
}

// --- Full-model coverage ---------------------------------------------------

TEST(GraphCheckTest, FullTitvForwardBackwardGraphIsClean) {
  core::TitvConfig config;
  config.input_dim = 7;
  config.rnn_dim = 5;
  config.film_dim = 4;
  config.seed = 11;
  core::Titv model(config);

  const int batch = 6, windows = 4;
  Rng rng(13);
  std::vector<Variable> xs;
  xs.reserve(windows);
  for (int t = 0; t < windows; ++t) {
    xs.push_back(Variable::Constant(
        Tensor::Randn({batch, config.input_dim}, rng, 0.5f)));
  }
  Tensor targets({batch, 1});
  for (int i = 0; i < batch; ++i) targets[i] = static_cast<float>(i % 2);

  Variable loss = BinaryCrossEntropyWithLogits(model.Forward(xs), targets);
  ValidateOptions options;
  options.check_nonfinite = true;
  const GraphReport before = ValidateGraph(loss, options);
  EXPECT_TRUE(before.ok()) << before.ToString();
  // The TITV tape is a real DAG: two BiGRUs, FiLM modulation, attention and
  // the prediction head all contribute nodes.
  EXPECT_GT(before.nodes_visited, 100);

  loss.Backward();
  const GraphReport after = ValidateGraph(loss, options);
  EXPECT_TRUE(after.ok()) << after.ToString();
}

TEST(GraphCheckTest, TrainerValidateGraphFlagTrainsClean) {
  // End-to-end wiring: Fit with validate_graph on must run the validator on
  // every minibatch without tripping on a healthy model.
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 80;
  gen.num_filler_features = 2;
  gen.seed = 17;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(5);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);

  core::TitvConfig config;
  config.input_dim = cohort.dataset.num_features();
  config.rnn_dim = 4;
  config.film_dim = 4;
  core::Titv model(config);

  train::TrainConfig tc;
  tc.max_epochs = 2;
  tc.batch_size = 16;
  tc.validate_graph = true;
  const train::TrainResult result =
      train::Fit(&model, splits.train, splits.val, tc);
  EXPECT_EQ(result.epochs_run, 2);
  EXPECT_TRUE(std::isfinite(result.train_loss.back()));
}

}  // namespace
}  // namespace autograd
}  // namespace tracer
