#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/titv.h"
#include "data/dataset.h"
#include "datagen/emr_generator.h"
#include "tensor/tensor_ops.h"
#include "train/trainer.h"

namespace tracer {
namespace core {
namespace {

TitvConfig SmallConfig(int input_dim,
                       TitvAblation ablation = TitvAblation::kFull) {
  TitvConfig config;
  config.input_dim = input_dim;
  config.rnn_dim = 8;
  config.film_dim = 8;
  config.ablation = ablation;
  config.seed = 17;
  return config;
}

data::Batch RandomBatch(int batch, int windows, int features,
                        uint64_t seed) {
  Rng rng(seed);
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, batch,
                             windows, features);
  for (int i = 0; i < batch; ++i) {
    for (int t = 0; t < windows; ++t) {
      for (int d = 0; d < features; ++d) {
        ds.at(i, t, d) = static_cast<float>(rng.Uniform());
      }
    }
    ds.set_label(i, rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  return data::FullBatch(ds);
}

TEST(TitvTest, ForwardOutputShape) {
  Titv model(SmallConfig(5));
  const data::Batch batch = RandomBatch(6, 4, 5, 1);
  autograd::Variable out =
      model.Forward(nn::SequenceModel::ToVariables(batch));
  EXPECT_EQ(out.value().rows(), 6);
  EXPECT_EQ(out.value().cols(), 1);
}

TEST(TitvTest, AblationsProduceFiniteOutputs) {
  const data::Batch batch = RandomBatch(4, 3, 4, 2);
  for (TitvAblation ablation :
       {TitvAblation::kFull, TitvAblation::kInvariantOnly,
        TitvAblation::kVariantOnly, TitvAblation::kNoFilmModulation,
        TitvAblation::kNoBetaInPrediction,
        TitvAblation::kMultiplicativeCombine,
        TitvAblation::kLastStateSummary}) {
    Titv model(SmallConfig(4, ablation));
    autograd::Variable out =
        model.Forward(nn::SequenceModel::ToVariables(batch));
    for (int b = 0; b < 4; ++b) {
      EXPECT_TRUE(std::isfinite(out.value().at(b, 0)))
          << model.name() << " sample " << b;
    }
  }
}

TEST(TitvTest, AblationsChangeParameterCount) {
  const int d = 6;
  Titv full(SmallConfig(d, TitvAblation::kFull));
  Titv inv(SmallConfig(d, TitvAblation::kInvariantOnly));
  Titv var(SmallConfig(d, TitvAblation::kVariantOnly));
  EXPECT_GT(full.NumParameters(), inv.NumParameters());
  EXPECT_GT(full.NumParameters(), var.NumParameters());
}

TEST(TitvTest, GradientsFlowToAllParameters) {
  Titv model(SmallConfig(4));
  const data::Batch batch = RandomBatch(8, 3, 4, 3);
  autograd::Variable out =
      model.Forward(nn::SequenceModel::ToVariables(batch));
  autograd::Variable loss =
      autograd::BinaryCrossEntropyWithLogits(out, batch.labels);
  for (auto& p : model.Parameters()) p.ZeroGrad();
  loss.Backward();
  int nonzero_params = 0;
  for (auto& p : model.Parameters()) {
    float norm = 0.0f;
    const Tensor& g = p.grad();
    for (int64_t i = 0; i < g.size(); ++i) norm += g[i] * g[i];
    if (norm > 0.0f) ++nonzero_params;
  }
  // Every parameter tensor should receive some gradient (biases of gates
  // always do; weight matrices too for generic inputs).
  EXPECT_EQ(nonzero_params,
            static_cast<int>(model.Parameters().size()));
}

TEST(TitvTest, FeatureImportanceReconstructsPrediction) {
  // Eq. 18: ŷ = σ(Σ_t Σ_d FI(t,d)·x_{t,d} + b) must equal the model's own
  // forward output.
  Titv model(SmallConfig(5));
  const data::Batch batch = RandomBatch(7, 4, 5, 4);
  const FeatureImportanceTrace trace =
      model.ComputeFeatureImportance(batch, /*classification=*/true);
  autograd::Variable logits =
      model.Forward(nn::SequenceModel::ToVariables(batch));
  double first_bias = 0.0;
  for (int b = 0; b < batch.batch_size(); ++b) {
    double acc = 0.0;
    for (size_t t = 0; t < trace.fi.size(); ++t) {
      for (int d = 0; d < 5; ++d) {
        acc += static_cast<double>(trace.fi[t].at(b, d)) *
               batch.xs[t].at(b, d);
      }
    }
    // The trace's output must be the sigmoid of the model's own logit.
    const double logit = static_cast<double>(logits.value().at(b, 0));
    const double sigma = 1.0 / (1.0 + std::exp(-logit));
    EXPECT_NEAR(trace.outputs.at(b, 0), sigma, 1e-4) << "sample " << b;
    // The decomposition Σ FI·x must explain the logit up to the bias term,
    // which is identical across samples.
    const double bias = logit - acc;
    if (b == 0) {
      first_bias = bias;
    } else {
      EXPECT_NEAR(bias, first_bias, 1e-3) << "bias not constant across batch";
    }
  }
}

TEST(TitvTest, InvariantOnlyFiIsConstantAcrossWindows) {
  Titv model(SmallConfig(4, TitvAblation::kInvariantOnly));
  const data::Batch batch = RandomBatch(3, 5, 4, 5);
  const FeatureImportanceTrace trace =
      model.ComputeFeatureImportance(batch);
  for (int b = 0; b < 3; ++b) {
    for (int d = 0; d < 4; ++d) {
      for (size_t t = 1; t < trace.fi.size(); ++t) {
        EXPECT_FLOAT_EQ(trace.fi[t].at(b, d), trace.fi[0].at(b, d));
      }
    }
  }
}

TEST(TitvTest, VariantOnlyHasZeroBeta) {
  Titv model(SmallConfig(4, TitvAblation::kVariantOnly));
  const data::Batch batch = RandomBatch(3, 4, 4, 6);
  const FeatureImportanceTrace trace =
      model.ComputeFeatureImportance(batch);
  for (int64_t i = 0; i < trace.beta.size(); ++i) {
    EXPECT_FLOAT_EQ(trace.beta[i], 0.0f);
  }
}

TEST(TitvTest, StateDictRoundTrip) {
  Titv model(SmallConfig(4));
  const data::Batch batch = RandomBatch(4, 3, 4, 7);
  const auto xs = nn::SequenceModel::ToVariables(batch);
  const Tensor before = model.Forward(xs).value();
  const std::vector<Tensor> state = model.StateDict();

  // Perturb all parameters, verify output changes, then restore.
  for (auto& p : model.Parameters()) {
    Tensor& v = p.mutable_value();
    for (int64_t i = 0; i < v.size(); ++i) v[i] += 0.25f;
  }
  const Tensor perturbed = model.Forward(xs).value();
  EXPECT_GT(MaxAbsDiff(before, perturbed), 1e-4f);

  model.LoadStateDict(state);
  const Tensor restored = model.Forward(xs).value();
  EXPECT_LT(MaxAbsDiff(before, restored), 1e-6f);
}


TEST(TitvTest, RegressionFiReconstructsCalibratedPrediction) {
  // With an output transform set (regression calibration), Eq. 18 becomes
  // ŷ = scale·(Σ FI'·x + b) + offset where FI' absorbs the scale; the trace
  // outputs must equal the calibrated prediction.
  Titv model(SmallConfig(4));
  model.SetOutputTransform(2.5f, 10.0f);
  data::Batch batch = RandomBatch(5, 3, 4, 11);
  const FeatureImportanceTrace trace =
      model.ComputeFeatureImportance(batch, /*classification=*/false);
  autograd::Variable raw =
      model.Forward(nn::SequenceModel::ToVariables(batch));
  for (int b = 0; b < batch.batch_size(); ++b) {
    const double expected = 2.5 * raw.value().at(b, 0) + 10.0;
    EXPECT_NEAR(trace.outputs.at(b, 0), expected, 1e-4);
    // The FI decomposition carries the scale: Σ FI·x + scale·bias + offset
    // must reproduce the calibrated output.
    double acc = 0.0;
    for (size_t t = 0; t < trace.fi.size(); ++t) {
      for (int d = 0; d < 4; ++d) {
        acc += static_cast<double>(trace.fi[t].at(b, d)) *
               batch.xs[t].at(b, d);
      }
    }
    const double residual = trace.outputs.at(b, 0) - acc;
    // residual = scale·bias + offset: identical across samples.
    static double first_residual = 0.0;
    if (b == 0) {
      first_residual = residual;
    } else {
      EXPECT_NEAR(residual, first_residual, 1e-3);
    }
  }
}

TEST(TitvIntegrationTest, LearnsSyntheticAkiCohort) {
  datagen::EmrCohortConfig config = datagen::NuhAkiDefaultConfig();
  config.num_samples = 600;
  config.num_filler_features = 4;
  config.deteriorating_rate = 0.3;
  config.seed = 99;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(config);

  Rng rng(1);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer normalizer;
  normalizer.Fit(splits.train);
  normalizer.Apply(&splits.train);
  normalizer.Apply(&splits.val);
  normalizer.Apply(&splits.test);

  Titv model(SmallConfig(cohort.dataset.num_features()));
  train::TrainConfig tc;
  tc.max_epochs = 15;
  tc.batch_size = 32;
  tc.patience = 15;
  const train::TrainResult result =
      train::Fit(&model, splits.train, splits.val, tc);
  EXPECT_GT(result.epochs_run, 0);
  // Training loss must fall substantially.
  EXPECT_LT(result.train_loss.back(), result.train_loss.front());

  const train::EvalResult eval = train::Evaluate(&model, splits.test);
  EXPECT_GT(eval.auc, 0.75) << "TITV failed to learn the planted signal";
}

}  // namespace
}  // namespace core
}  // namespace tracer
