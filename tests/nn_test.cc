#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/serialization.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace nn {
namespace {

using autograd::Variable;

TEST(LinearTest, OutputShapeAndAffine) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  Variable x = Variable::Constant(Tensor::Ones({4, 3}));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.value().rows(), 4);
  EXPECT_EQ(y.value().cols(), 2);
  // All rows identical for identical inputs.
  for (int j = 0; j < 2; ++j) {
    for (int i = 1; i < 4; ++i) {
      EXPECT_FLOAT_EQ(y.value().at(i, j), y.value().at(0, j));
    }
  }
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Tensor input = Tensor::Randn({4, 3}, rng, 0.5f);
  Variable x = Variable::Constant(input);
  auto forward = [&] { return autograd::MeanAll(layer.Forward(x)); };
  EXPECT_LT(autograd::MaxGradError(forward, layer.weight()), 2e-2f);
  EXPECT_LT(autograd::MaxGradError(forward, layer.bias()), 2e-2f);
}

TEST(LinearTest, ParameterCount) {
  Rng rng(3);
  Linear layer(5, 3, rng);
  EXPECT_EQ(layer.NumParameters(), 5 * 3 + 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(GruCellTest, StepShape) {
  Rng rng(4);
  GruCell cell(3, 6, rng);
  Variable x = Variable::Constant(Tensor::Randn({2, 3}, rng));
  Variable h = Variable::Constant(Tensor::Zeros({2, 6}));
  Variable out = cell.Step(x, h);
  EXPECT_EQ(out.value().rows(), 2);
  EXPECT_EQ(out.value().cols(), 6);
}

TEST(GruCellTest, ZeroUpdateGateKeepsCandidateMix) {
  // With zero hidden state and generic input the output must lie in
  // (-1, 1) since it is a convex combination of tanh output and zeros.
  Rng rng(5);
  GruCell cell(4, 5, rng);
  Variable x = Variable::Constant(Tensor::Randn({3, 4}, rng, 2.0f));
  Variable h = Variable::Constant(Tensor::Zeros({3, 5}));
  const Tensor out = cell.Step(x, h).value();
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out[i], -1.0f);
    EXPECT_LT(out[i], 1.0f);
  }
}

TEST(GruCellTest, GradCheckThroughStep) {
  Rng rng(6);
  GruCell cell(2, 3, rng);
  Tensor input = Tensor::Randn({2, 2}, rng, 0.5f);
  Variable x = Variable::Constant(input);
  Variable h0 = Variable::Constant(Tensor::Zeros({2, 3}));
  auto forward = [&] {
    return autograd::MeanAll(cell.Step(x, cell.Step(x, h0)));
  };
  // Check one weight from each gate family.
  const auto params = cell.NamedParameters();
  for (const auto& [name, param] : params) {
    EXPECT_LT(autograd::MaxGradError(forward, param), 3e-2f) << name;
  }
}

TEST(GruTest, RunLengthAndReverseDiffer) {
  Rng rng(7);
  Gru gru(3, 4, rng);
  std::vector<Variable> xs;
  for (int t = 0; t < 5; ++t) {
    xs.push_back(Variable::Constant(Tensor::Randn({2, 3}, rng)));
  }
  const auto fwd = gru.Run(xs, false);
  const auto bwd = gru.Run(xs, true);
  ASSERT_EQ(fwd.size(), 5u);
  ASSERT_EQ(bwd.size(), 5u);
  // Forward state at t=0 saw only x_0; backward state at t=0 saw all.
  EXPECT_GT(MaxAbsDiff(fwd[0].value(), bwd[0].value()), 1e-5f);
}

TEST(GruTest, CausalityForward) {
  // Changing x at the final step must not affect earlier hidden states.
  Rng rng(8);
  Gru gru(2, 3, rng);
  Rng data_rng(9);
  std::vector<Tensor> inputs;
  for (int t = 0; t < 4; ++t) {
    inputs.push_back(Tensor::Randn({1, 2}, data_rng));
  }
  auto run = [&](const std::vector<Tensor>& raw) {
    std::vector<Variable> xs;
    for (const Tensor& x : raw) xs.push_back(Variable::Constant(x));
    return gru.Run(xs, false);
  };
  const auto base = run(inputs);
  std::vector<Tensor> perturbed = inputs;
  perturbed[3].at(0, 0) += 10.0f;
  const auto changed = run(perturbed);
  for (int t = 0; t < 3; ++t) {
    EXPECT_LT(MaxAbsDiff(base[t].value(), changed[t].value()), 1e-7f)
        << "future leaked into step " << t;
  }
  EXPECT_GT(MaxAbsDiff(base[3].value(), changed[3].value()), 1e-6f);
}

TEST(BiGruTest, OutputDimIsTwiceHidden) {
  Rng rng(10);
  BiGru rnn(3, 4, rng);
  std::vector<Variable> xs;
  for (int t = 0; t < 3; ++t) {
    xs.push_back(Variable::Constant(Tensor::Randn({2, 3}, rng)));
  }
  const auto states = rnn.Run(xs);
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0].value().cols(), 8);
  EXPECT_EQ(rnn.output_dim(), 8);
}

TEST(BiGruTest, BackwardHalfSeesOnlyFuture) {
  Rng rng(11);
  BiGru rnn(2, 3, rng);
  Rng data_rng(12);
  std::vector<Tensor> inputs;
  for (int t = 0; t < 4; ++t) {
    inputs.push_back(Tensor::Randn({1, 2}, data_rng));
  }
  auto run = [&](const std::vector<Tensor>& raw) {
    std::vector<Variable> xs;
    for (const Tensor& x : raw) xs.push_back(Variable::Constant(x));
    return rnn.Run(xs);
  };
  const auto base = run(inputs);
  std::vector<Tensor> perturbed = inputs;
  perturbed[0].at(0, 0) += 10.0f;  // change the first input
  const auto changed = run(perturbed);
  // The backward half at the last window only saw x_T, so it must be
  // unchanged; the forward half must change.
  const Tensor base_bwd = SliceCols(base[3].value(), 3, 6);
  const Tensor changed_bwd = SliceCols(changed[3].value(), 3, 6);
  EXPECT_LT(MaxAbsDiff(base_bwd, changed_bwd), 1e-7f);
  const Tensor base_fwd = SliceCols(base[3].value(), 0, 3);
  const Tensor changed_fwd = SliceCols(changed[3].value(), 0, 3);
  EXPECT_GT(MaxAbsDiff(base_fwd, changed_fwd), 1e-6f);
}

TEST(ModuleTest, NamedParametersAreHierarchical) {
  Rng rng(13);
  BiGru rnn(2, 3, rng);
  const auto named = rnn.NamedParameters();
  EXPECT_EQ(named.size(), 18u);  // 2 directions × 9 GRU tensors
  bool found = false;
  for (const auto& [name, param] : named) {
    if (name == "fwd.cell.w_z") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SerializationTest, CheckpointRoundTrip) {
  Rng rng(14);
  std::vector<std::pair<std::string, Tensor>> tensors;
  tensors.emplace_back("a", Tensor::Randn({3, 4}, rng));
  tensors.emplace_back("b.c", Tensor::Randn({1, 7}, rng));
  const std::string path = ::testing::TempDir() + "/ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpoint(path, tensors).ok());
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  const auto& restored = loaded.value();
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored[0].first, "a");
  EXPECT_EQ(restored[1].first, "b.c");
  EXPECT_LT(MaxAbsDiff(restored[0].second, tensors[0].second), 1e-9f);
  EXPECT_LT(MaxAbsDiff(restored[1].second, tensors[1].second), 1e-9f);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIOError) {
  auto loaded = LoadCheckpoint("/nonexistent/path/ckpt.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, GarbageFileIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint at all", f);
  std::fclose(f);
  auto loaded = LoadCheckpoint(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace tracer
