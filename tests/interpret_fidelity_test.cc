// Fidelity gates for the attribution subsystem (src/interpret/fidelity.h),
// run as ctest properties per the robustness suite's contract:
//  - deletion perturbation curves are monotone (AUC-drop) for IG and
//    occlusion on a trained TITV,
//  - per-feature attribution saliency rank-correlates >= 0.8 with the
//    generator's planted importances,
//  - model randomization degrades attributions (trained vs freshly
//    initialised model decorrelate) on TITV and on two baseline families
//    (LR, BIRNN).
//
// The cohort is tuned for signal: low observation noise and small patient
// offsets so the planted panel ordering is learnable in a few epochs. The
// full-noise regime is exercised by the bench artifact
// (bench/interp_fidelity.cc), which reports rather than gates.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/birnn_model.h"
#include "baselines/logistic_regression.h"
#include "common/rng.h"
#include "core/tracer.h"
#include "data/dataset.h"
#include "datagen/emr_generator.h"
#include "interpret/adapters.h"
#include "interpret/attribution.h"
#include "interpret/fidelity.h"
#include "train/trainer.h"

namespace tracer {
namespace interpret {
namespace {

struct Suite {
  datagen::EmrCohort cohort;
  data::DatasetSplits splits;
  std::unique_ptr<core::Tracer> framework;
  /// Test-split indices of the highest-risk samples — the cohort slice
  /// where deletion toward the population mean must walk the score down.
  std::vector<int> top_indices;
  data::Batch top_batch;
  BaselineBuilder population{BaselineKind::kPopulationMean};
};

Suite* BuildSuite() {
  auto* s = new Suite;
  datagen::EmrCohortConfig config = datagen::NuhAkiDefaultConfig();
  config.num_samples = 3000;
  config.num_filler_features = 8;
  config.noise_multiplier = 0.4;
  config.patient_offset_scale = 0.0;
  config.benign_severity = 0.2;
  config.expression_gain = 0.0;
  config.seed = 11;
  s->cohort = datagen::GenerateNuhAkiCohort(config);

  Rng rng(12);
  s->splits = data::SplitDataset(s->cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(s->splits.train);
  norm.Apply(&s->splits.train);
  norm.Apply(&s->splits.val);
  norm.Apply(&s->splits.test);

  core::TracerConfig tracer_config;
  tracer_config.model.input_dim = s->cohort.dataset.num_features();
  tracer_config.model.rnn_dim = 16;
  tracer_config.model.film_dim = 8;
  tracer_config.model.seed = 17;
  tracer_config.training.max_epochs = 25;
  tracer_config.training.patience = 8;
  tracer_config.training.learning_rate = 3e-3f;
  tracer_config.training.seed = 18;
  s->framework = std::make_unique<core::Tracer>(tracer_config);
  s->framework->Train(s->splits.train, s->splits.val);

  const std::vector<float> probabilities =
      s->framework->model().Predict(s->splits.test);
  std::vector<int> order(probabilities.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return probabilities[a] > probabilities[b];
  });
  order.resize(std::min<size_t>(16, order.size()));
  s->top_indices = order;
  s->top_batch = data::MakeBatch(s->splits.test, s->top_indices);

  s->population.FitPopulation(s->splits.train);
  return s;
}

const Suite& GetSuite() {
  static Suite* suite = BuildSuite();
  return *suite;
}

AttributionResult Attribute(Method method, core::Titv* model,
                            const std::vector<Tensor>& xs,
                            const BaselineBuilder& baseline) {
  ModelScorer scorer = WrapSequenceModel(model);
  switch (method) {
    case Method::kTitvNative: {
      TitvAttributor attributor(model, /*classification=*/true);
      return attributor.Attribute(xs);
    }
    case Method::kIntegratedGradients: {
      IntegratedGradientsOptions options;
      options.steps = 16;
      IntegratedGradients attributor(scorer.tape, baseline, options,
                                     scorer.reset);
      return attributor.Attribute(xs);
    }
    case Method::kOcclusion: {
      Occlusion attributor(scorer.score, baseline);
      return attributor.Attribute(xs);
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Gate 1: deletion-AUC monotonicity for IG and occlusion

TEST(InterpretFidelityTest, DeletionCurveMonotoneForIgAndOcclusion) {
  const Suite& suite = GetSuite();
  core::Titv& model = suite.framework->model();
  ModelScorer scorer = WrapSequenceModel(&model);
  for (Method method : {Method::kIntegratedGradients, Method::kOcclusion}) {
    const AttributionResult attribution =
        Attribute(method, &model, suite.top_batch.xs, suite.population);
    const FidelityCurve curve = DeletionCurve(
        scorer.score, suite.top_batch.xs, attribution, suite.population);
    // High-risk samples sit above the population mean, so replacing the
    // most-attributed cells with their population values must walk the
    // score down — monotonically up to a small per-step tolerance, with a
    // positive total drop.
    EXPECT_TRUE(MonotoneWithin(curve, /*non_increasing=*/true, 0.10))
        << MethodName(method);
    EXPECT_GT(curve.auc, 0.0) << MethodName(method);
  }
}

TEST(InterpretFidelityTest, InsertionCurveRecoversScore) {
  const Suite& suite = GetSuite();
  core::Titv& model = suite.framework->model();
  ModelScorer scorer = WrapSequenceModel(&model);
  for (Method method : {Method::kIntegratedGradients, Method::kOcclusion}) {
    const AttributionResult attribution =
        Attribute(method, &model, suite.top_batch.xs, suite.population);
    const FidelityCurve curve = InsertionCurve(
        scorer.score, suite.top_batch.xs, attribution, suite.population);
    // Restoring observed cells into the population-mean input must recover
    // score: positive AUC (mean gain over the curve).
    EXPECT_GT(curve.auc, 0.0) << MethodName(method);
  }
}

// ---------------------------------------------------------------------------
// Gate 2: rank correlation against the generator's planted importances

// The ranking is gated on a weight-decayed linear model: ridge-regularised
// logistic regression distributes weight across the panel's correlated labs
// in proportion to each lab's signal-to-noise, so its *optimal* reliance
// ordering is the planted one — the gate then tests whether the
// attribution methods recover that reliance. (A recurrent model is free to
// concentrate on any subset of the redundant labs, so its per-feature
// ordering is not identified and would gate nothing.) The suite cohort
// carries eight pure-noise fillers so the correlation is dominated by the
// separation the methods must get right — planted signal above planted
// noise — rather than by fine orderings within the correlated lab group.
TEST(InterpretFidelityTest, SaliencyMatchesPlantedImportances) {
  const Suite& suite = GetSuite();
  const std::vector<double> relevance = PlantedRelevance(suite.cohort.panel);
  const data::Batch full = data::FullBatch(suite.splits.test);

  for (Method method : {Method::kIntegratedGradients, Method::kOcclusion}) {
    // Average the per-feature saliency across independently trained models:
    // any single fit carries seed noise in how it splits weight among the
    // correlated labs; the ensemble mean converges on the SNR-proportional
    // ridge optimum the planted relevance encodes.
    std::vector<double> saliency;
    const int kSeeds[] = {41, 42, 43};
    for (int seed : kSeeds) {
      train::TrainConfig config;
      config.max_epochs = 120;
      config.patience = 30;
      config.learning_rate = 5e-2f;
      config.weight_decay = 1e-3f;
      config.seed = seed;
      baselines::LogisticRegression model(suite.cohort.dataset.num_features(),
                                          baselines::LrInputMode::kAggregate,
                                          0, /*seed=*/seed);
      train::Fit(&model, suite.splits.train, suite.splits.val, config);
      ModelScorer scorer = WrapSequenceModel(&model);
      AttributionResult attribution;
      if (method == Method::kIntegratedGradients) {
        IntegratedGradientsOptions options;
        options.steps = 16;
        IntegratedGradients attributor(scorer.tape, suite.population, options,
                                       scorer.reset);
        attribution = attributor.Attribute(full.xs);
      } else {
        Occlusion attributor(scorer.score, suite.population);
        attribution = attributor.Attribute(full.xs);
      }
      const std::vector<double> per_model = MeanAbsPerFeature(attribution);
      if (saliency.empty()) saliency.assign(per_model.size(), 0.0);
      for (size_t d = 0; d < per_model.size(); ++d) {
        saliency[d] += per_model[d] / std::size(kSeeds);
      }
    }
    if (std::getenv("TRACER_FIDELITY_DEBUG") != nullptr) {
      for (size_t d = 0; d < saliency.size(); ++d) {
        std::printf("%-8s relevance %8.3f saliency %8.5f\n",
                    suite.cohort.panel[d].name.c_str(), relevance[d],
                    saliency[d]);
      }
    }
    const double corr = SpearmanRankCorrelation(saliency, relevance);
    EXPECT_GE(corr, 0.8) << MethodName(method);
  }
}

// ---------------------------------------------------------------------------
// Gate 3: model randomization degrades attributions

TEST(InterpretFidelityTest, RandomizationDecorrelatesTitvAttributions) {
  const Suite& suite = GetSuite();
  core::Titv& trained = suite.framework->model();
  core::TitvConfig config;
  config.input_dim = suite.cohort.dataset.num_features();
  config.rnn_dim = 12;
  config.film_dim = 8;
  config.seed = 99;
  core::Titv random(config);
  for (Method method : {Method::kTitvNative, Method::kIntegratedGradients,
                        Method::kOcclusion}) {
    const AttributionResult a =
        Attribute(method, &trained, suite.top_batch.xs, suite.population);
    const AttributionResult b =
        Attribute(method, &random, suite.top_batch.xs, suite.population);
    EXPECT_LT(std::fabs(AttributionCorrelation(a, b)), 0.5)
        << MethodName(method);
  }
}

TEST(InterpretFidelityTest, RandomizationDecorrelatesBaselineFamilies) {
  const Suite& suite = GetSuite();
  const int dim = suite.cohort.dataset.num_features();
  train::TrainConfig config;
  config.max_epochs = 10;
  config.patience = 4;
  config.seed = 21;

  // LR family (occlusion — the black-box path).
  baselines::LogisticRegression trained_lr(dim);
  train::Fit(&trained_lr, suite.splits.train, suite.splits.val, config);
  baselines::LogisticRegression random_lr(dim, baselines::LrInputMode::kAggregate,
                                          0, /*seed=*/123);
  {
    ModelScorer trained_scorer = WrapSequenceModel(&trained_lr);
    ModelScorer random_scorer = WrapSequenceModel(&random_lr);
    Occlusion a(trained_scorer.score, suite.population);
    Occlusion b(random_scorer.score, suite.population);
    EXPECT_LT(std::fabs(AttributionCorrelation(
                  a.Attribute(suite.top_batch.xs),
                  b.Attribute(suite.top_batch.xs))),
              0.5)
        << "LR";
  }

  // BIRNN family (integrated gradients — the tape path).
  baselines::BirnnModel trained_rnn(dim, /*hidden_dim=*/8, /*seed=*/31);
  train::Fit(&trained_rnn, suite.splits.train, suite.splits.val, config);
  baselines::BirnnModel random_rnn(dim, /*hidden_dim=*/8, /*seed=*/131);
  {
    ModelScorer trained_scorer = WrapSequenceModel(&trained_rnn);
    ModelScorer random_scorer = WrapSequenceModel(&random_rnn);
    IntegratedGradientsOptions options;
    options.steps = 8;
    IntegratedGradients a(trained_scorer.tape, suite.population, options,
                          trained_scorer.reset);
    IntegratedGradients b(random_scorer.tape, suite.population, options,
                          random_scorer.reset);
    EXPECT_LT(std::fabs(AttributionCorrelation(
                  a.Attribute(suite.top_batch.xs),
                  b.Attribute(suite.top_batch.xs))),
              0.5)
        << "BIRNN";
  }
}

}  // namespace
}  // namespace interpret
}  // namespace tracer
