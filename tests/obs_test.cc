// Tests for the observability stack (src/obs/): metrics registry under
// concurrency, histogram bucket semantics, exporter round-trips, trace span
// nesting/ordering, the ring-buffer sink, and the per-op autograd profiler.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/rng.h"
#include "obs/autograd_profiler.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tests/json_check.h"

namespace tracer {
namespace obs {
namespace {

// Every test in this file mutates process-global observability state; this
// fixture restores the quiescent default (everything off, everything zeroed)
// around each test so ordering cannot leak between tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    SetEnabled(false);
    AutogradProfiler::Global().SetEnabled(false);
    AutogradProfiler::Global().Reset();
    MetricsRegistry::Global().ResetForTest();
    TraceSink::Global().SetCapacity(4096);  // also clears
  }
};

TEST_F(ObsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetOrCreateCounter("tracer_test_basic_total");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42);
  // Same name returns the same handle.
  EXPECT_EQ(registry.GetOrCreateCounter("tracer_test_basic_total"), counter);

  Gauge* gauge = registry.GetOrCreateGauge("tracer_test_basic_depth");
  gauge->Set(3.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);

  Histogram* histogram = registry.GetOrCreateHistogram(
      "tracer_test_basic_seconds", {0.1, 1.0});
  histogram->Observe(0.05);
  histogram->Observe(0.5);
  EXPECT_EQ(histogram->count(), 2);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.55);
}

TEST_F(ObsTest, HistogramBucketBoundariesUseLeSemantics) {
  Histogram histogram({1.0, 2.0, 4.0});
  // A value exactly on a bound belongs to that bound's bucket (v <= bound).
  histogram.Observe(1.0);   // bucket le=1
  histogram.Observe(1.001); // bucket le=2
  histogram.Observe(2.0);   // bucket le=2
  histogram.Observe(4.0);   // bucket le=4
  histogram.Observe(4.5);   // +Inf
  histogram.Observe(-7.0);  // below every bound -> first bucket
  const std::vector<int64_t> cumulative = histogram.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(cumulative[0], 2);       // 1.0 and -7.0
  EXPECT_EQ(cumulative[1], 4);       // + 1.001, 2.0
  EXPECT_EQ(cumulative[2], 5);       // + 4.0
  EXPECT_EQ(cumulative[3], 6);       // + 4.5 (the +Inf bucket)
  EXPECT_EQ(histogram.count(), 6);
}

TEST_F(ObsTest, HistogramHandlesNegativeAndExtremeValues) {
  Histogram histogram({0.0, 10.0});
  histogram.Observe(-1e300);
  histogram.Observe(-0.5);
  histogram.Observe(0.0);
  histogram.Observe(1e300);
  const std::vector<int64_t> cumulative = histogram.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 3u);
  // Every negative value collapses into the first bucket (le="0").
  EXPECT_EQ(cumulative[0], 3);
  EXPECT_EQ(cumulative[1], 3);
  EXPECT_EQ(cumulative[2], 4);  // 1e300 only reaches +Inf
  EXPECT_EQ(histogram.count(), 4);
}

TEST_F(ObsTest, HistogramCumulativeInvariantHoldsUnderLoad) {
  Histogram histogram({1.0, 2.0, 3.0});
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    histogram.Observe(rng.Uniform(-1.0, 5.0));
  }
  const std::vector<int64_t> cumulative = histogram.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  // Cumulative counts are monotone and the +Inf bucket equals count():
  // the invariant Prometheus consumers rely on.
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_EQ(cumulative.back(), histogram.count());
  EXPECT_EQ(histogram.count(), 5000);
}

TEST_F(ObsTest, HistogramResetRacesObserveSafely) {
  // Exercised under TSan in CI: Reset concurrent with Observe must be
  // data-race-free. The post-condition is only checked after the threads
  // join (mid-flight counts are unspecified but must not corrupt).
  Histogram histogram({1.0});
  std::atomic<bool> stop{false};
  std::thread resetter([&histogram, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      histogram.Reset();
    }
  });
  {
    parallel::ThreadPool pool(4);
    for (int t = 0; t < 4; ++t) {
      pool.Submit([&histogram] {
        for (int i = 0; i < 20000; ++i) {
          histogram.Observe(i % 2 == 0 ? 0.5 : 1.5);
        }
      });
    }
    pool.WaitAll();
  }
  stop.store(true, std::memory_order_relaxed);
  resetter.join();
  histogram.Reset();
  histogram.Observe(0.25);
  EXPECT_EQ(histogram.count(), 1);
  EXPECT_EQ(histogram.CumulativeCounts().back(), 1);
}

TEST_F(ObsTest, RegistryConcurrencyHammer) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerTask = 10000;
  Counter* counter = registry.GetOrCreateCounter("tracer_test_hammer_total");
  Histogram* histogram = registry.GetOrCreateHistogram(
      "tracer_test_hammer_seconds", {0.5});
  {
    parallel::ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&registry, counter, histogram] {
        for (int i = 0; i < kIncrementsPerTask; ++i) {
          counter->Increment();
          histogram->Observe(i % 2 == 0 ? 0.25 : 0.75);
          if (i % 1000 == 0) {
            // Hammer creation too: lookups of an existing name must be safe
            // concurrently with updates and must return the same handle.
            EXPECT_EQ(
                registry.GetOrCreateCounter("tracer_test_hammer_total"),
                counter);
          }
        }
      });
    }
    pool.WaitAll();
  }
  EXPECT_EQ(counter->value(), kThreads * kIncrementsPerTask);
  EXPECT_EQ(histogram->count(), kThreads * kIncrementsPerTask);
  const std::vector<int64_t> cumulative = histogram->CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 2u);
  EXPECT_EQ(cumulative[0], kThreads * kIncrementsPerTask / 2);
  EXPECT_EQ(cumulative[1], kThreads * kIncrementsPerTask);
}

TEST_F(ObsTest, LogHistogramBucketPlacementAndQuantiles) {
  LogHistogram histogram;
  // Underflow: negatives, zero, sub-1 values and NaN all land below the
  // first decade.
  histogram.Observe(-5.0);
  histogram.Observe(0.0);
  histogram.Observe(0.5);
  histogram.Observe(std::numeric_limits<double>::quiet_NaN());
  // Interior decades.
  for (int i = 0; i < 96; ++i) histogram.Observe(1000.0);
  // Overflow: beyond the last decade.
  histogram.Observe(1e13);
  EXPECT_EQ(histogram.count(), 101);

  const std::vector<LogHistogram::Bucket> buckets =
      histogram.NonzeroBuckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].count, 4);  // the underflow bucket
  EXPECT_EQ(buckets[0].lower, 0.0);
  EXPECT_EQ(buckets[1].count, 96);
  // 1000 sits inside [lower, upper) of its log bucket.
  EXPECT_LE(buckets[1].lower, 1000.0);
  EXPECT_GT(buckets[1].upper, 1000.0);
  EXPECT_EQ(buckets[2].count, 1);  // overflow

  // The bulk of the mass is at 1000; the log-bucket estimate must land
  // within one bucket width (~15% relative error).
  EXPECT_NEAR(histogram.Quantile(0.5), 1000.0, 160.0);
  // p0 is in the underflow bucket, p100 in the overflow bucket.
  EXPECT_LT(histogram.Quantile(0.0), 1.0);
  EXPECT_GE(histogram.Quantile(1.0), 1e12);
  // Empty histogram: quantiles degrade to 0.
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0);
  EXPECT_EQ(histogram.Quantile(0.99), 0.0);
  EXPECT_TRUE(histogram.NonzeroBuckets().empty());
}

TEST_F(ObsTest, LogHistogramQuantileAccuracyOnUniformSpread) {
  LogHistogram histogram;
  // 1..100000 uniformly: every estimated quantile must be within one
  // log-bucket (10^(1/16) ~ 1.155x) of the exact order statistic.
  for (int i = 1; i <= 100000; ++i) {
    histogram.Observe(static_cast<double>(i));
  }
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = q * 100000.0;
    const double estimate = histogram.Quantile(q);
    EXPECT_GT(estimate, exact / 1.2) << "q=" << q;
    EXPECT_LT(estimate, exact * 1.2) << "q=" << q;
  }
}

TEST_F(ObsTest, LogHistogramKeepsExemplarsPerBucket) {
  LogHistogram histogram;
  histogram.Observe(100.0, /*exemplar_id=*/111);
  histogram.Observe(1e6, /*exemplar_id=*/222);
  // Same bucket, later sample wins.
  histogram.Observe(101.0, /*exemplar_id=*/333);
  // Zero exemplars never overwrite a real one.
  histogram.Observe(102.0, /*exemplar_id=*/0);
  EXPECT_EQ(histogram.ExemplarNear(100.0), 333u);
  EXPECT_EQ(histogram.ExemplarNear(1e6), 222u);
  // A bucket that never saw an exemplar reports 0.
  EXPECT_EQ(histogram.ExemplarNear(1e9), 0u);
}

TEST_F(ObsTest, LogHistogramRegistryAndExports) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  LogHistogram* histogram =
      registry.GetOrCreateLogHistogram("tracer_test_log_ns");
  EXPECT_EQ(registry.GetOrCreateLogHistogram("tracer_test_log_ns"),
            histogram);
  for (int i = 0; i < 100; ++i) {
    histogram->Observe(1000.0 + i, /*exemplar_id=*/7000 + i);
  }

  // Prometheus: exported as a summary with streaming quantiles.
  const std::string text = registry.ExportPrometheus();
  EXPECT_NE(text.find("# TYPE tracer_test_log_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("tracer_test_log_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tracer_test_log_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tracer_test_log_ns_count 100"), std::string::npos);

  // JSONL: one valid object carrying quantiles and exemplar-tagged buckets.
  const std::string jsonl = registry.ExportJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  bool found = false;
  while (std::getline(lines, line)) {
    if (line.find("\"metric\":\"tracer_test_log_ns\"") == std::string::npos) {
      continue;
    }
    found = true;
    ASSERT_TRUE(testutil::IsValidJson(line)) << line;
    EXPECT_NE(line.find("\"type\":\"log_histogram\""), std::string::npos);
    for (const char* key :
         {"\"p50\":", "\"p95\":", "\"p99\":", "\"buckets\":",
          "\"exemplar\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << key;
    }
  }
  EXPECT_TRUE(found);

  // ResetForTest zeroes the metric in place; the handle stays valid.
  registry.ResetForTest();
  EXPECT_EQ(
      registry.GetOrCreateLogHistogram("tracer_test_log_ns")->count(), 0);
}

TEST_F(ObsTest, LogHistogramConcurrentObserveIsLossless) {
  LogHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  {
    parallel::ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&histogram, t] {
        for (int i = 0; i < kPerThread; ++i) {
          histogram.Observe(static_cast<double>(1 + (t * kPerThread + i) % 9),
                            /*exemplar_id=*/static_cast<uint64_t>(t + 1));
        }
      });
    }
    pool.WaitAll();
  }
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (const LogHistogram::Bucket& bucket : histogram.NonzeroBuckets()) {
    bucket_total += bucket.count;
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST_F(ObsTest, PrometheusExportRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetOrCreateCounter("tracer_test_export_total")->Increment(7);
  registry.GetOrCreateGauge("tracer_test_export_depth")->Set(2.5);
  Histogram* histogram = registry.GetOrCreateHistogram(
      "tracer_test_export_seconds", {1.0, 10.0});
  histogram->Observe(0.5);
  histogram->Observe(3.0);
  histogram->Observe(100.0);

  const std::string text = registry.ExportPrometheus();
  // Parse the exposition text back: TYPE declarations and sample lines.
  std::map<std::string, std::string> types;   // metric -> declared type
  std::map<std::string, std::string> samples; // sample name -> value
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition text";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string metric, type;
      fields >> metric >> type;
      types[metric] = type;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = line.substr(space + 1);
  }
  EXPECT_EQ(types["tracer_test_export_total"], "counter");
  EXPECT_EQ(types["tracer_test_export_depth"], "gauge");
  EXPECT_EQ(types["tracer_test_export_seconds"], "histogram");
  EXPECT_EQ(samples["tracer_test_export_total"], "7");
  EXPECT_DOUBLE_EQ(std::stod(samples["tracer_test_export_depth"]), 2.5);
  // Histogram buckets are cumulative with an explicit +Inf bucket and
  // _sum/_count samples.
  EXPECT_EQ(samples["tracer_test_export_seconds_bucket{le=\"1\"}"], "1");
  EXPECT_EQ(samples["tracer_test_export_seconds_bucket{le=\"10\"}"], "2");
  EXPECT_EQ(samples["tracer_test_export_seconds_bucket{le=\"+Inf\"}"], "3");
  EXPECT_EQ(samples["tracer_test_export_seconds_count"], "3");
  EXPECT_DOUBLE_EQ(std::stod(samples["tracer_test_export_seconds_sum"]),
                   103.5);
}

TEST_F(ObsTest, JsonlExportRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetOrCreateCounter("tracer_test_jsonl_total")->Increment(3);
  registry.GetOrCreateGauge("tracer_test_jsonl_depth")->Set(-1.25);
  registry.GetOrCreateHistogram("tracer_test_jsonl_seconds", {1.0})
      ->Observe(0.5);

  const std::string jsonl = registry.ExportJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::set<std::string> seen_types;
  int parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(testutil::IsValidJson(line)) << line;
    const std::vector<std::string> keys = testutil::JsonObjectKeys(line);
    ASSERT_GE(keys.size(), 2u) << line;
    EXPECT_EQ(keys[0], "metric");
    EXPECT_EQ(keys[1], "type");
    if (line.find("\"type\":\"histogram\"") != std::string::npos) {
      seen_types.insert("histogram");
      EXPECT_NE(std::find(keys.begin(), keys.end(), "sum"), keys.end());
      EXPECT_NE(std::find(keys.begin(), keys.end(), "count"), keys.end());
      EXPECT_NE(std::find(keys.begin(), keys.end(), "buckets"), keys.end());
    } else if (line.find("\"type\":\"log_histogram\"") !=
               std::string::npos) {
      // Entries persist across tests (ResetForTest zeroes in place), so a
      // log histogram registered earlier may legitimately appear here.
      EXPECT_NE(std::find(keys.begin(), keys.end(), "p99"), keys.end());
    } else {
      EXPECT_NE(std::find(keys.begin(), keys.end(), "value"), keys.end());
      if (line.find("\"type\":\"counter\"") != std::string::npos) {
        seen_types.insert("counter");
      }
      if (line.find("\"type\":\"gauge\"") != std::string::npos) {
        seen_types.insert("gauge");
      }
    }
    ++parsed;
  }
  EXPECT_GE(parsed, 3);
  EXPECT_TRUE(seen_types.count("counter"));
  EXPECT_TRUE(seen_types.count("gauge"));
  EXPECT_TRUE(seen_types.count("histogram"));
}

TEST_F(ObsTest, SpanNestingRecordsParentAndDepth) {
  SetEnabled(true);
  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  {
    TRACER_SPAN("test.outer");
    {
      TRACER_SPAN("test.inner");
    }
  }
  const std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: the inner span closes (and records) first.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_STREQ(spans[0].parent, "test.outer");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_STREQ(spans[1].parent, "");
  EXPECT_EQ(spans[1].depth, 0);
  // The parent encloses the child in time.
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
  EXPECT_GT(spans[0].thread_id, 0);
  // And the dump is one valid JSON array.
  EXPECT_TRUE(testutil::IsValidJson(sink.DumpJson()));
}

TEST_F(ObsTest, SpansAreInertWhenDisabled) {
  ASSERT_FALSE(Enabled());
  TraceSink& sink = TraceSink::Global();
  sink.Clear();
  {
    TRACER_SPAN("test.disabled");
  }
  EXPECT_EQ(sink.Snapshot().size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
}

TEST_F(ObsTest, TraceSinkRingOverwritesOldest) {
  SetEnabled(true);
  TraceSink& sink = TraceSink::Global();
  sink.SetCapacity(3);
  static const char* kNames[] = {"s.0", "s.1", "s.2", "s.3", "s.4"};
  for (const char* name : kNames) {
    Span span(name);
  }
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 2u);
  const std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest-first among the surviving records.
  EXPECT_STREQ(spans[0].name, "s.2");
  EXPECT_STREQ(spans[1].name, "s.3");
  EXPECT_STREQ(spans[2].name, "s.4");
}

TEST_F(ObsTest, ThreadPoolExportsMetricsWhenEnabled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* tasks = registry.GetOrCreateCounter("tracer_pool_tasks_total");
  const int64_t disabled_baseline = tasks->value();
  {
    parallel::ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.Submit([] {});
    pool.WaitAll();
  }
  // Disabled: the pool must not touch the metrics.
  EXPECT_EQ(tasks->value(), disabled_baseline);

  SetEnabled(true);
  {
    parallel::ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.Submit([] {});
    pool.WaitAll();
  }
  EXPECT_EQ(tasks->value(), disabled_baseline + 10);
}

TEST_F(ObsTest, AutogradProfilerAttributesForwardAndBackward) {
  AutogradProfiler& profiler = AutogradProfiler::Global();
  profiler.SetEnabled(true);

  Rng rng(5);
  autograd::Variable a = autograd::Variable::Parameter(
      Tensor::Randn({4, 8}, rng));
  autograd::Variable b = autograd::Variable::Parameter(
      Tensor::Randn({8, 3}, rng));
  autograd::Variable loss =
      autograd::MeanAll(autograd::Sigmoid(autograd::MatMul(a, b)));
  loss.Backward();
  profiler.SetEnabled(false);

  const std::vector<OpProfile> profiles = profiler.Snapshot();
  ASSERT_FALSE(profiles.empty());
  std::map<std::string, OpProfile> by_op;
  for (const OpProfile& p : profiles) by_op[p.op] = p;
  for (const char* op : {"matmul", "sigmoid", "mean_all"}) {
    ASSERT_TRUE(by_op.count(op)) << op << " missing from profile";
    EXPECT_EQ(by_op[op].forward_calls, 1) << op;
    EXPECT_EQ(by_op[op].backward_calls, 1) << op;
  }
  // Snapshot is sorted by total time, descending.
  for (size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GE(profiles[i - 1].total_ns(), profiles[i].total_ns());
  }
  EXPECT_GT(profiler.TotalNs(), 0u);
  const std::string table = profiler.ReportTable();
  EXPECT_NE(table.find("matmul"), std::string::npos);

  profiler.Reset();
  EXPECT_EQ(profiler.TotalNs(), 0u);
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST_F(ObsTest, AutogradProfilerOffByDefaultRecordsNothing) {
  AutogradProfiler& profiler = AutogradProfiler::Global();
  ASSERT_FALSE(profiler.enabled());
  Rng rng(6);
  autograd::Variable a = autograd::Variable::Parameter(
      Tensor::Randn({2, 2}, rng));
  autograd::Variable loss = autograd::SumAll(autograd::Tanh(a));
  loss.Backward();
  EXPECT_EQ(profiler.TotalNs(), 0u);
  EXPECT_TRUE(profiler.Snapshot().empty());
}

TEST_F(ObsTest, JsonEscapingSurvivesRoundTrip) {
  JsonObject obj;
  obj.Add("text", std::string("quote\" slash\\ newline\n tab\t ctrl\x01"));
  obj.Add("nan", std::numeric_limits<double>::quiet_NaN());
  obj.Add("inf", std::numeric_limits<double>::infinity());
  const std::string json = obj.Build();
  EXPECT_TRUE(testutil::IsValidJson(json)) << json;
  // Non-finite numbers must degrade to null, not invalid JSON tokens.
  EXPECT_NE(json.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\":null"), std::string::npos);
}

TEST_F(ObsTest, ThreadIdsAreSmallAndStable) {
  const int id_first = ThreadId();
  const int id_second = ThreadId();
  EXPECT_EQ(id_first, id_second);
  EXPECT_GT(id_first, 0);
  const uint64_t t0 = MonotonicNowNs();
  const uint64_t t1 = MonotonicNowNs();
  EXPECT_GE(t1, t0);
}

}  // namespace
}  // namespace obs
}  // namespace tracer
