// Cross-module integration tests: the claims the paper's evaluation rests
// on, validated end-to-end at small scale.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/gbdt.h"
#include "baselines/logistic_regression.h"
#include "baselines/retain.h"
#include "core/tracer.h"
#include "datagen/emr_generator.h"
#include "datagen/stock_generator.h"
#include "datagen/temperature_generator.h"
#include "metrics/metrics.h"
#include "parallel/data_parallel.h"
#include "train/trainer.h"

namespace tracer {
namespace {

struct Cohort {
  data::DatasetSplits splits;
  int input_dim;
};

Cohort PrepareAki(int samples, uint64_t seed) {
  datagen::EmrCohortConfig config = datagen::NuhAkiDefaultConfig();
  config.num_samples = samples;
  config.deteriorating_rate = 0.25;
  config.seed = seed;
  const datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(config);
  Rng rng(seed + 1);
  Cohort out;
  out.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(out.splits.train);
  norm.Apply(&out.splits.train);
  norm.Apply(&out.splits.val);
  norm.Apply(&out.splits.test);
  out.input_dim = cohort.dataset.num_features();
  return out;
}

// The paper's central claim, in miniature: a sequence model (TITV)
// outperforms the aggregated linear baseline on EMR-like data whose signal
// lives in within-patient temporal change.
TEST(IntegrationTest, TracerBeatsAggregatedLrOnTemporalSignal) {
  Cohort cohort = PrepareAki(1500, 41);

  baselines::LogisticRegression lr_model(cohort.input_dim);
  train::TrainConfig lr_config;
  lr_config.max_epochs = 50;
  lr_config.patience = 10;
  lr_config.learning_rate = 2e-2f;
  train::Fit(&lr_model, cohort.splits.train, cohort.splits.val, lr_config);
  const double lr_auc =
      train::Evaluate(&lr_model, cohort.splits.test).auc;

  core::TracerConfig config;
  config.model.input_dim = cohort.input_dim;
  config.model.rnn_dim = 16;
  config.model.film_dim = 16;
  config.training.max_epochs = 45;
  config.training.patience = 10;
  config.training.learning_rate = 3e-3f;
  core::Tracer tracer_framework(config);
  tracer_framework.Train(cohort.splits.train, cohort.splits.val);
  const double tracer_auc =
      tracer_framework.Evaluate(cohort.splits.test).auc;

  EXPECT_GT(tracer_auc, lr_auc + 0.05)
      << "TRACER " << tracer_auc << " vs LR " << lr_auc;
}

// Ablation shape of Figure 13: the full model beats the invariant-only
// ablation (which collapses every window to the same importance).
TEST(IntegrationTest, FullModelBeatsInvariantOnly) {
  Cohort cohort = PrepareAki(1200, 43);
  auto train_variant = [&](core::TitvAblation ablation) {
    core::TitvConfig config;
    config.input_dim = cohort.input_dim;
    config.rnn_dim = 12;
    config.film_dim = 12;
    config.ablation = ablation;
    config.seed = 7;
    core::Titv model(config);
    train::TrainConfig tc;
    tc.max_epochs = 35;
    tc.patience = 10;
    tc.learning_rate = 3e-3f;
    train::Fit(&model, cohort.splits.train, cohort.splits.val, tc);
    return train::Evaluate(&model, cohort.splits.test).auc;
  };
  const double full = train_variant(core::TitvAblation::kFull);
  const double inv = train_variant(core::TitvAblation::kInvariantOnly);
  EXPECT_GT(full, inv) << "full " << full << " vs invariant-only " << inv;
}

// Interpretation faithfulness at the framework level: reloading the saved
// checkpoint must reproduce identical feature-importance values.
TEST(IntegrationTest, CheckpointPreservesInterpretation) {
  Cohort cohort = PrepareAki(400, 47);
  core::TracerConfig config;
  config.model.input_dim = cohort.input_dim;
  config.model.rnn_dim = 8;
  config.model.film_dim = 8;
  config.training.max_epochs = 5;
  core::Tracer a(config);
  a.Train(cohort.splits.train, cohort.splits.val);
  const std::string path = ::testing::TempDir() + "/interp_ckpt.bin";
  ASSERT_TRUE(a.SaveCheckpoint(path).ok());

  core::Tracer b(config);
  ASSERT_TRUE(b.LoadCheckpoint(path).ok());
  const core::PatientInterpretation ia =
      a.InterpretPatient(cohort.splits.test, 3);
  const core::PatientInterpretation ib =
      b.InterpretPatient(cohort.splits.test, 3);
  ASSERT_EQ(ia.fi.size(), ib.fi.size());
  for (size_t t = 0; t < ia.fi.size(); ++t) {
    for (size_t d = 0; d < ia.fi[t].size(); ++d) {
      EXPECT_FLOAT_EQ(ia.fi[t][d], ib.fi[t][d]);
    }
  }
  std::remove(path.c_str());
}

// Regression path end-to-end: TITV on the stock cohort must clearly beat
// predicting the training-mean index.
TEST(IntegrationTest, RegressionBeatsMeanPredictor) {
  datagen::StockMarketConfig market;
  market.series_length = 800;
  const datagen::StockCohort cohort = datagen::GenerateStockMarket(market);
  Rng rng(5);
  data::DatasetSplits splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(splits.train);
  norm.Apply(&splits.train);
  norm.Apply(&splits.val);
  norm.Apply(&splits.test);

  double mean_label = 0.0;
  for (float y : splits.train.labels()) mean_label += y;
  mean_label /= splits.train.num_samples();
  std::vector<float> mean_pred(splits.test.num_samples(),
                               static_cast<float>(mean_label));
  const double baseline_rmse =
      metrics::Rmse(mean_pred, splits.test.labels());

  core::TracerConfig config;
  config.model.input_dim = cohort.dataset.num_features();
  config.model.rnn_dim = 8;
  config.model.film_dim = 8;
  config.training.max_epochs = 35;
  config.training.learning_rate = 3e-3f;
  core::Tracer tracer_framework(config);
  tracer_framework.Train(splits.train, splits.val);
  const double model_rmse =
      tracer_framework.Evaluate(splits.test).rmse;
  EXPECT_LT(model_rmse, 0.75 * baseline_rmse)
      << "model " << model_rmse << " vs mean-predictor " << baseline_rmse;
}

// The GBDT and RETAIN baselines integrate with the same data pipeline and
// land in a sane band (neither degenerate nor perfect) on the AKI task.
TEST(IntegrationTest, BaselinesLandInSaneBand) {
  Cohort cohort = PrepareAki(1000, 53);
  baselines::GbdtConfig gconfig;
  gconfig.num_trees = 60;
  baselines::Gbdt gbdt(gconfig, data::TaskType::kBinaryClassification);
  gbdt.FitDataset(cohort.splits.train);
  const double gbdt_auc = metrics::Auc(
      gbdt.PredictDataset(cohort.splits.test), cohort.splits.test.labels());
  EXPECT_GT(gbdt_auc, 0.55);
  EXPECT_LT(gbdt_auc, 0.999);

  baselines::Retain retain(cohort.input_dim, 12, 12);
  train::TrainConfig tc;
  tc.max_epochs = 25;
  tc.patience = 10;
  tc.learning_rate = 3e-3f;
  train::Fit(&retain, cohort.splits.train, cohort.splits.val, tc);
  const double retain_auc =
      train::Evaluate(&retain, cohort.splits.test).auc;
  EXPECT_GT(retain_auc, 0.6);
}

// Data-parallel training converges to a model of comparable quality to
// single-threaded training (not just matching loss curves — also AUC).
TEST(IntegrationTest, DataParallelQualityMatchesSerial) {
  Cohort cohort = PrepareAki(800, 59);
  auto factory = [&]() -> std::unique_ptr<nn::SequenceModel> {
    core::TitvConfig config;
    config.input_dim = cohort.input_dim;
    config.rnn_dim = 8;
    config.film_dim = 8;
    config.seed = 13;
    return std::make_unique<core::Titv>(config);
  };
  train::TrainConfig tc;
  tc.max_epochs = 15;
  tc.patience = 15;
  tc.learning_rate = 3e-3f;

  core::TitvConfig config;
  config.input_dim = cohort.input_dim;
  config.rnn_dim = 8;
  config.film_dim = 8;
  config.seed = 13;
  core::Titv serial_model(config);
  const train::TrainResult serial =
      train::Fit(&serial_model, cohort.splits.train, cohort.splits.val, tc);
  const double serial_auc =
      train::Evaluate(&serial_model, cohort.splits.test).auc;

  core::Titv parallel_model(config);
  parallel::DataParallelTrainer trainer(&parallel_model, factory, 3);
  trainer.Fit(cohort.splits.train, cohort.splits.val, tc);
  const double parallel_auc =
      train::Evaluate(&parallel_model, cohort.splits.test).auc;

  EXPECT_NEAR(parallel_auc, serial_auc, 0.08);
  (void)serial;
}

}  // namespace
}  // namespace tracer
