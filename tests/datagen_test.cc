#include <cmath>

#include <gtest/gtest.h>

#include "datagen/emr_generator.h"
#include "datagen/stock_generator.h"
#include "datagen/temperature_generator.h"

namespace tracer {
namespace datagen {
namespace {

// Pearson correlation between a feature (at a window) and the labels.
double LabelCorrelation(const data::TimeSeriesDataset& ds, int window,
                        int feature) {
  const int n = ds.num_samples();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const double x = ds.at(i, window, feature);
    const double y = ds.label(i);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0 || vy <= 0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

TEST(EmrGeneratorTest, AkiCohortShapeAndNames) {
  EmrCohortConfig config = NuhAkiDefaultConfig();
  config.num_samples = 300;
  config.num_filler_features = 5;
  EmrCohort cohort = GenerateNuhAkiCohort(config);
  EXPECT_EQ(cohort.dataset.num_samples(), 300);
  EXPECT_EQ(cohort.dataset.num_windows(), 7);
  EXPECT_EQ(cohort.dataset.num_features(),
            static_cast<int>(NuhAkiPanel().size()) + 5);
  EXPECT_GE(cohort.dataset.FeatureIndex("Urea"), 0);
  EXPECT_GE(cohort.dataset.FeatureIndex("HbA1c"), 0);
  EXPECT_GE(cohort.dataset.FeatureIndex("LAB_004"), 0);
  EXPECT_EQ(cohort.severity.size(), 300u);
}

TEST(EmrGeneratorTest, AkiPositiveRateIsPlausible) {
  EmrCohortConfig config = NuhAkiDefaultConfig();
  config.num_samples = 2000;
  EmrCohort cohort = GenerateNuhAkiCohort(config);
  const double rate =
      static_cast<double>(cohort.dataset.CountPositive()) / 2000.0;
  // KDIGO-labelled cohort: somewhere near the deteriorating rate but
  // strictly between the degenerate extremes.
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.30);
}

TEST(EmrGeneratorTest, GenerationIsDeterministicPerSeed) {
  EmrCohortConfig config = NuhAkiDefaultConfig();
  config.num_samples = 50;
  EmrCohort a = GenerateNuhAkiCohort(config);
  EmrCohort b = GenerateNuhAkiCohort(config);
  EXPECT_EQ(a.dataset.CountPositive(), b.dataset.CountPositive());
  EXPECT_FLOAT_EQ(a.dataset.at(17, 3, 2), b.dataset.at(17, 3, 2));
}

TEST(EmrGeneratorTest, TimeVariantFeatureIsMoreInformativeLate) {
  EmrCohortConfig config = NuhAkiDefaultConfig();
  config.num_samples = 3000;
  config.deteriorating_rate = 0.25;
  EmrCohort cohort = GenerateNuhAkiCohort(config);
  const int urea = cohort.dataset.FeatureIndex("Urea");
  const double early = LabelCorrelation(cohort.dataset, 0, urea);
  const double late = LabelCorrelation(cohort.dataset, 6, urea);
  EXPECT_GT(late, early + 0.1)
      << "planted rising signal missing (early=" << early
      << ", late=" << late << ")";
  EXPECT_GT(late, 0.17);
}

TEST(EmrGeneratorTest, NullFeatureIsUninformative) {
  EmrCohortConfig config = NuhAkiDefaultConfig();
  config.num_samples = 3000;
  EmrCohort cohort = GenerateNuhAkiCohort(config);
  const int hba1c = cohort.dataset.FeatureIndex("HbA1c");
  for (int t = 0; t < 7; ++t) {
    EXPECT_LT(std::fabs(LabelCorrelation(cohort.dataset, t, hba1c)), 0.12);
  }
}

TEST(EmrGeneratorTest, TimeInvariantFeatureCorrelatesAtAllWindows) {
  EmrCohortConfig config = NuhAkiDefaultConfig();
  config.num_samples = 4000;
  config.deteriorating_rate = 0.25;
  EmrCohort cohort = GenerateNuhAkiCohort(config);
  const int urbc = cohort.dataset.FeatureIndex("URBC");
  for (int t = 0; t < 7; ++t) {
    EXPECT_GT(LabelCorrelation(cohort.dataset, t, urbc), 0.05)
        << "window " << t;
  }
}

TEST(EmrGeneratorTest, MortalityCohortShapeAndRate) {
  EmrCohortConfig config = MimicDefaultConfig();
  config.num_samples = 1500;
  EmrCohort cohort = GenerateMimicMortalityCohort(config);
  EXPECT_EQ(cohort.dataset.num_windows(), 24);
  const double rate =
      static_cast<double>(cohort.dataset.CountPositive()) / 1500.0;
  EXPECT_NEAR(rate, 0.083, 0.01);  // calibrated threshold
  EXPECT_GE(cohort.dataset.FeatureIndex("TEMP"), 0);
  EXPECT_GE(cohort.dataset.FeatureIndex("MCHC"), 0);
}

TEST(EmrGeneratorTest, MortalityAcidBaseClusterIsInformative) {
  EmrCohortConfig config = MimicDefaultConfig();
  config.num_samples = 3000;
  EmrCohort cohort = GenerateMimicMortalityCohort(config);
  const int o2 = cohort.dataset.FeatureIndex("O2");
  // O2 couples negatively with acuity → negative label correlation late.
  EXPECT_LT(LabelCorrelation(cohort.dataset, 23, o2), -0.15);
}

TEST(EmrGeneratorTest, DivergingFeatureHasClusterDependentSign) {
  EmrCohortConfig config = MimicDefaultConfig();
  config.num_samples = 3000;
  EmrCohort cohort = GenerateMimicMortalityCohort(config);
  const int cp = cohort.dataset.FeatureIndex("CP");
  // Split the cohort by the ground-truth cluster sign and verify the
  // feature moves in opposite directions with the latent severity.
  double mean_pos = 0.0, mean_neg = 0.0;
  int n_pos = 0, n_neg = 0;
  for (int i = 0; i < cohort.dataset.num_samples(); ++i) {
    if (cohort.dataset.label(i) < 0.5f) continue;  // deteriorated patients
    const float v = cohort.dataset.at(i, 23, cp);
    if (cohort.cluster_sign[i] > 0) {
      mean_pos += v;
      ++n_pos;
    } else {
      mean_neg += v;
      ++n_neg;
    }
  }
  ASSERT_GT(n_pos, 10);
  ASSERT_GT(n_neg, 10);
  EXPECT_GT(mean_pos / n_pos, mean_neg / n_neg + 10.0);
}

TEST(StockGeneratorTest, ShapesAndTickers) {
  StockMarketConfig config;
  config.series_length = 200;
  StockCohort cohort = GenerateStockMarket(config);
  EXPECT_EQ(cohort.dataset.num_samples(), 190);
  EXPECT_EQ(cohort.dataset.num_windows(), 10);
  EXPECT_EQ(cohort.dataset.num_features(), 82);
  EXPECT_EQ(cohort.dataset.task(), data::TaskType::kRegression);
  EXPECT_EQ(cohort.dataset.feature_names()[0], "AMZN");
  EXPECT_EQ(cohort.dataset.feature_names()[80], "VIAB");
  EXPECT_EQ(cohort.dataset.feature_names()[81], "INDEX_LAG");
}

TEST(StockGeneratorTest, WeightsAreDescendingAndNormalised) {
  StockCohort cohort = GenerateStockMarket({});
  double sum = 0.0;
  for (size_t j = 0; j < cohort.weights.size(); ++j) {
    sum += cohort.weights[j];
    if (j > 0) {
      EXPECT_LE(cohort.weights[j], cohort.weights[j - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(cohort.weights[0], 10 * cohort.weights.back());
}

TEST(StockGeneratorTest, IndexIsNearWeightedSumOfFinalWindow) {
  StockMarketConfig config;
  config.series_length = 120;
  StockCohort cohort = GenerateStockMarket(config);
  // The label equals Σ w_j price_j at the target minute plus tiny noise;
  // the final window holds exactly those prices.
  for (int i = 0; i < 20; ++i) {
    double acc = 0.0;
    for (int j = 0; j < 81; ++j) {
      acc += cohort.weights[j] *
             cohort.dataset.at(i, cohort.dataset.num_windows() - 1, j);
    }
    EXPECT_NEAR(cohort.dataset.label(i), acc, 0.01);
  }
}

TEST(StockGeneratorTest, LaggedIndexNeverEqualsTarget) {
  StockMarketConfig config;
  config.series_length = 150;
  StockCohort cohort = GenerateStockMarket(config);
  int exact_matches = 0;
  for (int i = 0; i < cohort.dataset.num_samples(); ++i) {
    const float lag =
        cohort.dataset.at(i, cohort.dataset.num_windows() - 1, 81);
    if (lag == cohort.dataset.label(i)) ++exact_matches;
  }
  EXPECT_EQ(exact_matches, 0) << "target leaked into the lagged feature";
}

TEST(TemperatureGeneratorTest, ShapesAndChannels) {
  TemperatureConfig config;
  config.series_length = 300;
  TemperatureCohort cohort = GenerateTemperatureTrace(config);
  EXPECT_EQ(cohort.dataset.num_samples(), 290);
  EXPECT_EQ(cohort.dataset.num_windows(), 10);
  EXPECT_EQ(cohort.dataset.num_features(), 16);
  EXPECT_GE(cohort.dataset.FeatureIndex("SL_SOUTH"), 0);
  EXPECT_GE(cohort.dataset.FeatureIndex("SL_WEST"), 0);
}

TEST(TemperatureGeneratorTest, IndoorTemperatureIsPlausible) {
  TemperatureConfig config;
  config.series_length = 960;  // 10 days
  TemperatureCohort cohort = GenerateTemperatureTrace(config);
  for (float temp : cohort.indoor_temp) {
    EXPECT_GT(temp, 5.0f);
    EXPECT_LT(temp, 45.0f);
  }
}

TEST(TemperatureGeneratorTest, SouthSunlightDrivesIndoorTemperature) {
  TemperatureConfig config;
  config.series_length = 2000;
  TemperatureCohort cohort = GenerateTemperatureTrace(config);
  const int south = cohort.dataset.FeatureIndex("SL_SOUTH");
  // Correlation between the final window's south sunlight and the label
  // must be clearly positive (sun heats the house).
  const int last = cohort.dataset.num_windows() - 1;
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const int n = cohort.dataset.num_samples();
  for (int i = 0; i < n; ++i) {
    const double x = cohort.dataset.at(i, last, south);
    const double y = cohort.dataset.label(i);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double corr =
      (sxy / n - sx / n * sy / n) /
      std::sqrt((sxx / n - sx / n * sx / n) * (syy / n - sy / n * sy / n));
  EXPECT_GT(corr, 0.25);
}

}  // namespace
}  // namespace datagen
}  // namespace tracer
