// Tests for explain-on-demand serving (InferenceServer::SubmitExplain):
//  - attributions returned by the serve path are bit-identical to an
//    offline recompute against the same snapshot, for all three methods,
//  - explain batches never coalesce with plain score batches or with
//    explain batches of a different spec,
//  - deadlines are honored (kDeadlineExceeded, never a partial answer),
//  - the interpret.explain fault point converts the batch to kUnavailable
//    and counts a failure,
//  - tracer_interpret_* metrics are exported,
//  - under concurrent hot-swap every response's attributions are exactly
//    the ones its reported model_version produces (snapshot consistency).

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/titv.h"
#include "fault/fault.h"
#include "interpret/adapters.h"
#include "interpret/attribution.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace tracer {
namespace serve {
namespace {

core::TitvConfig MicroConfig(uint64_t seed = 5, int input_dim = 6) {
  core::TitvConfig config;
  config.input_dim = input_dim;
  config.rnn_dim = 4;
  config.film_dim = 4;
  config.seed = seed;
  return config;
}

uint64_t RegisterFreshModel(ModelRegistry* registry,
                            const core::TitvConfig& config) {
  const core::Titv model(config);
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (const auto& [name, param] : model.NamedParameters()) {
    tensors.emplace_back(name, param.value());
  }
  auto staged = registry->Register(config, std::move(tensors), "<memory>");
  EXPECT_TRUE(staged.ok()) << staged.status().ToString();
  return staged.value();
}

std::vector<std::vector<float>> RandomWindows(int num_windows, int dim,
                                              Rng* rng) {
  std::vector<std::vector<float>> windows(num_windows,
                                          std::vector<float>(dim));
  for (auto& window : windows) {
    for (float& v : window) {
      v = static_cast<float>(rng->Uniform(-1.0, 1.0));
    }
  }
  return windows;
}

// Recomputes the attributions of one request offline, against a fresh
// replica of `version`, with exactly the construction the serve path uses —
// the ground truth a serve explain response must reproduce bit-for-bit.
interpret::AttributionResult OfflineAttribute(
    const ModelRegistry& registry, uint64_t version,
    const std::vector<std::vector<float>>& windows, const ExplainSpec& spec) {
  auto snapshot = registry.Get(version);
  EXPECT_NE(snapshot, nullptr);
  auto replica = snapshot->NewReplica();
  std::vector<Tensor> xs;
  xs.reserve(windows.size());
  for (const auto& window : windows) {
    Tensor x({1, static_cast<int>(window.size())});
    for (size_t j = 0; j < window.size(); ++j) {
      x.at(0, static_cast<int>(j)) = window[j];
    }
    xs.push_back(std::move(x));
  }
  interpret::BaselineBuilder baseline(spec.baseline);
  switch (spec.method) {
    case interpret::Method::kTitvNative: {
      interpret::TitvAttributor attributor(replica.get(),
                                           /*classification=*/true);
      return attributor.Attribute(xs);
    }
    case interpret::Method::kIntegratedGradients: {
      interpret::ModelScorer scorer =
          interpret::WrapSequenceModel(replica.get());
      interpret::IntegratedGradientsOptions ig;
      ig.steps = spec.ig_steps;
      interpret::IntegratedGradients attributor(scorer.tape,
                                                std::move(baseline), ig,
                                                scorer.reset);
      return attributor.Attribute(xs);
    }
    case interpret::Method::kOcclusion: {
      interpret::ModelScorer scorer =
          interpret::WrapSequenceModel(replica.get());
      interpret::Occlusion attributor(scorer.score, std::move(baseline));
      return attributor.Attribute(xs);
    }
  }
  return {};
}

TEST(ServeExplainTest, MatchesOfflineRecomputeForAllMethods) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig(/*seed=*/51);
  const uint64_t version = RegisterFreshModel(&registry, config);
  ASSERT_TRUE(registry.Publish(version).ok());
  InferenceServer server(&registry, ServeOptions{});

  Rng rng(9);
  const auto windows = RandomWindows(/*num_windows=*/4, config.input_dim,
                                     &rng);
  for (const auto& [method, name] :
       {std::pair<interpret::Method, const char*>{
            interpret::Method::kTitvNative, "native"},
        {interpret::Method::kIntegratedGradients, "ig"},
        {interpret::Method::kOcclusion, "occlusion"}}) {
    ExplainSpec spec;
    spec.method = method;
    spec.ig_steps = 6;
    spec.baseline = interpret::BaselineKind::kZero;

    ServeRequest request;
    request.windows = windows;
    const ServeResponse response = server.Explain(std::move(request), spec);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.model_version, version);
    EXPECT_EQ(response.attribution_method, name);

    const interpret::AttributionResult expected =
        OfflineAttribute(registry, version, windows, spec);
    ASSERT_EQ(response.attributions.size(), windows.size());
    for (size_t t = 0; t < windows.size(); ++t) {
      EXPECT_EQ(response.attributions[t], expected.samples[0].fi[t])
          << name << " window " << t
          << " diverged from the offline recompute";
    }
  }
}

TEST(ServeExplainTest, RejectsPopulationMeanBaseline) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());
  InferenceServer server(&registry, ServeOptions{});

  ExplainSpec spec;
  spec.method = interpret::Method::kOcclusion;
  spec.baseline = interpret::BaselineKind::kPopulationMean;
  ServeRequest request;
  request.windows = {{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f}};
  const ServeResponse response = server.Explain(std::move(request), spec);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(ServeExplainTest, PlainScoreResponsesCarryNoAttributions) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());
  InferenceServer server(&registry, ServeOptions{});

  Rng rng(3);
  ServeRequest request;
  request.windows = RandomWindows(3, config.input_dim, &rng);
  const ServeResponse response = server.Infer(std::move(request));
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.attributions.empty());
  EXPECT_TRUE(response.attribution_method.empty());
}

// Explain requests only coalesce with identical specs: a window of plain
// scores, native explains and occlusion explains submitted together must
// close as three separate batches of three.
TEST(ServeExplainTest, ExplainBatchesOnlyCoalesceIdenticalSpecs) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions options;
  options.max_batch_size = 16;
  options.max_queue_delay_us = 30000;
  options.close_on_idle = false;
  InferenceServer server(&registry, options);

  Rng rng(77);
  const auto windows = RandomWindows(3, config.input_dim, &rng);
  ExplainSpec native;
  native.method = interpret::Method::kTitvNative;
  ExplainSpec occlusion;
  occlusion.method = interpret::Method::kOcclusion;

  std::vector<std::future<ServeResponse>> plain;
  std::vector<std::future<ServeResponse>> natives;
  std::vector<std::future<ServeResponse>> occlusions;
  for (int i = 0; i < 3; ++i) {
    ServeRequest request;
    request.windows = windows;
    plain.push_back(server.Submit(std::move(request)));
    ServeRequest native_request;
    native_request.windows = windows;
    natives.push_back(server.SubmitExplain(std::move(native_request),
                                           native));
    ServeRequest occlusion_request;
    occlusion_request.windows = windows;
    occlusions.push_back(
        server.SubmitExplain(std::move(occlusion_request), occlusion));
  }
  for (auto& future : plain) {
    const ServeResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 3);
    EXPECT_TRUE(response.attributions.empty());
  }
  for (auto& future : natives) {
    const ServeResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 3);
    EXPECT_EQ(response.attribution_method, "native");
  }
  for (auto& future : occlusions) {
    const ServeResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 3);
    EXPECT_EQ(response.attribution_method, "occlusion");
  }
  EXPECT_EQ(server.stats().batches, 3);
}

TEST(ServeExplainTest, ExpiredDeadlinesCompleteWithDeadlineExceeded) {
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());

  ServeOptions options;
  options.max_batch_size = 1;
  options.num_workers = 1;
  InferenceServer server(&registry, options);

  Rng rng(7);
  ServeRequest healthy;
  healthy.windows = RandomWindows(4, config.input_dim, &rng);
  auto first = server.SubmitExplain(std::move(healthy), ExplainSpec{});

  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    ServeRequest request;
    request.windows = RandomWindows(4, config.input_dim, &rng);
    request.deadline_ns = obs::MonotonicNowNs() - 1;
    futures.push_back(server.SubmitExplain(std::move(request),
                                           ExplainSpec{}));
  }
  EXPECT_TRUE(first.get().status.ok());
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(ServeExplainTest, FaultPointFailsExplainWithUnavailable) {
  obs::SetEnabled(true);
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());
  InferenceServer server(&registry, ServeOptions{});

  Rng rng(19);
  auto& faults = fault::FaultRegistry::Global();
  ASSERT_TRUE(faults.Configure("interpret.explain:1:0").ok());
  ServeRequest request;
  request.windows = RandomWindows(3, config.input_dim, &rng);
  const ServeResponse failed = server.Explain(std::move(request),
                                              ExplainSpec{});
  EXPECT_EQ(failed.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(failed.attributions.empty());
  EXPECT_GE(faults.FireCount("interpret.explain"), 1);
  faults.Clear();
  obs::SetEnabled(false);

  // Plain scoring is unaffected by the armed point, and clearing it
  // restores explains.
  ServeRequest scored;
  scored.windows = RandomWindows(3, config.input_dim, &rng);
  EXPECT_TRUE(server.Infer(std::move(scored)).status.ok());
  ServeRequest retried;
  retried.windows = RandomWindows(3, config.input_dim, &rng);
  EXPECT_TRUE(server.Explain(std::move(retried), ExplainSpec{}).status.ok());

  const std::string dump = obs::MetricsRegistry::Global().ExportPrometheus();
  EXPECT_NE(dump.find("tracer_interpret_failures_total"), std::string::npos);
}

TEST(ServeExplainTest, ExplainExportsTracerInterpretMetrics) {
  obs::SetEnabled(true);
  ModelRegistry registry;
  const core::TitvConfig config = MicroConfig();
  ASSERT_TRUE(registry.Publish(RegisterFreshModel(&registry, config)).ok());
  {
    InferenceServer server(&registry, ServeOptions{});
    Rng rng(23);
    for (int i = 0; i < 3; ++i) {
      ServeRequest request;
      request.windows = RandomWindows(3, config.input_dim, &rng);
      EXPECT_TRUE(
          server.Explain(std::move(request), ExplainSpec{}).status.ok());
    }
  }
  obs::SetEnabled(false);

  const std::string dump = obs::MetricsRegistry::Global().ExportPrometheus();
  for (const char* metric :
       {"tracer_interpret_requests_total", "tracer_interpret_latency_ns"}) {
    EXPECT_NE(dump.find(metric), std::string::npos)
        << metric << " missing from export";
  }
}

// Snapshot consistency: while Publish flips the live version under
// concurrent explain traffic, every response's attributions must be
// exactly the ones its reported model_version computes — never a blend of
// the score of one snapshot with the attributions of another.
TEST(ServeExplainTest, HotSwapKeepsAttributionsOnTheScoredSnapshot) {
  ModelRegistry registry;
  const uint64_t v1 = RegisterFreshModel(&registry, MicroConfig(/*seed=*/61));
  const uint64_t v2 = RegisterFreshModel(&registry, MicroConfig(/*seed=*/62));
  ASSERT_TRUE(registry.Publish(v1).ok());

  ExplainSpec spec;
  spec.method = interpret::Method::kIntegratedGradients;
  spec.ig_steps = 4;
  spec.baseline = interpret::BaselineKind::kZero;

  Rng rng(45);
  const auto input = RandomWindows(5, MicroConfig().input_dim, &rng);
  const interpret::AttributionResult expected_v1 =
      OfflineAttribute(registry, v1, input, spec);
  const interpret::AttributionResult expected_v2 =
      OfflineAttribute(registry, v2, input, spec);
  ASSERT_NE(expected_v1.samples[0].fi, expected_v2.samples[0].fi);

  ServeOptions options;
  options.max_batch_size = 8;
  options.num_workers = 2;
  InferenceServer server(&registry, options);

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    int round = 0;
    while (!done.load()) {
      ASSERT_TRUE(registry.Publish(round % 2 == 0 ? v2 : v1).ok());
      ++round;
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        ServeRequest request;
        request.windows = input;
        const ServeResponse response = server.Explain(std::move(request),
                                                      spec);
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        const interpret::AttributionResult& expected =
            response.model_version == v1 ? expected_v1 : expected_v2;
        if (response.attributions != expected.samples[0].fi) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  done.store(true);
  swapper.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "attributions were computed against a different snapshot than the "
         "one that scored the request";
}

}  // namespace
}  // namespace serve
}  // namespace tracer
