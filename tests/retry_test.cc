#include "common/retry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tracer {
namespace {

TEST(RetryPolicyTest, DeterministicLadderIsExponentialAndCapped) {
  RetryPolicy p;
  p.initial_backoff_us = 100;
  p.multiplier = 2.0;
  p.max_backoff_us = 500;
  EXPECT_EQ(p.BackoffUs(0), 100u);
  EXPECT_EQ(p.BackoffUs(1), 200u);
  EXPECT_EQ(p.BackoffUs(2), 400u);
  EXPECT_EQ(p.BackoffUs(3), 500u);  // capped
  EXPECT_EQ(p.BackoffUs(9), 500u);

  // BackoffSchedule with jitter off reproduces the ladder exactly.
  BackoffSchedule schedule(p);
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(schedule.Next(r), p.BackoffUs(r)) << "retry " << r;
  }
}

TEST(RetryPolicyTest, JitterStaysWithinBoundsAndBelowCap) {
  RetryPolicy p;
  p.jitter = true;
  p.initial_backoff_us = 100;
  p.max_backoff_us = 5000;
  BackoffSchedule schedule(p);
  uint64_t prev = p.initial_backoff_us;
  for (int r = 0; r < 64; ++r) {
    const uint64_t sleep = schedule.Next(r);
    // Decorrelated jitter: each draw is Uniform(initial, prev*3), capped.
    EXPECT_GE(sleep, p.initial_backoff_us) << "retry " << r;
    EXPECT_LE(sleep, std::min<uint64_t>(prev * 3 + 1, p.max_backoff_us))
        << "retry " << r;
    prev = sleep;
  }
}

TEST(RetryPolicyTest, JitterScheduleIsDeterministicPerSeed) {
  RetryPolicy p;
  p.jitter = true;
  p.initial_backoff_us = 100;
  p.max_backoff_us = 100000;

  std::vector<uint64_t> first;
  {
    BackoffSchedule schedule(p);
    for (int r = 0; r < 16; ++r) first.push_back(schedule.Next(r));
  }
  {
    // Same policy, fresh schedule: the exact same draws (chaos replays).
    BackoffSchedule schedule(p);
    for (int r = 0; r < 16; ++r) {
      EXPECT_EQ(schedule.Next(r), first[static_cast<size_t>(r)])
          << "retry " << r;
    }
  }
  {
    // A different seed produces a different schedule (some draw differs).
    RetryPolicy other = p;
    other.jitter_seed = p.jitter_seed + 1;
    BackoffSchedule schedule(other);
    bool any_diff = false;
    for (int r = 0; r < 16; ++r) {
      if (schedule.Next(r) != first[static_cast<size_t>(r)]) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
  }
}

TEST(CallWithRetryTest, RetriesTransientThenSucceeds) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.initial_backoff_us = 10;
  int calls = 0;
  std::vector<uint64_t> sleeps;
  const Status st = CallWithRetry(
      p,
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::Unavailable("transient");
        return Status::OK();
      },
      [&](uint64_t us) { sleeps.push_back(us); });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 10u);
  EXPECT_EQ(sleeps[1], 20u);
}

TEST(CallWithRetryTest, NonRetryableCodeFailsFast) {
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  const Status st = CallWithRetry(
      p,
      [&]() -> Status {
        ++calls;
        return Status::DataLoss("corrupt");
      },
      [](uint64_t) {});
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST(CallWithRetryTest, MaxElapsedBudgetStopsBeforeAttemptsRunOut) {
  RetryPolicy p;
  p.max_attempts = 100;
  p.initial_backoff_us = 1000;
  p.multiplier = 1.0;         // 1000us per retry
  p.max_elapsed_us = 3500;    // room for 3 sleeps, not 4
  int calls = 0;
  std::vector<uint64_t> sleeps;
  const Status st = CallWithRetry(
      p,
      [&]() -> Status {
        ++calls;
        return Status::Unavailable("down");
      },
      [&](uint64_t us) { sleeps.push_back(us); });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // 3 sleeps fit (3000us <= 3500), the 4th would exceed: 4 calls total.
  EXPECT_EQ(sleeps.size(), 3u);
  EXPECT_EQ(calls, 4);
}

TEST(CallWithRetryTest, JitteredRetrySequenceIsReproducible) {
  RetryPolicy p;
  p.max_attempts = 6;
  p.jitter = true;
  p.initial_backoff_us = 50;
  p.max_backoff_us = 10000;
  auto run = [&]() {
    std::vector<uint64_t> sleeps;
    const Status st = CallWithRetry(
        p, []() -> Status { return Status::Unavailable("down"); },
        [&](uint64_t us) { sleeps.push_back(us); });
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    return sleeps;
  };
  const std::vector<uint64_t> a = run();
  const std::vector<uint64_t> b = run();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tracer
