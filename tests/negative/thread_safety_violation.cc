// Negative-compile fixture: MUST NOT compile under clang with
// -Werror=thread-safety. Reading and writing a TRACER_GUARDED_BY member
// without holding its mutex is exactly the bug class the PR-6 annotation
// layer exists to reject; if this file ever compiles under the analysis,
// the annotations have been hollowed out (e.g. the shim no-op'd under
// clang) and the configure-time gate in the top-level CMakeLists fails.
//
// Compiled by try_compile only — never part of the build.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BUG: mutex_ not held
  }

 private:
  tracer::common::Mutex mutex_;
  int balance_ TRACER_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
