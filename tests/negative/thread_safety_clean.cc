// Control for the negative-compile gate: the same guarded access as
// thread_safety_violation.cc, but correctly locked — MUST compile under
// clang with -Werror=thread-safety. Proves a try_compile failure of the
// violation fixture means "the analysis rejected it", not "the fixture's
// includes or flags are broken".
//
// Compiled by try_compile only — never part of the build.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    tracer::common::MutexLock lock(&mutex_);
    balance_ += amount;
  }

 private:
  tracer::common::Mutex mutex_;
  int balance_ TRACER_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
