// Zero-cost fixture for the TRACER_OBS gate (top-level CMakeLists.txt).
//
// This file exercises every observability entry point a hot path may touch
// — a TRACER_SPAN, a TRACER_TRACE_SCOPE, and an `if (obs::Enabled())`
// probe block reaching the metrics registry, the log-bucketed histogram,
// manual span recording, the trace sink, and the flight recorder — and is
// then linked WITHOUT any obs object files.
//
// With -DTRACER_OBS=0 -O2 it must link: Enabled() is an inline constant
// false, the macros expand to nothing, and dead-code elimination removes
// every out-of-line reference — the "compiles out" claim, checked at the
// linker. With -DTRACER_OBS=1 it must FAIL to link (undefined obs
// symbols): the control proving this fixture genuinely references the
// observability layer, so the zero-cost pass cannot rot into vacuity.

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

int main() {
  TRACER_SPAN("fx.zero_cost");
  tracer::obs::TraceContext context = tracer::obs::CurrentTraceContext();
  TRACER_TRACE_SCOPE(context);
  if (tracer::obs::Enabled()) {
    tracer::obs::LogHistogram* histogram =
        tracer::obs::MetricsRegistry::Global().GetOrCreateLogHistogram(
            "tracer_fx_zero_cost_ns");
    histogram->Observe(static_cast<double>(tracer::obs::MonotonicNowNs()),
                       tracer::obs::NewTraceId());
    tracer::obs::RecordSpan("fx.zero_cost_manual", "", 1, 2, 0, 0, 1, 0);
    tracer::obs::TriggerFlightDump("fx_zero_cost");
    return static_cast<int>(tracer::obs::TraceSink::Global().recorded());
  }
  return 0;
}
