// Tests for the tape-aware tensor arena (src/tensor/arena.h): bump
// allocation and consolidation mechanics, counter-based observability, and
// the end-to-end contract the trainer builds on — after the warm-up step
// plans the peak footprint, a steady-state training step allocates zero
// heap memory for tensor buffers.

#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/titv.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "optim/optimizer.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

namespace tracer {
namespace {

using autograd::Variable;

TEST(ArenaTest, HeapPathServesAndCountsWithoutArena) {
  const AllocCounters before = ThreadAllocCounters();
  { Tensor t = Tensor::Zeros({8, 8}); }
  const AllocCounters after = ThreadAllocCounters();
  EXPECT_EQ(after.heap_allocs - before.heap_allocs, 1);
  EXPECT_EQ(after.arena_allocs - before.arena_allocs, 0);
}

TEST(ArenaTest, ScopedArenaRoutesTensorBuffers) {
  TensorArena arena;
  const AllocCounters before = ThreadAllocCounters();
  {
    ScopedArena scope(&arena);
    Tensor a = Tensor::Zeros({4, 4});
    Tensor b = Tensor::Full({2, 8}, 1.5f);
    EXPECT_EQ(arena.live(), 2);
  }
  arena.Reset();
  const AllocCounters after = ThreadAllocCounters();
  EXPECT_EQ(after.heap_allocs - before.heap_allocs, 0);
  EXPECT_EQ(after.arena_allocs - before.arena_allocs, 2);
  EXPECT_EQ(arena.live(), 0);
}

TEST(ArenaTest, NestedNullScopeSuspendsArena) {
  TensorArena arena;
  ScopedArena scope(&arena);
  const AllocCounters before = ThreadAllocCounters();
  {
    ScopedArena escape(nullptr);
    Tensor heap_tensor = Tensor::Zeros({4, 4});
    const AllocCounters mid = ThreadAllocCounters();
    EXPECT_EQ(mid.heap_allocs - before.heap_allocs, 1);
  }
  Tensor arena_tensor = Tensor::Zeros({4, 4});
  EXPECT_EQ(arena.live(), 1);
}

TEST(ArenaTest, ResetConsolidatesWarmupBlocksIntoPlannedBlock) {
  TensorArena arena;
  {
    ScopedArena scope(&arena);
    // Force several warm-up blocks: each allocation exceeds the minimum
    // block granularity, so the arena must chain.
    std::vector<Tensor> big;
    for (int i = 0; i < 4; ++i) {
      big.push_back(Tensor::Zeros({512, 256}));  // 512 KiB each
    }
    EXPECT_GE(arena.block_count(), 2u);
  }
  arena.Reset();
  // One block, sized to the measured peak: the next identical iteration
  // bumps without growing.
  EXPECT_EQ(arena.block_count(), 1u);
  const AllocCounters before = ThreadAllocCounters();
  {
    ScopedArena scope(&arena);
    std::vector<Tensor> big;
    for (int i = 0; i < 4; ++i) {
      big.push_back(Tensor::Zeros({512, 256}));
    }
  }
  arena.Reset();
  const AllocCounters after = ThreadAllocCounters();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(after.heap_allocs - before.heap_allocs, 0);
  EXPECT_EQ(after.arena_blocks - before.arena_blocks, 0);
}

TEST(ArenaDeathTest, ResetWithLiveBufferAborts) {
  EXPECT_DEATH(
      {
        TensorArena arena;
        ScopedArena scope(&arena);
        Tensor escaped = Tensor::Zeros({2, 2});
        arena.Reset();
      },
      "live");
}

core::TitvConfig SmallTitvConfig() {
  core::TitvConfig config;
  config.input_dim = 5;
  config.rnn_dim = 8;
  config.film_dim = 8;
  config.seed = 3;
  return config;
}

data::TimeSeriesDataset SmallDataset(int samples) {
  Rng rng(5);
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification,
                             samples, /*windows=*/4, /*features=*/5);
  for (int i = 0; i < samples; ++i) {
    for (int t = 0; t < 4; ++t) {
      for (int d = 0; d < 5; ++d) {
        ds.at(i, t, d) = static_cast<float>(rng.Uniform());
      }
    }
    ds.set_label(i, rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  return ds;
}

TEST(ArenaTest, SteadyStateTrainingStepAllocatesNoHeapTensors) {
  // The trainer's step discipline, replayed exactly: parameter gradients
  // pre-allocated on the heap, forward+backward inside a ScopedArena,
  // Reset after the tape dies. Steps after warm-up must allocate zero
  // tensor buffers from the heap and grow the arena by zero blocks.
  core::Titv model(SmallTitvConfig());
  const data::TimeSeriesDataset ds = SmallDataset(8);
  const data::Batch batch = data::FullBatch(ds);
  const std::vector<Variable> xs = nn::SequenceModel::ToVariables(batch);
  std::vector<Variable> params = model.Parameters();
  for (Variable& p : params) p.grad();  // materialise grads on the heap

  TensorArena arena;
  for (int step = 0; step < 5; ++step) {
    const AllocCounters before = ThreadAllocCounters();
    {
      ScopedArena scope(&arena);
      for (Variable& p : params) p.ZeroGrad();
      Variable loss = autograd::BinaryCrossEntropyWithLogits(
          model.Forward(xs), batch.labels);
      loss.Backward();
    }
    arena.Reset();
    const AllocCounters after = ThreadAllocCounters();
    if (step >= 2) {
      EXPECT_EQ(after.heap_allocs - before.heap_allocs, 0)
          << "step " << step << " heap-allocated a tensor buffer";
      EXPECT_EQ(after.arena_blocks - before.arena_blocks, 0)
          << "step " << step << " outgrew the planned arena block";
    }
  }
}

TEST(ArenaTest, TrainerReportsZeroAllocsPerStepInSteadyState) {
  // End-to-end through train::Fit: the tracer_train_allocs_per_step gauge
  // (last-write-wins) must read 0 after training — the final step ran
  // entirely out of the planned arena.
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  core::Titv model(SmallTitvConfig());
  const data::TimeSeriesDataset ds = SmallDataset(32);
  train::TrainConfig config;
  config.max_epochs = 2;
  config.batch_size = 8;
  config.patience = 0;
  config.verbose = false;
  train::Fit(&model, ds, ds, config);
  obs::SetEnabled(was_enabled);
  obs::Gauge* gauge = obs::MetricsRegistry::Global().GetOrCreateGauge(
      "tracer_train_allocs_per_step");
  EXPECT_EQ(gauge->value(), 0.0);
}

}  // namespace
}  // namespace tracer
