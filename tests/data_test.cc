#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataset.h"

namespace tracer {
namespace data {
namespace {

TimeSeriesDataset MakeDataset(int n, int t, int d, uint64_t seed = 1) {
  Rng rng(seed);
  TimeSeriesDataset ds(TaskType::kBinaryClassification, n, t, d);
  for (int i = 0; i < n; ++i) {
    for (int w = 0; w < t; ++w) {
      for (int f = 0; f < d; ++f) {
        ds.at(i, w, f) = static_cast<float>(rng.Normal(0.0, 10.0));
      }
    }
    ds.set_label(i, rng.Bernoulli(0.3) ? 1.0f : 0.0f);
  }
  return ds;
}

TEST(DatasetTest, DimensionsAndDefaults) {
  TimeSeriesDataset ds(TaskType::kRegression, 5, 3, 2);
  EXPECT_EQ(ds.num_samples(), 5);
  EXPECT_EQ(ds.num_windows(), 3);
  EXPECT_EQ(ds.num_features(), 2);
  EXPECT_EQ(ds.task(), TaskType::kRegression);
  EXPECT_EQ(ds.feature_names()[1], "feature_1");
  EXPECT_FLOAT_EQ(ds.at(4, 2, 1), 0.0f);
}

TEST(DatasetTest, FeatureIndexLookup) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 1, 1, 3);
  ds.feature_names() = {"Urea", "HbA1c", "SCr"};
  EXPECT_EQ(ds.FeatureIndex("HbA1c"), 1);
  EXPECT_EQ(ds.FeatureIndex("nope"), -1);
}

TEST(DatasetTest, CountPositive) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 4, 1, 1);
  ds.set_label(0, 1.0f);
  ds.set_label(2, 1.0f);
  EXPECT_EQ(ds.CountPositive(), 2);
}

TEST(DatasetTest, SubsetCopiesRowsAndNames) {
  TimeSeriesDataset ds = MakeDataset(6, 2, 3);
  ds.feature_names() = {"a", "b", "c"};
  TimeSeriesDataset sub = ds.Subset({4, 1});
  EXPECT_EQ(sub.num_samples(), 2);
  EXPECT_EQ(sub.feature_names()[2], "c");
  for (int w = 0; w < 2; ++w) {
    for (int f = 0; f < 3; ++f) {
      EXPECT_FLOAT_EQ(sub.at(0, w, f), ds.at(4, w, f));
      EXPECT_FLOAT_EQ(sub.at(1, w, f), ds.at(1, w, f));
    }
  }
  EXPECT_FLOAT_EQ(sub.label(0), ds.label(4));
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  Rng rng(2);
  const SplitIndices split = RandomSplit(100, 0.8, 0.1, rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.val.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
  std::set<int> all;
  for (int i : split.train) all.insert(i);
  for (int i : split.val) all.insert(i);
  for (int i : split.test) all.insert(i);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), 99);
}

TEST(SplitTest, SplitDatasetShapes) {
  TimeSeriesDataset ds = MakeDataset(50, 2, 2);
  Rng rng(3);
  const DatasetSplits splits = SplitDataset(ds, rng);
  EXPECT_EQ(splits.train.num_samples(), 40);
  EXPECT_EQ(splits.val.num_samples(), 5);
  EXPECT_EQ(splits.test.num_samples(), 5);
}

TEST(NormalizerTest, MapsTrainRangeToUnitInterval) {
  TimeSeriesDataset ds = MakeDataset(20, 3, 4, 7);
  MinMaxNormalizer norm;
  norm.Fit(ds);
  norm.Apply(&ds);
  for (int i = 0; i < ds.num_samples(); ++i) {
    for (int t = 0; t < ds.num_windows(); ++t) {
      for (int d = 0; d < ds.num_features(); ++d) {
        EXPECT_GE(ds.at(i, t, d), 0.0f);
        EXPECT_LE(ds.at(i, t, d), 1.0f);
      }
    }
  }
  // Extremes must be hit.
  float min0 = 1.0f, max0 = 0.0f;
  for (int i = 0; i < ds.num_samples(); ++i) {
    for (int t = 0; t < ds.num_windows(); ++t) {
      min0 = std::min(min0, ds.at(i, t, 0));
      max0 = std::max(max0, ds.at(i, t, 0));
    }
  }
  EXPECT_FLOAT_EQ(min0, 0.0f);
  EXPECT_FLOAT_EQ(max0, 1.0f);
}

TEST(NormalizerTest, ConstantFeatureMapsToZero) {
  TimeSeriesDataset ds(TaskType::kBinaryClassification, 3, 2, 1);
  for (int i = 0; i < 3; ++i) {
    for (int t = 0; t < 2; ++t) ds.at(i, t, 0) = 42.0f;
  }
  MinMaxNormalizer norm;
  norm.Fit(ds);
  norm.Apply(&ds);
  EXPECT_FLOAT_EQ(ds.at(1, 1, 0), 0.0f);
}

TEST(NormalizerTest, OutOfRangeTestValuesAreClamped) {
  TimeSeriesDataset train(TaskType::kBinaryClassification, 2, 1, 1);
  train.at(0, 0, 0) = 0.0f;
  train.at(1, 0, 0) = 10.0f;
  MinMaxNormalizer norm;
  norm.Fit(train);
  TimeSeriesDataset test(TaskType::kBinaryClassification, 1, 1, 1);
  test.at(0, 0, 0) = 25.0f;  // beyond the fitted max
  norm.Apply(&test);
  EXPECT_FLOAT_EQ(test.at(0, 0, 0), 1.0f);
}

TEST(BatchTest, MakeBatchLayout) {
  TimeSeriesDataset ds = MakeDataset(5, 3, 2);
  const Batch batch = MakeBatch(ds, {2, 0});
  EXPECT_EQ(batch.batch_size(), 2);
  ASSERT_EQ(batch.xs.size(), 3u);
  EXPECT_FLOAT_EQ(batch.xs[1].at(0, 1), ds.at(2, 1, 1));
  EXPECT_FLOAT_EQ(batch.xs[2].at(1, 0), ds.at(0, 2, 0));
  EXPECT_FLOAT_EQ(batch.labels.at(0, 0), ds.label(2));
}

TEST(BatchTest, FullBatchCoversAll) {
  TimeSeriesDataset ds = MakeDataset(7, 2, 2);
  const Batch batch = FullBatch(ds);
  EXPECT_EQ(batch.batch_size(), 7);
}

TEST(BatcherTest, EpochCoversEverySampleOnce) {
  TimeSeriesDataset ds = MakeDataset(23, 2, 2);
  Rng rng(4);
  Batcher batcher(ds, 5, rng);
  const auto batches = batcher.EpochBatches();
  EXPECT_EQ(batches.size(), 5u);  // ceil(23/5)
  std::set<int> seen;
  for (const auto& b : batches) {
    for (int i : b) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_EQ(batches.back().size(), 3u);
}

TEST(BatcherTest, ShuffleChangesOrderAcrossEpochs) {
  TimeSeriesDataset ds = MakeDataset(50, 1, 1);
  Rng rng(5);
  Batcher batcher(ds, 50, rng);
  const auto e1 = batcher.EpochBatches();
  const auto e2 = batcher.EpochBatches();
  EXPECT_NE(e1[0], e2[0]);
}

TEST(CsvTest, WriterProducesHeaderAndRows) {
  CsvWriter writer({"x", "y"});
  writer.AddRow(std::vector<std::string>{"1", "2"});
  writer.AddRow(std::vector<double>{3.5, 4.25});
  const std::string text = writer.ToString();
  EXPECT_NE(text.find("x,y\n"), std::string::npos);
  EXPECT_NE(text.find("1,2\n"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
}

TEST(CsvTest, ParseRoundTrip) {
  CsvWriter writer({"a", "b"});
  writer.AddRow(std::vector<std::string>{"hello", "world"});
  const auto rows = ParseCsv(writer.ToString());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "world");
}

TEST(CsvTest, WriteFileAndExportDataset) {
  TimeSeriesDataset ds = MakeDataset(2, 2, 2);
  const std::string path = ::testing::TempDir() + "/ds_test.csv";
  ASSERT_TRUE(ExportDatasetCsv(ds, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}


TEST(CsvTest, ImportRoundTripsExport) {
  TimeSeriesDataset ds = MakeDataset(4, 3, 2, 9);
  ds.feature_names() = {"alpha", "beta"};
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(ExportDatasetCsv(ds, path).ok());
  auto loaded = ImportDatasetCsv(path, TaskType::kBinaryClassification);
  ASSERT_TRUE(loaded.ok());
  const TimeSeriesDataset& back = loaded.value();
  ASSERT_EQ(back.num_samples(), 4);
  ASSERT_EQ(back.num_windows(), 3);
  ASSERT_EQ(back.num_features(), 2);
  EXPECT_EQ(back.feature_names()[0], "alpha");
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(back.label(i), ds.label(i));
    for (int t = 0; t < 3; ++t) {
      for (int d = 0; d < 2; ++d) {
        EXPECT_NEAR(back.at(i, t, d), ds.at(i, t, d), 1e-4f);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ImportRejectsMissingFileAndBadHeader) {
  EXPECT_FALSE(
      ImportDatasetCsv("/no/such/file.csv", TaskType::kRegression).ok());
  const std::string path = ::testing::TempDir() + "/bad_header.csv";
  {
    std::ofstream out(path);
    out << "a,b,c\n1,2,3\n";
  }
  auto loaded = ImportDatasetCsv(path, TaskType::kRegression);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace tracer
