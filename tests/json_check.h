#ifndef TRACER_TESTS_JSON_CHECK_H_
#define TRACER_TESTS_JSON_CHECK_H_

// Minimal recursive-descent JSON validator for tests. The production code
// only *emits* JSON (obs/json.h); tests use this checker to prove the
// emitted telemetry, exports and artifacts actually parse, without pulling
// a JSON library into the repo.

#include <cctype>
#include <string>
#include <vector>

namespace tracer {
namespace testutil {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool Valid() {
    pos_ = 0;
    depth_ = 0;
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

  /// Keys of the top-level object, in document order. Empty when the input
  /// is not a valid JSON object.
  std::vector<std::string> TopLevelKeys() {
    keys_ = {};
    record_keys_ = true;
    pos_ = 0;
    depth_ = 0;
    SkipWs();
    const bool ok = ParseValue() && (SkipWs(), pos_ == text_.size());
    record_keys_ = false;
    if (!ok) return {};
    return keys_;
  }

 private:
  bool ParseValue() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::string ignored;
        return ParseString(&ignored);
      }
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    const int enclosing_depth = depth_;
    ++depth_;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (record_keys_ && enclosing_depth == 0) keys_.push_back(key);
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue()) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      out->push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool record_keys_ = false;
  std::vector<std::string> keys_;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

inline std::vector<std::string> JsonObjectKeys(const std::string& text) {
  return JsonChecker(text).TopLevelKeys();
}

}  // namespace testutil
}  // namespace tracer

#endif  // TRACER_TESTS_JSON_CHECK_H_
