#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace {

TEST(MatMulTest, SmallKnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNoOp) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 4}, rng);
  Tensor eye = Tensor::Zeros({4, 4});
  for (int i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  EXPECT_LT(MaxAbsDiff(MatMul(a, eye), a), 1e-6f);
  EXPECT_LT(MaxAbsDiff(MatMul(eye, a), a), 1e-6f);
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::Randn({5, 3}, rng);
  Tensor b = Tensor::Randn({5, 4}, rng);
  EXPECT_LT(MaxAbsDiff(MatMulTransA(a, b), MatMul(Transpose(a), b)), 1e-4f);
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Rng rng(3);
  Tensor a = Tensor::Randn({5, 3}, rng);
  Tensor b = Tensor::Randn({4, 3}, rng);
  EXPECT_LT(MaxAbsDiff(MatMulTransB(a, b), MatMul(a, Transpose(b))), 1e-4f);
}

TEST(MatMulTest, AssociativityHolds) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({4, 5}, rng);
  Tensor c = Tensor::Randn({5, 2}, rng);
  EXPECT_LT(
      MaxAbsDiff(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c))), 1e-4f);
}

TEST(ElementwiseTest, AddSubMulDiv) {
  Tensor a({1, 4}, {1, 2, 3, 4});
  Tensor b({1, 4}, {4, 3, 2, 1});
  EXPECT_FLOAT_EQ(Add(a, b).at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).at(0, 3), 3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(Div(a, b).at(0, 2), 1.5f);
}

TEST(ElementwiseTest, AxpyAndAddInPlace) {
  Tensor out({1, 3}, {1, 1, 1});
  Tensor a({1, 3}, {2, 4, 6});
  AddInPlace(&out, a);
  EXPECT_FLOAT_EQ(out.at(0, 2), 7.0f);
  Axpy(0.5f, a, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 4.0f);
}

TEST(BroadcastTest, AddRowBroadcast) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row({1, 3}, {10, 20, 30});
  Tensor out = AddRowBroadcast(a, row);
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 2), 36.0f);
}

TEST(BroadcastTest, MulColBroadcast) {
  Tensor mat({2, 2}, {1, 2, 3, 4});
  Tensor col({2, 1}, {2, -1});
  Tensor out = MulColBroadcast(mat, col);
  EXPECT_FLOAT_EQ(out.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), -3.0f);
}

TEST(NonlinearityTest, SigmoidValuesAndStability) {
  Tensor a({1, 3}, {0.0f, 100.0f, -100.0f});
  Tensor s = Sigmoid(a);
  EXPECT_FLOAT_EQ(s.at(0, 0), 0.5f);
  EXPECT_NEAR(s.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(s.at(0, 2), 0.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(s.at(0, 1)));
  EXPECT_TRUE(std::isfinite(s.at(0, 2)));
}

TEST(NonlinearityTest, TanhAndRelu) {
  Tensor a({1, 2}, {-1.0f, 2.0f});
  EXPECT_NEAR(Tanh(a).at(0, 0), std::tanh(-1.0f), 1e-6f);
  EXPECT_FLOAT_EQ(Relu(a).at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(a).at(0, 1), 2.0f);
}

TEST(ReductionTest, SumMeanRowsCols) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a), 21.0f);
  EXPECT_FLOAT_EQ(MeanAll(a), 3.5f);
  Tensor cs = ColSum(a);
  EXPECT_FLOAT_EQ(cs.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(cs.at(0, 2), 9.0f);
  Tensor rs = RowSum(a);
  EXPECT_FLOAT_EQ(rs.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs.at(1, 0), 15.0f);
}

TEST(SoftmaxTest, RowsSumToOneAndOrderPreserved) {
  Rng rng(5);
  Tensor a = Tensor::Randn({6, 8}, rng, 3.0f);
  Tensor s = SoftmaxRows(a);
  for (int i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 8; ++j) {
      sum += s.at(i, j);
      EXPECT_GT(s.at(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    // argmax preserved
    int arg_in = 0, arg_out = 0;
    for (int j = 1; j < 8; ++j) {
      if (a.at(i, j) > a.at(i, arg_in)) arg_in = j;
      if (s.at(i, j) > s.at(i, arg_out)) arg_out = j;
    }
    EXPECT_EQ(arg_in, arg_out);
  }
}

TEST(SoftmaxTest, ShiftInvariance) {
  Tensor a({1, 3}, {1.0f, 2.0f, 3.0f});
  Tensor b({1, 3}, {101.0f, 102.0f, 103.0f});
  EXPECT_LT(MaxAbsDiff(SoftmaxRows(a), SoftmaxRows(b)), 1e-5f);
}

TEST(ShapeOpsTest, TransposeTwiceIsIdentity) {
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 5}, rng);
  EXPECT_LT(MaxAbsDiff(Transpose(Transpose(a)), a), 1e-7f);
}

TEST(ShapeOpsTest, ConcatAndSliceRoundTrip) {
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 2}, rng);
  Tensor b = Tensor::Randn({3, 4}, rng);
  Tensor cat = ConcatCols(a, b);
  EXPECT_EQ(cat.cols(), 6);
  EXPECT_LT(MaxAbsDiff(SliceCols(cat, 0, 2), a), 1e-7f);
  EXPECT_LT(MaxAbsDiff(SliceCols(cat, 2, 6), b), 1e-7f);
}

TEST(NormTest, NormAndMaxAbsDiff) {
  Tensor a({1, 2}, {3.0f, 4.0f});
  EXPECT_FLOAT_EQ(Norm(a), 5.0f);
  Tensor b({1, 2}, {3.0f, 6.0f});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 2.0f);
}

TEST(TensorOpsDeathTest, MatMulShapeMismatch) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_DEATH(MatMul(a, b), "inner-dimension mismatch");
}

TEST(TensorOpsDeathTest, ElementwiseShapeMismatch) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

}  // namespace
}  // namespace tracer
