#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/kdigo.h"

namespace tracer {
namespace datagen {
namespace {

ScrSeries Daily(std::vector<float> values) {
  ScrSeries s;
  s.umol_per_l = std::move(values);
  s.hours_per_step = 24.0;
  return s;
}

TEST(KdigoTest, FlatSeriesIsNegative) {
  const AkiDetection d = DetectAki(Daily({80, 81, 79, 80, 82, 80, 81}));
  EXPECT_FALSE(d.detected);
  EXPECT_EQ(d.first_index, -1);
}

TEST(KdigoTest, AbsoluteCriterionWithin48Hours) {
  // +27 within two daily steps: absolute AKI.
  const AkiDetection d = DetectAki(Daily({80, 80, 107, 107}));
  EXPECT_TRUE(d.detected);
  EXPECT_TRUE(d.absolute);
  EXPECT_EQ(d.first_index, 2);
}

TEST(KdigoTest, AbsoluteCriterionJustBelowThresholdIsNegative) {
  const AkiDetection d = DetectAki(Daily({80, 80, 106.0f, 106.0f}));
  EXPECT_FALSE(d.detected);
}

TEST(KdigoTest, SlowRiseEvadesAbsoluteWindowButTripsRelative) {
  // +13/day: never +26.5 within 48h, but reaches 1.5× the 7-day low.
  const AkiDetection d =
      DetectAki(Daily({60, 73, 86, 99, 112, 125, 138}));
  EXPECT_TRUE(d.detected);
  EXPECT_TRUE(d.relative);
  // 1.5 × 60 = 90 first reached at index 3 (99)... but the absolute
  // criterion compares within 48h only: 99-73=26 < 26.5, so relative fires.
  EXPECT_EQ(d.first_index, 3);
  EXPECT_FALSE(d.absolute);
}

TEST(KdigoTest, RelativeCriterionExactRatioFires) {
  const AkiDetection d = DetectAki(Daily({60, 60, 90}));
  EXPECT_TRUE(d.detected);
  EXPECT_TRUE(d.relative);
}

TEST(KdigoTest, AbsoluteWindowExpires) {
  // +20 then +20: each 48h window sees at most +20... with daily steps,
  // window covers two prior days, so day2 sees 100-60=40 ≥ 26.5. Construct
  // a genuinely slow rise instead: +10/day. Relative needs 1.5×; with only
  // 4 days, max 90/60 = 1.5 → fires exactly at day 3.
  const AkiDetection d = DetectAki(Daily({60, 70, 80, 89.9f}));
  EXPECT_FALSE(d.detected);
}

TEST(KdigoTest, HourlySamplingUsesWiderStepWindows) {
  // 6-hour sampling: 48h = 8 steps. A +27 rise spread over 6 steps (36h)
  // must still be caught by the absolute criterion.
  ScrSeries s;
  s.hours_per_step = 6.0;
  s.umol_per_l = {80, 80, 85, 90, 95, 100, 105, 108};
  const AkiDetection d = DetectAki(s);
  EXPECT_TRUE(d.detected);
  EXPECT_TRUE(d.absolute);
}

TEST(KdigoTest, RelativeWindowIsSevenDays) {
  // The minimum leaves the 7-day window before the ratio is reached:
  // day 0 low of 60, then stable 85 for 8 days, then 95: min within the
  // trailing 7 days at the end is 85, and 95 < 1.5×85.
  std::vector<float> values{60};
  for (int i = 0; i < 8; ++i) values.push_back(85);
  values.push_back(95);
  const AkiDetection d = DetectAki(Daily(values));
  EXPECT_FALSE(d.detected);
}

TEST(KdigoTest, DipThenReboundTriggersRelative) {
  // SCr dips (recovering kidney) then rebounds ×1.5 of the dip.
  const AkiDetection d = DetectAki(Daily({90, 60, 62, 61, 92}));
  EXPECT_TRUE(d.detected);
  EXPECT_TRUE(d.relative);
  EXPECT_EQ(d.first_index, 4);
}

TEST(KdigoTest, EmptySeriesIsNegative) {
  const AkiDetection d = DetectAki(Daily({}));
  EXPECT_FALSE(d.detected);
}

TEST(KdigoTest, SingleMeasurementIsNegative) {
  const AkiDetection d = DetectAki(Daily({300}));
  EXPECT_FALSE(d.detected);
}

// Property: adding a constant to every measurement must not change the
// absolute criterion's verdict, and scaling must not change the relative
// criterion's.
class KdigoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KdigoPropertyTest, MonotoneSeriesDetectionIsStableUnderShift) {
  Rng rng(GetParam());
  std::vector<float> values;
  float level = static_cast<float>(rng.Uniform(60, 90));
  for (int i = 0; i < 9; ++i) {
    values.push_back(level);
    level += static_cast<float>(rng.Uniform(0.0, 12.0));
  }
  const AkiDetection base = DetectAki(Daily(values));
  std::vector<float> shifted = values;
  for (float& v : shifted) v += 50.0f;
  const AkiDetection shifted_det = DetectAki(Daily(shifted));
  // Shifting can only affect the *relative* criterion (ratios shrink), so
  // a negative must stay negative under positive shift when detection was
  // absolute-driven; we assert the weaker invariant that absolute
  // detection is shift-invariant.
  if (base.detected && base.absolute) {
    EXPECT_TRUE(shifted_det.detected);
  }
  if (!base.detected) {
    EXPECT_FALSE(shifted_det.detected && shifted_det.relative &&
                 !shifted_det.absolute);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdigoPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace datagen
}  // namespace tracer
