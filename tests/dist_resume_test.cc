// Multi-process elastic-training acceptance tests: a 4-worker run that
// loses a worker to SIGKILL mid-epoch must reach final parameters bitwise
// identical to the uninterrupted 4-worker run — whether the worker rejoins
// (snapshot admission at the next fence) or stays gone (evict and
// rebalance).
//
// Workers are real processes (fork + exec of this binary with
// --dist-worker), so a SIGKILL takes the heartbeat thread, the socket and
// the training loop down together, exactly like a production crash. The
// coordinator runs in the parent on its own thread.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "baselines/logistic_regression.h"
#include "datagen/emr_generator.h"
#include "dist/coordinator.h"
#include "dist/worker.h"
#include "nn/serialization.h"
#include "train/trainer.h"

namespace tracer {
namespace dist {
namespace {

constexpr int kWorldSize = 4;
constexpr int kNumShards = 4;

struct Fixture {
  data::DatasetSplits splits;
  int input_dim;
};

/// Pure function of constants: parent and every worker process rebuild the
/// exact same datasets and model initialization.
Fixture MakeFixture() {
  datagen::EmrCohortConfig gen = datagen::NuhAkiDefaultConfig();
  gen.num_samples = 200;
  gen.num_filler_features = 2;
  gen.deteriorating_rate = 0.3;
  gen.seed = 55;
  datagen::EmrCohort cohort = datagen::GenerateNuhAkiCohort(gen);
  Rng rng(3);
  Fixture f;
  f.splits = data::SplitDataset(cohort.dataset, rng);
  data::MinMaxNormalizer norm;
  norm.Fit(f.splits.train);
  norm.Apply(&f.splits.train);
  norm.Apply(&f.splits.val);
  f.input_dim = cohort.dataset.num_features();
  return f;
}

baselines::LogisticRegression MakeModel(const Fixture& f) {
  return baselines::LogisticRegression(
      f.input_dim, baselines::LrInputMode::kAggregate, 0, /*seed=*/9);
}

train::TrainConfig MakeConfig() {
  train::TrainConfig tc;
  tc.max_epochs = 6;
  tc.patience = 10;
  tc.batch_size = 32;
  tc.seed = 11;
  return tc;
}

DistConfig MakeDistConfig(const std::string& socket_path,
                          const std::string& run_state_path) {
  DistConfig dc;
  dc.socket_path = socket_path;
  dc.run_state_path = run_state_path;
  dc.world_size = kWorldSize;
  dc.num_shards = kNumShards;
  dc.heartbeat_interval_ms = 50;
  dc.heartbeat_timeout_ms = 400;  // fast eviction keeps the test quick
  dc.step_timeout_ms = 20000;
  return dc;
}

/// Delegates to the real reducer and SIGKILLs the process after
/// `kill_after` completed steps — a deterministic mid-epoch crash (steps
/// per epoch is not a multiple of kill_after in these tests).
class KillSwitchReducer : public train::GradReducer {
 public:
  KillSwitchReducer(SocketReducer* inner, int kill_after)
      : inner_(inner), remaining_(kill_after) {}

  Result<float> ReduceStep(
      uint64_t step_id, const std::vector<int>& batch_indices,
      const std::vector<autograd::Variable>& params,
      const std::function<float(const std::vector<int>&)>& eval) override {
    Result<float> r = inner_->ReduceStep(step_id, batch_indices, params, eval);
    if (--remaining_ == 0) {
      ::kill(::getpid(), SIGKILL);  // no destructors, no goodbye frame
    }
    return r;
  }

  Status EpochFence(int next_epoch, bool stopping) override {
    return inner_->EpochFence(next_epoch, stopping);
  }

 private:
  SocketReducer* inner_;
  int remaining_;
};

}  // namespace

/// Entry point of a worker process (argv: --dist-worker <socket>
/// <run_state> <params_out> <kill_after_steps>). Exit 0 on a completed
/// run with final parameters saved to <params_out>; 5 on any error.
int DistWorkerMain(int argc, char** argv) {
  if (argc < 6) return 64;
  const DistConfig dc = MakeDistConfig(argv[2], argv[3]);
  const std::string params_out = argv[4];
  const int kill_after = std::atoi(argv[5]);
  const Fixture f = MakeFixture();
  baselines::LogisticRegression model = MakeModel(f);
  train::TrainConfig tc = MakeConfig();

  train::TrainResult result;
  if (kill_after > 0) {
    // Mirror RunElasticWorker, with the kill switch wrapped around the
    // reducer. This path never completes — the process dies mid-run.
    SocketReducer reducer(dc);
    bool resumed = false;
    const Status started = reducer.Start(&resumed);
    if (!started.ok()) {
      std::fprintf(stderr, "worker start failed: %s\n",
                   started.ToString().c_str());
      return 5;
    }
    KillSwitchReducer killer(&reducer, kill_after);
    tc.grad_reducer = &killer;
    train::CheckpointOptions ckpt;
    ckpt.path = dc.run_state_path;
    train::Trainer trainer(tc, ckpt);
    if (resumed) {
      Result<train::TrainResult> r = trainer.Resume(&model, f.splits.train,
                                                    f.splits.val);
      if (!r.ok()) return 5;
      result = r.value();
    } else {
      result = trainer.Fit(&model, f.splits.train, f.splits.val);
    }
  } else {
    Result<train::TrainResult> r =
        RunElasticWorker(&model, f.splits.train, f.splits.val, tc,
                         train::CheckpointOptions{}, dc);
    if (!r.ok()) {
      std::fprintf(stderr, "worker failed: %s\n",
                   r.status().ToString().c_str());
      return 5;
    }
    result = r.value();
  }
  if (result.interrupted || !result.status.ok()) {
    std::fprintf(stderr, "worker interrupted: %s\n",
                 result.status.ToString().c_str());
    return 5;
  }
  const std::vector<Tensor> state = model.StateDict();
  std::vector<std::pair<std::string, Tensor>> named;
  for (size_t i = 0; i < state.size(); ++i) {
    named.emplace_back("t" + std::to_string(i), state[i]);
  }
  const Status saved = nn::SaveCheckpoint(params_out, named);
  return saved.ok() ? 0 : 5;
}

namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

pid_t SpawnWorker(const std::string& socket_path,
                  const std::string& run_state_path,
                  const std::string& params_out, int kill_after) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: exec ourselves in worker mode. execv only returns on failure.
  const std::string kill_str = std::to_string(kill_after);
  std::vector<char*> args;
  std::string exe = "/proc/self/exe";
  std::string flag = "--dist-worker";
  args.push_back(exe.data());
  args.push_back(flag.data());
  args.push_back(const_cast<char*>(socket_path.c_str()));
  args.push_back(const_cast<char*>(run_state_path.c_str()));
  args.push_back(const_cast<char*>(params_out.c_str()));
  args.push_back(const_cast<char*>(kill_str.c_str()));
  args.push_back(nullptr);
  ::execv("/proc/self/exe", args.data());
  _exit(127);
}

/// Waits for `pid`; returns the exit code, or 1000 + signal for a killed
/// child.
int WaitWorker(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 1000 + WTERMSIG(status);
  return -2;
}

std::vector<std::pair<std::string, Tensor>> LoadParams(
    const std::string& path) {
  auto loaded = nn::LoadCheckpoint(path);
  EXPECT_TRUE(loaded.ok()) << path << ": " << loaded.status().ToString();
  if (!loaded.ok()) return {};
  return loaded.value();
}

void ExpectParamsBitIdentical(const std::string& got_path,
                              const std::string& want_path) {
  const auto got = LoadParams(got_path);
  const auto want = LoadParams(want_path);
  ASSERT_EQ(got.size(), want.size());
  for (size_t t = 0; t < want.size(); ++t) {
    ASSERT_EQ(got[t].first, want[t].first);
    ASSERT_TRUE(got[t].second.SameShape(want[t].second)) << "tensor " << t;
    for (int64_t i = 0; i < want[t].second.size(); ++i) {
      ASSERT_EQ(got[t].second.data()[i], want[t].second.data()[i])
          << got[t].first << " element " << i;
    }
  }
}

struct EnsemblePaths {
  std::string socket;
  std::vector<std::string> run_states;
  std::vector<std::string> params;
};

EnsemblePaths MakePaths(const std::string& tag) {
  EnsemblePaths p;
  p.socket = TempPath("dr_" + tag + ".sock");
  for (int w = 0; w < kWorldSize; ++w) {
    p.run_states.push_back(
        TempPath("dr_" + tag + "_w" + std::to_string(w) + ".runstate"));
    p.params.push_back(
        TempPath("dr_" + tag + "_w" + std::to_string(w) + ".params"));
    std::remove(p.run_states.back().c_str());
    std::remove(p.params.back().c_str());
  }
  return p;
}

void CleanupPaths(const EnsemblePaths& p) {
  for (const std::string& path : p.run_states) std::remove(path.c_str());
  for (const std::string& path : p.params) std::remove(path.c_str());
}

/// Runs the uninterrupted 4-worker reference ensemble and returns its
/// paths (params files hold each worker's final parameters).
EnsemblePaths RunReferenceEnsemble(const std::string& tag) {
  EnsemblePaths paths = MakePaths(tag);
  Coordinator coordinator(MakeDistConfig(paths.socket, ""));
  EXPECT_TRUE(coordinator.Start().ok());
  std::vector<pid_t> pids;
  for (int w = 0; w < kWorldSize; ++w) {
    pids.push_back(SpawnWorker(paths.socket, paths.run_states[w],
                               paths.params[w], 0));
  }
  for (const pid_t pid : pids) EXPECT_EQ(WaitWorker(pid), 0);
  EXPECT_TRUE(coordinator.WaitForCompletion(60000));
  EXPECT_TRUE(coordinator.run_status().ok())
      << coordinator.run_status().ToString();
  EXPECT_EQ(coordinator.evictions(), 0);
  coordinator.Stop();
  return paths;
}

TEST(DistResumeTest, KillAndRejoinMatchesUninterruptedRunBitwise) {
  const EnsemblePaths ref = RunReferenceEnsemble("ref_rejoin");

  EnsemblePaths chaos = MakePaths("rejoin");
  Coordinator coordinator(MakeDistConfig(chaos.socket, ""));
  ASSERT_TRUE(coordinator.Start().ok());
  std::vector<pid_t> pids;
  for (int w = 0; w < kWorldSize; ++w) {
    // Worker 2 SIGKILLs itself after 6 completed steps — mid-epoch (the
    // per-epoch step count is 5 at 140 train samples / batch 32... the
    // exact cursor does not matter, only that it is not a fence).
    const int kill_after = (w == 2) ? 6 : 0;
    pids.push_back(SpawnWorker(chaos.socket, chaos.run_states[w],
                               chaos.params[w], kill_after));
  }
  // The victim dies by SIGKILL; survivors keep training (recompute +
  // evict), and the respawn below is admitted at the next epoch fence with
  // a run_state snapshot from a survivor.
  EXPECT_EQ(WaitWorker(pids[2]), 1000 + SIGKILL);
  pids[2] = SpawnWorker(chaos.socket, chaos.run_states[2], chaos.params[2],
                        0);
  for (int w = 0; w < kWorldSize; ++w) {
    EXPECT_EQ(WaitWorker(pids[w]), 0) << "worker " << w;
  }
  ASSERT_TRUE(coordinator.WaitForCompletion(60000));
  EXPECT_TRUE(coordinator.run_status().ok())
      << coordinator.run_status().ToString();
  EXPECT_EQ(coordinator.evictions(), 1);  // the SIGKILLed incarnation
  EXPECT_GE(coordinator.joins(), kWorldSize + 1);  // formation + rejoin
  coordinator.Stop();

  // The acceptance bar: every worker — including the one that died and
  // rejoined — ends at the exact parameters of the uninterrupted run.
  for (int w = 0; w < kWorldSize; ++w) {
    SCOPED_TRACE("worker " + std::to_string(w));
    ExpectParamsBitIdentical(chaos.params[w], ref.params[0]);
  }
  CleanupPaths(chaos);
  CleanupPaths(ref);
}

TEST(DistResumeTest, KillAndEvictRebalancesAndStillMatchesBitwise) {
  const EnsemblePaths ref = RunReferenceEnsemble("ref_evict");

  EnsemblePaths chaos = MakePaths("evict");
  Coordinator coordinator(MakeDistConfig(chaos.socket, ""));
  ASSERT_TRUE(coordinator.Start().ok());
  std::vector<pid_t> pids;
  for (int w = 0; w < kWorldSize; ++w) {
    const int kill_after = (w == 1) ? 9 : 0;
    pids.push_back(SpawnWorker(chaos.socket, chaos.run_states[w],
                               chaos.params[w], kill_after));
  }
  EXPECT_EQ(WaitWorker(pids[1]), 1000 + SIGKILL);
  // No respawn: the dead worker's shards are rebalanced onto the three
  // survivors, which carry the run to completion alone.
  for (int w = 0; w < kWorldSize; ++w) {
    if (w == 1) continue;
    EXPECT_EQ(WaitWorker(pids[w]), 0) << "worker " << w;
  }
  ASSERT_TRUE(coordinator.WaitForCompletion(60000));
  EXPECT_TRUE(coordinator.run_status().ok())
      << coordinator.run_status().ToString();
  EXPECT_EQ(coordinator.evictions(), 1);
  coordinator.Stop();

  for (int w = 0; w < kWorldSize; ++w) {
    if (w == 1) continue;  // the victim left no final params
    SCOPED_TRACE("worker " + std::to_string(w));
    ExpectParamsBitIdentical(chaos.params[w], ref.params[0]);
  }
  // And the reference ensemble itself is internally consistent: lockstep
  // replication means every reference worker saved identical parameters.
  for (int w = 1; w < kWorldSize; ++w) {
    ExpectParamsBitIdentical(ref.params[w], ref.params[0]);
  }
  CleanupPaths(chaos);
  CleanupPaths(ref);
}

}  // namespace
}  // namespace dist
}  // namespace tracer

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--dist-worker") {
    return tracer::dist::DistWorkerMain(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
