// Tests for request-scoped tracing (src/obs/trace_context.h) and its
// integration through the serving path:
//  - ambient TraceContext install/restore and Span adoption,
//  - explicit cross-thread propagation (capture -> ship -> install),
//  - the end-to-end stitched trace tree of one InferenceServer request
//    (admission -> queue -> batch wait -> score spans share one trace id
//    across the submitter and worker threads),
//  - Chrome trace-event export (structural validation),
//  - trace ids in log lines,
//  - the flight recorder (dump format, triggers, rate/count budget, fault
//    integration).

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/titv.h"
#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tests/json_check.h"

namespace tracer {
namespace obs {
namespace {

#if TRACER_OBS == 0

// The whole layer is compiled out: the only contract left to test is that
// the stubs are inert. (The configure-time negative-link gate proves the
// stronger claim that probes vanish from optimized binaries.)
TEST(TraceContextTest, StubsAreInertWhenCompiledOut) {
  EXPECT_EQ(NewTraceId(), 0u);
  EXPECT_EQ(NextSpanId(), 0u);
  EXPECT_FALSE(CurrentTraceContext().active());
  EXPECT_FALSE(NewTraceContext().active());
  const TraceContext context;
  TRACER_TRACE_SCOPE(context);
  RecordSpan("test.ctx_stub", "", 1, 2, 0, 0, 1, 0);
  TriggerFlightDump("stub");
  SUCCEED();
}

#else

// Tracing mutates process-global state (the enabled flag, the span ring,
// the metrics registry, the flight recorder); restore the quiescent default
// around each test so ordering cannot leak.
class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    SetEnabled(false);
    MetricsRegistry::Global().ResetForTest();
    TraceSink::Global().SetCapacity(4096);  // also clears
    FlightRecorder::Global().ResetForTest();
    fault::FaultRegistry::Global().Clear();
  }
};

core::TitvConfig MicroConfig(uint64_t seed = 17) {
  core::TitvConfig config;
  config.input_dim = 6;
  config.rnn_dim = 4;
  config.film_dim = 4;
  config.seed = seed;
  return config;
}

// Registers and publishes a deterministic fresh TITV so the server scores.
void PublishFreshModel(serve::ModelRegistry* registry,
                       const core::TitvConfig& config) {
  const core::Titv model(config);
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (const auto& [name, param] : model.NamedParameters()) {
    tensors.emplace_back(name, param.value());
  }
  auto staged = registry->Register(config, std::move(tensors), "<memory>");
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  ASSERT_TRUE(registry->Publish(staged.value()).ok());
}

std::vector<std::vector<float>> RandomWindows(int num_windows, int dim,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> windows(num_windows,
                                          std::vector<float>(dim));
  for (auto& window : windows) {
    for (float& v : window) {
      v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  return windows;
}

// ---------------------------------------------------------------------------
// Ambient context mechanics

TEST_F(TraceContextTest, AmbientIsInactiveByDefault) {
  const TraceContext ambient = CurrentTraceContext();
  EXPECT_FALSE(ambient.active());
  EXPECT_EQ(ambient.trace_id, 0u);
}

TEST_F(TraceContextTest, ScopedContextInstallsAndRestores) {
  const TraceContext context = NewTraceContext();
  EXPECT_TRUE(context.active());
  EXPECT_NE(context.span_id, 0u);
  {
    ScopedTraceContext scope(context);
    EXPECT_EQ(CurrentTraceContext().trace_id, context.trace_id);
    EXPECT_EQ(CurrentTraceContext().span_id, context.span_id);
    // Nesting: an inner scope shadows, then restores, the outer one.
    const TraceContext inner = NewTraceContext();
    {
      ScopedTraceContext inner_scope(inner);
      EXPECT_EQ(CurrentTraceContext().trace_id, inner.trace_id);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, context.trace_id);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST_F(TraceContextTest, IdsAreUniqueAndNonzero) {
  std::set<uint64_t> trace_ids;
  std::set<uint64_t> span_ids;
  for (int i = 0; i < 1000; ++i) {
    trace_ids.insert(NewTraceId());
    span_ids.insert(NextSpanId());
  }
  EXPECT_EQ(trace_ids.size(), 1000u);
  EXPECT_EQ(span_ids.size(), 1000u);
  EXPECT_EQ(trace_ids.count(0), 0u);
  EXPECT_EQ(span_ids.count(0), 0u);
}

TEST_F(TraceContextTest, SpansAdoptAmbientContextAndParentExplicitly) {
  SetEnabled(true);
  TraceSink& sink = TraceSink::Global();
  const TraceContext context = NewTraceContext();
  {
    ScopedTraceContext scope(context);
    TRACER_SPAN("test.ctx_outer");
    {
      TRACER_SPAN("test.ctx_inner");
    }
  }
  const std::vector<SpanRecord> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner first.
  EXPECT_STREQ(spans[0].name, "test.ctx_inner");
  EXPECT_STREQ(spans[1].name, "test.ctx_outer");
  // Both spans joined the installed trace.
  EXPECT_EQ(spans[0].trace_id, context.trace_id);
  EXPECT_EQ(spans[1].trace_id, context.trace_id);
  // Explicit id parenting: outer parents under the context's root span,
  // inner parents under outer.
  EXPECT_EQ(spans[1].parent_span_id, context.span_id);
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
}

TEST_F(TraceContextTest, SpansOutsideAnyContextRecordZeroTraceId) {
  SetEnabled(true);
  {
    TRACER_SPAN("test.ctx_untraced");
  }
  const std::vector<SpanRecord> spans = TraceSink::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0u);
  // Span ids are still minted so same-thread nesting stays unambiguous.
  EXPECT_NE(spans[0].span_id, 0u);
}

TEST_F(TraceContextTest, ContextPropagatesAcrossThreadsExplicitly) {
  SetEnabled(true);
  TraceContext captured;
  uint64_t producer_span_id = 0;
  {
    ScopedTraceContext scope(NewTraceContext());
    TRACER_SPAN("test.ctx_producer");
    captured = CurrentTraceContext();  // inside the producer span
  }
  const std::vector<SpanRecord> producer = TraceSink::Global().Snapshot();
  ASSERT_EQ(producer.size(), 1u);
  producer_span_id = producer[0].span_id;
  // The captured context parents under the live producer span.
  EXPECT_EQ(captured.span_id, producer_span_id);

  std::thread consumer([captured] {
    // A fresh thread has no ambient trace until one is installed.
    EXPECT_FALSE(CurrentTraceContext().active());
    TRACER_TRACE_SCOPE(captured);
    TRACER_SPAN("test.ctx_consumer");
  });
  consumer.join();

  const std::vector<SpanRecord> spans = TraceSink::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[1].name, "test.ctx_consumer");
  EXPECT_EQ(spans[1].trace_id, captured.trace_id);
  EXPECT_EQ(spans[1].parent_span_id, producer_span_id);
  EXPECT_NE(spans[1].thread_id, spans[0].thread_id);
}

// ---------------------------------------------------------------------------
// End-to-end: one request through InferenceServer = one stitched tree

TEST_F(TraceContextTest, ServerRequestProducesOneStitchedTraceTree) {
  SetEnabled(true);
  const core::TitvConfig config = MicroConfig();
  serve::ModelRegistry registry;
  PublishFreshModel(&registry, config);

  serve::ServeOptions options;
  options.num_workers = 2;
  serve::InferenceServer server(&registry, options);
  serve::PatientSession session(&server, "patient-42");
  const uint64_t session_trace = session.trace_id();
  ASSERT_NE(session_trace, 0u);

  const auto windows = RandomWindows(3, config.input_dim, /*seed=*/7);
  serve::ServeResponse response;
  std::future<serve::ServeResponse> future =
      session.Observe(windows[0]);
  response = future.get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.trace_id, session_trace);

  // Collect every span of the session's trace: the tree must stitch even
  // though its stages ran on the submitter, scheduler, and worker threads.
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : TraceSink::Global().Snapshot()) {
    if (span.trace_id == session_trace) {
      by_name[span.name] = span;
    }
  }
  for (const char* name :
       {"serve.observe", "serve.request", "serve.queue", "serve.batch_wait",
        "serve.score"}) {
    ASSERT_TRUE(by_name.count(name)) << name << " missing from trace";
  }

  // serve.request is the root of the server-side subtree, parented under
  // the session's serve.observe span (captured at Submit).
  const SpanRecord& root = by_name["serve.request"];
  const SpanRecord& observe = by_name["serve.observe"];
  EXPECT_EQ(root.parent_span_id, observe.span_id);
  EXPECT_EQ(root.depth, 0);
  // Every stage parents under the pre-minted root span id.
  for (const char* stage : {"serve.queue", "serve.batch_wait", "serve.score"}) {
    const SpanRecord& span = by_name[stage];
    EXPECT_EQ(span.parent_span_id, root.span_id) << stage;
    EXPECT_STREQ(span.parent, "serve.request");
    EXPECT_EQ(span.depth, 1) << stage;
  }
  // The stages tile the request: queue + batch_wait + compute timestamps
  // are contiguous and stay inside the root span.
  const SpanRecord& queue = by_name["serve.queue"];
  const SpanRecord& batch_wait = by_name["serve.batch_wait"];
  const SpanRecord& score = by_name["serve.score"];
  EXPECT_EQ(queue.start_ns, root.start_ns);
  EXPECT_EQ(batch_wait.start_ns, queue.start_ns + queue.duration_ns);
  EXPECT_EQ(score.start_ns, batch_wait.start_ns + batch_wait.duration_ns);
  EXPECT_LE(score.start_ns + score.duration_ns,
            root.start_ns + root.duration_ns);
  // Cross-thread: the session observed on this thread; the tree was
  // recorded by a worker.
  EXPECT_NE(root.thread_id, observe.thread_id);

  // A second observation joins the SAME session trace (one patient, one
  // trace), with a fresh root span.
  std::future<serve::ServeResponse> second = session.Observe(windows[1]);
  const serve::ServeResponse response2 = second.get();
  ASSERT_TRUE(response2.status.ok());
  EXPECT_EQ(response2.trace_id, session_trace);
  int request_roots = 0;
  for (const SpanRecord& span : TraceSink::Global().Snapshot()) {
    if (span.trace_id == session_trace &&
        std::string(span.name) == "serve.request") {
      ++request_roots;
    }
  }
  EXPECT_EQ(request_roots, 2);
}

TEST_F(TraceContextTest, DirectSubmitMintsAFreshTracePerRequest) {
  SetEnabled(true);
  const core::TitvConfig config = MicroConfig();
  serve::ModelRegistry registry;
  PublishFreshModel(&registry, config);
  serve::InferenceServer server(&registry, serve::ServeOptions{});

  serve::ServeRequest first;
  first.windows = RandomWindows(2, config.input_dim, /*seed=*/8);
  serve::ServeRequest second;
  second.windows = RandomWindows(2, config.input_dim, /*seed=*/9);
  const serve::ServeResponse r1 = server.Infer(std::move(first));
  const serve::ServeResponse r2 = server.Infer(std::move(second));
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  // No session, no ambient trace: admission minted distinct root traces.
  EXPECT_NE(r1.trace_id, 0u);
  EXPECT_NE(r2.trace_id, 0u);
  EXPECT_NE(r1.trace_id, r2.trace_id);
  // Each response's breakdown is internally consistent.
  EXPECT_GT(r1.compute_ns, 0u);
  EXPECT_LE(r1.queue_ns + r1.batch_ns + r1.compute_ns, r1.total_ns);
}

TEST_F(TraceContextTest, TraceIdsAreZeroWhenObservabilityDisabled) {
  ASSERT_FALSE(Enabled());
  const core::TitvConfig config = MicroConfig();
  serve::ModelRegistry registry;
  PublishFreshModel(&registry, config);
  serve::InferenceServer server(&registry, serve::ServeOptions{});
  serve::PatientSession session(&server, "patient-off");
  EXPECT_EQ(session.trace_id(), 0u);
  serve::ServeRequest request;
  request.windows = RandomWindows(2, config.input_dim, /*seed=*/10);
  const serve::ServeResponse response = server.Infer(std::move(request));
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.trace_id, 0u);
  EXPECT_EQ(TraceSink::Global().recorded(), 0u);
}

TEST_F(TraceContextTest, LatencyBreakdownFeedsLogHistogramsWithExemplars) {
  SetEnabled(true);
  const core::TitvConfig config = MicroConfig();
  serve::ModelRegistry registry;
  PublishFreshModel(&registry, config);
  serve::InferenceServer server(&registry, serve::ServeOptions{});
  serve::ServeRequest request;
  request.windows = RandomWindows(2, config.input_dim, /*seed=*/11);
  const serve::ServeResponse response = server.Infer(std::move(request));
  ASSERT_TRUE(response.status.ok());

  MetricsRegistry& metrics = MetricsRegistry::Global();
  LogHistogram* total =
      metrics.GetOrCreateLogHistogram("tracer_serve_total_ns");
  ASSERT_EQ(total->count(), 1);
  // The per-request exemplar links the latency sample back to its trace.
  EXPECT_EQ(total->ExemplarNear(static_cast<double>(response.total_ns)),
            response.trace_id);
  LogHistogram* compute =
      metrics.GetOrCreateLogHistogram("tracer_serve_compute_ns");
  EXPECT_EQ(compute->count(), 1);
  EXPECT_GT(total->Quantile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST_F(TraceContextTest, ChromeTraceExportIsStructurallyValid) {
  SetEnabled(true);
  const TraceContext context = NewTraceContext();
  {
    ScopedTraceContext scope(context);
    TRACER_SPAN("test.ctx_chrome_outer");
    {
      TRACER_SPAN("test.ctx_chrome_inner");
    }
  }
  const std::string json = TraceSink::Global().DumpChromeTrace();
  ASSERT_TRUE(testutil::IsValidJson(json)) << json;
  const std::vector<std::string> keys = testutil::JsonObjectKeys(json);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "traceEvents");
  // Complete events with the fields Perfetto needs, ids under args.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  for (const char* field :
       {"\"name\":", "\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":",
        "\"args\":", "\"trace_id\":", "\"span_id\":", "\"parent_span_id\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  std::ostringstream want_trace_id;
  want_trace_id << "\"trace_id\":" << context.trace_id;
  EXPECT_NE(json.find(want_trace_id.str()), std::string::npos);
  // An empty sink still exports a valid (empty) document.
  TraceSink::Global().Clear();
  const std::string empty = TraceSink::Global().DumpChromeTrace();
  EXPECT_TRUE(testutil::IsValidJson(empty)) << empty;
}

// ---------------------------------------------------------------------------
// Log lines carry the active trace id

TEST_F(TraceContextTest, LogLinesIncludeActiveTraceId) {
  SetEnabled(true);
  const TraceContext context = NewTraceContext();
  char want[32];
  std::snprintf(want, sizeof(want), "trace:%llx",
                static_cast<unsigned long long>(context.trace_id));

  testing::internal::CaptureStderr();
  {
    ScopedTraceContext scope(context);
    TRACER_LOG(Info) << "traced message";
  }
  TRACER_LOG(Info) << "untraced message";
  const std::string captured = testing::internal::GetCapturedStderr();

  const size_t traced = captured.find("traced message");
  const size_t untraced = captured.find("untraced message");
  ASSERT_NE(traced, std::string::npos);
  ASSERT_NE(untraced, std::string::npos);
  const std::string traced_line = captured.substr(0, traced);
  const std::string untraced_line = captured.substr(traced, untraced - traced);
  EXPECT_NE(traced_line.find(want), std::string::npos) << captured;
  EXPECT_EQ(untraced_line.find("trace:"), std::string::npos) << captured;
}

// ---------------------------------------------------------------------------
// Flight recorder

std::string FlightDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove(dir.c_str());
  mkdir(dir.c_str(), 0755);
  return dir;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST_F(TraceContextTest, FlightRecorderWritesStructuredDump) {
  SetEnabled(true);
  {
    TRACER_SPAN("test.ctx_flight");
  }
  MetricsRegistry::Global()
      .GetOrCreateCounter("tracer_test_flight_total")
      ->Increment(3);

  FlightRecorder& recorder = FlightRecorder::Global();
  const std::string dir = FlightDir("flight_basic");
  recorder.SetDirectoryForTest(dir);
  const std::string path = recorder.Dump("unit test: breaker");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.find(dir), 0u);
  // Reasons are sanitized into the filename.
  EXPECT_EQ(path.find(' '), std::string::npos);
  EXPECT_EQ(recorder.triggers(), 1u);
  EXPECT_EQ(recorder.dumps_written(), 1u);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_GE(lines.size(), 3u);  // header + >=1 span + >=1 metric
  for (const std::string& line : lines) {
    EXPECT_TRUE(testutil::IsValidJson(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"record\":\"flight_header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"unit test: breaker\""),
            std::string::npos);
  bool saw_span = false;
  bool saw_metric = false;
  for (const std::string& line : lines) {
    if (line.find("\"record\":\"span\"") != std::string::npos &&
        line.find("test.ctx_flight") != std::string::npos) {
      saw_span = true;
    }
    if (line.find("\"record\":\"metric\"") != std::string::npos &&
        line.find("tracer_test_flight_total") != std::string::npos) {
      saw_metric = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_metric);
}

TEST_F(TraceContextTest, FlightRecorderHonoursCountAndRateBudget) {
  SetEnabled(true);
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetDirectoryForTest(FlightDir("flight_budget"));
  // Rate limit: with a huge min interval, only the first dump lands.
  recorder.SetLimitsForTest(/*max_dumps=*/8,
                            /*min_interval_ns=*/3'600'000'000'000ull);
  EXPECT_FALSE(recorder.Dump("first").empty());
  EXPECT_TRUE(recorder.Dump("rate_limited").empty());
  EXPECT_EQ(recorder.triggers(), 2u);
  EXPECT_EQ(recorder.dumps_written(), 1u);

  // Count limit: budget exhausted after max_dumps writes.
  recorder.ResetForTest();
  recorder.SetDirectoryForTest(FlightDir("flight_budget2"));
  recorder.SetLimitsForTest(/*max_dumps=*/2, /*min_interval_ns=*/0);
  EXPECT_FALSE(recorder.Dump("one").empty());
  EXPECT_FALSE(recorder.Dump("two").empty());
  EXPECT_TRUE(recorder.Dump("over_budget").empty());
  EXPECT_EQ(recorder.dumps_written(), 2u);
}

TEST_F(TraceContextTest, FlightRecorderInertWithoutDirectoryOrObs) {
  SetEnabled(true);
  FlightRecorder& recorder = FlightRecorder::Global();
  // No directory configured: triggers count, nothing is written.
  recorder.SetDirectoryForTest("");
  EXPECT_TRUE(recorder.Dump("nowhere").empty());
  EXPECT_EQ(recorder.dumps_written(), 0u);
  // Observability disabled: TriggerFlightDump is a no-op even with a dir.
  SetEnabled(false);
  recorder.SetDirectoryForTest(FlightDir("flight_disabled"));
  TriggerFlightDump("disabled");
  EXPECT_EQ(recorder.triggers(), 1u);  // only the "nowhere" attempt
}

TEST_F(TraceContextTest, FaultFireTriggersFlightDump) {
  SetEnabled(true);
  FlightRecorder& recorder = FlightRecorder::Global();
  const std::string dir = FlightDir("flight_fault");
  recorder.SetDirectoryForTest(dir);
  recorder.SetLimitsForTest(/*max_dumps=*/8, /*min_interval_ns=*/0);

  // Arm a fault point to fire exactly once; the fire must leave evidence.
  ASSERT_TRUE(
      fault::FaultRegistry::Global().Configure("serve.score:1:1").ok());
  EXPECT_TRUE(TRACER_FAULT_POINT("serve.score"));
  EXPECT_EQ(fault::FaultRegistry::Global().FireCount("serve.score"), 1);
  EXPECT_EQ(recorder.dumps_written(), 1u);
  // Healed (budget exhausted): no further dumps.
  EXPECT_FALSE(TRACER_FAULT_POINT("serve.score"));
  EXPECT_EQ(recorder.dumps_written(), 1u);
}

#endif  // TRACER_OBS == 0

}  // namespace
}  // namespace obs
}  // namespace tracer
