#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace tracer {
namespace {

// ---- Rng ----

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), original.size());
  for (int x : original) EXPECT_TRUE(seen.count(x));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(8);
  Rng child = a.Fork();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

// ---- Status / Result ----

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultDeathTest, ValueOnErrorChecks) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_DEATH(r.value(), "missing");
}

Status FailsInner() { return Status::IOError("inner"); }

Status Propagates() {
  TRACER_RETURN_IF_ERROR(FailsInner());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIOError);
}

// ---- string_util ----

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, FormatFloat) {
  EXPECT_EQ(FormatFloat(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFloat(1.0, 4), "1.0000");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("tracer_test", "tracer"));
  EXPECT_FALSE(StartsWith("tr", "tracer"));
}

}  // namespace
}  // namespace tracer
