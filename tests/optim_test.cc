#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"

namespace tracer {
namespace optim {
namespace {

using autograd::Variable;

// Loss = mean((x - target)^2); optimum at x == target.
Variable Quadratic(Variable& x, const Tensor& target) {
  return autograd::MeanSquaredError(x, target);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable x = Variable::Parameter(Tensor::Full({1, 3}, 5.0f));
  Tensor target({1, 3}, {1.0f, -2.0f, 0.5f});
  Sgd opt({x}, /*lr=*/0.3f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Variable loss = Quadratic(x, target);
    loss.Backward();
    opt.Step();
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(x.value().at(0, j), target.at(0, j), 1e-3f);
  }
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  // At a small learning rate, heavy-ball momentum converges measurably
  // faster than plain SGD on a quadratic.
  Tensor target({1, 1}, {2.0f});
  auto run = [&](float momentum) {
    Variable x = Variable::Parameter(Tensor::Full({1, 1}, 10.0f));
    Sgd opt({x}, 0.005f, momentum);
    for (int i = 0; i < 60; ++i) {
      opt.ZeroGrad();
      Variable loss = Quadratic(x, target);
      loss.Backward();
      opt.Step();
    }
    return std::fabs(x.value()[0] - 2.0f);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable x = Variable::Parameter(Tensor::Full({2, 2}, -4.0f));
  Tensor target({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    Variable loss = Quadratic(x, target);
    loss.Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x.value()[i], target[i], 1e-2f);
  }
}

TEST(AdamTest, WeightDecayShrinksSolution) {
  // With pure decay (zero data gradient) parameters decay toward zero.
  Variable x = Variable::Parameter(Tensor::Full({1, 1}, 1.0f));
  Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    // Touch the gradient so Step sees an allocated (zero) gradient.
    x.grad();
    opt.Step();
  }
  EXPECT_LT(std::fabs(x.value()[0]), 0.2f);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Variable x = Variable::Parameter(Tensor::Zeros({1, 2}));
  Sgd opt({x}, 0.1f);
  x.grad().at(0, 0) = 3.0f;
  x.grad().at(0, 1) = 4.0f;  // norm 5
  const float pre_norm = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(pre_norm, 5.0f);
  EXPECT_NEAR(x.grad().at(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(x.grad().at(0, 1), 0.8f, 1e-6f);
}

TEST(OptimizerTest, ClipBelowThresholdIsNoOp) {
  Variable x = Variable::Parameter(Tensor::Zeros({1, 2}));
  Sgd opt({x}, 0.1f);
  x.grad().at(0, 0) = 0.3f;
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.3f);
}

TEST(EarlyStoppingTest, StopsAfterPatience) {
  EarlyStopping stopper(2, /*higher_is_better=*/false);
  EXPECT_TRUE(stopper.Update(1.0f));
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_FALSE(stopper.Update(1.1f));
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_FALSE(stopper.Update(1.2f));
  EXPECT_TRUE(stopper.ShouldStop());
  EXPECT_FLOAT_EQ(stopper.best(), 1.0f);
  EXPECT_EQ(stopper.best_epoch(), 1);
}

TEST(EarlyStoppingTest, ImprovementResetsPatience) {
  EarlyStopping stopper(2, false);
  stopper.Update(1.0f);
  stopper.Update(1.5f);
  EXPECT_TRUE(stopper.Update(0.8f));  // new best
  EXPECT_EQ(stopper.epochs_since_best(), 0);
  EXPECT_FALSE(stopper.ShouldStop());
}

TEST(EarlyStoppingTest, HigherIsBetterMode) {
  EarlyStopping stopper(1, /*higher_is_better=*/true);
  EXPECT_TRUE(stopper.Update(0.7f));
  EXPECT_TRUE(stopper.Update(0.8f));
  EXPECT_FALSE(stopper.Update(0.75f));
  EXPECT_TRUE(stopper.ShouldStop());
  EXPECT_FLOAT_EQ(stopper.best(), 0.8f);
}

TEST(EarlyStoppingTest, ResetRestoresPristineState) {
  EarlyStopping stopper(1, false);
  stopper.Update(0.5f);
  stopper.Update(0.9f);
  EXPECT_TRUE(stopper.ShouldStop());
  stopper.Reset();
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_TRUE(stopper.Update(100.0f));  // anything beats +inf after reset
}

}  // namespace
}  // namespace optim
}  // namespace tracer
