// Equivalence tests for the batch-major sequence path: the rank-3
// BatchMatMul pipeline (TRACER_BATCHED_RNN=1, the default) must produce
// forward values bitwise identical to the per-timestep reference path
// (TRACER_BATCHED_RNN=0), for every GEMM kernel selection and thread
// budget — row/column stacking never changes an output element's
// accumulation chain (DESIGN.md "Compute kernels").

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/titv.h"
#include "data/dataset.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "nn/rnn_config.h"
#include "parallel/parallel_for.h"
#include "tensor/gemm.h"

namespace tracer {
namespace {

using autograd::Variable;

/// Restores TRACER_BATCHED_RNN / TRACER_GEMM / the thread budget on exit so
/// env sweeps cannot leak into other tests.
class EnvGuard {
 public:
  EnvGuard() : prev_threads_(parallel::MaxThreads()) {}
  ~EnvGuard() {
    unsetenv("TRACER_BATCHED_RNN");
    unsetenv("TRACER_GEMM");
    nn::ReloadBatchedRnnEnvForTesting();
    gemm::ReloadKernelEnvForTesting();
    parallel::SetMaxThreads(prev_threads_);
  }

 private:
  int prev_threads_;
};

void UseBatchedRnn(bool batched) {
  setenv("TRACER_BATCHED_RNN", batched ? "1" : "0", 1);
  nn::ReloadBatchedRnnEnvForTesting();
}

std::vector<Variable> RandomSequence(int time_steps, int batch, int dim,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Variable> xs;
  xs.reserve(time_steps);
  for (int t = 0; t < time_steps; ++t) {
    xs.push_back(Variable::Constant(Tensor::Randn({batch, dim}, rng)));
  }
  return xs;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

TEST(BatchedEquivalenceTest, GruSequenceMatchesStepChainBitwise) {
  EnvGuard guard;
  Rng rng(7);
  nn::Gru gru(5, 9, rng);
  const std::vector<Variable> xs = RandomSequence(6, 4, 5, 11);
  for (const bool reverse : {false, true}) {
    UseBatchedRnn(false);
    const std::vector<Variable> ref = gru.Run(xs, reverse);
    UseBatchedRnn(true);
    const std::vector<Variable> got = gru.Run(xs, reverse);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t t = 0; t < ref.size(); ++t) {
      EXPECT_TRUE(BitwiseEqual(ref[t].value(), got[t].value()))
          << "reverse=" << reverse << " t=" << t;
    }
  }
}

TEST(BatchedEquivalenceTest, LstmSequenceMatchesStepChainBitwise) {
  EnvGuard guard;
  Rng rng(13);
  nn::Lstm lstm(4, 7, rng);
  const std::vector<Variable> xs = RandomSequence(5, 3, 4, 17);
  for (const bool reverse : {false, true}) {
    UseBatchedRnn(false);
    const std::vector<Variable> ref = lstm.Run(xs, reverse);
    UseBatchedRnn(true);
    const std::vector<Variable> got = lstm.Run(xs, reverse);
    ASSERT_EQ(ref.size(), got.size());
    for (size_t t = 0; t < ref.size(); ++t) {
      EXPECT_TRUE(BitwiseEqual(ref[t].value(), got[t].value()))
          << "reverse=" << reverse << " t=" << t;
    }
  }
}

TEST(BatchedEquivalenceTest,
     TitvForwardBitwiseStableAcrossPathKernelAndThreads) {
  EnvGuard guard;
  core::TitvConfig config;
  config.input_dim = 6;
  config.rnn_dim = 12;
  config.film_dim = 8;
  config.seed = 23;
  core::Titv model(config);

  Rng rng(29);
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 8, 5,
                             config.input_dim);
  for (int i = 0; i < 8; ++i) {
    for (int t = 0; t < 5; ++t) {
      for (int d = 0; d < config.input_dim; ++d) {
        ds.at(i, t, d) = static_cast<float>(rng.Uniform());
      }
    }
    ds.set_label(i, rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  const data::Batch batch = data::FullBatch(ds);
  const std::vector<Variable> xs = nn::SequenceModel::ToVariables(batch);

  // Reference: per-timestep path, single thread, default kernel choice.
  UseBatchedRnn(false);
  parallel::SetMaxThreads(1);
  const Tensor reference = model.Forward(xs).value();

  // The batched path must reproduce it bit for bit under every
  // TRACER_GEMM selection and thread budget.
  UseBatchedRnn(true);
  for (const char* env : {"naive", "blocked", "auto"}) {
    setenv("TRACER_GEMM", env, 1);
    gemm::ReloadKernelEnvForTesting();
    for (const int threads : {1, 2, 4, 8}) {
      parallel::SetMaxThreads(threads);
      const Tensor out = model.Forward(xs).value();
      EXPECT_TRUE(BitwiseEqual(reference, out))
          << "TRACER_GEMM=" << env << " threads=" << threads;
    }
  }
}

TEST(BatchedEquivalenceTest, FeatureImportanceMatchesAcrossPaths) {
  // ComputeFeatureImportance recomputes α through the stacked attention
  // GEMM; its values must not depend on the sequence path either.
  EnvGuard guard;
  core::TitvConfig config;
  config.input_dim = 5;
  config.rnn_dim = 8;
  config.film_dim = 8;
  config.seed = 31;
  core::Titv model(config);

  Rng rng(37);
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 6, 4,
                             config.input_dim);
  for (int i = 0; i < 6; ++i) {
    for (int t = 0; t < 4; ++t) {
      for (int d = 0; d < config.input_dim; ++d) {
        ds.at(i, t, d) = static_cast<float>(rng.Uniform());
      }
    }
    ds.set_label(i, rng.Bernoulli(0.5) ? 1.0f : 0.0f);
  }
  const data::Batch batch = data::FullBatch(ds);

  UseBatchedRnn(false);
  const core::FeatureImportanceTrace ref =
      model.ComputeFeatureImportance(batch, /*classification=*/true);
  UseBatchedRnn(true);
  const core::FeatureImportanceTrace got =
      model.ComputeFeatureImportance(batch, /*classification=*/true);
  ASSERT_EQ(ref.alpha.size(), got.alpha.size());
  for (size_t t = 0; t < ref.alpha.size(); ++t) {
    EXPECT_TRUE(BitwiseEqual(ref.alpha[t], got.alpha[t])) << "t=" << t;
  }
  EXPECT_TRUE(BitwiseEqual(ref.outputs, got.outputs));
}

}  // namespace
}  // namespace tracer
