#include "core/tracer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "nn/serialization.h"

namespace tracer {
namespace core {

Tracer::Tracer(const TracerConfig& config) : config_(config) {
  model_ = std::make_unique<Titv>(config.model);
}

train::TrainResult Tracer::Train(const data::TimeSeriesDataset& train_set,
                                 const data::TimeSeriesDataset& val_set) {
  return train::Fit(model_.get(), train_set, val_set, config_.training);
}

train::EvalResult Tracer::Evaluate(const data::TimeSeriesDataset& dataset) {
  return train::Evaluate(model_.get(), dataset);
}

AlertDecision Tracer::PredictAndAlert(const data::TimeSeriesDataset& dataset,
                                      int sample_index) {
  TRACER_CHECK(sample_index >= 0 && sample_index < dataset.num_samples());
  const data::Batch batch = data::MakeBatch(dataset, {sample_index});
  const bool classification =
      dataset.task() == data::TaskType::kBinaryClassification;
  const FeatureImportanceTrace trace =
      model_->ComputeFeatureImportance(batch, classification);
  AlertDecision decision;
  decision.probability = trace.outputs.at(0, 0);
  decision.alert =
      classification && decision.probability >= config_.alert_threshold;
  return decision;
}

PatientInterpretation Tracer::InterpretPatient(
    const data::TimeSeriesDataset& dataset, int sample_index) {
  TRACER_CHECK(sample_index >= 0 && sample_index < dataset.num_samples());
  const data::Batch batch = data::MakeBatch(dataset, {sample_index});
  const bool classification =
      dataset.task() == data::TaskType::kBinaryClassification;
  const FeatureImportanceTrace trace =
      model_->ComputeFeatureImportance(batch, classification);
  PatientInterpretation out;
  out.sample_index = sample_index;
  out.probability = trace.outputs.at(0, 0);
  out.feature_names = dataset.feature_names();
  out.fi.resize(trace.fi.size());
  for (size_t t = 0; t < trace.fi.size(); ++t) {
    out.fi[t].resize(dataset.num_features());
    for (int d = 0; d < dataset.num_features(); ++d) {
      out.fi[t][d] = trace.fi[t].at(0, d);
    }
  }
  return out;
}

FeatureInterpretation Tracer::InterpretFeature(
    const data::TimeSeriesDataset& dataset, const std::string& feature_name,
    const std::vector<int>& restrict_to) {
  const int feature = dataset.FeatureIndex(feature_name);
  TRACER_CHECK_GE(feature, 0) << "unknown feature " << feature_name;
  std::vector<int> cohort = restrict_to;
  if (cohort.empty()) {
    cohort.resize(dataset.num_samples());
    std::iota(cohort.begin(), cohort.end(), 0);
  }
  const bool classification =
      dataset.task() == data::TaskType::kBinaryClassification;

  FeatureInterpretation out;
  out.feature_name = feature_name;
  out.feature_index = feature;
  out.windows.resize(dataset.num_windows());
  std::vector<std::vector<float>> per_window(dataset.num_windows());

  // Batch the cohort through the model, collecting this feature's FI.
  constexpr int kBatch = 256;
  for (size_t begin = 0; begin < cohort.size(); begin += kBatch) {
    const size_t end = std::min(cohort.size(), begin + kBatch);
    const std::vector<int> idx(cohort.begin() + begin,
                               cohort.begin() + end);
    const data::Batch batch = data::MakeBatch(dataset, idx);
    const FeatureImportanceTrace trace =
        model_->ComputeFeatureImportance(batch, classification);
    for (int t = 0; t < dataset.num_windows(); ++t) {
      for (int b = 0; b < batch.batch_size(); ++b) {
        per_window[t].push_back(trace.fi[t].at(b, feature));
      }
    }
  }

  for (int t = 0; t < dataset.num_windows(); ++t) {
    std::vector<float>& values = per_window[t];
    TRACER_CHECK(!values.empty());
    std::sort(values.begin(), values.end());
    FeatureImportanceDistribution dist;
    dist.window = t;
    double sum = 0.0;
    double abs_sum = 0.0;
    for (float v : values) {
      sum += v;
      abs_sum += std::fabs(v);
    }
    dist.mean = static_cast<float>(sum / values.size());
    dist.mean_abs = static_cast<float>(abs_sum / values.size());
    double sq = 0.0;
    for (float v : values) {
      sq += (v - dist.mean) * (v - dist.mean);
    }
    dist.stddev = values.size() > 1
                      ? static_cast<float>(std::sqrt(sq / (values.size() - 1)))
                      : 0.0f;
    auto quantile = [&](double q) {
      const size_t pos = static_cast<size_t>(q * (values.size() - 1));
      return values[pos];
    };
    dist.min = values.front();
    dist.p25 = quantile(0.25);
    dist.median = quantile(0.5);
    dist.p75 = quantile(0.75);
    dist.max = values.back();
    out.windows[t] = dist;
  }
  return out;
}

namespace {

// Name of the pseudo-tensor carrying the regression output calibration
// (scale, offset) inside checkpoints. Without it a reloaded regression
// model would predict in standardized units.
constexpr char kOutputTransformKey[] = "__output_transform";

}  // namespace

Status Tracer::SaveCheckpoint(const std::string& path) const {
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (const auto& [name, param] : model_->NamedParameters()) {
    tensors.emplace_back(name, param.value());
  }
  tensors.emplace_back(
      kOutputTransformKey,
      Tensor({1, 2}, {model_->output_scale(), model_->output_offset()}));
  return nn::SaveCheckpoint(path, tensors);
}

Status Tracer::LoadCheckpoint(const std::string& path) {
  auto loaded = nn::LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const auto& tensors = loaded.value();
  auto named = model_->NamedParameters();
  // Parameters plus the trailing output-transform record (older
  // checkpoints without it are also accepted).
  const bool has_transform =
      tensors.size() == named.size() + 1 &&
      tensors.back().first == kOutputTransformKey;
  if (!has_transform && tensors.size() != named.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (named[i].first != tensors[i].first ||
        !named[i].second.value().SameShape(tensors[i].second)) {
      return Status::InvalidArgument("checkpoint layout mismatch at " +
                                     tensors[i].first);
    }
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value() = tensors[i].second;
  }
  if (has_transform) {
    const Tensor& transform = tensors.back().second;
    if (transform.size() != 2) {
      return Status::InvalidArgument("malformed output transform record");
    }
    model_->SetOutputTransform(transform[0], transform[1]);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace tracer
