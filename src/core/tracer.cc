#include "core/tracer.h"

#include "common/macros.h"
#include "interpret/adapters.h"
#include "interpret/summary.h"
#include "nn/serialization.h"

namespace tracer {
namespace core {

Tracer::Tracer(const TracerConfig& config) : config_(config) {
  model_ = std::make_unique<Titv>(config.model);
}

train::TrainResult Tracer::Train(const data::TimeSeriesDataset& train_set,
                                 const data::TimeSeriesDataset& val_set) {
  return train::Fit(model_.get(), train_set, val_set, config_.training);
}

train::EvalResult Tracer::Evaluate(const data::TimeSeriesDataset& dataset) {
  return train::Evaluate(model_.get(), dataset);
}

AlertDecision Tracer::PredictAndAlert(const data::TimeSeriesDataset& dataset,
                                      int sample_index) {
  TRACER_CHECK(sample_index >= 0 && sample_index < dataset.num_samples());
  const data::Batch batch = data::MakeBatch(dataset, {sample_index});
  const bool classification =
      dataset.task() == data::TaskType::kBinaryClassification;
  const FeatureImportanceTrace trace =
      model_->ComputeFeatureImportance(batch, classification);
  AlertDecision decision;
  decision.probability = trace.outputs.at(0, 0);
  decision.alert =
      classification && decision.probability >= config_.alert_threshold;
  return decision;
}

PatientInterpretation Tracer::InterpretPatient(
    const data::TimeSeriesDataset& dataset, int sample_index) {
  TRACER_CHECK(sample_index >= 0 && sample_index < dataset.num_samples());
  const data::Batch batch = data::MakeBatch(dataset, {sample_index});
  const bool classification =
      dataset.task() == data::TaskType::kBinaryClassification;
  interpret::TitvAttributor attributor(model_.get(), classification);
  const interpret::AttributionResult result = attributor.Attribute(batch.xs);
  PatientInterpretation out;
  out.sample_index = sample_index;
  out.probability = result.samples[0].score;
  out.feature_names = dataset.feature_names();
  out.fi = result.samples[0].fi;
  return out;
}

FeatureInterpretation Tracer::InterpretFeature(
    const data::TimeSeriesDataset& dataset, const std::string& feature_name,
    const std::vector<int>& restrict_to) {
  const int feature = dataset.FeatureIndex(feature_name);
  TRACER_CHECK_GE(feature, 0) << "unknown feature " << feature_name;
  const bool classification =
      dataset.task() == data::TaskType::kBinaryClassification;
  interpret::TitvAttributor attributor(model_.get(), classification);
  const std::vector<interpret::WindowStats> stats =
      interpret::FeatureDistribution(attributor, dataset, feature,
                                     restrict_to);
  FeatureInterpretation out;
  out.feature_name = feature_name;
  out.feature_index = feature;
  out.windows.resize(stats.size());
  for (size_t t = 0; t < stats.size(); ++t) {
    FeatureImportanceDistribution& dist = out.windows[t];
    dist.window = stats[t].window;
    dist.mean = stats[t].mean;
    dist.mean_abs = stats[t].mean_abs;
    dist.stddev = stats[t].stddev;
    dist.p25 = stats[t].p25;
    dist.median = stats[t].median;
    dist.p75 = stats[t].p75;
    dist.min = stats[t].min;
    dist.max = stats[t].max;
  }
  return out;
}

namespace {

// Name of the pseudo-tensor carrying the regression output calibration
// (scale, offset) inside checkpoints. Without it a reloaded regression
// model would predict in standardized units.
constexpr char kOutputTransformKey[] = "__output_transform";

}  // namespace

Status Tracer::SaveCheckpoint(const std::string& path) const {
  std::vector<std::pair<std::string, Tensor>> tensors;
  for (const auto& [name, param] : model_->NamedParameters()) {
    tensors.emplace_back(name, param.value());
  }
  tensors.emplace_back(
      kOutputTransformKey,
      Tensor({1, 2}, {model_->output_scale(), model_->output_offset()}));
  return nn::SaveCheckpoint(path, tensors);
}

Status Tracer::LoadCheckpoint(const std::string& path) {
  auto loaded = nn::LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const auto& tensors = loaded.value();
  auto named = model_->NamedParameters();
  // Parameters plus the trailing output-transform record (older
  // checkpoints without it are also accepted).
  const bool has_transform =
      tensors.size() == named.size() + 1 &&
      tensors.back().first == kOutputTransformKey;
  if (!has_transform && tensors.size() != named.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (named[i].first != tensors[i].first ||
        !named[i].second.value().SameShape(tensors[i].second)) {
      return Status::InvalidArgument("checkpoint layout mismatch at " +
                                     tensors[i].first);
    }
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value() = tensors[i].second;
  }
  if (has_transform) {
    const Tensor& transform = tensors.back().second;
    if (transform.size() != 2) {
      return Status::InvalidArgument("malformed output transform record");
    }
    model_->SetOutputTransform(transform[0], transform[1]);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace tracer
