#ifndef TRACER_CORE_REPORT_H_
#define TRACER_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/tracer.h"

namespace tracer {
namespace core {

/// Renders a numeric series as a unicode sparkline ("▁▂▄▇█"), the compact
/// visual doctors scan in the paper's Figure 3 dashboards. Empty input
/// yields an empty string; a constant series renders at mid height.
std::string Sparkline(const std::vector<float>& values);

/// Options for the textual interpretation reports.
struct ReportOptions {
  /// Features to include; empty = the `top_k` by final-window |FI|.
  std::vector<std::string> features;
  /// How many features to auto-select when `features` is empty.
  int top_k = 6;
  /// Markdown (true) or plain text (false).
  bool markdown = true;
};

/// The paper's Interpretation/Visualization stage (Figure 2): renders one
/// patient's TRACER output — predicted risk, alert state and the
/// FI–time-window curves of the most influential labs — as a report a
/// clinician can read without touching the library.
std::string RenderPatientReport(const PatientInterpretation& interp,
                                const AlertDecision& decision,
                                const data::TimeSeriesDataset& dataset,
                                const ReportOptions& options = {});

/// Cohort-level report: the FI distribution of one feature across windows
/// (the §5.4 medical-research view), with a sparkline of the mean curve.
std::string RenderFeatureReport(const FeatureInterpretation& interp,
                                const ReportOptions& options = {});

}  // namespace core
}  // namespace tracer

#endif  // TRACER_CORE_REPORT_H_
