#include "core/titv.h"

#include "autograd/ops.h"
#include "common/macros.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace core {

using autograd::Variable;

namespace {

bool UsesInvariantModule(TitvAblation ablation) {
  return ablation != TitvAblation::kVariantOnly;
}

bool UsesVariantModule(TitvAblation ablation) {
  return ablation != TitvAblation::kInvariantOnly;
}

bool ModulatesInput(TitvAblation ablation) {
  return UsesInvariantModule(ablation) &&
         UsesVariantModule(ablation) &&
         ablation != TitvAblation::kNoFilmModulation;
}

}  // namespace

Titv::Titv(const TitvConfig& config) : config_(config) {
  TRACER_CHECK_GT(config.input_dim, 0);
  TRACER_CHECK_GT(config.rnn_dim, 0);
  TRACER_CHECK_GT(config.film_dim, 0);
  Rng rng(config.seed);
  const int d = config.input_dim;
  if (UsesInvariantModule(config.ablation)) {
    invariant_rnn_ = std::make_unique<nn::BiGru>(d, config.film_dim, rng);
    film_beta_ = std::make_unique<nn::Linear>(2 * config.film_dim, d, rng);
    film_theta_ = std::make_unique<nn::Linear>(2 * config.film_dim, d, rng);
    // FiLM identity initialisation (standard for conditioning layers):
    // start with β ≈ 1, θ ≈ 0 so the modulated input x̃ = β⊙x + θ begins as
    // x itself and ξ_t = β ⊕ α_t starts near 1 — without this the context
    // vector starts near zero and training stalls for many epochs.
    if (config.film_identity_init) {
      film_beta_->bias().mutable_value().Fill(1.0f);
    }
    AddSubmodule("invariant_rnn", invariant_rnn_.get());
    AddSubmodule("film_beta", film_beta_.get());
    AddSubmodule("film_theta", film_theta_.get());
  }
  if (UsesVariantModule(config.ablation)) {
    variant_rnn_ = std::make_unique<nn::BiGru>(d, config.rnn_dim, rng);
    attention_ = std::make_unique<nn::Linear>(2 * config.rnn_dim, d, rng);
    AddSubmodule("variant_rnn", variant_rnn_.get());
    AddSubmodule("attention", attention_.get());
  }
  output_ = std::make_unique<nn::Linear>(d, 1, rng);
  AddSubmodule("output", output_.get());
}

std::string Titv::name() const {
  switch (config_.ablation) {
    case TitvAblation::kFull:
      return "TRACER";
    case TitvAblation::kInvariantOnly:
      return "TRACERinv";
    case TitvAblation::kVariantOnly:
      return "TRACERvar";
    case TitvAblation::kNoFilmModulation:
      return "TRACER-noFiLM";
    case TitvAblation::kNoBetaInPrediction:
      return "TRACER-noBetaPred";
    case TitvAblation::kMultiplicativeCombine:
      return "TRACER-mulCombine";
    case TitvAblation::kLastStateSummary:
      return "TRACER-lastSummary";
  }
  return "TRACER";
}

Titv::ModulationOutputs Titv::RunTimeInvariant(
    const std::vector<Variable>& xs) const {
  ModulationOutputs out;
  if (!UsesInvariantModule(config_.ablation)) return out;
  // Eq. 1: q_t = BIRNN(x_1..x_T).
  const std::vector<Variable> qs = invariant_rnn_->Run(xs);
  // Eq. 2: s = mean_t q_t (or the last state under the ablation).
  const Variable s = config_.ablation == TitvAblation::kLastStateSummary
                         ? qs.back()
                         : autograd::Average(qs);
  // Eq. 3–4: the FiLM generator.
  out.beta = film_beta_->Forward(s);
  out.theta = film_theta_->Forward(s);
  out.has_value = true;
  return out;
}

Variable Titv::Forward(const std::vector<Variable>& xs) {
  TRACER_CHECK(!xs.empty());
  TRACER_CHECK_EQ(xs[0].value().cols(), config_.input_dim);
  const TitvAblation ablation = config_.ablation;
  const ModulationOutputs mod = RunTimeInvariant(xs);

  // Time-Variant Module (Eq. 5–11).
  std::vector<Variable> alphas;
  if (UsesVariantModule(ablation)) {
    std::vector<Variable> inputs;
    inputs.reserve(xs.size());
    if (ModulatesInput(ablation)) {
      // Eq. 10 applied inside Eq. 6–8: x̃_t = β ⊙ x_t + θ (feature-wise
      // affine transformation of the input, §4.1).
      for (const Variable& x : xs) {
        inputs.push_back(autograd::Add(autograd::Mul(mod.beta, x),
                                       mod.theta));
      }
    } else {
      inputs = xs;
    }
    const std::vector<Variable> hs = variant_rnn_->Run(inputs);
    // Eq. 11: α_t = tanh(W_α h_t + b_α), with all timesteps stacked into
    // one attention GEMM. Row stacking keeps every output element's
    // accumulation chain, so each slice equals the per-t projection.
    const int rows = hs[0].value().rows();
    const Variable a_all =
        autograd::Tanh(attention_->Forward(autograd::ConcatRows(hs)));
    alphas.reserve(hs.size());
    for (size_t t = 0; t < hs.size(); ++t) {
      alphas.push_back(autograd::SliceRows(
          a_all, static_cast<int>(t) * rows,
          static_cast<int>(t + 1) * rows));
    }
  }

  // Prediction Module (Eq. 12–14).
  Variable context;
  for (size_t t = 0; t < xs.size(); ++t) {
    Variable xi;  // ξ_t
    switch (ablation) {
      case TitvAblation::kInvariantOnly:
        xi = mod.beta;
        break;
      case TitvAblation::kVariantOnly:
      case TitvAblation::kNoBetaInPrediction:
        xi = alphas[t];
        break;
      case TitvAblation::kMultiplicativeCombine:
        xi = autograd::Mul(mod.beta, alphas[t]);
        break;
      default:
        xi = autograd::Add(mod.beta, alphas[t]);  // Eq. 12: ξ_t = β ⊕ α_t
    }
    const Variable term = autograd::Mul(xi, xs[t]);  // ξ_t ⊙ x_t
    context = t == 0 ? term : autograd::Add(context, term);  // Eq. 13
  }
  // Eq. 14 pre-activation: ⟨w, c⟩ + b. The sigmoid (classification) is
  // applied by the loss / Predict for numerical stability.
  return output_->Forward(context);
}

FeatureImportanceTrace Titv::ComputeFeatureImportance(
    const data::Batch& batch, bool classification) {
  const std::vector<Variable> xs = nn::SequenceModel::ToVariables(batch);
  const int batch_size = batch.batch_size();
  const int num_windows = static_cast<int>(xs.size());
  const int d = config_.input_dim;

  const ModulationOutputs mod = RunTimeInvariant(xs);

  FeatureImportanceTrace trace;
  trace.beta = mod.has_value ? mod.beta.value()
                             : Tensor::Zeros({batch_size, d});
  trace.w = output_->weight().value();  // D×1

  // Recompute α_t exactly as Forward does.
  std::vector<Tensor> alphas;
  if (UsesVariantModule(config_.ablation)) {
    std::vector<Variable> inputs;
    if (ModulatesInput(config_.ablation)) {
      for (const Variable& x : xs) {
        inputs.push_back(autograd::Add(autograd::Mul(mod.beta, x),
                                       mod.theta));
      }
    } else {
      inputs = xs;
    }
    const std::vector<Variable> hs = variant_rnn_->Run(inputs);
    const int rows = hs[0].value().rows();
    const Variable a_all =
        autograd::Tanh(attention_->Forward(autograd::ConcatRows(hs)));
    for (size_t t = 0; t < hs.size(); ++t) {
      alphas.push_back(tracer::SliceRows(a_all.value(),
                                         static_cast<int>(t) * rows,
                                         static_cast<int>(t + 1) * rows));
    }
  } else {
    alphas.assign(num_windows, Tensor::Zeros({batch_size, d}));
  }
  trace.alpha = alphas;

  // Eq. 17: FI(ŷ, x_{t,d}) = ξ_{t,d} · w_d, with ξ matching the active
  // ablation (β + α, β, α or β ⊙ α).
  trace.fi.reserve(num_windows);
  Tensor context({batch_size, d});
  // For regression the effective prediction is scale·raw + offset, so each
  // feature's contribution carries the scale factor.
  const float fi_scale = classification ? 1.0f : output_scale();
  for (int t = 0; t < num_windows; ++t) {
    Tensor fi({batch_size, d});
    for (int b = 0; b < batch_size; ++b) {
      for (int j = 0; j < d; ++j) {
        float xi;
        switch (config_.ablation) {
          case TitvAblation::kInvariantOnly:
            xi = trace.beta.at(b, j);
            break;
          case TitvAblation::kVariantOnly:
          case TitvAblation::kNoBetaInPrediction:
            xi = alphas[t].at(b, j);
            break;
          case TitvAblation::kMultiplicativeCombine:
            xi = trace.beta.at(b, j) * alphas[t].at(b, j);
            break;
          default:
            xi = trace.beta.at(b, j) + alphas[t].at(b, j);
        }
        fi.at(b, j) = xi * trace.w.at(j, 0) * fi_scale;
        context.at(b, j) += xi * batch.xs[t].at(b, j);
      }
    }
    trace.fi.push_back(std::move(fi));
  }

  // Eq. 18: ŷ = σ(Σ_t Σ_d FI·x + b); reuse the context to produce outputs.
  Tensor logits = tracer::MatMul(context, trace.w);
  const Tensor& bias = output_->bias().value();
  for (int b = 0; b < batch_size; ++b) logits.at(b, 0) += bias.at(0, 0);
  trace.outputs =
      classification
          ? tracer::Sigmoid(logits)
          : tracer::AddScalar(tracer::Scale(logits, output_scale()),
                              output_offset());
  return trace;
}

}  // namespace core
}  // namespace tracer
