#ifndef TRACER_CORE_ALERTING_H_
#define TRACER_CORE_ALERTING_H_

#include <vector>

namespace tracer {
namespace core {

/// Deployment-facing alert-threshold calibration. The paper's real-time
/// prediction & alert scenario (§3) assumes a predefined risk threshold
/// (e.g. 75%); in practice that threshold is chosen on validation data to
/// meet an operating constraint — these helpers implement the common ones.

/// Operating point achieved by a threshold on a labelled validation set.
struct OperatingPoint {
  float threshold = 0.5f;
  double precision = 0.0;
  double recall = 0.0;
  double alert_rate = 0.0;  // fraction of patients that would alert
  double f1 = 0.0;
};

/// Evaluates one threshold.
OperatingPoint EvaluateThreshold(const std::vector<float>& probs,
                                 const std::vector<float>& labels,
                                 float threshold);

/// Lowest threshold whose precision is at least `min_precision` (so alerts
/// stay trustworthy while recall is maximised). Falls back to the highest
/// achievable-precision threshold if the target is infeasible.
OperatingPoint ThresholdForPrecision(const std::vector<float>& probs,
                                     const std::vector<float>& labels,
                                     double min_precision);

/// Highest threshold whose recall is at least `min_recall` (so at most the
/// tolerated fraction of true positives is missed, with as few false
/// alerts as possible).
OperatingPoint ThresholdForRecall(const std::vector<float>& probs,
                                  const std::vector<float>& labels,
                                  double min_recall);

/// Threshold whose alert rate does not exceed `max_alert_rate` — the
/// staffing-constraint formulation ("the ward can follow up on at most 5%
/// of patients per day").
OperatingPoint ThresholdForAlertBudget(const std::vector<float>& probs,
                                       const std::vector<float>& labels,
                                       double max_alert_rate);

/// Threshold maximising F1.
OperatingPoint BestF1Threshold(const std::vector<float>& probs,
                               const std::vector<float>& labels);

}  // namespace core
}  // namespace tracer

#endif  // TRACER_CORE_ALERTING_H_
