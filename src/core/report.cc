#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace tracer {
namespace core {

std::string Sparkline(const std::vector<float>& values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  constexpr int kNumLevels = 8;
  if (values.empty()) return "";
  float lo = values[0];
  float hi = values[0];
  for (float v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  const float range = hi - lo;
  for (float v : values) {
    int level = range > 0.0f
                    ? static_cast<int>((v - lo) / range * (kNumLevels - 1) +
                                       0.5f)
                    : kNumLevels / 2;
    level = std::clamp(level, 0, kNumLevels - 1);
    out += kLevels[level];
  }
  return out;
}

namespace {

/// Features ordered by |FI| at the final window, descending.
std::vector<int> RankFeaturesByFinalImportance(
    const PatientInterpretation& interp) {
  TRACER_CHECK(!interp.fi.empty());
  const std::vector<float>& final_fi = interp.fi.back();
  std::vector<int> order(final_fi.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::fabs(final_fi[a]) > std::fabs(final_fi[b]);
  });
  return order;
}

std::string TrendWord(const std::vector<float>& curve) {
  if (curve.size() < 2) return "flat";
  // Least-squares slope relative to the curve's own scale.
  const int n = static_cast<int>(curve.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  float lo = curve[0], hi = curve[0];
  for (int i = 0; i < n; ++i) {
    sx += i;
    sy += curve[i];
    sxx += static_cast<double>(i) * i;
    sxy += static_cast<double>(i) * curve[i];
    lo = std::min(lo, curve[i]);
    hi = std::max(hi, curve[i]);
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double scale = std::max(1e-6, static_cast<double>(hi - lo) +
                                          std::fabs(sy / n));
  const double normalized = slope * n / scale;
  if (normalized > 0.25) return "rising";
  if (normalized < -0.25) return "falling";
  return "stable";
}

}  // namespace

std::string RenderPatientReport(const PatientInterpretation& interp,
                                const AlertDecision& decision,
                                const data::TimeSeriesDataset& dataset,
                                const ReportOptions& options) {
  std::ostringstream os;
  const char* h = options.markdown ? "## " : "";
  const char* bold = options.markdown ? "**" : "";
  os << h << "Patient report — test sample " << interp.sample_index
     << "\n\n";
  os << bold << "Predicted risk: "
     << FormatFloat(100.0 * interp.probability, 1) << "%" << bold;
  if (decision.alert) {
    os << "  — ALERT (threshold exceeded; attend to this patient)";
  }
  os << "\n\n";
  os << "Feature importance over the " << interp.fi.size()
     << " time windows (Eq. 17), most influential labs first:\n\n";

  std::vector<int> selected;
  if (!options.features.empty()) {
    for (const std::string& name : options.features) {
      const int d = dataset.FeatureIndex(name);
      if (d >= 0) selected.push_back(d);
    }
  } else {
    selected = RankFeaturesByFinalImportance(interp);
    if (static_cast<int>(selected.size()) > options.top_k) {
      selected.resize(options.top_k);
    }
  }

  if (options.markdown) {
    os << "| Lab | FI trend | trajectory | final-window FI |\n";
    os << "|---|---|---|---|\n";
  }
  for (int d : selected) {
    std::vector<float> curve;
    curve.reserve(interp.fi.size());
    for (const auto& window : interp.fi) curve.push_back(window[d]);
    const std::string name = d < static_cast<int>(interp.feature_names.size())
                                 ? interp.feature_names[d]
                                 : "feature_" + std::to_string(d);
    if (options.markdown) {
      os << "| " << name << " | " << Sparkline(curve) << " | "
         << TrendWord(curve) << " | " << FormatFloat(curve.back(), 4)
         << " |\n";
    } else {
      os << "  " << name << "  " << Sparkline(curve) << "  ("
         << TrendWord(curve) << ", final " << FormatFloat(curve.back(), 4)
         << ")\n";
    }
  }
  return os.str();
}

std::string RenderFeatureReport(const FeatureInterpretation& interp,
                                const ReportOptions& options) {
  std::ostringstream os;
  const char* h = options.markdown ? "## " : "";
  os << h << "Feature report — " << interp.feature_name << "\n\n";
  std::vector<float> means, spreads;
  for (const auto& window : interp.windows) {
    means.push_back(window.mean);
    spreads.push_back(window.p75 - window.p25);
  }
  os << "Cohort mean FI per window:   " << Sparkline(means) << "  ("
     << TrendWord(means) << ")\n";
  os << "Cohort FI dispersion (IQR):  " << Sparkline(spreads) << "\n\n";
  if (options.markdown) {
    os << "| window | mean FI | IQR |\n|---|---|---|\n";
    for (const auto& window : interp.windows) {
      os << "| " << window.window + 1 << " | "
         << FormatFloat(window.mean, 4) << " | "
         << FormatFloat(window.p75 - window.p25, 4) << " |\n";
    }
  }
  return os.str();
}

}  // namespace core
}  // namespace tracer
