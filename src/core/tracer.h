#ifndef TRACER_CORE_TRACER_H_
#define TRACER_CORE_TRACER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/titv.h"
#include "train/trainer.h"

namespace tracer {
namespace core {

/// Framework-level configuration (§3): the TITV model, its training
/// hyperparameters and the alerting threshold of the real-time
/// prediction-&-alert scenario.
struct TracerConfig {
  TitvConfig model;
  train::TrainConfig training;
  /// Risk threshold above which an alert is raised (the paper's example
  /// uses 75%).
  float alert_threshold = 0.75f;
};

/// Outcome of a real-time prediction for one sample.
struct AlertDecision {
  float probability = 0.0f;
  bool alert = false;
};

/// Patient-level interpretation (§5.3): the Feature Importance – Time
/// Window curves of one sample.
struct PatientInterpretation {
  int sample_index = 0;
  float probability = 0.0f;
  /// fi[t][d]: Eq. 17 feature importance of feature d at window t.
  std::vector<std::vector<float>> fi;
  std::vector<std::string> feature_names;
};

/// One window of a feature-level interpretation: the distribution of FI
/// values across the cohort (§5.4 plots these distributions per window).
struct FeatureImportanceDistribution {
  int window = 0;
  float mean = 0.0f;
  /// Mean of |FI| — robust to per-patient sign flips (a feature whose β
  /// changes sign across patients has mean ≈ 0 but large mean_abs).
  float mean_abs = 0.0f;
  float stddev = 0.0f;
  float p25 = 0.0f;
  float median = 0.0f;
  float p75 = 0.0f;
  float min = 0.0f;
  float max = 0.0f;
};

/// Feature-level interpretation (§5.4): FI distribution per time window for
/// one feature over a cohort.
struct FeatureInterpretation {
  std::string feature_name;
  int feature_index = -1;
  std::vector<FeatureImportanceDistribution> windows;
};

/// TRACER: accurate + interpretable analytics around the TITV model (§3).
/// Owns the model, trains it with best-checkpoint selection, and serves the
/// three doctor-validation scenarios: real-time prediction & alert,
/// patient-level interpretation and feature-level interpretation.
class Tracer {
 public:
  explicit Tracer(const TracerConfig& config);

  /// Trains TITV; the model is left at the best-validation checkpoint.
  train::TrainResult Train(const data::TimeSeriesDataset& train_set,
                           const data::TimeSeriesDataset& val_set);

  /// AUC/CEL (classification) or RMSE/MAE (regression) on a dataset.
  train::EvalResult Evaluate(const data::TimeSeriesDataset& dataset);

  /// Scenario 1 — real-time prediction & alert: scores one sample (e.g.
  /// the daily generated EMR data of a hospitalised patient) and raises an
  /// alert when the risk exceeds the configured threshold.
  AlertDecision PredictAndAlert(const data::TimeSeriesDataset& dataset,
                                int sample_index);

  /// Scenario 2 — patient-level interpretation: FI(ŷ, x_{t,d}) curves for
  /// one sample.
  PatientInterpretation InterpretPatient(
      const data::TimeSeriesDataset& dataset, int sample_index);

  /// Scenario 3 — feature-level interpretation: FI distribution over the
  /// whole cohort for one feature. `restrict_to` optionally limits the
  /// cohort (e.g. high-risk patients only); empty means all samples.
  FeatureInterpretation InterpretFeature(
      const data::TimeSeriesDataset& dataset, const std::string& feature_name,
      const std::vector<int>& restrict_to = {});

  /// Persists / restores the model parameters.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

  Titv& model() { return *model_; }
  const TracerConfig& config() const { return config_; }

 private:
  TracerConfig config_;
  std::unique_ptr<Titv> model_;
};

}  // namespace core
}  // namespace tracer

#endif  // TRACER_CORE_TRACER_H_
