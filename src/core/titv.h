#ifndef TRACER_CORE_TITV_H_
#define TRACER_CORE_TITV_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace core {

/// Which parts of TITV are active. Beyond the paper's two ablations
/// (TRACERinv / TRACERvar, Figure 13), the extra modes isolate the design
/// choices DESIGN.md calls out: the two uses of β (Eq. 6–8 modulation and
/// Eq. 12 integration), the additive combination of Eq. 12, and the mean
/// pooling of Eq. 2.
enum class TitvAblation {
  kFull,               // the complete TITV model
  kInvariantOnly,      // TRACERinv: Time-Invariant + Prediction Modules
  kVariantOnly,        // TRACERvar: Time-Variant + Prediction Modules
  kNoFilmModulation,   // β/θ computed but x_t not modulated (Eq. 6-8 off)
  kNoBetaInPrediction, // ξ_t = α_t (β kept out of Eq. 12)
  kMultiplicativeCombine,  // ξ_t = β ⊙ α_t instead of β ⊕ α_t
  kLastStateSummary,   // s = q_T instead of mean over windows (Eq. 2 off)
};

/// Hyperparameters of TITV (§4, §5.1.2).
struct TitvConfig {
  /// D: number of input features per window.
  int input_dim = 0;
  /// Per-direction hidden size of the Time-Variant BiGRU (h_t has
  /// 2×rnn_dim columns). Paper's `rnn_dim` sensitivity axis.
  int rnn_dim = 32;
  /// Per-direction hidden size of the Time-Invariant BiGRU (q_t has
  /// 2×film_dim columns). Paper's `film_dim` sensitivity axis.
  int film_dim = 32;
  TitvAblation ablation = TitvAblation::kFull;
  /// Initialise the FiLM generator to the identity transform (β ≈ 1,
  /// θ ≈ 0), standard for conditioning layers. Without it the ξ⊙x context
  /// starts near zero and training stalls for many epochs (see the
  /// ext02_film_init bench).
  bool film_identity_init = true;
  uint64_t seed = 5;
};

/// Feature-importance trace of one forward pass (Eq. 17):
/// FI(ŷ, x_{t,d}) = (β_d + α_{t,d}) · w_d per sample.
struct FeatureImportanceTrace {
  /// β per sample: B×D (zeros under kVariantOnly).
  Tensor beta;
  /// α_t per window: T tensors of B×D (zeros under kInvariantOnly).
  std::vector<Tensor> alpha;
  /// Output weights w: D×1.
  Tensor w;
  /// FI per window: T tensors of B×D.
  std::vector<Tensor> fi;
  /// Model outputs: B×1 probabilities (classification) or predictions.
  Tensor outputs;
};

/// TITV: the core model of TRACER (§4). Three collaborating modules:
///  - Time-Invariant Module (Eq. 1–4): BiGRU → mean-pooled summary s →
///    FiLM generator producing the scaling β and shifting θ;
///  - Time-Variant Module (Eq. 5–11): a FiLM-modulated BiGRU over
///    x̃_t = β ⊙ x_t + θ followed by a feature-wise self-attention
///    α_t = tanh(W_α h_t + b_α);
///  - Prediction Module (Eq. 12–14): ξ_t = β ⊕ α_t,
///    c = Σ_t ξ_t ⊙ x_t, ŷ = σ(⟨w, c⟩ + b).
class Titv : public nn::SequenceModel {
 public:
  explicit Titv(const TitvConfig& config);

  autograd::Variable Forward(
      const std::vector<autograd::Variable>& xs) override;

  std::string name() const override;

  const TitvConfig& config() const { return config_; }

  /// Runs the model on a batch and extracts the Eq. 17 feature importance
  /// for every sample, window and feature. `classification` controls
  /// whether outputs go through the sigmoid.
  FeatureImportanceTrace ComputeFeatureImportance(const data::Batch& batch,
                                                  bool classification = true);

 private:
  struct ModulationOutputs {
    autograd::Variable beta;
    autograd::Variable theta;
    bool has_value = false;
  };

  /// Time-Invariant Module: Eq. 1–4.
  ModulationOutputs RunTimeInvariant(
      const std::vector<autograd::Variable>& xs) const;

  TitvConfig config_;
  // Time-Invariant Module.
  std::unique_ptr<nn::BiGru> invariant_rnn_;
  std::unique_ptr<nn::Linear> film_beta_;
  std::unique_ptr<nn::Linear> film_theta_;
  // Time-Variant Module.
  std::unique_ptr<nn::BiGru> variant_rnn_;
  std::unique_ptr<nn::Linear> attention_;
  // Prediction Module.
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace core
}  // namespace tracer

#endif  // TRACER_CORE_TITV_H_
