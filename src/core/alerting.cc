#include "core/alerting.h"

#include <algorithm>

#include "common/macros.h"
#include "metrics/metrics.h"

namespace tracer {
namespace core {

namespace {

/// Candidate thresholds: midpoints between adjacent distinct scores plus
/// the extremes, so every achievable confusion matrix is covered.
std::vector<float> CandidateThresholds(const std::vector<float>& probs) {
  std::vector<float> sorted = probs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<float> candidates;
  candidates.push_back(0.0f);
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    candidates.push_back(0.5f * (sorted[i] + sorted[i + 1]));
  }
  candidates.push_back(1.0f + 1e-6f);  // nothing alerts
  return candidates;
}

}  // namespace

OperatingPoint EvaluateThreshold(const std::vector<float>& probs,
                                 const std::vector<float>& labels,
                                 float threshold) {
  TRACER_CHECK_EQ(probs.size(), labels.size());
  TRACER_CHECK(!probs.empty());
  const metrics::Confusion confusion =
      metrics::ConfusionAt(probs, labels, threshold);
  OperatingPoint point;
  point.threshold = threshold;
  point.precision = confusion.Precision();
  point.recall = confusion.Recall();
  point.f1 = confusion.F1();
  point.alert_rate =
      static_cast<double>(confusion.true_positive +
                          confusion.false_positive) /
      static_cast<double>(probs.size());
  return point;
}

OperatingPoint ThresholdForPrecision(const std::vector<float>& probs,
                                     const std::vector<float>& labels,
                                     double min_precision) {
  OperatingPoint best;
  bool found = false;
  OperatingPoint highest_precision;
  for (float threshold : CandidateThresholds(probs)) {
    const OperatingPoint point =
        EvaluateThreshold(probs, labels, threshold);
    if (point.precision > highest_precision.precision) {
      highest_precision = point;
    }
    if (point.precision + 1e-12 >= min_precision) {
      // Feasible: prefer the highest recall (lowest threshold wins ties
      // toward catching more positives).
      if (!found || point.recall > best.recall) {
        best = point;
        found = true;
      }
    }
  }
  return found ? best : highest_precision;
}

OperatingPoint ThresholdForRecall(const std::vector<float>& probs,
                                  const std::vector<float>& labels,
                                  double min_recall) {
  OperatingPoint best;
  bool found = false;
  for (float threshold : CandidateThresholds(probs)) {
    const OperatingPoint point =
        EvaluateThreshold(probs, labels, threshold);
    if (point.recall + 1e-12 >= min_recall) {
      // Feasible: prefer the fewest alerts (highest precision).
      if (!found || point.alert_rate < best.alert_rate) {
        best = point;
        found = true;
      }
    }
  }
  if (!found) {
    // min_recall > 1 requested; alert on everyone.
    return EvaluateThreshold(probs, labels, 0.0f);
  }
  return best;
}

OperatingPoint ThresholdForAlertBudget(const std::vector<float>& probs,
                                       const std::vector<float>& labels,
                                       double max_alert_rate) {
  OperatingPoint best = EvaluateThreshold(probs, labels, 1.0f + 1e-6f);
  for (float threshold : CandidateThresholds(probs)) {
    const OperatingPoint point =
        EvaluateThreshold(probs, labels, threshold);
    if (point.alert_rate <= max_alert_rate + 1e-12 &&
        point.recall > best.recall) {
      best = point;
    }
  }
  return best;
}

OperatingPoint BestF1Threshold(const std::vector<float>& probs,
                               const std::vector<float>& labels) {
  OperatingPoint best;
  for (float threshold : CandidateThresholds(probs)) {
    const OperatingPoint point =
        EvaluateThreshold(probs, labels, threshold);
    if (point.f1 > best.f1) best = point;
  }
  return best;
}

}  // namespace core
}  // namespace tracer
