#ifndef TRACER_AUTOGRAD_GRAPH_CHECK_H_
#define TRACER_AUTOGRAD_GRAPH_CHECK_H_

#include <string>
#include <vector>

#include "autograd/variable.h"

namespace tracer {
namespace autograd {

// Static analysis over a recorded autograd tape. ValidateGraph walks the
// graph reachable from a root Variable *without* running it and reports
// structural defects that would otherwise corrupt a training run silently:
// per-op shape/broadcast incompatibilities, dangling tape nodes, reference
// cycles (which both break the backward schedule and leak the whole graph,
// since parents are shared_ptrs), double-backward misuse, and — opt-in —
// non-finite values, attributed to the op that first produced them.
//
// The trainer runs this pass on every minibatch graph in debug builds (see
// TrainConfig::validate_graph); grad_check runs it before every finite-
// difference comparison.

/// Kinds of defect the validator reports.
enum class GraphIssueKind {
  /// A node's output shape is inconsistent with its parents under the
  /// recording op's shape rule (e.g. matmul inner dimensions disagree).
  kShapeMismatch,
  /// An interior node (it has parents) with no backward closure: gradient
  /// flow is silently severed at this point.
  kDanglingNode,
  /// A node reachable from itself. The backward schedule is undefined and
  /// the shared_ptr parent edges keep the subgraph alive forever.
  kCycle,
  /// Backward() ran more than once over the same tape without an
  /// intervening ZeroGrad, so interior gradients accumulated twice.
  kDoubleBackward,
  /// A parent edge holds a null NodePtr.
  kNullParent,
  /// A node's value (or allocated gradient) contains NaN or Inf. For
  /// values, the reported node is the *originating* op: its inputs are all
  /// finite but its output is not.
  kNonFinite,
};

/// Human-readable name of an issue kind ("shape-mismatch", ...).
const char* GraphIssueKindName(GraphIssueKind kind);

/// One defect found in the tape.
struct GraphIssue {
  GraphIssueKind kind;
  /// Name of the op that recorded the offending node ("leaf" for
  /// parameters/constants).
  std::string op;
  std::string message;

  /// "[shape-mismatch] matmul: ..." rendering.
  std::string ToString() const;
};

/// Validator knobs.
struct ValidateOptions {
  /// Also scan every node's value (and allocated gradient) for NaN/Inf and
  /// attribute the first non-finite value to the op that produced it. Off
  /// by default: it reads every element of every tensor in the graph, which
  /// is much more expensive than the O(#nodes) structural checks.
  bool check_nonfinite = false;
  /// Stop after this many issues (a malformed graph can otherwise produce
  /// one report per node).
  int max_issues = 32;
};

/// Result of a validation pass.
struct GraphReport {
  std::vector<GraphIssue> issues;
  /// Number of nodes reachable from the root (diagnostic).
  int nodes_visited = 0;

  bool ok() const { return issues.empty(); }
  /// Multi-line rendering of every issue; "graph ok" when clean.
  std::string ToString() const;
};

/// Validates the tape reachable from `root`. Traversal follows all parent
/// edges (including into non-differentiated subgraphs) and never mutates
/// the graph, so it is safe to call before or after Backward().
GraphReport ValidateGraph(const Variable& root,
                          const ValidateOptions& options = {});

/// Convenience wrapper: validates and CHECK-fails with the full report if
/// the graph is malformed. Used by the trainer's debug-build hook.
void CheckGraph(const Variable& root, const ValidateOptions& options = {});

}  // namespace autograd
}  // namespace tracer

#endif  // TRACER_AUTOGRAD_GRAPH_CHECK_H_
