#include "autograd/variable.h"

#include <unordered_set>

#include "common/macros.h"
#include "obs/autograd_profiler.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace autograd {

Tensor& Node::EnsureGrad() {
  if (!grad_allocated) {
    grad = Tensor::Zeros(value.shape());
    grad_allocated = true;
  }
  return grad;
}

Variable Variable::Parameter(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Variable(std::move(node));
}

Variable Variable::Constant(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Variable(std::move(node));
}

void Variable::ZeroGrad() {
  TRACER_CHECK(defined());
  if (node_->grad_allocated) node_->grad.SetZero();
  node_->backward_runs = 0;
}

Tensor Variable::TakeGrad() {
  TRACER_CHECK(defined());
  node_->backward_runs = 0;
  if (!node_->grad_allocated) return Tensor::Zeros(node_->value.shape());
  node_->grad_allocated = false;
  return std::move(node_->grad);
}

namespace {

void TopoSort(const NodePtr& root, std::vector<Node*>* order) {
  // Iterative post-order DFS; nodes appear after all their parents'
  // consumers, i.e. reverse(order) is a valid backward schedule.
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order->push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::Backward() {
  TRACER_CHECK(defined());
  TRACER_CHECK_EQ(node_->value.size(), 1)
      << "Backward() without output_grad requires a scalar root";
  Backward(Tensor::Ones(node_->value.shape()));
}

void Variable::Backward(const Tensor& output_grad) {
  TRACER_CHECK(defined());
  TRACER_CHECK(node_->requires_grad)
      << "Backward on a graph with no trainable inputs";
  TRACER_CHECK(output_grad.SameShape(node_->value));
  std::vector<Node*> order;
  TopoSort(node_, &order);
  AddInPlace(&node_->EnsureGrad(), output_grad);
  // Post-order puts the root last; walk in reverse so each node's gradient
  // is complete before it is pushed to its parents.
  obs::AutogradProfiler& profiler = obs::AutogradProfiler::Global();
  const bool profile = profiler.enabled();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    ++node->backward_runs;
    if (node->backward_fn && node->grad_allocated) {
      if (profile) {
        const uint64_t start = obs::MonotonicNowNs();
        const int64_t start_allocs = ThreadAllocCounters().heap_allocs;
        node->backward_fn(*node);
        profiler.RecordBackward(node->op, obs::MonotonicNowNs() - start,
                                ThreadAllocCounters().heap_allocs -
                                    start_allocs);
      } else {
        node->backward_fn(*node);
      }
    }
  }
}

Variable MakeOpNode(const char* op, Tensor value, std::vector<NodePtr> parents,
                    std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->op = op;
  node->value = std::move(value);
  for (const NodePtr& p : parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(node));
}

}  // namespace autograd
}  // namespace tracer
