#ifndef TRACER_AUTOGRAD_VARIABLE_H_
#define TRACER_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tracer {
namespace autograd {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// One entry of the autograd tape: a value, its (lazily-allocated) gradient,
/// the parents it was computed from and the closure that pushes the gradient
/// back to those parents.
struct Node {
  Tensor value;
  Tensor grad;            // allocated on demand; same shape as value
  bool requires_grad = false;
  bool grad_allocated = false;
  /// Name of the op that recorded this node ("leaf" for parameters and
  /// constants). Keys the per-op shape rules in graph_check.cc; must point
  /// at a string literal (never freed).
  const char* op = "leaf";
  /// How many Backward() passes have deposited gradient into this node since
  /// the last ZeroGrad. Interior nodes are recreated on every forward pass,
  /// so a count > 1 there means Backward ran twice over one tape — the
  /// double-backward misuse ValidateGraph reports.
  int backward_runs = 0;
  std::vector<NodePtr> parents;
  /// Propagates this->grad into the parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;

  /// Gradient accessor; allocates a zero tensor of matching shape on first
  /// use.
  Tensor& EnsureGrad();
};

/// Handle to a tape node. Copying a Variable aliases the same node, so a
/// parameter stored both in a module and in an optimizer sees one gradient.
class Variable {
 public:
  Variable() = default;
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  /// Trainable leaf (gradient will be accumulated).
  static Variable Parameter(Tensor value);
  /// Non-trainable leaf (inputs, constants).
  static Variable Constant(Tensor value);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  /// Gradient of the most recent Backward() through this node.
  Tensor& grad() { return node_->EnsureGrad(); }
  bool requires_grad() const { return node_->requires_grad; }
  const NodePtr& node() const { return node_; }

  /// Zeroes the accumulated gradient (no-op if never allocated).
  void ZeroGrad();

  /// Moves the accumulated gradient out of this node and resets it to the
  /// unallocated state (the next Backward starts from zero). Returns a zero
  /// tensor when no gradient was ever deposited. The bulk-consume
  /// counterpart of grad() for callers that harvest input gradients once per
  /// pass — e.g. integrated gradients over input leaves — without paying a
  /// copy plus ZeroGrad.
  Tensor TakeGrad();

  /// Runs reverse-mode differentiation from this (scalar, 1×1) variable:
  /// seeds d(this)/d(this) = 1 and accumulates gradients into every
  /// reachable node with requires_grad. Gradients of parameters are
  /// *accumulated*, so call ZeroGrad between steps.
  void Backward();

  /// Same but with an explicit output gradient (for non-scalar roots).
  void Backward(const Tensor& output_grad);

 private:
  NodePtr node_;
};

/// Builds an interior node from parents. `requires_grad` is inferred. `op`
/// names the recording operation for diagnostics and graph validation; it
/// must be a string literal (the node stores the pointer, not a copy).
Variable MakeOpNode(const char* op, Tensor value, std::vector<NodePtr> parents,
                    std::function<void(Node&)> backward_fn);

}  // namespace autograd
}  // namespace tracer

#endif  // TRACER_AUTOGRAD_VARIABLE_H_
