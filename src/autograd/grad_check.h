#ifndef TRACER_AUTOGRAD_GRAD_CHECK_H_
#define TRACER_AUTOGRAD_GRAD_CHECK_H_

#include <functional>

#include "autograd/variable.h"

namespace tracer {
namespace autograd {

/// Compares the analytic gradient of a scalar-valued graph against central
/// finite differences, perturbing every entry of `param`.
///
/// `forward` must rebuild the graph from scratch on each call (it reads the
/// current contents of param.value()) and return a 1×1 output. Returns the
/// maximum absolute error between d(forward)/d(param) computed by Backward()
/// and by (f(x+eps) - f(x-eps)) / (2 eps).
float MaxGradError(const std::function<Variable()>& forward, Variable param,
                   float eps = 1e-3f);

}  // namespace autograd
}  // namespace tracer

#endif  // TRACER_AUTOGRAD_GRAD_CHECK_H_
