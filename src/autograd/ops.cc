#include "autograd/ops.h"

#include <cmath>

#include "common/macros.h"
#include "obs/autograd_profiler.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace autograd {

namespace {

// Shorthand used throughout: accumulate `delta` into parent i's gradient if
// that parent participates in differentiation.
bool Wants(const Node& node, size_t i) {
  return node.parents[i]->requires_grad;
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  obs::ScopedOpTimer op_timer("matmul");
  op_timer.SetFlops(gemm::FlopCount(a.value().rows(), b.value().cols(),
                                    a.value().cols()));
  Tensor value = tracer::MatMul(a.value(), b.value());
  // Backward: dA += dC·Bᵀ and dB += Aᵀ·dC through the fused transpose-GEMM
  // variants — no transposed copies, no gradient temporaries.
  return MakeOpNode("matmul", std::move(value), {a.node(), b.node()},
                    [](Node& n) {
    const int64_t m = n.parents[0]->value.rows();
    const int64_t k = n.parents[0]->value.cols();
    const int64_t cols = n.parents[1]->value.cols();
    int64_t flops = 0;
    if (Wants(n, 0)) {
      MatMulTransBAccum(n.grad, n.parents[1]->value,
                        &n.parents[0]->EnsureGrad());
      flops += gemm::FlopCount(m, k, cols);
    }
    if (Wants(n, 1)) {
      MatMulTransAAccum(n.parents[0]->value, n.grad,
                        &n.parents[1]->EnsureGrad());
      flops += gemm::FlopCount(k, cols, m);
    }
    obs::AutogradProfiler& profiler = obs::AutogradProfiler::Global();
    if (flops > 0 && profiler.enabled()) {
      profiler.AddBackwardFlops("matmul", flops);
    }
  });
}

Variable BatchMatMul(const Variable& a, const Variable& b) {
  obs::ScopedOpTimer op_timer("batch_matmul");
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  const int64_t batch = av.dim(0), m = av.dim(1), k = av.dim(2);
  const int64_t cols = bv.rank() == 2 ? bv.cols() : bv.dim(2);
  op_timer.SetFlops(gemm::FlopCount(batch * m, cols, k));
  Tensor value = tracer::BatchMatMul(av, bv);
  // Backward mirrors MatMul through the strided-batch transpose variants:
  // dA_s += dC_s·B(_s)ᵀ and dB(_s) += A_sᵀ·dC_s — a rank-2 B gets its
  // slices reduced into one gradient in ascending batch order.
  return MakeOpNode("batch_matmul", std::move(value), {a.node(), b.node()},
                    [](Node& n) {
    const Tensor& av2 = n.parents[0]->value;
    const int64_t batch2 = av2.dim(0), m2 = av2.dim(1), k2 = av2.dim(2);
    const int64_t cols2 = n.grad.dim(2);
    int64_t flops = 0;
    if (Wants(n, 0)) {
      BatchMatMulTransBAccum(n.grad, n.parents[1]->value,
                             &n.parents[0]->EnsureGrad());
      flops += gemm::FlopCount(batch2 * m2, k2, cols2);
    }
    if (Wants(n, 1)) {
      BatchMatMulTransAAccum(av2, n.grad, &n.parents[1]->EnsureGrad());
      flops += gemm::FlopCount(batch2 * k2, cols2, m2);
    }
    obs::AutogradProfiler& profiler = obs::AutogradProfiler::Global();
    if (flops > 0 && profiler.enabled()) {
      profiler.AddBackwardFlops("batch_matmul", flops);
    }
  });
}

Variable Add(const Variable& a, const Variable& b) {
  obs::ScopedOpTimer op_timer("add");
  Tensor value = tracer::Add(a.value(), b.value());
  return MakeOpNode("add", std::move(value), {a.node(), b.node()}, [](Node& n) {
    if (Wants(n, 0)) AddInPlace(&n.parents[0]->EnsureGrad(), n.grad);
    if (Wants(n, 1)) AddInPlace(&n.parents[1]->EnsureGrad(), n.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  obs::ScopedOpTimer op_timer("sub");
  Tensor value = tracer::Sub(a.value(), b.value());
  return MakeOpNode("sub", std::move(value), {a.node(), b.node()}, [](Node& n) {
    if (Wants(n, 0)) AddInPlace(&n.parents[0]->EnsureGrad(), n.grad);
    if (Wants(n, 1)) Axpy(-1.0f, n.grad, &n.parents[1]->EnsureGrad());
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  obs::ScopedOpTimer op_timer("mul");
  Tensor value = tracer::Mul(a.value(), b.value());
  return MakeOpNode("mul", std::move(value), {a.node(), b.node()}, [](Node& n) {
    if (Wants(n, 0)) {
      MulAccum(n.grad, n.parents[1]->value, &n.parents[0]->EnsureGrad());
    }
    if (Wants(n, 1)) {
      MulAccum(n.grad, n.parents[0]->value, &n.parents[1]->EnsureGrad());
    }
  });
}

Variable AddRows(const Variable& a, const Variable& row) {
  obs::ScopedOpTimer op_timer("add_rows");
  Tensor value = AddRowBroadcast(a.value(), row.value());
  return MakeOpNode("add_rows", std::move(value), {a.node(), row.node()},
                    [](Node& n) {
    if (Wants(n, 0)) AddInPlace(&n.parents[0]->EnsureGrad(), n.grad);
    if (Wants(n, 1)) {
      ColSumAccum(n.grad, &n.parents[1]->EnsureGrad());
    }
  });
}

Variable MulColBroadcast(const Variable& mat, const Variable& col) {
  obs::ScopedOpTimer op_timer("mul_col_broadcast");
  Tensor value = tracer::MulColBroadcast(mat.value(), col.value());
  return MakeOpNode("mul_col_broadcast", std::move(value),
                    {mat.node(), col.node()}, [](Node& n) {
    if (Wants(n, 0)) {
      MulColBroadcastAccum(n.grad, n.parents[1]->value,
                           &n.parents[0]->EnsureGrad());
    }
    if (Wants(n, 1)) {
      // dcol[i] += dot(dC row i, mat row i), fused without the Hadamard
      // temporary.
      Tensor& dst = n.parents[1]->EnsureGrad();
      const int m = n.grad.rows(), cols = n.grad.cols();
      for (int i = 0; i < m; ++i) {
        double acc = 0.0;
        for (int j = 0; j < cols; ++j) {
          acc += static_cast<double>(n.grad.at(i, j)) *
                 n.parents[0]->value.at(i, j);
        }
        dst.at(i, 0) += static_cast<float>(acc);
      }
    }
  });
}

Variable Scale(const Variable& a, float s) {
  obs::ScopedOpTimer op_timer("scale");
  Tensor value = tracer::Scale(a.value(), s);
  return MakeOpNode("scale", std::move(value), {a.node()}, [s](Node& n) {
    if (Wants(n, 0)) Axpy(s, n.grad, &n.parents[0]->EnsureGrad());
  });
}

Variable AddScalar(const Variable& a, float s) {
  obs::ScopedOpTimer op_timer("add_scalar");
  Tensor value = tracer::AddScalar(a.value(), s);
  return MakeOpNode("add_scalar", std::move(value), {a.node()}, [](Node& n) {
    if (Wants(n, 0)) AddInPlace(&n.parents[0]->EnsureGrad(), n.grad);
  });
}

Variable Neg(const Variable& a) { return Scale(a, -1.0f); }

Variable OneMinus(const Variable& a) {
  return AddScalar(Neg(a), 1.0f);
}

Variable Sigmoid(const Variable& a) {
  obs::ScopedOpTimer op_timer("sigmoid");
  Tensor value = tracer::Sigmoid(a.value());
  return MakeOpNode("sigmoid", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    // dx = dy * y * (1 - y)
    Tensor& dst = n.parents[0]->EnsureGrad();
    const float* y = n.value.data();
    const float* dy = n.grad.data();
    float* dx = dst.data();
    const int64_t count = n.value.size();
    for (int64_t i = 0; i < count; ++i) {
      dx[i] += dy[i] * y[i] * (1.0f - y[i]);
    }
  });
}

Variable Tanh(const Variable& a) {
  obs::ScopedOpTimer op_timer("tanh");
  Tensor value = tracer::Tanh(a.value());
  return MakeOpNode("tanh", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    Tensor& dst = n.parents[0]->EnsureGrad();
    const float* y = n.value.data();
    const float* dy = n.grad.data();
    float* dx = dst.data();
    const int64_t count = n.value.size();
    for (int64_t i = 0; i < count; ++i) {
      dx[i] += dy[i] * (1.0f - y[i] * y[i]);
    }
  });
}

Variable Relu(const Variable& a) {
  obs::ScopedOpTimer op_timer("relu");
  Tensor value = tracer::Relu(a.value());
  return MakeOpNode("relu", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    Tensor& dst = n.parents[0]->EnsureGrad();
    const float* x = n.parents[0]->value.data();
    const float* dy = n.grad.data();
    float* dx = dst.data();
    const int64_t count = n.value.size();
    for (int64_t i = 0; i < count; ++i) {
      if (x[i] > 0.0f) dx[i] += dy[i];
    }
  });
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  obs::ScopedOpTimer op_timer("concat_cols");
  Tensor value = tracer::ConcatCols(a.value(), b.value());
  const int na = a.value().cols();
  const int nb = b.value().cols();
  return MakeOpNode("concat_cols", std::move(value), {a.node(), b.node()},
                    [na, nb](Node& n) {
    if (Wants(n, 0)) {
      SliceColsAccum(n.grad, 0, na, &n.parents[0]->EnsureGrad());
    }
    if (Wants(n, 1)) {
      SliceColsAccum(n.grad, na, na + nb, &n.parents[1]->EnsureGrad());
    }
  });
}

Variable ConcatColsMany(const std::vector<Variable>& parts) {
  TRACER_CHECK(!parts.empty());
  Variable out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) out = ConcatCols(out, parts[i]);
  return out;
}

Variable SliceCols(const Variable& a, int begin, int end) {
  obs::ScopedOpTimer op_timer("slice_cols");
  Tensor value = tracer::SliceCols(a.value(), begin, end);
  return MakeOpNode("slice_cols", std::move(value), {a.node()},
                    [begin, end](Node& n) {
    if (!Wants(n, 0)) return;
    Tensor& dst = n.parents[0]->EnsureGrad();
    const int m = n.grad.rows();
    for (int i = 0; i < m; ++i) {
      for (int j = begin; j < end; ++j) {
        dst.at(i, j) += n.grad.at(i, j - begin);
      }
    }
  });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  TRACER_CHECK(!parts.empty());
  obs::ScopedOpTimer op_timer("concat_rows");
  std::vector<const Tensor*> tensors;
  std::vector<NodePtr> parents;
  tensors.reserve(parts.size());
  parents.reserve(parts.size());
  for (const Variable& part : parts) {
    tensors.push_back(&part.value());
    parents.push_back(part.node());
  }
  Tensor value = tracer::ConcatRows(tensors);
  return MakeOpNode("concat_rows", std::move(value), std::move(parents),
                    [](Node& n) {
    int begin = 0;
    for (size_t i = 0; i < n.parents.size(); ++i) {
      const int rows = n.parents[i]->value.rows();
      if (Wants(n, i)) {
        SliceRowsAccum(n.grad, begin, begin + rows,
                       &n.parents[i]->EnsureGrad());
      }
      begin += rows;
    }
  });
}

Variable SliceRows(const Variable& a, int begin, int end) {
  obs::ScopedOpTimer op_timer("slice_rows");
  Tensor value = tracer::SliceRows(a.value(), begin, end);
  return MakeOpNode("slice_rows", std::move(value), {a.node()},
                    [begin](Node& n) {
    if (!Wants(n, 0)) return;
    AddToRowsAccum(n.grad, begin, &n.parents[0]->EnsureGrad());
  });
}

Variable Reshape(const Variable& a, std::vector<int> shape) {
  obs::ScopedOpTimer op_timer("reshape");
  Tensor value = a.value().Reshape(std::move(shape));
  return MakeOpNode("reshape", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    // Row-major order is shared by both shapes: accumulate flat.
    Tensor& dst = n.parents[0]->EnsureGrad();
    const float* g = n.grad.data();
    float* dx = dst.data();
    const int64_t count = dst.size();
    for (int64_t i = 0; i < count; ++i) dx[i] += g[i];
  });
}

Variable SoftmaxRows(const Variable& a) {
  obs::ScopedOpTimer op_timer("softmax_rows");
  Tensor value = tracer::SoftmaxRows(a.value());
  return MakeOpNode("softmax_rows", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    // dx = (dy - rowsum(dy * y)) * y
    Tensor& dst = n.parents[0]->EnsureGrad();
    const int m = n.value.rows(), cols = n.value.cols();
    for (int i = 0; i < m; ++i) {
      double dot = 0.0;
      for (int j = 0; j < cols; ++j) {
        dot += static_cast<double>(n.grad.at(i, j)) * n.value.at(i, j);
      }
      for (int j = 0; j < cols; ++j) {
        dst.at(i, j) += (n.grad.at(i, j) - static_cast<float>(dot)) *
                        n.value.at(i, j);
      }
    }
  });
}

Variable RowSums(const Variable& a) {
  obs::ScopedOpTimer op_timer("row_sums");
  Tensor value = tracer::RowSum(a.value());
  return MakeOpNode("row_sums", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    Tensor& dst = n.parents[0]->EnsureGrad();
    const int m = dst.rows(), cols = dst.cols();
    for (int i = 0; i < m; ++i) {
      const float g = n.grad.at(i, 0);
      for (int j = 0; j < cols; ++j) dst.at(i, j) += g;
    }
  });
}

Variable MeanAll(const Variable& a) {
  obs::ScopedOpTimer op_timer("mean_all");
  Tensor value({1, 1});
  value[0] = tracer::MeanAll(a.value());
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return MakeOpNode("mean_all", std::move(value), {a.node()}, [inv](Node& n) {
    if (!Wants(n, 0)) return;
    Tensor& dst = n.parents[0]->EnsureGrad();
    const float g = n.grad[0] * inv;
    float* dx = dst.data();
    const int64_t count = dst.size();
    for (int64_t i = 0; i < count; ++i) dx[i] += g;
  });
}

Variable SumAll(const Variable& a) {
  obs::ScopedOpTimer op_timer("sum_all");
  Tensor value({1, 1});
  value[0] = tracer::SumAll(a.value());
  return MakeOpNode("sum_all", std::move(value), {a.node()}, [](Node& n) {
    if (!Wants(n, 0)) return;
    Tensor& dst = n.parents[0]->EnsureGrad();
    const float g = n.grad[0];
    float* dx = dst.data();
    const int64_t count = dst.size();
    for (int64_t i = 0; i < count; ++i) dx[i] += g;
  });
}

Variable Average(const std::vector<Variable>& xs) {
  TRACER_CHECK(!xs.empty());
  Variable acc = xs[0];
  for (size_t i = 1; i < xs.size(); ++i) acc = Add(acc, xs[i]);
  return Scale(acc, 1.0f / static_cast<float>(xs.size()));
}

Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const Tensor& targets) {
  obs::ScopedOpTimer op_timer("bce_with_logits");
  const Tensor& z = logits.value();
  TRACER_CHECK(z.SameShape(targets)) << "BCE: logits/targets shape mismatch";
  TRACER_CHECK_GT(z.size(), 0);
  // loss_i = max(z,0) - z*y + log(1 + exp(-|z|)), averaged.
  Tensor value({1, 1});
  double acc = 0.0;
  const float* pz = z.data();
  const float* py = targets.data();
  const int64_t count = z.size();
  for (int64_t i = 0; i < count; ++i) {
    const double zi = pz[i];
    const double yi = py[i];
    acc += std::max(zi, 0.0) - zi * yi + std::log1p(std::exp(-std::fabs(zi)));
  }
  value[0] = static_cast<float>(acc / static_cast<double>(count));
  Tensor targets_copy = targets;
  return MakeOpNode(
      "bce_with_logits",
      std::move(value), {logits.node()},
      [targets_copy = std::move(targets_copy)](Node& n) {
        if (!Wants(n, 0)) return;
        // dz = (sigmoid(z) - y) / B
        Tensor& dst = n.parents[0]->EnsureGrad();
        const Tensor probs = tracer::Sigmoid(n.parents[0]->value);
        const float g = n.grad[0] / static_cast<float>(probs.size());
        const float* pp = probs.data();
        const float* py2 = targets_copy.data();
        float* dx = dst.data();
        const int64_t count2 = probs.size();
        for (int64_t i = 0; i < count2; ++i) {
          dx[i] += g * (pp[i] - py2[i]);
        }
      });
}

Variable MeanSquaredError(const Variable& pred, const Tensor& target) {
  obs::ScopedOpTimer op_timer("mse");
  const Tensor& p = pred.value();
  TRACER_CHECK(p.SameShape(target)) << "MSE: shape mismatch";
  TRACER_CHECK_GT(p.size(), 0);
  Tensor value({1, 1});
  double acc = 0.0;
  const float* pp = p.data();
  const float* pt = target.data();
  const int64_t count = p.size();
  for (int64_t i = 0; i < count; ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    acc += d * d;
  }
  value[0] = static_cast<float>(acc / static_cast<double>(count));
  Tensor target_copy = target;
  return MakeOpNode(
      "mse",
      std::move(value), {pred.node()},
      [target_copy = std::move(target_copy)](Node& n) {
        if (!Wants(n, 0)) return;
        Tensor& dst = n.parents[0]->EnsureGrad();
        const Tensor& pv = n.parents[0]->value;
        const float g = 2.0f * n.grad[0] / static_cast<float>(pv.size());
        const float* ppv = pv.data();
        const float* pt2 = target_copy.data();
        float* dx = dst.data();
        const int64_t count2 = pv.size();
        for (int64_t i = 0; i < count2; ++i) {
          dx[i] += g * (ppv[i] - pt2[i]);
        }
      });
}

}  // namespace autograd
}  // namespace tracer
