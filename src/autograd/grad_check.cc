#include "autograd/grad_check.h"

#include <cmath>

#include "autograd/graph_check.h"
#include "common/macros.h"

namespace tracer {
namespace autograd {

float MaxGradError(const std::function<Variable()>& forward, Variable param,
                   float eps) {
  TRACER_CHECK(param.requires_grad());
  param.ZeroGrad();
  Variable out = forward();
  TRACER_CHECK_EQ(out.value().size(), 1) << "grad check needs scalar output";
  // A malformed tape (wrong shapes, severed gradient flow) would make the
  // finite-difference comparison meaningless — reject it up front with a
  // report instead of a confusing numeric mismatch.
  ValidateOptions validate_options;
  validate_options.check_nonfinite = true;
  CheckGraph(out, validate_options);
  out.Backward();
  const Tensor analytic = param.grad();

  Tensor& values = param.mutable_value();
  float max_err = 0.0f;
  for (int64_t i = 0; i < values.size(); ++i) {
    const float saved = values[i];
    values[i] = saved + eps;
    const float up = forward().value()[0];
    values[i] = saved - eps;
    const float down = forward().value()[0];
    values[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    max_err = std::max(max_err, std::fabs(numeric - analytic[i]));
  }
  return max_err;
}

}  // namespace autograd
}  // namespace tracer
