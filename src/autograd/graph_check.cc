#include "autograd/graph_check.h"

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"

namespace tracer {
namespace autograd {

namespace {

std::string ShapeStr(const Tensor& t) {
  std::ostringstream out;
  out << "[";
  for (int d = 0; d < t.rank(); ++d) {
    if (d > 0) out << "x";
    out << t.dim(d);
  }
  out << "]";
  return out.str();
}

bool AllFinite(const Tensor& t) {
  const float* p = t.data();
  const int64_t count = t.size();
  for (int64_t i = 0; i < count; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

/// Collects issues up to the configured cap.
class IssueSink {
 public:
  IssueSink(std::vector<GraphIssue>* issues, int max_issues)
      : issues_(issues), max_issues_(max_issues) {}

  void Add(GraphIssueKind kind, const char* op, std::string message) {
    if (static_cast<int>(issues_->size()) >= max_issues_) return;
    issues_->push_back({kind, op, std::move(message)});
  }

  bool full() const {
    return static_cast<int>(issues_->size()) >= max_issues_;
  }

 private:
  std::vector<GraphIssue>* issues_;
  int max_issues_;
};

// ---- Per-op shape rules --------------------------------------------------
//
// Each rule re-derives the output shape the op should have produced from the
// recorded parent values and compares it against the node's actual output.
// Rules mirror the contracts documented in autograd/ops.h; ops without an
// entry here (e.g. future user extensions) are skipped rather than failed,
// so the validator never produces false positives on unknown ops.

struct OpShapeRule {
  /// Expected parent count; kVariadicArity accepts any count ≥ 1 (the
  /// check fn sees the actual parents).
  int arity;
  /// Returns an empty string when consistent, else a description of the
  /// mismatch. Parent values and node.value are guaranteed non-null and the
  /// parent count matches `arity` when this is called.
  std::string (*check)(const Node& n);
};

constexpr int kVariadicArity = -1;

bool IsMatrix(const Tensor& t) { return t.rank() == 2; }

std::string CheckElementwiseSame(const Node& n) {
  for (const NodePtr& p : n.parents) {
    if (!p->value.SameShape(n.value)) {
      return "input " + ShapeStr(p->value) + " vs output " +
             ShapeStr(n.value) + " — elementwise ops preserve shape";
    }
  }
  return "";
}

std::string CheckMatMul(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  const Tensor& b = n.parents[1]->value;
  if (!IsMatrix(a) || !IsMatrix(b) || !IsMatrix(n.value)) {
    return "matmul requires rank-2 tensors, got " + ShapeStr(a) + " · " +
           ShapeStr(b) + " -> " + ShapeStr(n.value);
  }
  if (a.cols() != b.rows()) {
    return "inner dimensions disagree: " + ShapeStr(a) + " · " + ShapeStr(b);
  }
  if (n.value.rows() != a.rows() || n.value.cols() != b.cols()) {
    return "output " + ShapeStr(n.value) + " but " + ShapeStr(a) + " · " +
           ShapeStr(b) + " produces [" + std::to_string(a.rows()) + "x" +
           std::to_string(b.cols()) + "]";
  }
  return "";
}

std::string CheckBatchMatMul(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  const Tensor& b = n.parents[1]->value;
  if (a.rank() != 3 || n.value.rank() != 3) {
    return "batch_matmul requires rank-3 A and output, got " + ShapeStr(a) +
           " · " + ShapeStr(b) + " -> " + ShapeStr(n.value);
  }
  const int k = a.dim(2);
  int cols;
  if (b.rank() == 2) {
    if (b.rows() != k) {
      return "inner dimensions disagree: " + ShapeStr(a) + " · " +
             ShapeStr(b);
    }
    cols = b.cols();
  } else if (b.rank() == 3) {
    if (b.dim(0) != a.dim(0) || b.dim(1) != k) {
      return "batch/inner dimensions disagree: " + ShapeStr(a) + " · " +
             ShapeStr(b);
    }
    cols = b.dim(2);
  } else {
    return "batch_matmul B must be rank-2 (broadcast) or rank-3, got " +
           ShapeStr(b);
  }
  if (n.value.dim(0) != a.dim(0) || n.value.dim(1) != a.dim(1) ||
      n.value.dim(2) != cols) {
    return "output " + ShapeStr(n.value) + " but " + ShapeStr(a) + " · " +
           ShapeStr(b) + " produces [" + std::to_string(a.dim(0)) + "x" +
           std::to_string(a.dim(1)) + "x" + std::to_string(cols) + "]";
  }
  return "";
}

std::string CheckConcatRows(const Node& n) {
  if (!IsMatrix(n.value)) {
    return "concat_rows output must be rank-2, got " + ShapeStr(n.value);
  }
  int rows = 0;
  for (const NodePtr& p : n.parents) {
    if (!IsMatrix(p->value) || p->value.cols() != n.value.cols()) {
      return "input " + ShapeStr(p->value) +
             " does not stack into output " + ShapeStr(n.value);
    }
    rows += p->value.rows();
  }
  if (rows != n.value.rows()) {
    return "output " + ShapeStr(n.value) + " but inputs stack to [" +
           std::to_string(rows) + "x" + std::to_string(n.value.cols()) + "]";
  }
  return "";
}

std::string CheckSliceRows(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  if (!IsMatrix(a) || !IsMatrix(n.value)) {
    return "slice_rows requires rank-2 tensors";
  }
  if (n.value.cols() != a.cols() || n.value.rows() <= 0 ||
      n.value.rows() > a.rows()) {
    return "slice " + ShapeStr(n.value) + " not contained in " + ShapeStr(a);
  }
  return "";
}

std::string CheckAddRows(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  const Tensor& row = n.parents[1]->value;
  if (!IsMatrix(a) || !IsMatrix(row)) {
    return "add_rows requires rank-2 tensors";
  }
  if (row.rows() != 1 || row.cols() != a.cols()) {
    return "row " + ShapeStr(row) + " does not broadcast over " + ShapeStr(a);
  }
  if (!n.value.SameShape(a)) {
    return "output " + ShapeStr(n.value) + " vs input " + ShapeStr(a);
  }
  return "";
}

std::string CheckMulColBroadcast(const Node& n) {
  const Tensor& mat = n.parents[0]->value;
  const Tensor& col = n.parents[1]->value;
  if (!IsMatrix(mat) || !IsMatrix(col)) {
    return "mul_col_broadcast requires rank-2 tensors";
  }
  if (col.cols() != 1 || col.rows() != mat.rows()) {
    return "column " + ShapeStr(col) + " does not broadcast over " +
           ShapeStr(mat);
  }
  if (!n.value.SameShape(mat)) {
    return "output " + ShapeStr(n.value) + " vs input " + ShapeStr(mat);
  }
  return "";
}

std::string CheckConcatCols(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  const Tensor& b = n.parents[1]->value;
  if (!IsMatrix(a) || !IsMatrix(b) || !IsMatrix(n.value)) {
    return "concat_cols requires rank-2 tensors";
  }
  if (a.rows() != b.rows()) {
    return "row counts disagree: " + ShapeStr(a) + " vs " + ShapeStr(b);
  }
  if (n.value.rows() != a.rows() || n.value.cols() != a.cols() + b.cols()) {
    return "output " + ShapeStr(n.value) + " but concatenating " +
           ShapeStr(a) + " and " + ShapeStr(b);
  }
  return "";
}

std::string CheckSliceCols(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  if (!IsMatrix(a) || !IsMatrix(n.value)) {
    return "slice_cols requires rank-2 tensors";
  }
  if (n.value.rows() != a.rows() || n.value.cols() <= 0 ||
      n.value.cols() > a.cols()) {
    return "slice " + ShapeStr(n.value) + " not contained in " + ShapeStr(a);
  }
  return "";
}

std::string CheckRowSums(const Node& n) {
  const Tensor& a = n.parents[0]->value;
  if (!IsMatrix(a) || !IsMatrix(n.value)) {
    return "row_sums requires rank-2 tensors";
  }
  if (n.value.rows() != a.rows() || n.value.cols() != 1) {
    return "output " + ShapeStr(n.value) + " but row sums of " + ShapeStr(a) +
           " are [" + std::to_string(a.rows()) + "x1]";
  }
  return "";
}

std::string CheckReshape(const Node& n) {
  if (n.value.size() != n.parents[0]->value.size()) {
    return "reshape changes element count: " +
           ShapeStr(n.parents[0]->value) + " -> " + ShapeStr(n.value);
  }
  return "";
}

std::string CheckScalarOutput(const Node& n) {
  if (n.value.size() != 1) {
    return "reduction output must be a single scalar, got " +
           ShapeStr(n.value);
  }
  return "";
}

const std::unordered_map<std::string_view, OpShapeRule>& ShapeRules() {
  static const auto* rules =
      new std::unordered_map<std::string_view, OpShapeRule>{
          {"matmul", {2, CheckMatMul}},
          {"batch_matmul", {2, CheckBatchMatMul}},
          {"concat_rows", {kVariadicArity, CheckConcatRows}},
          {"slice_rows", {1, CheckSliceRows}},
          {"reshape", {1, CheckReshape}},
          {"add", {2, CheckElementwiseSame}},
          {"sub", {2, CheckElementwiseSame}},
          {"mul", {2, CheckElementwiseSame}},
          {"add_rows", {2, CheckAddRows}},
          {"mul_col_broadcast", {2, CheckMulColBroadcast}},
          {"scale", {1, CheckElementwiseSame}},
          {"add_scalar", {1, CheckElementwiseSame}},
          {"sigmoid", {1, CheckElementwiseSame}},
          {"tanh", {1, CheckElementwiseSame}},
          {"relu", {1, CheckElementwiseSame}},
          {"concat_cols", {2, CheckConcatCols}},
          {"slice_cols", {1, CheckSliceCols}},
          {"softmax_rows", {1, CheckElementwiseSame}},
          {"row_sums", {1, CheckRowSums}},
          {"mean_all", {1, CheckScalarOutput}},
          {"sum_all", {1, CheckScalarOutput}},
          {"bce_with_logits", {1, CheckScalarOutput}},
          {"mse", {1, CheckScalarOutput}},
      };
  return *rules;
}

void CheckNodeShapes(const Node& node, IssueSink* sink) {
  auto it = ShapeRules().find(node.op);
  if (it == ShapeRules().end()) return;  // unknown op: no rule, no report
  const OpShapeRule& rule = it->second;
  if (rule.arity == kVariadicArity) {
    if (node.parents.empty()) {
      sink->Add(GraphIssueKind::kShapeMismatch, node.op,
                "variadic op has no inputs");
      return;
    }
    std::string variadic_problem = rule.check(node);
    if (!variadic_problem.empty()) {
      sink->Add(GraphIssueKind::kShapeMismatch, node.op,
                std::move(variadic_problem));
    }
    return;
  }
  if (static_cast<int>(node.parents.size()) != rule.arity) {
    sink->Add(GraphIssueKind::kShapeMismatch, node.op,
              "expects " + std::to_string(rule.arity) + " input(s), node has " +
                  std::to_string(node.parents.size()));
    return;
  }
  std::string problem = rule.check(node);
  if (!problem.empty()) {
    sink->Add(GraphIssueKind::kShapeMismatch, node.op, std::move(problem));
  }
}

}  // namespace

const char* GraphIssueKindName(GraphIssueKind kind) {
  switch (kind) {
    case GraphIssueKind::kShapeMismatch:
      return "shape-mismatch";
    case GraphIssueKind::kDanglingNode:
      return "dangling-node";
    case GraphIssueKind::kCycle:
      return "cycle";
    case GraphIssueKind::kDoubleBackward:
      return "double-backward";
    case GraphIssueKind::kNullParent:
      return "null-parent";
    case GraphIssueKind::kNonFinite:
      return "non-finite";
  }
  return "unknown";
}

std::string GraphIssue::ToString() const {
  std::string out = "[";
  out += GraphIssueKindName(kind);
  out += "] ";
  out += op;
  out += ": ";
  out += message;
  return out;
}

std::string GraphReport::ToString() const {
  if (issues.empty()) return "graph ok";
  std::ostringstream out;
  out << issues.size() << " graph issue(s) over " << nodes_visited
      << " node(s):";
  for (const GraphIssue& issue : issues) {
    out << "\n  " << issue.ToString();
  }
  return out.str();
}

GraphReport ValidateGraph(const Variable& root,
                          const ValidateOptions& options) {
  TRACER_CHECK(root.defined()) << "ValidateGraph on an undefined Variable";
  GraphReport report;
  IssueSink sink(&report.issues, options.max_issues);

  // Iterative DFS over *all* parent edges (unlike Backward's traversal,
  // which prunes non-differentiated subgraphs — a defect in a constant
  // branch still deserves a report). Gray = on the current DFS path, so a
  // parent edge into a gray node closes a cycle.
  enum class Color { kGray, kBlack };
  std::unordered_map<const Node*, Color> color;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  // Nodes in post-order: every node appears after all of its parents, which
  // is the evaluation order of the forward pass. Used by the non-finite
  // origin attribution below.
  std::vector<Node*> forward_order;

  stack.push_back({root.node().get(), 0});
  color[root.node().get()] = Color::kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      const NodePtr& parent = frame.node->parents[frame.next_parent++];
      if (parent == nullptr) {
        sink.Add(GraphIssueKind::kNullParent, frame.node->op,
                 "parent " + std::to_string(frame.next_parent - 1) +
                     " is a null NodePtr");
        continue;
      }
      auto it = color.find(parent.get());
      if (it == color.end()) {
        color[parent.get()] = Color::kGray;
        stack.push_back({parent.get(), 0});
      } else if (it->second == Color::kGray) {
        sink.Add(GraphIssueKind::kCycle, frame.node->op,
                 std::string("parent edge to '") + parent->op +
                     "' closes a cycle; the tape must be a DAG (cycles also "
                     "leak the graph: parents are shared_ptrs)");
      }
    } else {
      color[frame.node] = Color::kBlack;
      forward_order.push_back(frame.node);
      stack.pop_back();
    }
  }
  report.nodes_visited = static_cast<int>(forward_order.size());

  int double_backward_nodes = 0;
  const char* double_backward_op = nullptr;
  for (const Node* node : forward_order) {
    const bool interior = !node->parents.empty();
    if (interior && node->backward_fn == nullptr) {
      sink.Add(GraphIssueKind::kDanglingNode, node->op,
               "interior node has no backward closure; gradient flow is "
               "silently severed here");
    }
    if (interior && node->backward_runs > 1) {
      ++double_backward_nodes;
      double_backward_op = node->op;
    }
    if (interior) CheckNodeShapes(*node, &sink);
  }
  if (double_backward_nodes > 0) {
    sink.Add(GraphIssueKind::kDoubleBackward, double_backward_op,
             "Backward() ran " + std::to_string(double_backward_nodes) +
                 " interior node(s) more than once without ZeroGrad; their "
                 "gradients accumulated across passes");
  }

  if (options.check_nonfinite && !sink.full()) {
    // forward_order lists parents before consumers, so the first node whose
    // output is non-finite while all inputs are finite is where the NaN/Inf
    // entered the computation.
    std::unordered_map<const Node*, bool> finite;
    finite.reserve(forward_order.size());
    for (const Node* node : forward_order) {
      const bool value_finite = AllFinite(node->value);
      finite[node] = value_finite;
      if (!value_finite) {
        bool parents_finite = true;
        for (const NodePtr& p : node->parents) {
          if (p != nullptr && !finite[p.get()]) {
            parents_finite = false;
            break;
          }
        }
        if (parents_finite) {
          sink.Add(GraphIssueKind::kNonFinite, node->op,
                   node->parents.empty()
                       ? "leaf value contains NaN/Inf"
                       : "op output contains NaN/Inf although every input is "
                         "finite — this op originated the non-finite value");
        }
      }
      if (node->grad_allocated && !AllFinite(node->grad)) {
        sink.Add(GraphIssueKind::kNonFinite, node->op,
                 "accumulated gradient contains NaN/Inf");
      }
    }
  }
  return report;
}

void CheckGraph(const Variable& root, const ValidateOptions& options) {
  const GraphReport report = ValidateGraph(root, options);
  TRACER_CHECK(report.ok()) << report.ToString();
}

}  // namespace autograd
}  // namespace tracer
