#ifndef TRACER_AUTOGRAD_OPS_H_
#define TRACER_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"

namespace tracer {
namespace autograd {

// Differentiable operations. Every function records a tape node whose
// backward closure accumulates gradients into the inputs that require them.
// Shapes follow src/tensor/tensor_ops.h.

/// A · B for A (M×K), B (K×N).
Variable MatMul(const Variable& a, const Variable& b);
/// Batched matmul: A (S×M×K) · B (S×K×N, or rank-2 K×N broadcast across
/// every slice — the broadcast gradient reduces over the batch). The
/// rank-3 workhorse that turns per-timestep gate stacks into one GEMM.
Variable BatchMatMul(const Variable& a, const Variable& b);
/// Elementwise sum (same shape).
Variable Add(const Variable& a, const Variable& b);
/// Elementwise difference.
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise product.
Variable Mul(const Variable& a, const Variable& b);
/// Row broadcast: a (M×N) + row (1×N). Standard bias add.
Variable AddRows(const Variable& a, const Variable& row);
/// Column broadcast: mat (M×N) scaled per-row by col (M×1).
Variable MulColBroadcast(const Variable& mat, const Variable& col);
/// Scalar multiply.
Variable Scale(const Variable& a, float s);
/// Scalar add.
Variable AddScalar(const Variable& a, float s);
/// -a.
Variable Neg(const Variable& a);
/// 1 - a (used for GRU gate complement).
Variable OneMinus(const Variable& a);

// Nonlinearities.
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);

/// Horizontal concatenation (equal row counts).
Variable ConcatCols(const Variable& a, const Variable& b);
/// Concatenates many matrices left-to-right.
Variable ConcatColsMany(const std::vector<Variable>& parts);
/// Columns [begin, end).
Variable SliceCols(const Variable& a, int begin, int end);
/// Vertical concatenation of many matrices (equal column counts) as one
/// tape node — the batching primitive that stacks timesteps into one GEMM
/// operand without a chain of pairwise copies.
Variable ConcatRows(const std::vector<Variable>& parts);
/// Rows [begin, end).
Variable SliceRows(const Variable& a, int begin, int end);
/// Reinterprets the value with a new shape of equal size (row-major order
/// preserved). Moves between the stacked rank-2 (S·M × N) and batched
/// rank-3 (S × M × N) views of a sequence; gradient flows through
/// unchanged.
Variable Reshape(const Variable& a, std::vector<int> shape);
/// Numerically stable row-wise softmax.
Variable SoftmaxRows(const Variable& a);

/// Row sums of an M×N matrix → M×1 (per-sample reduction, e.g. the
/// bilinear attention scores of Dipole-general).
Variable RowSums(const Variable& a);
/// Mean of all entries → 1×1.
Variable MeanAll(const Variable& a);
/// Sum of all entries → 1×1.
Variable SumAll(const Variable& a);
/// Arithmetic mean of equally-shaped variables (Eq. 2 of the paper).
Variable Average(const std::vector<Variable>& xs);

/// Mean binary cross-entropy over the batch, computed from *logits* for
/// numerical stability (Eq. 15). logits and targets are B×1; targets is a
/// plain tensor in {0,1}.
Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const Tensor& targets);

/// Mean squared error: mean((pred - target)^2) over all entries.
Variable MeanSquaredError(const Variable& pred, const Tensor& target);

}  // namespace autograd
}  // namespace tracer

#endif  // TRACER_AUTOGRAD_OPS_H_
