#ifndef TRACER_BASELINES_LOGISTIC_REGRESSION_H_
#define TRACER_BASELINES_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace baselines {

/// How the LR baseline consumes the time series.
enum class LrInputMode {
  /// Average each feature over all windows (§5.1.2's LR baseline and the
  /// "aggregated seven-day" model of Figure 1).
  kAggregate,
  /// Use only one window (the "seven LR models trained separately" of
  /// Figure 1, one per day).
  kSingleWindow,
};

/// (Multinomial-free) logistic / linear regression over aggregated
/// time-series features. For classification the raw output is a logit; for
/// regression it is the prediction — matching the SequenceModel contract.
class LogisticRegression : public nn::SequenceModel {
 public:
  /// `window_index` is only used in kSingleWindow mode.
  LogisticRegression(int input_dim, LrInputMode mode = LrInputMode::kAggregate,
                     int window_index = 0, uint64_t seed = 3);

  autograd::Variable Forward(
      const std::vector<autograd::Variable>& xs) override;

  std::string name() const override { return "LR"; }

  /// The learned coefficients (D×1), used by the Figure 1 harness.
  std::vector<float> Coefficients() const;

  /// Softmax-normalises |coefficients| across features, as the paper does
  /// before plotting Figure 1 (footnote 1).
  static std::vector<float> SoftmaxNormalize(const std::vector<float>& coefs);

 private:
  LrInputMode mode_;
  int window_index_;
  std::unique_ptr<nn::Linear> linear_;
};

}  // namespace baselines
}  // namespace tracer

#endif  // TRACER_BASELINES_LOGISTIC_REGRESSION_H_
