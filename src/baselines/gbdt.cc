#include "baselines/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/macros.h"

namespace tracer {
namespace baselines {

TabularData AggregateOverTime(const data::TimeSeriesDataset& dataset) {
  TabularData out;
  out.num_rows = dataset.num_samples();
  out.num_cols = dataset.num_features();
  out.values.resize(static_cast<size_t>(out.num_rows) * out.num_cols);
  out.labels = dataset.labels();
  const float inv_windows = 1.0f / static_cast<float>(dataset.num_windows());
  for (int i = 0; i < out.num_rows; ++i) {
    for (int d = 0; d < out.num_cols; ++d) {
      float acc = 0.0f;
      for (int t = 0; t < dataset.num_windows(); ++t) {
        acc += dataset.at(i, t, d);
      }
      out.values[static_cast<size_t>(i) * out.num_cols + d] =
          acc * inv_windows;
    }
  }
  return out;
}

namespace {

struct SplitCandidate {
  float gain = 0.0f;
  int feature = -1;
  float threshold = 0.0f;
};

float LeafWeight(double grad_sum, double hess_sum, float lambda) {
  return static_cast<float>(-grad_sum / (hess_sum + lambda));
}

double LeafScore(double grad_sum, double hess_sum, float lambda) {
  return grad_sum * grad_sum / (hess_sum + lambda);
}

}  // namespace

int RegressionTree::Build(const TabularData& data,
                          const std::vector<float>& grad,
                          const std::vector<float>& hess,
                          std::vector<int> rows, int depth,
                          const GbdtConfig& config) {
  double grad_sum = 0.0, hess_sum = 0.0;
  for (int r : rows) {
    grad_sum += grad[r];
    hess_sum += hess[r];
  }
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].value = LeafWeight(grad_sum, hess_sum, config.lambda);

  if (depth >= config.max_depth ||
      static_cast<int>(rows.size()) < 2 * config.min_samples_leaf) {
    return node_index;
  }

  // Histogram-based split search: per feature, bucket gradients into
  // `num_bins` equal-width bins over the node's value range and scan
  // cumulative prefixes.
  const double parent_score = LeafScore(grad_sum, hess_sum, config.lambda);
  SplitCandidate best;
  const int bins = config.num_bins;
  std::vector<double> bin_grad(bins), bin_hess(bins);
  std::vector<int> bin_count(bins);
  for (int d = 0; d < data.num_cols; ++d) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (int r : rows) {
      const float v = data.row(r)[d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > lo)) continue;  // constant feature at this node
    const float inv_width = bins / (hi - lo);
    std::fill(bin_grad.begin(), bin_grad.end(), 0.0);
    std::fill(bin_hess.begin(), bin_hess.end(), 0.0);
    std::fill(bin_count.begin(), bin_count.end(), 0);
    for (int r : rows) {
      int b = static_cast<int>((data.row(r)[d] - lo) * inv_width);
      b = std::clamp(b, 0, bins - 1);
      bin_grad[b] += grad[r];
      bin_hess[b] += hess[r];
      ++bin_count[b];
    }
    double left_grad = 0.0, left_hess = 0.0;
    int left_count = 0;
    for (int b = 0; b < bins - 1; ++b) {
      left_grad += bin_grad[b];
      left_hess += bin_hess[b];
      left_count += bin_count[b];
      const int right_count = static_cast<int>(rows.size()) - left_count;
      if (left_count < config.min_samples_leaf ||
          right_count < config.min_samples_leaf) {
        continue;
      }
      const double gain =
          LeafScore(left_grad, left_hess, config.lambda) +
          LeafScore(grad_sum - left_grad, hess_sum - left_hess,
                    config.lambda) -
          parent_score;
      if (gain > best.gain) {
        best.gain = static_cast<float>(gain);
        best.feature = d;
        best.threshold = lo + (b + 1) / inv_width;
      }
    }
  }

  if (best.feature < 0 || best.gain <= 1e-12f) return node_index;

  std::vector<int> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (int r : rows) {
    if (data.row(r)[best.feature] < best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return node_index;
  rows.clear();
  rows.shrink_to_fit();

  const int left = Build(data, grad, hess, std::move(left_rows), depth + 1,
                         config);
  const int right = Build(data, grad, hess, std::move(right_rows),
                          depth + 1, config);
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best.feature;
  nodes_[node_index].threshold = best.threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void RegressionTree::Fit(const TabularData& data,
                         const std::vector<float>& grad,
                         const std::vector<float>& hess,
                         const std::vector<int>& rows,
                         const GbdtConfig& config) {
  TRACER_CHECK(!rows.empty());
  nodes_.clear();
  Build(data, grad, hess, rows, 0, config);
}

float RegressionTree::Predict(const float* features) const {
  TRACER_CHECK(!nodes_.empty());
  int index = 0;
  while (!nodes_[index].is_leaf) {
    index = features[nodes_[index].feature] < nodes_[index].threshold
                ? nodes_[index].left
                : nodes_[index].right;
  }
  return nodes_[index].value;
}

Gbdt::Gbdt(const GbdtConfig& config, data::TaskType task)
    : config_(config), task_(task) {}

void Gbdt::Fit(const TabularData& train) {
  TRACER_CHECK_GT(train.num_rows, 0);
  TRACER_CHECK_EQ(train.labels.size(), static_cast<size_t>(train.num_rows));
  trees_.clear();
  const int n = train.num_rows;

  // Initial score: log-odds of the base rate (classification) or the label
  // mean (regression).
  double label_sum = 0.0;
  for (float y : train.labels) label_sum += y;
  const double mean = label_sum / n;
  if (task_ == data::TaskType::kBinaryClassification) {
    const double p = std::clamp(mean, 1e-5, 1.0 - 1e-5);
    base_score_ = static_cast<float>(std::log(p / (1.0 - p)));
  } else {
    base_score_ = static_cast<float>(mean);
  }

  std::vector<float> score(n, base_score_);
  std::vector<float> grad(n), hess(n);
  Rng rng(config_.seed);
  std::vector<int> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);

  for (int m = 0; m < config_.num_trees; ++m) {
    // Gradients and hessians of the current ensemble.
    for (int i = 0; i < n; ++i) {
      if (task_ == data::TaskType::kBinaryClassification) {
        const float p = 1.0f / (1.0f + std::exp(-score[i]));
        grad[i] = p - train.labels[i];
        hess[i] = std::max(p * (1.0f - p), 1e-6f);
      } else {
        grad[i] = score[i] - train.labels[i];
        hess[i] = 1.0f;
      }
    }
    // Row subsampling.
    std::vector<int> rows;
    if (config_.subsample < 1.0) {
      rows.reserve(n);
      for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(config_.subsample)) rows.push_back(i);
      }
      if (rows.size() < 2 * static_cast<size_t>(config_.min_samples_leaf)) {
        rows = all_rows;
      }
    } else {
      rows = all_rows;
    }
    RegressionTree tree;
    tree.Fit(train, grad, hess, rows, config_);
    for (int i = 0; i < n; ++i) {
      score[i] += config_.learning_rate * tree.Predict(train.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

std::vector<float> Gbdt::PredictRaw(const TabularData& data) const {
  std::vector<float> out(data.num_rows, base_score_);
  for (const RegressionTree& tree : trees_) {
    for (int i = 0; i < data.num_rows; ++i) {
      out[i] += config_.learning_rate * tree.Predict(data.row(i));
    }
  }
  return out;
}

std::vector<float> Gbdt::Predict(const TabularData& data) const {
  std::vector<float> out = PredictRaw(data);
  if (task_ == data::TaskType::kBinaryClassification) {
    for (float& v : out) v = 1.0f / (1.0f + std::exp(-v));
  }
  return out;
}

void Gbdt::FitDataset(const data::TimeSeriesDataset& train) {
  Fit(AggregateOverTime(train));
}

std::vector<float> Gbdt::PredictDataset(
    const data::TimeSeriesDataset& dataset) const {
  return Predict(AggregateOverTime(dataset));
}

}  // namespace baselines
}  // namespace tracer
