#include "baselines/birnn_model.h"

#include "autograd/ops.h"
#include "common/macros.h"

namespace tracer {
namespace baselines {

BirnnModel::BirnnModel(int input_dim, int hidden_dim, uint64_t seed,
                       RnnKind kind)
    : kind_(kind) {
  Rng rng(seed);
  if (kind_ == RnnKind::kGru) {
    gru_ = std::make_unique<nn::BiGru>(input_dim, hidden_dim, rng);
    AddSubmodule("rnn", gru_.get());
  } else {
    lstm_ = std::make_unique<nn::BiLstm>(input_dim, hidden_dim, rng);
    AddSubmodule("rnn", lstm_.get());
  }
  output_ = std::make_unique<nn::Linear>(2 * hidden_dim, 1, rng);
  AddSubmodule("output", output_.get());
}

autograd::Variable BirnnModel::Forward(
    const std::vector<autograd::Variable>& xs) {
  TRACER_CHECK(!xs.empty());
  const std::vector<autograd::Variable> states =
      kind_ == RnnKind::kGru ? gru_->Run(xs) : lstm_->Run(xs);
  const int h = kind_ == RnnKind::kGru ? gru_->hidden_dim()
                                       : lstm_->hidden_dim();
  // Final BiRNN state: the forward direction's last state lives in the
  // first h columns of states[T-1]; the backward direction's last state (it
  // runs T→1) lives in the last h columns of states[0].
  const autograd::Variable last = autograd::ConcatCols(
      autograd::SliceCols(states.back(), 0, h),
      autograd::SliceCols(states.front(), h, 2 * h));
  return output_->Forward(last);
}

}  // namespace baselines
}  // namespace tracer
