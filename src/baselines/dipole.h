#ifndef TRACER_BASELINES_DIPOLE_H_
#define TRACER_BASELINES_DIPOLE_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace baselines {

/// Dipole's three attention scorers (Ma et al., KDD 2017; §5.1.2).
enum class DipoleAttention {
  /// Location-based: e_t = w_locᵀ h_t + b (score from h_t alone).
  kLocation,
  /// General: e_t = h_lastᵀ W_gen h_t (bilinear in the final state).
  kGeneral,
  /// Concatenation-based: e_t = vᵀ tanh(W_con [h_t ; h_last]).
  kConcat,
};

/// Dipole: an attention-based bidirectional GRU. Hidden states h_1..h_{T-1}
/// are scored against the final state h_T by one of three mechanisms, the
/// softmax-weighted context is concatenated with h_T and classified.
class Dipole : public nn::SequenceModel {
 public:
  Dipole(int input_dim, int hidden_dim, DipoleAttention attention,
         uint64_t seed = 3);

  autograd::Variable Forward(
      const std::vector<autograd::Variable>& xs) override;

  std::string name() const override;

  DipoleAttention attention() const { return attention_; }

 private:
  /// Attention scores e_t (B×1) of state h_t against the final state.
  autograd::Variable Score(const autograd::Variable& h_t,
                           const autograd::Variable& h_last) const;

  DipoleAttention attention_;
  std::unique_ptr<nn::BiGru> rnn_;
  // Location scorer.
  std::unique_ptr<nn::Linear> location_head_;
  // General scorer.
  autograd::Variable general_w_;
  // Concat scorer.
  std::unique_ptr<nn::Linear> concat_proj_;
  std::unique_ptr<nn::Linear> concat_v_;
  // Output head over [context ; h_last].
  std::unique_ptr<nn::Linear> combine_;
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace baselines
}  // namespace tracer

#endif  // TRACER_BASELINES_DIPOLE_H_
