#include "baselines/logistic_regression.h"

#include <cmath>

#include "autograd/ops.h"
#include "common/macros.h"

namespace tracer {
namespace baselines {

LogisticRegression::LogisticRegression(int input_dim, LrInputMode mode,
                                       int window_index, uint64_t seed)
    : mode_(mode), window_index_(window_index) {
  TRACER_CHECK_GT(input_dim, 0);
  Rng rng(seed);
  linear_ = std::make_unique<nn::Linear>(input_dim, 1, rng);
  AddSubmodule("linear", linear_.get());
}

autograd::Variable LogisticRegression::Forward(
    const std::vector<autograd::Variable>& xs) {
  TRACER_CHECK(!xs.empty());
  if (mode_ == LrInputMode::kSingleWindow) {
    TRACER_CHECK(window_index_ >= 0 &&
                 window_index_ < static_cast<int>(xs.size()))
        << "LR window index out of range";
    return linear_->Forward(xs[window_index_]);
  }
  return linear_->Forward(autograd::Average(xs));
}

std::vector<float> LogisticRegression::Coefficients() const {
  const Tensor& w = linear_->weight().value();
  std::vector<float> out(w.rows());
  for (int d = 0; d < w.rows(); ++d) out[d] = w.at(d, 0);
  return out;
}

std::vector<float> LogisticRegression::SoftmaxNormalize(
    const std::vector<float>& coefs) {
  TRACER_CHECK(!coefs.empty());
  float mx = std::fabs(coefs[0]);
  for (float c : coefs) mx = std::max(mx, std::fabs(c));
  double sum = 0.0;
  std::vector<float> out(coefs.size());
  for (size_t i = 0; i < coefs.size(); ++i) {
    out[i] = std::exp(std::fabs(coefs[i]) - mx);
    sum += out[i];
  }
  for (float& v : out) v = static_cast<float>(v / sum);
  return out;
}

}  // namespace baselines
}  // namespace tracer
