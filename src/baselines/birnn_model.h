#ifndef TRACER_BASELINES_BIRNN_MODEL_H_
#define TRACER_BASELINES_BIRNN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace baselines {

/// Recurrent unit powering the BIRNN baseline. The paper's baseline uses a
/// bidirectional GRU; the LSTM variant is provided as an extension (both
/// units are discussed in §2.3).
enum class RnnKind { kGru, kLstm };

/// The plain BIRNN baseline of §5.1.2: a bidirectional RNN whose final
/// hidden state [→h_T ; ←h_1] feeds a linear output head.
class BirnnModel : public nn::SequenceModel {
 public:
  BirnnModel(int input_dim, int hidden_dim, uint64_t seed = 3,
             RnnKind kind = RnnKind::kGru);

  autograd::Variable Forward(
      const std::vector<autograd::Variable>& xs) override;

  std::string name() const override {
    return kind_ == RnnKind::kGru ? "BIRNN" : "BIRNN-LSTM";
  }

  RnnKind kind() const { return kind_; }

 private:
  RnnKind kind_;
  std::unique_ptr<nn::BiGru> gru_;
  std::unique_ptr<nn::BiLstm> lstm_;
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace baselines
}  // namespace tracer

#endif  // TRACER_BASELINES_BIRNN_MODEL_H_
