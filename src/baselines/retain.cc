#include "baselines/retain.h"

#include "autograd/ops.h"
#include "common/macros.h"

namespace tracer {
namespace baselines {

using autograd::Variable;

Retain::Retain(int input_dim, int embed_dim, int hidden_dim, uint64_t seed) {
  Rng rng(seed);
  embedding_ = std::make_unique<nn::Linear>(input_dim, embed_dim, rng);
  alpha_rnn_ = std::make_unique<nn::Gru>(embed_dim, hidden_dim, rng);
  alpha_head_ = std::make_unique<nn::Linear>(hidden_dim, 1, rng);
  beta_rnn_ = std::make_unique<nn::Gru>(embed_dim, hidden_dim, rng);
  beta_head_ = std::make_unique<nn::Linear>(hidden_dim, embed_dim, rng);
  output_ = std::make_unique<nn::Linear>(embed_dim, 1, rng);
  AddSubmodule("embedding", embedding_.get());
  AddSubmodule("alpha_rnn", alpha_rnn_.get());
  AddSubmodule("alpha_head", alpha_head_.get());
  AddSubmodule("beta_rnn", beta_rnn_.get());
  AddSubmodule("beta_head", beta_head_.get());
  AddSubmodule("output", output_.get());
}

Variable Retain::Forward(const std::vector<Variable>& xs) {
  TRACER_CHECK(!xs.empty());
  const int num_windows = static_cast<int>(xs.size());
  // Visit embeddings.
  std::vector<Variable> v;
  v.reserve(num_windows);
  for (const Variable& x : xs) v.push_back(embedding_->Forward(x));
  // Both RNNs consume the sequence in reverse time order — RETAIN's
  // signature design (and the reason the paper notes it "loses the forward
  // time-series information").
  const std::vector<Variable> g = alpha_rnn_->Run(v, /*reverse=*/true);
  const std::vector<Variable> h = beta_rnn_->Run(v, /*reverse=*/true);
  // Visit-level attention: softmax over windows of scalar scores.
  std::vector<Variable> scores;
  scores.reserve(num_windows);
  for (const Variable& g_t : g) scores.push_back(alpha_head_->Forward(g_t));
  const Variable alpha =
      autograd::SoftmaxRows(autograd::ConcatColsMany(scores));  // B×T
  // Context: c = Σ_t α_t (b_t ⊙ v_t).
  Variable context;
  for (int t = 0; t < num_windows; ++t) {
    const Variable b_t = autograd::Tanh(beta_head_->Forward(h[t]));
    const Variable alpha_t = autograd::SliceCols(alpha, t, t + 1);  // B×1
    const Variable term =
        autograd::MulColBroadcast(autograd::Mul(b_t, v[t]), alpha_t);
    context = t == 0 ? term : autograd::Add(context, term);
  }
  return output_->Forward(context);
}

}  // namespace baselines
}  // namespace tracer
