#ifndef TRACER_BASELINES_RETAIN_H_
#define TRACER_BASELINES_RETAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/gru.h"
#include "nn/linear.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace baselines {

/// RETAIN (Choi et al., NIPS 2016; §5.1.2): a reverse-time two-level
/// attention model. Visits are embedded (v_t = W_emb x_t), two GRUs run in
/// *reverse* time order over the embeddings, the first producing scalar
/// visit-level attention α_t (softmax over windows) and the second a
/// feature-level attention vector b_t = tanh(W h_t); the context is
/// c = Σ_t α_t · (b_t ⊙ v_t), classified linearly.
class Retain : public nn::SequenceModel {
 public:
  Retain(int input_dim, int embed_dim, int hidden_dim, uint64_t seed = 3);

  autograd::Variable Forward(
      const std::vector<autograd::Variable>& xs) override;

  std::string name() const override { return "RETAIN"; }

 private:
  std::unique_ptr<nn::Linear> embedding_;
  std::unique_ptr<nn::Gru> alpha_rnn_;
  std::unique_ptr<nn::Linear> alpha_head_;
  std::unique_ptr<nn::Gru> beta_rnn_;
  std::unique_ptr<nn::Linear> beta_head_;
  std::unique_ptr<nn::Linear> output_;
};

}  // namespace baselines
}  // namespace tracer

#endif  // TRACER_BASELINES_RETAIN_H_
