#ifndef TRACER_BASELINES_GBDT_H_
#define TRACER_BASELINES_GBDT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace tracer {
namespace baselines {

/// Flattens a time-series dataset to the tabular N×D layout GBDT and LR
/// consume: every feature averaged over the windows (§5.1.2: "the
/// aggregation operation calculates the average value of the same feature
/// across the time series").
struct TabularData {
  int num_rows = 0;
  int num_cols = 0;
  std::vector<float> values;  // row-major N×D
  std::vector<float> labels;

  const float* row(int i) const { return values.data() + static_cast<size_t>(i) * num_cols; }
};
TabularData AggregateOverTime(const data::TimeSeriesDataset& dataset);

/// GBDT hyperparameters.
struct GbdtConfig {
  int num_trees = 120;
  int max_depth = 3;
  float learning_rate = 0.1f;
  /// L2 regularisation on leaf weights.
  float lambda = 1.0f;
  /// Minimum samples per leaf.
  int min_samples_leaf = 10;
  /// Row subsampling per tree (stochastic gradient boosting).
  double subsample = 0.8;
  /// Histogram bins for split finding.
  int num_bins = 32;
  uint64_t seed = 3;
};

/// A regression tree trained on per-sample gradients/hessians with the
/// second-order gain criterion (gain = G_L²/(H_L+λ) + G_R²/(H_R+λ) −
/// G²/(H+λ); leaf weight −G/(H+λ)). Splits are found on per-node
/// equal-width histograms.
class RegressionTree {
 public:
  void Fit(const TabularData& data, const std::vector<float>& grad,
           const std::vector<float>& hess, const std::vector<int>& rows,
           const GbdtConfig& config);

  float Predict(const float* features) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct TreeNode {
    bool is_leaf = true;
    int feature = -1;
    float threshold = 0.0f;
    float value = 0.0f;
    int left = -1;
    int right = -1;
  };

  int Build(const TabularData& data, const std::vector<float>& grad,
            const std::vector<float>& hess, std::vector<int> rows, int depth,
            const GbdtConfig& config);

  std::vector<TreeNode> nodes_;
};

/// Gradient-boosted decision trees over aggregated time-series features —
/// the GBDT baseline of §5.1.2. Implements binary logistic boosting (for
/// classification) and L2 boosting (for regression), both from scratch.
class Gbdt {
 public:
  Gbdt(const GbdtConfig& config, data::TaskType task);

  /// Trains on tabular data.
  void Fit(const TabularData& train);

  /// Raw boosted score F(x) per row.
  std::vector<float> PredictRaw(const TabularData& data) const;
  /// Probabilities (classification) or predictions (regression).
  std::vector<float> Predict(const TabularData& data) const;

  /// Convenience: aggregates over time and trains / predicts.
  void FitDataset(const data::TimeSeriesDataset& train);
  std::vector<float> PredictDataset(const data::TimeSeriesDataset& dataset) const;

  std::string name() const { return "GBDT"; }
  int num_trees_fit() const { return static_cast<int>(trees_.size()); }

 private:
  GbdtConfig config_;
  data::TaskType task_;
  float base_score_ = 0.0f;
  std::vector<RegressionTree> trees_;
};

}  // namespace baselines
}  // namespace tracer

#endif  // TRACER_BASELINES_GBDT_H_
