#include "baselines/dipole.h"

#include "autograd/ops.h"
#include "common/macros.h"

namespace tracer {
namespace baselines {

using autograd::Variable;

Dipole::Dipole(int input_dim, int hidden_dim, DipoleAttention attention,
               uint64_t seed)
    : attention_(attention) {
  Rng rng(seed);
  rnn_ = std::make_unique<nn::BiGru>(input_dim, hidden_dim, rng);
  AddSubmodule("rnn", rnn_.get());
  const int state = 2 * hidden_dim;
  switch (attention_) {
    case DipoleAttention::kLocation:
      location_head_ = std::make_unique<nn::Linear>(state, 1, rng);
      AddSubmodule("location_head", location_head_.get());
      break;
    case DipoleAttention::kGeneral:
      general_w_ = AddParameter(
          "general_w", Tensor::XavierUniform(state, state, rng));
      break;
    case DipoleAttention::kConcat:
      concat_proj_ = std::make_unique<nn::Linear>(2 * state, state, rng);
      concat_v_ = std::make_unique<nn::Linear>(state, 1, rng);
      AddSubmodule("concat_proj", concat_proj_.get());
      AddSubmodule("concat_v", concat_v_.get());
      break;
  }
  combine_ = std::make_unique<nn::Linear>(2 * state, state, rng);
  output_ = std::make_unique<nn::Linear>(state, 1, rng);
  AddSubmodule("combine", combine_.get());
  AddSubmodule("output", output_.get());
}

std::string Dipole::name() const {
  switch (attention_) {
    case DipoleAttention::kLocation:
      return "Dipole_loc";
    case DipoleAttention::kGeneral:
      return "Dipole_gen";
    case DipoleAttention::kConcat:
      return "Dipole_con";
  }
  return "Dipole";
}

Variable Dipole::Score(const Variable& h_t, const Variable& h_last) const {
  switch (attention_) {
    case DipoleAttention::kLocation:
      return location_head_->Forward(h_t);
    case DipoleAttention::kGeneral:
      // h_lastᵀ W h_t per sample: rowsum((h_t W) ⊙ h_last).
      return autograd::RowSums(
          autograd::Mul(autograd::MatMul(h_t, general_w_), h_last));
    case DipoleAttention::kConcat:
      return concat_v_->Forward(autograd::Tanh(
          concat_proj_->Forward(autograd::ConcatCols(h_t, h_last))));
  }
  TRACER_CHECK(false) << "unreachable";
  return Variable();
}

Variable Dipole::Forward(const std::vector<Variable>& xs) {
  TRACER_CHECK_GE(xs.size(), 2u) << "Dipole needs at least two windows";
  const std::vector<Variable> states = rnn_->Run(xs);
  const Variable& h_last = states.back();
  const int prev_count = static_cast<int>(states.size()) - 1;
  // Scores of h_1..h_{T-1} against h_T, softmax-normalised over windows.
  std::vector<Variable> scores;
  scores.reserve(prev_count);
  for (int t = 0; t < prev_count; ++t) {
    scores.push_back(Score(states[t], h_last));
  }
  const Variable alpha =
      autograd::SoftmaxRows(autograd::ConcatColsMany(scores));  // B×(T-1)
  Variable context;
  for (int t = 0; t < prev_count; ++t) {
    const Variable alpha_t = autograd::SliceCols(alpha, t, t + 1);
    const Variable term = autograd::MulColBroadcast(states[t], alpha_t);
    context = t == 0 ? term : autograd::Add(context, term);
  }
  const Variable combined = autograd::Tanh(
      combine_->Forward(autograd::ConcatCols(context, h_last)));
  return output_->Forward(combined);
}

}  // namespace baselines
}  // namespace tracer
