#include "obs/metrics.h"

#include <utility>

#include "common/macros.h"
#include "obs/json.h"

namespace tracer {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  TRACER_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    TRACER_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +Inf
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::CumulativeCounts() const {
  std::vector<int64_t> out(buckets_.size());
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetOrCreateCounter(const std::string& name) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.counter == nullptr) {
    TRACER_CHECK(entry.gauge == nullptr && entry.histogram == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetOrCreateGauge(const std::string& name) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.gauge == nullptr) {
    TRACER_CHECK(entry.counter == nullptr && entry.histogram == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetOrCreateHistogram(const std::string& name,
                                                 std::vector<double> bounds) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.histogram == nullptr) {
    TRACER_CHECK(entry.counter == nullptr && entry.gauge == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.histogram.get();
}

std::string MetricsRegistry::ExportPrometheus() const {
  common::MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + JsonNumber(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "# TYPE " + name + " histogram\n";
        const std::vector<int64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += name + "_bucket{le=\"" + JsonNumber(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative[i]) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative.back()) + "\n";
        out += name + "_sum " + JsonNumber(h.sum()) + "\n";
        out += name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJsonl() const {
  common::MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    JsonObject line;
    line.Add("metric", name);
    switch (entry.kind) {
      case Kind::kCounter:
        line.Add("type", "counter");
        line.Add("value", entry.counter->value());
        break;
      case Kind::kGauge:
        line.Add("type", "gauge");
        line.Add("value", entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        line.Add("type", "histogram");
        line.Add("sum", h.sum());
        line.Add("count", h.count());
        std::string buckets = "[";
        const std::vector<int64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) buckets += ",";
          buckets += "{\"le\":" + JsonNumber(h.bounds()[i]) +
                     ",\"count\":" + std::to_string(cumulative[i]) + "}";
        }
        buckets += "]";
        line.AddRaw("buckets", buckets);
        break;
      }
    }
    out += line.Build() + "\n";
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::ResetForTest() {
  common::MutexLock lock(&mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace tracer
