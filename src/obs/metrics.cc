#include "obs/metrics.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "obs/json.h"

namespace tracer {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  TRACER_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    TRACER_CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +Inf
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::CumulativeCounts() const {
  std::vector<int64_t> out(buckets_.size());
  int64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

LogHistogram::LogHistogram()
    : buckets_(kBucketCount), exemplars_(kBucketCount) {}

int LogHistogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // < 1, negative, and NaN → underflow
  const int interior = static_cast<int>(std::log10(value) *
                                        static_cast<double>(kBucketsPerDecade));
  if (interior >= kBucketsPerDecade * kDecades) return kBucketCount - 1;
  return interior + 1;
}

double LogHistogram::BucketLower(int index) {
  if (index <= 0) return 0.0;
  if (index >= kBucketCount - 1) {
    return std::pow(10.0, static_cast<double>(kDecades));
  }
  return std::pow(10.0, static_cast<double>(index - 1) /
                            static_cast<double>(kBucketsPerDecade));
}

double LogHistogram::BucketUpper(int index) {
  if (index <= 0) return 1.0;
  if (index >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::pow(10.0, static_cast<double>(index) /
                            static_cast<double>(kBucketsPerDecade));
}

void LogHistogram::Observe(double value, uint64_t exemplar_id) {
  const int index = BucketIndex(value);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_id != 0) {
    exemplars_[index].store(exemplar_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

double LogHistogram::Quantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the counts first so one pass decides the target rank and a
  // second pass walks to it over the same data (relaxed counters may move
  // under us otherwise and the walk could run off the end).
  int64_t counts[kBucketCount];
  int64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const int64_t rank =
      static_cast<int64_t>(q * static_cast<double>(total - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += counts[i];
    if (seen >= rank && counts[i] > 0) {
      if (i == 0) return 0.5;  // underflow: below the representable range
      if (i == kBucketCount - 1) return BucketLower(i);
      // Geometric midpoint of the bucket — at most half a bucket (~7%
      // relative) from any true sample in it.
      return std::pow(10.0,
                      (static_cast<double>(i - 1) + 0.5) /
                          static_cast<double>(kBucketsPerDecade));
    }
  }
  return BucketLower(kBucketCount - 1);
}

uint64_t LogHistogram::ExemplarNear(double value) const {
  return exemplars_[BucketIndex(value)].load(std::memory_order_relaxed);
}

std::vector<LogHistogram::Bucket> LogHistogram::NonzeroBuckets() const {
  std::vector<Bucket> out;
  for (int i = 0; i < kBucketCount; ++i) {
    const int64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    Bucket b;
    b.lower = BucketLower(i);
    b.upper = BucketUpper(i);
    b.count = n;
    b.exemplar = exemplars_[i].load(std::memory_order_relaxed);
    out.push_back(b);
  }
  return out;
}

void LogHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  for (auto& exemplar : exemplars_) {
    exemplar.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetOrCreateCounter(const std::string& name) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.counter == nullptr) {
    TRACER_CHECK(entry.gauge == nullptr && entry.histogram == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetOrCreateGauge(const std::string& name) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.gauge == nullptr) {
    TRACER_CHECK(entry.counter == nullptr && entry.histogram == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetOrCreateHistogram(const std::string& name,
                                                 std::vector<double> bounds) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.histogram == nullptr) {
    TRACER_CHECK(entry.counter == nullptr && entry.gauge == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kHistogram;
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return entry.histogram.get();
}

LogHistogram* MetricsRegistry::GetOrCreateLogHistogram(
    const std::string& name) {
  common::MutexLock lock(&mutex_);
  Entry& entry = entries_[name];
  if (entry.log_histogram == nullptr) {
    TRACER_CHECK(entry.counter == nullptr && entry.gauge == nullptr &&
                 entry.histogram == nullptr)
        << name << " already registered with a different metric kind";
    entry.kind = Kind::kLogHistogram;
    entry.log_histogram = std::make_unique<LogHistogram>();
  }
  return entry.log_histogram.get();
}

std::string MetricsRegistry::ExportPrometheus() const {
  common::MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + JsonNumber(entry.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "# TYPE " + name + " histogram\n";
        const std::vector<int64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += name + "_bucket{le=\"" + JsonNumber(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative[i]) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative.back()) + "\n";
        out += name + "_sum " + JsonNumber(h.sum()) + "\n";
        out += name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
      case Kind::kLogHistogram: {
        // Exposed summary-style: the bucket layout is an internal detail;
        // quantiles are what dashboards want from a tail-latency metric.
        const LogHistogram& h = *entry.log_histogram;
        out += "# TYPE " + name + " summary\n";
        for (double q : {0.5, 0.95, 0.99}) {
          out += name + "{quantile=\"" + JsonNumber(q) + "\"} " +
                 JsonNumber(h.Quantile(q)) + "\n";
        }
        out += name + "_sum " + JsonNumber(h.sum()) + "\n";
        out += name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJsonl() const {
  common::MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    JsonObject line;
    line.Add("metric", name);
    switch (entry.kind) {
      case Kind::kCounter:
        line.Add("type", "counter");
        line.Add("value", entry.counter->value());
        break;
      case Kind::kGauge:
        line.Add("type", "gauge");
        line.Add("value", entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        line.Add("type", "histogram");
        line.Add("sum", h.sum());
        line.Add("count", h.count());
        std::string buckets = "[";
        const std::vector<int64_t> cumulative = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) buckets += ",";
          buckets += "{\"le\":" + JsonNumber(h.bounds()[i]) +
                     ",\"count\":" + std::to_string(cumulative[i]) + "}";
        }
        buckets += "]";
        line.AddRaw("buckets", buckets);
        break;
      }
      case Kind::kLogHistogram: {
        const LogHistogram& h = *entry.log_histogram;
        line.Add("type", "log_histogram");
        line.Add("sum", h.sum());
        line.Add("count", h.count());
        line.Add("p50", h.Quantile(0.5));
        line.Add("p95", h.Quantile(0.95));
        line.Add("p99", h.Quantile(0.99));
        std::string buckets = "[";
        bool first = true;
        for (const LogHistogram::Bucket& b : h.NonzeroBuckets()) {
          if (!first) buckets += ",";
          first = false;
          JsonObject bucket;
          bucket.Add("lower", b.lower);
          bucket.Add("upper", b.upper);
          bucket.Add("count", b.count);
          bucket.Add("exemplar", static_cast<int64_t>(b.exemplar));
          buckets += bucket.Build();
        }
        buckets += "]";
        line.AddRaw("buckets", buckets);
        break;
      }
    }
    out += line.Build() + "\n";
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void MetricsRegistry::ResetForTest() {
  common::MutexLock lock(&mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
      case Kind::kLogHistogram:
        entry.log_histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace tracer
