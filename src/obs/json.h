#ifndef TRACER_OBS_JSON_H_
#define TRACER_OBS_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace tracer {
namespace obs {

/// Escapes a string for inclusion in a JSON string literal.
inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number (JSON has no NaN/Inf; those become
/// null so consumers fail loudly instead of parsing garbage).
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// Minimal append-only builder for one-line JSON objects (the shape every
/// telemetry record and metric export line in this codebase uses). Values
/// are written eagerly into a flat string; no DOM, no allocator churn.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, const std::string& value) {
    Key(key);
    body_ += '"';
    body_ += JsonEscape(value);
    body_ += '"';
    return *this;
  }

  JsonObject& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }

  JsonObject& Add(const std::string& key, double value) {
    Key(key);
    body_ += JsonNumber(value);
    return *this;
  }

  JsonObject& Add(const std::string& key, int64_t value) {
    Key(key);
    body_ += std::to_string(value);
    return *this;
  }

  JsonObject& Add(const std::string& key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }

  JsonObject& Add(const std::string& key, bool value) {
    Key(key);
    body_ += value ? "true" : "false";
    return *this;
  }

  /// Splices a pre-rendered JSON value (object, array, …) under `key`.
  JsonObject& AddRaw(const std::string& key, const std::string& json) {
    Key(key);
    body_ += json;
    return *this;
  }

  std::string Build() const { return "{" + body_ + "}"; }

 private:
  void Key(const std::string& key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += JsonEscape(key);
    body_ += "\":";
  }

  std::string body_;
};

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS_JSON_H_
