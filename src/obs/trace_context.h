#ifndef TRACER_OBS_TRACE_CONTEXT_H_
#define TRACER_OBS_TRACE_CONTEXT_H_

#include <cstdint>

#include "obs/obs.h"

namespace tracer {
namespace obs {

/// Identity of one request-scoped trace: which trace a span belongs to and
/// which span is the current parent. POD and always defined (request structs
/// embed it even when observability is compiled out); a zero trace_id means
/// "not tracing".
///
/// Propagation model: every thread carries an ambient TraceContext
/// (thread-local). RAII `Span`s update the ambient span_id for their scope,
/// so same-thread nesting is implicit; crossing a thread boundary is
/// explicit — capture `CurrentTraceContext()` on the producing thread, ship
/// it with the work item, and install it on the consuming thread with
/// `ScopedTraceContext` (or record completed stages directly with
/// `RecordSpan`, passing the captured ids). One request's spans then stitch
/// into one tree no matter how many threads executed them.
struct TraceContext {
  /// Which trace this context belongs to; 0 = no active trace.
  uint64_t trace_id = 0;
  /// The span that new child spans should parent under; 0 = root position.
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

#if TRACER_OBS == 0

inline uint64_t NewTraceId() { return 0; }
inline uint64_t NextSpanId() { return 0; }
inline TraceContext CurrentTraceContext() { return TraceContext{}; }
inline TraceContext NewTraceContext() { return TraceContext{}; }

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext&) {}
};

#else

/// Mints a process-unique trace id (nonzero). Cheap: one relaxed atomic.
uint64_t NewTraceId();

/// Mints a process-unique span id (nonzero). Cheap: one relaxed atomic.
uint64_t NextSpanId();

/// The calling thread's ambient context. `trace_id` is nonzero only inside
/// a ScopedTraceContext (or a Span opened beneath one); `span_id` is the
/// innermost live Span on this thread regardless of tracing, so callers can
/// always discover their parent span.
TraceContext CurrentTraceContext();

/// Convenience: a fresh root context (new trace id, new root span id) —
/// what a server mints at admission.
TraceContext NewTraceContext();

/// Installs `context` as the calling thread's ambient context for the
/// enclosing scope and restores the previous ambient on destruction. Spans
/// opened inside adopt the context's trace id and parent under its span id.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

namespace internal {
/// Mutable access to the thread-local ambient context (Span ctor/dtor).
TraceContext* AmbientContext();
}  // namespace internal

#endif  // TRACER_OBS == 0

}  // namespace obs
}  // namespace tracer

#if TRACER_OBS == 0
#define TRACER_TRACE_SCOPE(context) ((void)sizeof(context))
#else
#define TRACER_TRACE_SCOPE_CONCAT_INNER(a, b) a##b
#define TRACER_TRACE_SCOPE_CONCAT(a, b) TRACER_TRACE_SCOPE_CONCAT_INNER(a, b)
/// Installs a captured TraceContext for the rest of the enclosing scope:
///   TRACER_TRACE_SCOPE(work.trace);
/// Spans (TRACER_SPAN) opened below join that trace.
#define TRACER_TRACE_SCOPE(context)                 \
  ::tracer::obs::ScopedTraceContext TRACER_TRACE_SCOPE_CONCAT( \
      tracer_trace_scope_, __COUNTER__)(context)
#endif

#endif  // TRACER_OBS_TRACE_CONTEXT_H_
