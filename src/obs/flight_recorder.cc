#include "obs/flight_recorder.h"

#if TRACER_OBS != 0

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tracer {
namespace obs {

namespace {

/// Reasons become filename components; keep them boring.
std::string SanitizeReason(const char* reason) {
  std::string out;
  for (const char* p = reason; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    out += (std::isalnum(c) != 0) ? *p : '_';
  }
  return out.empty() ? std::string("unknown") : out;
}

int64_t UnixTimeSeconds() {
  return static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  common::MutexLock lock(&mutex_);
  LoadEnvLocked();
}

void FlightRecorder::LoadEnvLocked() {
  const char* dir = std::getenv("TRACER_FLIGHT_DIR");
  directory_ = dir != nullptr ? dir : "";
  max_dumps_ = 8;
  const char* max = std::getenv("TRACER_FLIGHT_MAX");
  if (max != nullptr) {
    const long parsed = std::strtol(max, nullptr, 10);
    if (parsed > 0) max_dumps_ = static_cast<uint64_t>(parsed);
  }
  min_interval_ns_ = 500'000'000;
}

std::string FlightRecorder::Dump(const char* reason) {
  std::string path;
  uint64_t seq = 0;
  {
    common::MutexLock lock(&mutex_);
    ++triggers_;
    if (directory_.empty()) return "";
    if (dumps_written_ >= max_dumps_) return "";
    const uint64_t now_ns = MonotonicNowNs();
    if (last_dump_ns_ != 0 && now_ns - last_dump_ns_ < min_interval_ns_) {
      return "";
    }
    last_dump_ns_ = now_ns;
    seq = dumps_written_++;
    path = directory_ + "/flight_" + SanitizeReason(reason) + "_" +
           std::to_string(seq) + ".jsonl";
  }
  // Snapshot and write outside the recorder lock: TraceSink and the metric
  // registry have their own locks, and the file write can be slow.
  const std::vector<SpanRecord> spans = TraceSink::Global().Snapshot();
  std::ostringstream out;
  JsonObject header;
  header.Add("record", "flight_header");
  header.Add("reason", reason);
  header.Add("unix_time", UnixTimeSeconds());
  header.Add("seq", static_cast<int64_t>(seq));
  header.Add("spans_recorded",
             static_cast<int64_t>(TraceSink::Global().recorded()));
  header.Add("spans_dropped",
             static_cast<int64_t>(TraceSink::Global().dropped()));
  out << header.Build() << "\n";
  for (const SpanRecord& s : spans) {
    JsonObject line;
    line.Add("record", "span");
    line.Add("name", s.name);
    line.Add("parent", s.parent);
    line.Add("depth", s.depth);
    line.Add("thread", s.thread_id);
    line.Add("start_ns", static_cast<int64_t>(s.start_ns));
    line.Add("dur_ns", static_cast<int64_t>(s.duration_ns));
    line.Add("trace_id", static_cast<int64_t>(s.trace_id));
    line.Add("span_id", static_cast<int64_t>(s.span_id));
    line.Add("parent_span_id", static_cast<int64_t>(s.parent_span_id));
    out << line.Build() << "\n";
  }
  std::istringstream metrics(MetricsRegistry::Global().ExportJsonl());
  std::string metric_line;
  while (std::getline(metrics, metric_line)) {
    if (metric_line.empty()) continue;
    // ExportJsonl lines are flat objects; tag them in place.
    out << "{\"record\":\"metric\"," << metric_line.substr(1) << "\n";
  }
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) return "";
  file << out.str();
  file.close();
  return path;
}

uint64_t FlightRecorder::triggers() const {
  common::MutexLock lock(&mutex_);
  return triggers_;
}

uint64_t FlightRecorder::dumps_written() const {
  common::MutexLock lock(&mutex_);
  return dumps_written_;
}

void FlightRecorder::SetDirectoryForTest(const std::string& dir) {
  common::MutexLock lock(&mutex_);
  directory_ = dir;
}

void FlightRecorder::SetLimitsForTest(uint64_t max_dumps,
                                      uint64_t min_interval_ns) {
  common::MutexLock lock(&mutex_);
  max_dumps_ = max_dumps;
  min_interval_ns_ = min_interval_ns;
}

void FlightRecorder::ResetForTest() {
  common::MutexLock lock(&mutex_);
  LoadEnvLocked();
  last_dump_ns_ = 0;
  triggers_ = 0;
  dumps_written_ = 0;
}

void TriggerFlightDump(const char* reason) {
  if (!Enabled()) return;
  FlightRecorder::Global().Dump(reason);
}

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS != 0
