#include "obs/trace_context.h"

#include <atomic>

#if TRACER_OBS != 0

namespace tracer {
namespace obs {

namespace {

/// Ids start at 1 so 0 can mean "none" everywhere; trace ids and span ids
/// draw from separate sequences purely so a trace id is never confused for
/// a span id while reading a dump.
std::atomic<uint64_t> next_trace_id{1};
std::atomic<uint64_t> next_span_id{1};

}  // namespace

namespace internal {

TraceContext* AmbientContext() {
  thread_local TraceContext ambient;
  return &ambient;
}

}  // namespace internal

uint64_t NewTraceId() {
  return next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NextSpanId() {
  return next_span_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() { return *internal::AmbientContext(); }

TraceContext NewTraceContext() {
  TraceContext context;
  context.trace_id = NewTraceId();
  context.span_id = NextSpanId();
  return context;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(*internal::AmbientContext()) {
  *internal::AmbientContext() = context;
}

ScopedTraceContext::~ScopedTraceContext() {
  *internal::AmbientContext() = saved_;
}

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS != 0
