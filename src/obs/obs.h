#ifndef TRACER_OBS_OBS_H_
#define TRACER_OBS_OBS_H_

#include <cstdint>

/// Compile-time observability level. 0 compiles every probe out (spans,
/// per-op timers and metric updates become empty inline functions the
/// optimizer deletes); 1 (the default) compiles probes in behind a runtime
/// enable flag. Set from the build system with -DTRACER_OBS=0.
#ifndef TRACER_OBS
#define TRACER_OBS 1
#endif

namespace tracer {
namespace obs {

#if TRACER_OBS == 0
/// Compiled out: constant false, inline so `if (Enabled()) { ... }` probe
/// blocks are dead-code-eliminated and the binary links without the
/// observability objects at all (the zero-cost gate checks exactly this).
inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
/// Runtime master switch for the whole observability stack (metric updates,
/// trace spans, autograd profiler wiring in the hot loops). Initialised once
/// from the TRACER_OBS environment variable ("1"/"2" enable, "0"/unset
/// disable); tests and tools flip it with SetEnabled().
bool Enabled();

/// Overrides the runtime switch.
void SetEnabled(bool enabled);
#endif

/// Monotonic-clock timestamp in nanoseconds (steady_clock). Safe to subtract;
/// not related to wall-clock time.
uint64_t MonotonicNowNs();

/// Small integer id for the calling thread, assigned on first use (1, 2, …).
/// Stable for the thread's lifetime; cheaper to read and to print than
/// std::thread::id.
int ThreadId();

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS_OBS_H_
