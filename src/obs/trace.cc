#include "obs/trace.h"

#include "obs/json.h"

namespace tracer {
namespace obs {

namespace {

/// Per-thread stack of live span names; the top is the parent of the next
/// span opened on this thread.
std::vector<const char*>& ThreadSpanStack() {
  thread_local std::vector<const char*> stack;
  return stack;
}

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

void TraceSink::Record(const SpanRecord& record) {
  common::MutexLock lock(&mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_ % capacity_] = record;
  }
  ++next_;
  ++recorded_;
}

std::vector<SpanRecord> TraceSink::Snapshot() const {
  common::MutexLock lock(&mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring is full: next_ % capacity_ is the oldest record.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string TraceSink::DumpJson() const {
  const std::vector<SpanRecord> records = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    JsonObject obj;
    obj.Add("name", records[i].name);
    obj.Add("parent", records[i].parent);
    obj.Add("depth", records[i].depth);
    obj.Add("thread", records[i].thread_id);
    obj.Add("start_ns", static_cast<int64_t>(records[i].start_ns));
    obj.Add("dur_ns", static_cast<int64_t>(records[i].duration_ns));
    out += obj.Build();
  }
  out += "]";
  return out;
}

uint64_t TraceSink::recorded() const {
  common::MutexLock lock(&mutex_);
  return recorded_;
}

uint64_t TraceSink::dropped() const {
  common::MutexLock lock(&mutex_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void TraceSink::Clear() {
  common::MutexLock lock(&mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void TraceSink::SetCapacity(size_t capacity) {
  common::MutexLock lock(&mutex_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

Span::Span(const char* name) : active_(Enabled()) {
  if (!active_) return;
  name_ = name;
  std::vector<const char*>& stack = ThreadSpanStack();
  depth_ = static_cast<int>(stack.size());
  parent_ = stack.empty() ? "" : stack.back();
  stack.push_back(name);
  start_ns_ = MonotonicNowNs();
}

Span::~Span() {
  if (!active_) return;
  const uint64_t end_ns = MonotonicNowNs();
  ThreadSpanStack().pop_back();
  SpanRecord record;
  record.name = name_;
  record.parent = parent_;
  record.depth = depth_;
  record.thread_id = ThreadId();
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  TraceSink::Global().Record(record);
}

}  // namespace obs
}  // namespace tracer
