#include "obs/trace.h"

#include "obs/json.h"

namespace tracer {
namespace obs {

namespace {

/// Per-thread stack of live span names; the top is the parent of the next
/// span opened on this thread.
std::vector<const char*>& ThreadSpanStack() {
  thread_local std::vector<const char*> stack;
  return stack;
}

}  // namespace

TraceSink& TraceSink::Global() {
  static TraceSink* sink = new TraceSink();
  return *sink;
}

void TraceSink::Record(const SpanRecord& record) {
  common::MutexLock lock(&mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_ % capacity_] = record;
  }
  ++next_;
  ++recorded_;
}

std::vector<SpanRecord> TraceSink::Snapshot() const {
  common::MutexLock lock(&mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring is full: next_ % capacity_ is the oldest record.
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string TraceSink::DumpJson() const {
  const std::vector<SpanRecord> records = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    JsonObject obj;
    obj.Add("name", records[i].name);
    obj.Add("parent", records[i].parent);
    obj.Add("depth", records[i].depth);
    obj.Add("thread", records[i].thread_id);
    obj.Add("start_ns", static_cast<int64_t>(records[i].start_ns));
    obj.Add("dur_ns", static_cast<int64_t>(records[i].duration_ns));
    obj.Add("trace_id", static_cast<int64_t>(records[i].trace_id));
    obj.Add("span_id", static_cast<int64_t>(records[i].span_id));
    obj.Add("parent_span_id",
            static_cast<int64_t>(records[i].parent_span_id));
    out += obj.Build();
  }
  out += "]";
  return out;
}

std::string TraceSink::DumpChromeTrace() const {
  const std::vector<SpanRecord> records = Snapshot();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    const SpanRecord& r = records[i];
    JsonObject args;
    args.Add("trace_id", static_cast<int64_t>(r.trace_id));
    args.Add("span_id", static_cast<int64_t>(r.span_id));
    args.Add("parent_span_id", static_cast<int64_t>(r.parent_span_id));
    args.Add("depth", r.depth);
    JsonObject obj;
    obj.Add("name", r.name);
    obj.Add("ph", "X");
    // Trace-event timestamps are microseconds (doubles in the viewer), so
    // ns/1000 keeps sub-microsecond spans visible as fractional durations.
    obj.AddRaw("ts", JsonNumber(static_cast<double>(r.start_ns) / 1000.0));
    obj.AddRaw("dur",
               JsonNumber(static_cast<double>(r.duration_ns) / 1000.0));
    obj.Add("pid", 1);
    obj.Add("tid", r.thread_id);
    obj.AddRaw("args", args.Build());
    out += obj.Build();
  }
  out += "]}";
  return out;
}

uint64_t TraceSink::recorded() const {
  common::MutexLock lock(&mutex_);
  return recorded_;
}

uint64_t TraceSink::dropped() const {
  common::MutexLock lock(&mutex_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void TraceSink::Clear() {
  common::MutexLock lock(&mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void TraceSink::SetCapacity(size_t capacity) {
  common::MutexLock lock(&mutex_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

Span::Span(const char* name) : active_(Enabled()) {
  if (!active_) return;
  name_ = name;
  std::vector<const char*>& stack = ThreadSpanStack();
  depth_ = static_cast<int>(stack.size());
  parent_ = stack.empty() ? "" : stack.back();
  stack.push_back(name);
#if TRACER_OBS != 0
  // Adopt the ambient context: this span parents under the current ambient
  // span and becomes the ambient parent for anything opened inside it. The
  // span id is minted even with no active trace so a context captured inside
  // this scope still names its enclosing span.
  TraceContext* ambient = internal::AmbientContext();
  saved_ambient_ = *ambient;
  span_id_ = NextSpanId();
  ambient->span_id = span_id_;
#endif
  start_ns_ = MonotonicNowNs();
}

Span::~Span() {
  if (!active_) return;
  const uint64_t end_ns = MonotonicNowNs();
  ThreadSpanStack().pop_back();
  SpanRecord record;
  record.name = name_;
  record.parent = parent_;
  record.depth = depth_;
  record.thread_id = ThreadId();
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
#if TRACER_OBS != 0
  record.trace_id = saved_ambient_.trace_id;
  record.span_id = span_id_;
  record.parent_span_id = saved_ambient_.span_id;
  *internal::AmbientContext() = saved_ambient_;
#endif
  TraceSink::Global().Record(record);
}

#if TRACER_OBS != 0
void RecordSpan(const char* name, const char* parent_name, uint64_t trace_id,
                uint64_t span_id, uint64_t parent_span_id, uint64_t start_ns,
                uint64_t end_ns, int depth) {
  if (!Enabled()) return;
  SpanRecord record;
  record.name = name;
  record.parent = parent_name;
  record.depth = depth;
  record.thread_id = ThreadId();
  record.start_ns = start_ns;
  record.duration_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  record.trace_id = trace_id;
  record.span_id = span_id;
  record.parent_span_id = parent_span_id;
  TraceSink::Global().Record(record);
}
#endif

}  // namespace obs
}  // namespace tracer
