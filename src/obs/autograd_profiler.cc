#include "obs/autograd_profiler.h"

#include <algorithm>
#include <cstdio>

namespace tracer {
namespace obs {

AutogradProfiler& AutogradProfiler::Global() {
  static AutogradProfiler* profiler = new AutogradProfiler();
  return *profiler;
}

void AutogradProfiler::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void AutogradProfiler::RecordForward(const char* op, uint64_t ns,
                                     int64_t flops, int64_t heap_allocs) {
  common::MutexLock lock(&mutex_);
  Cell& cell = cells_[op];
  ++cell.forward_calls;
  cell.forward_ns += ns;
  cell.forward_flops += flops;
  cell.forward_heap_allocs += heap_allocs;
}

void AutogradProfiler::RecordBackward(const char* op, uint64_t ns,
                                      int64_t heap_allocs) {
  common::MutexLock lock(&mutex_);
  Cell& cell = cells_[op];
  ++cell.backward_calls;
  cell.backward_ns += ns;
  cell.backward_heap_allocs += heap_allocs;
}

void AutogradProfiler::AddBackwardFlops(const char* op, int64_t flops) {
  common::MutexLock lock(&mutex_);
  cells_[op].backward_flops += flops;
}

std::vector<OpProfile> AutogradProfiler::Snapshot() const {
  std::vector<OpProfile> out;
  {
    common::MutexLock lock(&mutex_);
    out.reserve(cells_.size());
    for (const auto& [op, cell] : cells_) {
      OpProfile profile;
      profile.op = op;
      profile.forward_calls = cell.forward_calls;
      profile.forward_ns = cell.forward_ns;
      profile.backward_calls = cell.backward_calls;
      profile.backward_ns = cell.backward_ns;
      profile.forward_flops = cell.forward_flops;
      profile.backward_flops = cell.backward_flops;
      profile.forward_heap_allocs = cell.forward_heap_allocs;
      profile.backward_heap_allocs = cell.backward_heap_allocs;
      out.push_back(std::move(profile));
    }
  }
  std::sort(out.begin(), out.end(), [](const OpProfile& a, const OpProfile& b) {
    if (a.total_ns() != b.total_ns()) return a.total_ns() > b.total_ns();
    return a.op < b.op;
  });
  return out;
}

uint64_t AutogradProfiler::TotalNs() const {
  common::MutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& [op, cell] : cells_) {
    total += cell.forward_ns + cell.backward_ns;
  }
  return total;
}

double AutogradProfiler::GemmShare() const {
  common::MutexLock lock(&mutex_);
  uint64_t total = 0;
  uint64_t gemm = 0;
  for (const auto& [op, cell] : cells_) {
    const uint64_t ns = cell.forward_ns + cell.backward_ns;
    total += ns;
    if (op == "matmul" || op == "batch_matmul") gemm += ns;
  }
  return total > 0 ? static_cast<double>(gemm) / static_cast<double>(total)
                   : 0.0;
}

std::string AutogradProfiler::ReportTable() const {
  const std::vector<OpProfile> profiles = Snapshot();
  std::string out =
      "op                    fwd_calls     fwd_ms  fwd_gflops  fwd_allocs"
      "  bwd_calls     bwd_ms  bwd_gflops  bwd_allocs\n";
  for (const OpProfile& p : profiles) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "%-20s %10lld %10.3f %11.2f %11lld %10lld %10.3f %11.2f"
                  " %11lld\n",
                  p.op.c_str(), static_cast<long long>(p.forward_calls),
                  static_cast<double>(p.forward_ns) / 1e6,
                  p.forward_gflops(),
                  static_cast<long long>(p.forward_heap_allocs),
                  static_cast<long long>(p.backward_calls),
                  static_cast<double>(p.backward_ns) / 1e6,
                  p.backward_gflops(),
                  static_cast<long long>(p.backward_heap_allocs));
    out += line;
  }
  return out;
}

void AutogradProfiler::Reset() {
  common::MutexLock lock(&mutex_);
  cells_.clear();
}

}  // namespace obs
}  // namespace tracer
