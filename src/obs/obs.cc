#include "obs/obs.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace tracer {
namespace obs {

#if TRACER_OBS != 0

namespace {

bool ParseEnvEnabled() {
  const char* env = std::getenv("TRACER_OBS");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled(ParseEnvEnabled());
  return enabled;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

#endif  // TRACER_OBS != 0

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int ThreadId() {
  static std::atomic<int> next_id(0);
  thread_local int id = ++next_id;
  return id;
}

}  // namespace obs
}  // namespace tracer
