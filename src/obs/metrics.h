#ifndef TRACER_OBS_METRICS_H_
#define TRACER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tracer {
namespace obs {

// Thread-safe process-wide metrics: monotonically increasing counters,
// settable gauges, and fixed-bucket histograms, looked up by name from a
// global registry and exportable as Prometheus text or JSONL. Metric names
// follow the repo convention `tracer_<layer>_<name>` (see DESIGN.md
// "Observability"); update paths are single relaxed atomics so probes can
// sit on hot paths behind obs::Enabled().

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric (queue depths, rates, sizes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed upper bounds (Prometheus `le` semantics: a sample v
/// lands in the first bucket with v <= bound; values above every bound go to
/// the implicit +Inf bucket). Bounds are set at creation and immutable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count per bound (Prometheus convention), +Inf last.
  std::vector<int64_t> CumulativeCounts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // one per bound, +Inf last
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Log-bucketed histogram for latency-style values with unknown range: 16
/// geometric buckets per decade spanning [1, 1e12) (1 ns … ~17 min when fed
/// nanoseconds), plus an underflow bucket (< 1, including negatives) and an
/// overflow bucket. No hand-picked bounds, and any quantile is off by at
/// most one bucket width (~15% relative) — accurate enough for p99 tail
/// tracking where the fixed-bound Histogram is useless. Each bucket keeps
/// one *exemplar* id (last sample's trace id) so a p99 bucket links back to
/// a concrete trace. Updates are single relaxed atomics.
class LogHistogram {
 public:
  static constexpr int kBucketsPerDecade = 16;
  static constexpr int kDecades = 12;
  /// Interior buckets + underflow (index 0) + overflow (last index).
  static constexpr int kBucketCount = kBucketsPerDecade * kDecades + 2;

  struct Bucket {
    double lower = 0.0;      // inclusive; 0 for the underflow bucket
    double upper = 0.0;      // exclusive; +Inf for the overflow bucket
    int64_t count = 0;
    uint64_t exemplar = 0;   // last nonzero exemplar id observed, 0 if none
  };

  LogHistogram();

  /// Records `value`; `exemplar_id` (usually a trace id, 0 = none) replaces
  /// the containing bucket's exemplar when nonzero.
  void Observe(double value, uint64_t exemplar_id = 0);

  /// Streaming quantile estimate for q in [0,1]: the geometric midpoint of
  /// the bucket holding the q-th sample. Returns 0 when empty.
  double Quantile(double q) const;

  /// Exemplar id of the bucket that `value` would land in (0 if none) —
  /// how a quantile estimate is tied back to a concrete trace.
  uint64_t ExemplarNear(double value) const;

  /// Buckets with nonzero counts, in ascending value order.
  std::vector<Bucket> NonzeroBuckets() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  static int BucketIndex(double value);
  static double BucketLower(int index);
  static double BucketUpper(int index);

  std::vector<std::atomic<int64_t>> buckets_;
  std::vector<std::atomic<uint64_t>> exemplars_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → metric registry. GetOrCreate* return stable pointers that remain
/// valid for the process lifetime; creation is mutex-serialized, updates via
/// the returned handles are lock-free. A metric name maps to exactly one
/// kind — re-requesting it with a different kind is a programming error.
class MetricsRegistry {
 public:
  /// Process-wide instance used by all built-in instrumentation.
  static MetricsRegistry& Global();

  Counter* GetOrCreateCounter(const std::string& name)
      TRACER_EXCLUDES(mutex_);
  Gauge* GetOrCreateGauge(const std::string& name) TRACER_EXCLUDES(mutex_);
  /// `bounds` must be strictly increasing; ignored if the histogram exists.
  Histogram* GetOrCreateHistogram(const std::string& name,
                                  std::vector<double> bounds)
      TRACER_EXCLUDES(mutex_);
  LogHistogram* GetOrCreateLogHistogram(const std::string& name)
      TRACER_EXCLUDES(mutex_);

  /// Prometheus text exposition format (one `# TYPE` line per metric).
  std::string ExportPrometheus() const TRACER_EXCLUDES(mutex_);
  /// One JSON object per line: {"metric":...,"type":...,"value":...} for
  /// counters/gauges; histograms add "sum","count","buckets".
  std::string ExportJsonl() const TRACER_EXCLUDES(mutex_);

  /// Zeroes every registered metric in place. Handles stay valid (hot
  /// paths cache them in function-local statics), names stay registered.
  void ResetForTest() TRACER_EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kLogHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<LogHistogram> log_histogram;
  };

  mutable common::Mutex mutex_;
  std::map<std::string, Entry> entries_ TRACER_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS_METRICS_H_
