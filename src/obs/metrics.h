#ifndef TRACER_OBS_METRICS_H_
#define TRACER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tracer {
namespace obs {

// Thread-safe process-wide metrics: monotonically increasing counters,
// settable gauges, and fixed-bucket histograms, looked up by name from a
// global registry and exportable as Prometheus text or JSONL. Metric names
// follow the repo convention `tracer_<layer>_<name>` (see DESIGN.md
// "Observability"); update paths are single relaxed atomics so probes can
// sit on hot paths behind obs::Enabled().

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric (queue depths, rates, sizes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed upper bounds (Prometheus `le` semantics: a sample v
/// lands in the first bucket with v <= bound; values above every bound go to
/// the implicit +Inf bucket). Bounds are set at creation and immutable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count per bound (Prometheus convention), +Inf last.
  std::vector<int64_t> CumulativeCounts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // one per bound, +Inf last
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → metric registry. GetOrCreate* return stable pointers that remain
/// valid for the process lifetime; creation is mutex-serialized, updates via
/// the returned handles are lock-free. A metric name maps to exactly one
/// kind — re-requesting it with a different kind is a programming error.
class MetricsRegistry {
 public:
  /// Process-wide instance used by all built-in instrumentation.
  static MetricsRegistry& Global();

  Counter* GetOrCreateCounter(const std::string& name)
      TRACER_EXCLUDES(mutex_);
  Gauge* GetOrCreateGauge(const std::string& name) TRACER_EXCLUDES(mutex_);
  /// `bounds` must be strictly increasing; ignored if the histogram exists.
  Histogram* GetOrCreateHistogram(const std::string& name,
                                  std::vector<double> bounds)
      TRACER_EXCLUDES(mutex_);

  /// Prometheus text exposition format (one `# TYPE` line per metric).
  std::string ExportPrometheus() const TRACER_EXCLUDES(mutex_);
  /// One JSON object per line: {"metric":...,"type":...,"value":...} for
  /// counters/gauges; histograms add "sum","count","buckets".
  std::string ExportJsonl() const TRACER_EXCLUDES(mutex_);

  /// Zeroes every registered metric in place. Handles stay valid (hot
  /// paths cache them in function-local statics), names stay registered.
  void ResetForTest() TRACER_EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable common::Mutex mutex_;
  std::map<std::string, Entry> entries_ TRACER_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS_METRICS_H_
