#ifndef TRACER_OBS_FLIGHT_RECORDER_H_
#define TRACER_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/obs.h"

namespace tracer {
namespace obs {

#if TRACER_OBS == 0

inline void TriggerFlightDump(const char*) {}

#else

/// Post-incident evidence capture: when something goes wrong (a circuit
/// breaker opens, a fault point trips), snapshot the recent span ring and
/// every registered metric to a JSONL file so the failure ships with its
/// own diagnosis material — essential for chaos CI, where the process that
/// failed is gone by the time a human looks.
///
/// Disabled unless the TRACER_FLIGHT_DIR environment variable names a
/// writable directory. Bounded by design: at most TRACER_FLIGHT_MAX dumps
/// per process (default 8) and at most one dump per 500 ms, so a flapping
/// breaker cannot fill a disk.
///
/// Dump format (one JSON object per line):
///   {"record":"flight_header","reason":...,"unix_time":...,"seq":...,
///    "spans_recorded":...,"spans_dropped":...}
///   {"record":"span","name":...,...}        — one per ring entry
///   {"record":"metric","metric":...,...}    — one per registered metric
class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Writes a dump if the recorder is enabled and within its rate/count
  /// budget. Returns the path written, or "" when suppressed. Thread-safe;
  /// concurrent triggers serialize and the budget applies across them.
  std::string Dump(const char* reason) TRACER_EXCLUDES(mutex_);

  /// Dumps attempted (including suppressed) / actually written.
  uint64_t triggers() const TRACER_EXCLUDES(mutex_);
  uint64_t dumps_written() const TRACER_EXCLUDES(mutex_);

  /// Test hooks: override the directory (empty disables) and the bounds.
  /// ResetForTest restores the environment-derived configuration and clears
  /// all counters so tests are order-independent.
  void SetDirectoryForTest(const std::string& dir) TRACER_EXCLUDES(mutex_);
  void SetLimitsForTest(uint64_t max_dumps, uint64_t min_interval_ns)
      TRACER_EXCLUDES(mutex_);
  void ResetForTest() TRACER_EXCLUDES(mutex_);

 private:
  FlightRecorder();
  /// (Re)reads TRACER_FLIGHT_DIR / TRACER_FLIGHT_MAX and the defaults.
  void LoadEnvLocked() TRACER_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  std::string directory_ TRACER_GUARDED_BY(mutex_);
  uint64_t max_dumps_ TRACER_GUARDED_BY(mutex_) = 8;
  uint64_t min_interval_ns_ TRACER_GUARDED_BY(mutex_) = 500'000'000;
  uint64_t last_dump_ns_ TRACER_GUARDED_BY(mutex_) = 0;
  uint64_t triggers_ TRACER_GUARDED_BY(mutex_) = 0;
  uint64_t dumps_written_ TRACER_GUARDED_BY(mutex_) = 0;
};

/// Fire-and-forget trigger used at incident sites (fault injection, breaker
/// open). Never throws, never blocks on anything but the dump file write;
/// does nothing when observability is runtime-disabled or no directory is
/// configured.
void TriggerFlightDump(const char* reason);

#endif  // TRACER_OBS == 0

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS_FLIGHT_RECORDER_H_
