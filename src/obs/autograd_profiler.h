#ifndef TRACER_OBS_AUTOGRAD_PROFILER_H_
#define TRACER_OBS_AUTOGRAD_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/obs.h"
#include "tensor/arena.h"

namespace tracer {
namespace obs {

/// Accumulated wall-time and call counts for one autograd op kind, keyed by
/// the op name recorded on the tape node (autograd::Node::op).
struct OpProfile {
  std::string op;
  int64_t forward_calls = 0;
  uint64_t forward_ns = 0;
  int64_t backward_calls = 0;
  uint64_t backward_ns = 0;
  /// Flops the op self-reported (compute ops only; 0 when unknown).
  int64_t forward_flops = 0;
  int64_t backward_flops = 0;
  /// Heap allocations observed inside the op's spans (tensor buffers that
  /// missed the arena). Zero in steady state once the arena is warmed up.
  int64_t forward_heap_allocs = 0;
  int64_t backward_heap_allocs = 0;
  uint64_t total_ns() const { return forward_ns + backward_ns; }
  /// Achieved forward GFLOP/s (0 when the op reports no flops).
  double forward_gflops() const {
    return forward_ns > 0 ? static_cast<double>(forward_flops) /
                                static_cast<double>(forward_ns)
                          : 0.0;
  }
  double backward_gflops() const {
    return backward_ns > 0 ? static_cast<double>(backward_flops) /
                                 static_cast<double>(backward_ns)
                           : 0.0;
  }
};

/// Per-op autograd profiler. Disabled by default; when enabled, every
/// differentiable op in autograd/ops.cc times its forward compute
/// (ScopedOpTimer) and Variable::Backward times each node's backward
/// closure, both attributed to the tape's op name. Aggregation is a mutex
/// plus a map — acceptable because the profiler is an opt-in diagnosis
/// tool, and each sample already paid for a clock read.
class AutogradProfiler {
 public:
  static AutogradProfiler& Global();

  /// Profiler-local switch, independent of obs::Enabled() so a training run
  /// can profile without turning on the whole telemetry stack. Always false
  /// when compiled with TRACER_OBS=0.
  bool enabled() const {
#if TRACER_OBS == 0
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }
  void SetEnabled(bool enabled);

  void RecordForward(const char* op, uint64_t ns, int64_t flops = 0,
                     int64_t heap_allocs = 0);
  void RecordBackward(const char* op, uint64_t ns, int64_t heap_allocs = 0);
  /// Flops attribution for backward closures: the closure knows its shapes
  /// but Variable::Backward owns the timing, so flops arrive separately.
  void AddBackwardFlops(const char* op, int64_t flops);

  /// Per-op profiles sorted by total (forward+backward) time, descending.
  std::vector<OpProfile> Snapshot() const;

  /// Sum of all recorded forward+backward nanoseconds.
  uint64_t TotalNs() const;

  /// Fraction of recorded time spent in GEMM-backed ops ("matmul" and
  /// "batch_matmul"), forward and backward combined. 0 when nothing has
  /// been recorded. The fig14 scalability bench reports this to show the
  /// batched path is GEMM-bound.
  double GemmShare() const;

  /// Human-readable sorted table, one op per line.
  std::string ReportTable() const;

  void Reset();

 private:
  struct Cell {
    int64_t forward_calls = 0;
    uint64_t forward_ns = 0;
    int64_t backward_calls = 0;
    uint64_t backward_ns = 0;
    int64_t forward_flops = 0;
    int64_t backward_flops = 0;
    int64_t forward_heap_allocs = 0;
    int64_t backward_heap_allocs = 0;
  };

  std::atomic<bool> enabled_{false};
  mutable common::Mutex mutex_;
  std::map<std::string, Cell> cells_ TRACER_GUARDED_BY(mutex_);
};

/// Times one forward op when the profiler is enabled; a relaxed atomic load
/// and nothing else when it is not. `op` must be a string literal. Compute
/// ops call SetFlops with their arithmetic cost so the profile reports
/// achieved GFLOP/s next to the wall time.
class ScopedOpTimer {
 public:
  explicit ScopedOpTimer(const char* op)
      : op_(op), active_(AutogradProfiler::Global().enabled()) {
    if (active_) {
      start_ns_ = MonotonicNowNs();
      start_heap_allocs_ = ThreadAllocCounters().heap_allocs;
    }
  }
  ~ScopedOpTimer() {
    if (active_) {
      AutogradProfiler::Global().RecordForward(
          op_, MonotonicNowNs() - start_ns_, flops_,
          ThreadAllocCounters().heap_allocs - start_heap_allocs_);
    }
  }

  /// Flops performed inside this span (e.g. 2·m·n·k for a matmul).
  void SetFlops(int64_t flops) { flops_ = flops; }

  /// Whether the profiler is recording this span — lets callers skip
  /// computing flop counts when nobody is listening.
  bool active() const { return active_; }

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  const char* op_;
  bool active_;
  uint64_t start_ns_ = 0;
  int64_t start_heap_allocs_ = 0;
  int64_t flops_ = 0;
};

}  // namespace obs
}  // namespace tracer

#endif  // TRACER_OBS_AUTOGRAD_PROFILER_H_
