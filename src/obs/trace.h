#ifndef TRACER_OBS_TRACE_H_
#define TRACER_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/obs.h"
#include "obs/trace_context.h"

namespace tracer {
namespace obs {

/// One completed span. `name` and `parent` point at string literals (the
/// TRACER_SPAN macro and RecordSpan contract guarantee it), so records are
/// POD and never allocate.
struct SpanRecord {
  const char* name = "";
  const char* parent = "";  // "" for a root span
  int depth = 0;            // 0 for a root span
  int thread_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Request-scoped identity (see obs/trace_context.h). trace_id is 0 for a
  /// span recorded outside any trace; span ids are process-unique, so spans
  /// of one trace stitch into one tree across threads via parent_span_id.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// Fixed-capacity ring buffer of completed spans. Oldest records are
/// overwritten once the ring is full; `dropped()` reports how many. Dump on
/// demand (e.g. at the end of a run or from a debugger) — recording is a
/// short mutex-protected append, cheap relative to any span worth tracing.
class TraceSink {
 public:
  static TraceSink& Global();

  void Record(const SpanRecord& record);

  /// Records in completion order, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// JSON array of {"name","parent","depth","thread","start_ns","dur_ns",
  /// "trace_id","span_id","parent_span_id"}.
  std::string DumpJson() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}) — load in
  /// ui.perfetto.dev or chrome://tracing. Each span becomes one complete
  /// ("ph":"X") event with microsecond ts/dur, tid = the repo's small
  /// thread id, and the trace/span/parent ids under "args" so one request's
  /// spans can be followed across threads.
  std::string DumpChromeTrace() const;

  /// Spans recorded since the last Clear (including overwritten ones).
  uint64_t recorded() const;
  /// Spans lost to ring overwrite since the last Clear.
  uint64_t dropped() const;

  void Clear();
  /// Resizes the ring (drops existing content). Default capacity 4096.
  void SetCapacity(size_t capacity);

 private:
  mutable common::Mutex mutex_;
  std::vector<SpanRecord> ring_ TRACER_GUARDED_BY(mutex_);
  size_t capacity_ TRACER_GUARDED_BY(mutex_) = 4096;
  size_t next_ TRACER_GUARDED_BY(mutex_) = 0;
  uint64_t recorded_ TRACER_GUARDED_BY(mutex_) = 0;
};

/// RAII trace span: times the enclosing scope on the monotonic clock and
/// records it into TraceSink::Global() on destruction. Nesting is tracked
/// per thread — a span opened while another is live on the same thread
/// records that span as its parent — and the thread's ambient TraceContext
/// is adopted and advanced, so spans opened under a ScopedTraceContext join
/// that request's trace with explicit id parenting. Inert when
/// obs::Enabled() is false at construction.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  const char* name_ = "";
  const char* parent_ = "";
  int depth_ = 0;
  uint64_t start_ns_ = 0;
  TraceContext saved_ambient_;
  uint64_t span_id_ = 0;
};

#if TRACER_OBS == 0
inline void RecordSpan(const char*, const char*, uint64_t, uint64_t, uint64_t,
                       uint64_t, uint64_t, int = 0) {}
#else
/// Records an already-timed span with explicit identity — the cross-thread
/// form of TRACER_SPAN for stages whose begin and end happen on different
/// threads (e.g. a request's queue wait). `name`/`parent_name` must be
/// string literals; mint `span_id` with NextSpanId() (or reuse an id handed
/// out earlier for the enclosing stage).
void RecordSpan(const char* name, const char* parent_name, uint64_t trace_id,
                uint64_t span_id, uint64_t parent_span_id, uint64_t start_ns,
                uint64_t end_ns, int depth = 0);
#endif

}  // namespace obs
}  // namespace tracer

#if TRACER_OBS == 0
#define TRACER_SPAN(name) ((void)0)
#else
#define TRACER_SPAN_CONCAT_INNER(a, b) a##b
#define TRACER_SPAN_CONCAT(a, b) TRACER_SPAN_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope:
///   TRACER_SPAN("train.epoch");
/// `name` must be a string literal (records keep the pointer).
#define TRACER_SPAN(name) \
  ::tracer::obs::Span TRACER_SPAN_CONCAT(tracer_span_, __COUNTER__)(name)
#endif

#endif  // TRACER_OBS_TRACE_H_
