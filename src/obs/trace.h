#ifndef TRACER_OBS_TRACE_H_
#define TRACER_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/obs.h"

namespace tracer {
namespace obs {

/// One completed span. `name` and `parent` point at string literals (the
/// TRACER_SPAN macro guarantees it), so records are POD and never allocate.
struct SpanRecord {
  const char* name = "";
  const char* parent = "";  // "" for a root span
  int depth = 0;            // 0 for a root span
  int thread_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};

/// Fixed-capacity ring buffer of completed spans. Oldest records are
/// overwritten once the ring is full; `dropped()` reports how many. Dump on
/// demand (e.g. at the end of a run or from a debugger) — recording is a
/// short mutex-protected append, cheap relative to any span worth tracing.
class TraceSink {
 public:
  static TraceSink& Global();

  void Record(const SpanRecord& record);

  /// Records in completion order, oldest first.
  std::vector<SpanRecord> Snapshot() const;

  /// JSON array of {"name","parent","depth","thread","start_ns","dur_ns"}.
  std::string DumpJson() const;

  /// Spans recorded since the last Clear (including overwritten ones).
  uint64_t recorded() const;
  /// Spans lost to ring overwrite since the last Clear.
  uint64_t dropped() const;

  void Clear();
  /// Resizes the ring (drops existing content). Default capacity 4096.
  void SetCapacity(size_t capacity);

 private:
  mutable common::Mutex mutex_;
  std::vector<SpanRecord> ring_ TRACER_GUARDED_BY(mutex_);
  size_t capacity_ TRACER_GUARDED_BY(mutex_) = 4096;
  size_t next_ TRACER_GUARDED_BY(mutex_) = 0;
  uint64_t recorded_ TRACER_GUARDED_BY(mutex_) = 0;
};

/// RAII trace span: times the enclosing scope on the monotonic clock and
/// records it into TraceSink::Global() on destruction. Nesting is tracked
/// per thread — a span opened while another is live on the same thread
/// records that span as its parent. Inert when obs::Enabled() is false at
/// construction.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  const char* name_ = "";
  const char* parent_ = "";
  int depth_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace tracer

#if TRACER_OBS == 0
#define TRACER_SPAN(name) ((void)0)
#else
#define TRACER_SPAN_CONCAT_INNER(a, b) a##b
#define TRACER_SPAN_CONCAT(a, b) TRACER_SPAN_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope:
///   TRACER_SPAN("train.epoch");
/// `name` must be a string literal (records keep the pointer).
#define TRACER_SPAN(name) \
  ::tracer::obs::Span TRACER_SPAN_CONCAT(tracer_span_, __COUNTER__)(name)
#endif

#endif  // TRACER_OBS_TRACE_H_
