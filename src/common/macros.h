#ifndef TRACER_COMMON_MACROS_H_
#define TRACER_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tracer {
namespace internal {

/// Aborts the process with a formatted message. Used by the CHECK family for
/// unrecoverable programming errors (shape mismatches, index bounds, broken
/// invariants). Recoverable conditions use Status instead.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "[TRACER CHECK FAILED] %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

/// Stream sink that builds the optional message for a failing check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tracer

/// Fatal assertion active in all build types. Usage:
///   TRACER_CHECK(a.cols() == b.rows()) << "matmul shape mismatch";
#define TRACER_CHECK(condition)                                     \
  if (condition) {                                                  \
  } else                                                            \
    ::tracer::internal::CheckMessageBuilder(__FILE__, __LINE__,     \
                                            #condition)

#define TRACER_CHECK_EQ(a, b) TRACER_CHECK((a) == (b))
#define TRACER_CHECK_NE(a, b) TRACER_CHECK((a) != (b))
#define TRACER_CHECK_LT(a, b) TRACER_CHECK((a) < (b))
#define TRACER_CHECK_LE(a, b) TRACER_CHECK((a) <= (b))
#define TRACER_CHECK_GT(a, b) TRACER_CHECK((a) > (b))
#define TRACER_CHECK_GE(a, b) TRACER_CHECK((a) >= (b))

#ifdef NDEBUG
#define TRACER_DCHECK(condition) TRACER_CHECK(true || (condition))
#else
#define TRACER_DCHECK(condition) TRACER_CHECK(condition)
#endif

#endif  // TRACER_COMMON_MACROS_H_
