#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace tracer {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("TRACER_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseEnvLevel();
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return MutableLevel(); }

void SetGlobalLogLevel(LogLevel level) { MutableLevel() = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel()), level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " "
            << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace tracer
