#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "common/mutex.h"
#include "obs/obs.h"
#include "obs/trace_context.h"

namespace tracer {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("TRACER_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

/// Atomic because SetGlobalLogLevel (tests, CLI flags) races the level
/// check in every TRACER_LOG on worker threads — surfaced by the PR-6
/// thread-safety annotation sweep; a plain static here was a data race.
std::atomic<LogLevel>& MutableLevel() {
  static std::atomic<LogLevel> level{ParseEnvLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// UTC wall-clock timestamp, ISO-8601 with millisecond precision
/// (e.g. 2026-08-06T09:15:02.417Z).
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
}

/// Serializes sink writes: without it, concurrent TRACER_LOG calls from
/// ThreadPool workers interleave mid-line on stderr.
common::Mutex& SinkMutex() {
  static common::Mutex* mutex = new common::Mutex();
  return *mutex;
}

}  // namespace

LogLevel GlobalLogLevel() {
  return MutableLevel().load(std::memory_order_relaxed);
}

void SetGlobalLogLevel(LogLevel level) {
  MutableLevel().store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel()), level_(level) {
  if (enabled_) {
    // Sized generously past the 25 bytes a real timestamp needs: newer
    // GCCs' -Wformat-truncation reasons about the full int range of each
    // %d field and flags a 32-byte buffer.
    char timestamp[64];
    FormatTimestamp(timestamp, sizeof(timestamp));
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << timestamp << " tid:"
            << obs::ThreadId();
    // A log line emitted under an active trace names the trace, so "why was
    // this patient's score late" greps straight from the log to the span
    // tree. Hex to match how trace dump tooling prints ids.
    const uint64_t trace_id = obs::CurrentTraceContext().trace_id;
    if (trace_id != 0) {
      char trace_buf[32];
      std::snprintf(trace_buf, sizeof(trace_buf), " trace:%llx",
                    static_cast<unsigned long long>(trace_id));
      stream_ << trace_buf;
    }
    stream_ << " " << (base != nullptr ? base + 1 : file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  const std::string line = stream_.str();
  common::MutexLock lock(&SinkMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace tracer
