#include "common/atomic_file.h"

#include <unistd.h>

#include <cstdio>

namespace tracer {
namespace common {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()))) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abandon();
}

Status AtomicFileWriter::Open() {
  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for write: " + tmp_);
  }
  return Status::OK();
}

Status AtomicFileWriter::Flush() {
  if (file_ == nullptr) {
    return Status::Internal("Flush without open temp file: " + tmp_);
  }
  const bool flushed =
      std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!flushed) {
    std::remove(tmp_.c_str());
    return Status::IOError("flush failed: " + tmp_);
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (file_ != nullptr) {
    return Status::Internal("Commit before Flush: " + tmp_);
  }
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    return Status::IOError("rename failed: " + tmp_ + " -> " + path_);
  }
  committed_ = true;
  return Status::OK();
}

void AtomicFileWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_.c_str());
}

Status WriteFileAtomic(const std::string& path,
                       const std::function<Status(std::FILE*)>& body) {
  AtomicFileWriter writer(path);
  TRACER_RETURN_IF_ERROR(writer.Open());
  TRACER_RETURN_IF_ERROR(body(writer.stream()));
  TRACER_RETURN_IF_ERROR(writer.Flush());
  return writer.Commit();
}

}  // namespace common
}  // namespace tracer
