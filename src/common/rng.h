#ifndef TRACER_COMMON_RNG_H_
#define TRACER_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace tracer {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Used everywhere instead of std::mt19937 so that synthetic
/// datasets, weight initialisation and shuffles are reproducible across
/// platforms and standard-library versions.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher–Yates shuffle of an index vector.
  void Shuffle(std::vector<int>& indices);

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

  /// Full generator state as opaque words (4 xoshiro words + the Box–Muller
  /// spare flag and value), for run-state checkpoints. RestoreState resumes
  /// the exact draw sequence bit-for-bit.
  std::vector<uint64_t> SaveState() const;

  /// Restores a state captured by SaveState. CHECK-fails on a word vector
  /// of the wrong length.
  void RestoreState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tracer

#endif  // TRACER_COMMON_RNG_H_
