#ifndef TRACER_COMMON_STRING_UTIL_H_
#define TRACER_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace tracer {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& input, char delim);

/// Joins `parts` with `delim` between elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& input);

/// Formats a double with fixed precision (default 4 decimals).
std::string FormatFloat(double value, int precision = 4);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace tracer

#endif  // TRACER_COMMON_STRING_UTIL_H_
