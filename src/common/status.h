#ifndef TRACER_COMMON_STATUS_H_
#define TRACER_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace tracer {

/// Error code vocabulary for recoverable failures. Follows the RocksDB /
/// Arrow convention: library code never throws; operations that can fail in
/// normal use return a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
};

/// Lightweight success/error value. An OK status carries no message.
/// [[nodiscard]]: a dropped Status is a swallowed failure — every call
/// site must consume it (assign, return, TRACER_RETURN_IF_ERROR, check) or
/// discard it *explicitly* with TRACER_IGNORE_STATUS, which analyzer rule
/// A2 (tools/analyze.py) and lint rule R4 can count.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The operation was load-shed (e.g. a bounded serving queue is full);
  /// retrying later may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The caller's deadline passed before the operation completed.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Stored data is unrecoverably damaged (truncated or corrupt container);
  /// retrying the same read cannot succeed — the artifact must be rebuilt
  /// or restored from a replica.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad dim".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-error, the no-exceptions analogue of std::expected.
/// [[nodiscard]] for the same reason as Status: an unexamined Result hides
/// the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `Result<int> r = 3;`
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status.
  Result(Status status) : status_(std::move(status)) {
    TRACER_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the value; CHECK-fails if this holds an error.
  const T& value() const& {
    TRACER_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    TRACER_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    TRACER_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace tracer

/// Early-return helper: propagate a non-OK status to the caller.
#define TRACER_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::tracer::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Explicitly discards a Status where failure is genuinely acceptable
/// (best-effort cleanup, an error path already being reported). Greppable
/// and counted by analyzer rule A2 — prefer handling the status; every use
/// of this macro is an audited exception, so say why in a comment at the
/// call site.
#define TRACER_IGNORE_STATUS(expr)                        \
  do {                                                    \
    const ::tracer::Status _ignored_status = (expr);      \
    (void)_ignored_status;                                \
  } while (0)

#endif  // TRACER_COMMON_STATUS_H_
