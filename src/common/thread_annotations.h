#ifndef TRACER_COMMON_THREAD_ANNOTATIONS_H_
#define TRACER_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute shim.
///
/// The TRACER_* macros below expand to Clang's capability-analysis
/// attributes when the compiler supports them (any clang; the CI
/// `clang-thread-safety` job builds with `-Wthread-safety
/// -Werror=thread-safety`, making them load-bearing) and compile away to
/// nothing on GCC and other compilers. They annotate which mutex guards
/// which state, so lock-discipline violations — reading a guarded member
/// without the lock, calling a *Locked helper unlocked, releasing a mutex
/// twice — become compile errors instead of lucky-schedule TSan findings.
///
/// Conventions (see DESIGN.md "Static analysis"):
///  - every mutex-protected member is TRACER_GUARDED_BY(mutex_);
///  - every private method that assumes the lock is held is named
///    *Locked and annotated TRACER_REQUIRES(mutex_);
///  - functions that acquire a foreign lock internally (metrics lookup,
///    logging sink) are annotated TRACER_EXCLUDES(that_lock) where a
///    lock-order inversion is possible;
///  - raw std::mutex / std::lock_guard / std::condition_variable are
///    banned outside common/mutex.h (analyzer rule A1) — use
///    common::Mutex / common::MutexLock / common::CondVar.

#if defined(__clang__)
#define TRACER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TRACER_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define TRACER_CAPABILITY(x) TRACER_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define TRACER_SCOPED_CAPABILITY TRACER_THREAD_ANNOTATION(scoped_lockable)

/// A data member that may only be accessed while `x` is held.
#define TRACER_GUARDED_BY(x) TRACER_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is protected by `x`.
#define TRACER_PT_GUARDED_BY(x) TRACER_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while the listed capabilities are held
/// (and does not release them).
#define TRACER_REQUIRES(...) \
  TRACER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define TRACER_ACQUIRE(...) \
  TRACER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define TRACER_RELEASE(...) \
  TRACER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define TRACER_TRY_ACQUIRE(result, ...) \
  TRACER_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define TRACER_EXCLUDES(...) \
  TRACER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Informs the analysis that the capability is held (runtime-checked
/// assertion, e.g. Mutex::AssertHeld).
#define TRACER_ASSERT_CAPABILITY(x) \
  TRACER_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the named capability.
#define TRACER_RETURN_CAPABILITY(x) TRACER_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function is exempt from analysis. Use only for code
/// whose locking is correct but inexpressible (document why at the site).
#define TRACER_NO_THREAD_SAFETY_ANALYSIS \
  TRACER_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // TRACER_COMMON_THREAD_ANNOTATIONS_H_
