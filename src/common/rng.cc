#include "common/rng.h"

#include <cstring>

#include "common/macros.h"

namespace tracer {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  TRACER_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  uint64_t r;
  do {
    r = NextUint64();
  } while (r < threshold);
  return r % n;
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_ = mag * std::sin(two_pi * u2);
  has_spare_ = true;
  return mag * std::cos(two_pi * u2);
}

void Rng::Shuffle(std::vector<int>& indices) {
  for (size_t i = indices.size(); i > 1; --i) {
    const size_t j = UniformInt(i);
    std::swap(indices[i - 1], indices[j]);
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::vector<uint64_t> Rng::SaveState() const {
  std::vector<uint64_t> words(state_, state_ + 4);
  words.push_back(has_spare_ ? 1 : 0);
  uint64_t spare_bits = 0;
  static_assert(sizeof(spare_bits) == sizeof(spare_));
  std::memcpy(&spare_bits, &spare_, sizeof(spare_bits));
  words.push_back(spare_bits);
  return words;
}

void Rng::RestoreState(const std::vector<uint64_t>& words) {
  TRACER_CHECK_EQ(words.size(), 6u) << "malformed Rng state";
  for (int i = 0; i < 4; ++i) state_[i] = words[i];
  has_spare_ = words[4] != 0;
  std::memcpy(&spare_, &words[5], sizeof(spare_));
}

}  // namespace tracer
