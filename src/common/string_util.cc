#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace tracer {

std::vector<std::string> Split(const std::string& input, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : input) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string FormatFloat(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace tracer
