#ifndef TRACER_COMMON_LOGGING_H_
#define TRACER_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace tracer {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum severity; messages below it are dropped.
/// Controlled by the TRACER_LOG_LEVEL env var (debug|info|warning|error),
/// default info.
LogLevel GlobalLogLevel();

/// Overrides the global log level (e.g. from tests).
void SetGlobalLogLevel(LogLevel level);

namespace internal {

/// Collects one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace tracer

#define TRACER_LOG(level)                                              \
  ::tracer::internal::LogMessage(::tracer::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#endif  // TRACER_COMMON_LOGGING_H_
