#ifndef TRACER_COMMON_RETRY_H_
#define TRACER_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace tracer {

/// Bounded exponential-backoff policy for retrying transiently failing
/// Status-returning operations (checkpoint writes, pipeline stages,
/// dist transport sends). Two backoff shapes:
///
///   jitter = false (default): deterministic initial * multiplier^retry,
///     capped — tests can assert the exact sleep schedule.
///   jitter = true: decorrelated jitter ("exponential backoff and jitter",
///     AWS architecture blog): sleep_n = min(cap, Uniform(initial,
///     prev_sleep * 3)). Spreads concurrent retriers apart so a fleet of
///     workers hammering one coordinator does not retry in lockstep. The
///     jitter stream is seeded from the policy (`jitter_seed`), never from
///     global entropy, so a given policy replays the same schedule —
///     chaos runs under TRACER_FAULTS_SEED stay reproducible.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry.
  uint64_t initial_backoff_us = 1000;
  /// Cap on any single sleep.
  uint64_t max_backoff_us = 100000;
  /// Growth factor between consecutive sleeps (jitter = false only).
  double multiplier = 2.0;
  /// Decorrelated jitter instead of the deterministic ladder.
  bool jitter = false;
  /// Seed for the jitter stream; fixed default keeps runs reproducible.
  uint64_t jitter_seed = 0x7265747279u;  // "retry"
  /// Give-up budget across all attempts: once the sleeps scheduled so far
  /// reach this, CallWithRetry stops retrying even with attempts left.
  /// 0 = unbounded (attempt count is the only limit).
  uint64_t max_elapsed_us = 0;
  /// Codes worth retrying: transient by this codebase's conventions.
  /// Everything else (kInvalidArgument, kDataLoss, ...) fails fast — a
  /// corrupt checkpoint does not heal by re-reading it.
  std::vector<StatusCode> retryable = {StatusCode::kUnavailable,
                                       StatusCode::kIOError,
                                       StatusCode::kDeadlineExceeded};

  bool IsRetryable(StatusCode code) const {
    for (StatusCode candidate : retryable) {
      if (candidate == code) return true;
    }
    return false;
  }

  /// Sleep before retry number `retry` (0-based): bounded
  /// initial * multiplier^retry. Ignores jitter — see BackoffSchedule for
  /// the jittered sequence (it is stateful in prev_sleep).
  uint64_t BackoffUs(int retry) const {
    double backoff = static_cast<double>(initial_backoff_us);
    for (int i = 0; i < retry; ++i) backoff *= multiplier;
    backoff = std::min(backoff, static_cast<double>(max_backoff_us));
    return static_cast<uint64_t>(backoff);
  }
};

/// Stateful backoff sequence for one retry loop. Deterministic for a given
/// policy: the decorrelated-jitter draw chain depends only on jitter_seed
/// and the number of Next() calls.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy)
      : policy_(policy),
        rng_(policy.jitter_seed),
        prev_us_(policy.initial_backoff_us) {}

  /// Sleep before retry number `retry` (0-based).
  uint64_t Next(int retry) {
    if (!policy_.jitter) return policy_.BackoffUs(retry);
    // Decorrelated jitter: Uniform(initial, prev * 3), capped. prev is the
    // *uncapped-then-capped* previous sleep, per the canonical recipe.
    const double lo = static_cast<double>(policy_.initial_backoff_us);
    const double hi =
        std::max(lo + 1.0, static_cast<double>(prev_us_) * 3.0);
    double draw = rng_.Uniform(lo, hi);
    draw = std::min(draw, static_cast<double>(policy_.max_backoff_us));
    prev_us_ = static_cast<uint64_t>(draw);
    return prev_us_;
  }

  /// Total sleep scheduled so far plus `next_us`; used against
  /// max_elapsed_us.
  bool WouldExceedBudget(uint64_t next_us) const {
    if (policy_.max_elapsed_us == 0) return false;
    return elapsed_us_ + next_us > policy_.max_elapsed_us;
  }

  void Account(uint64_t slept_us) { elapsed_us_ += slept_us; }

  uint64_t elapsed_us() const { return elapsed_us_; }

 private:
  const RetryPolicy& policy_;
  Rng rng_;
  uint64_t prev_us_;
  uint64_t elapsed_us_ = 0;
};

/// Sleep hook for CallWithRetry; tests inject a recorder instead of
/// actually sleeping.
using RetrySleepFn = std::function<void(uint64_t micros)>;

/// Runs `op` until it returns OK, a non-retryable code, or the attempt /
/// elapsed-sleep budget is exhausted; returns the last Status either way.
/// Sleeps the policy's backoff between attempts through `sleep` (real
/// std::this_thread::sleep_for when omitted).
inline Status CallWithRetry(const RetryPolicy& policy,
                            const std::function<Status()>& op,
                            const RetrySleepFn& sleep = {}) {
  const int attempts = std::max(1, policy.max_attempts);
  BackoffSchedule schedule(policy);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    last = op();
    if (last.ok() || !policy.IsRetryable(last.code())) return last;
    if (attempt + 1 >= attempts) break;
    const uint64_t backoff_us = schedule.Next(attempt);
    if (schedule.WouldExceedBudget(backoff_us)) break;
    schedule.Account(backoff_us);
    if (sleep) {
      sleep(backoff_us);
    } else if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
  return last;
}

}  // namespace tracer

#endif  // TRACER_COMMON_RETRY_H_
