#ifndef TRACER_COMMON_RETRY_H_
#define TRACER_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tracer {

/// Bounded exponential-backoff policy for retrying transiently failing
/// Status-returning operations (checkpoint writes, pipeline stages). The
/// backoff sequence is deterministic — no jitter — so tests can assert the
/// exact sleep schedule under a fake clock.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry.
  uint64_t initial_backoff_us = 1000;
  /// Cap on any single sleep.
  uint64_t max_backoff_us = 100000;
  /// Growth factor between consecutive sleeps.
  double multiplier = 2.0;
  /// Codes worth retrying: transient by this codebase's conventions.
  /// Everything else (kInvalidArgument, kDataLoss, ...) fails fast — a
  /// corrupt checkpoint does not heal by re-reading it.
  std::vector<StatusCode> retryable = {StatusCode::kUnavailable,
                                       StatusCode::kIOError,
                                       StatusCode::kDeadlineExceeded};

  bool IsRetryable(StatusCode code) const {
    for (StatusCode candidate : retryable) {
      if (candidate == code) return true;
    }
    return false;
  }

  /// Sleep before retry number `retry` (0-based): bounded
  /// initial * multiplier^retry.
  uint64_t BackoffUs(int retry) const {
    double backoff = static_cast<double>(initial_backoff_us);
    for (int i = 0; i < retry; ++i) backoff *= multiplier;
    backoff = std::min(backoff, static_cast<double>(max_backoff_us));
    return static_cast<uint64_t>(backoff);
  }
};

/// Sleep hook for CallWithRetry; tests inject a recorder instead of
/// actually sleeping.
using RetrySleepFn = std::function<void(uint64_t micros)>;

/// Runs `op` until it returns OK, a non-retryable code, or the attempt
/// budget is exhausted; returns the last Status either way. Sleeps the
/// policy's backoff between attempts through `sleep` (real
/// std::this_thread::sleep_for when omitted).
inline Status CallWithRetry(const RetryPolicy& policy,
                            const std::function<Status()>& op,
                            const RetrySleepFn& sleep = {}) {
  const int attempts = std::max(1, policy.max_attempts);
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    last = op();
    if (last.ok() || !policy.IsRetryable(last.code())) return last;
    if (attempt + 1 >= attempts) break;
    const uint64_t backoff_us = policy.BackoffUs(attempt);
    if (sleep) {
      sleep(backoff_us);
    } else if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
  return last;
}

}  // namespace tracer

#endif  // TRACER_COMMON_RETRY_H_
