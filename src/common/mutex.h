#ifndef TRACER_COMMON_MUTEX_H_
#define TRACER_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace tracer {
namespace common {

// Annotated synchronization primitives. These are thin wrappers over the
// std:: primitives that carry Clang Thread Safety Analysis capabilities
// (common/thread_annotations.h), so the compiler can prove lock discipline
// on every build of the CI `clang-thread-safety` job. They are the ONLY
// place in src/ allowed to name std::mutex / std::lock_guard /
// std::condition_variable — analyzer rule A1 (tools/analyze.py) rejects
// raw uses anywhere else.
//
// Usage:
//   common::Mutex mutex_;
//   int count_ TRACER_GUARDED_BY(mutex_);
//   { common::MutexLock lock(&mutex_); ++count_; }
//
// Condition waits spell the predicate as an explicit loop so the analysis
// sees every guarded read under the lock (lambda predicates are analyzed
// as lock-free functions and would produce false positives):
//   while (!stop_ && queue_.empty()) cv_.Wait(mutex_);

/// Annotated exclusive mutex. Same cost as std::mutex; Lock/Unlock are
/// public so structured hand-over-hand sections (scheduler loops that
/// release around user callbacks) can be expressed and verified.
class TRACER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TRACER_ACQUIRE() { mutex_.lock(); }
  void Unlock() TRACER_RELEASE() { mutex_.unlock(); }
  bool TryLock() TRACER_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// Documents (to the analysis) that the current thread holds this mutex
  /// at a point the flow-sensitive analysis cannot see, e.g. inside a
  /// callback invoked under the lock. Prefer TRACER_REQUIRES on the
  /// callee; this is the runtime-free fallback.
  void AssertHeld() const TRACER_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII scoped lock, the annotated std::lock_guard. Acquires on
/// construction, releases on destruction; non-movable.
class TRACER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) TRACER_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }
  ~MutexLock() TRACER_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mutex_;
};

/// Condition variable bound to common::Mutex. Waits atomically release and
/// reacquire the caller's mutex, so every Wait* requires it held; notify
/// never needs it.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always wait in a
  /// predicate loop).
  void Wait(Mutex& mutex) TRACER_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// Blocks until notified or `deadline` passes; true = timed out.
  bool WaitUntil(Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      TRACER_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::timeout;
  }

  /// Blocks until notified or `timeout_ns` elapses; true = timed out.
  bool WaitFor(Mutex& mutex, int64_t timeout_ns) TRACER_REQUIRES(mutex) {
    return WaitUntil(mutex, std::chrono::steady_clock::now() +
                                std::chrono::nanoseconds(timeout_ns));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace common
}  // namespace tracer

#endif  // TRACER_COMMON_MUTEX_H_
