#ifndef TRACER_COMMON_ATOMIC_FILE_H_
#define TRACER_COMMON_ATOMIC_FILE_H_

#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"

namespace tracer {
namespace common {

/// Crash-safe file replacement: write the full contents to a temp file in
/// the destination's directory, flush it to stable storage, then atomically
/// rename it over the destination. A reader can never observe a torn or
/// partially written file at `path`, and a crash at any point leaves either
/// the old file or the new one — never a hybrid.
///
/// The steps are exposed individually (Open / Flush / Commit) rather than
/// as one call so callers with fault-injection points between the stages
/// (nn/serialization's ckpt.write / ckpt.fsync / ckpt.rename) can keep each
/// point at its exact protocol position. Callers without that need should
/// use WriteFileAtomic below.
class AtomicFileWriter {
 public:
  /// `path` is the final destination; the temp file is `path.tmp.<pid>` so
  /// concurrent writers from different processes never collide.
  explicit AtomicFileWriter(std::string path);

  /// Removes the temp file if the protocol did not reach Commit.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens the temp file for writing. Must be called first.
  [[nodiscard]] Status Open();

  /// The open temp-file stream; valid between a successful Open and
  /// Flush/Abandon. Callers write the body through it.
  std::FILE* stream() const { return file_; }

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_; }

  /// fflush + fsync + close of the temp file. After this the bytes are on
  /// stable storage under the temp name.
  [[nodiscard]] Status Flush();

  /// Atomically renames the temp file over the destination. Only valid
  /// after a successful Flush.
  [[nodiscard]] Status Commit();

  /// Closes and removes the temp file; the destination is untouched. Safe
  /// to call at any stage (the destructor calls it automatically).
  void Abandon();

 private:
  std::string path_;
  std::string tmp_;
  std::FILE* file_ = nullptr;
  bool committed_ = false;
};

/// One-shot convenience over AtomicFileWriter: `body` writes the file
/// contents to the provided stream; on OK the file is flushed, fsynced and
/// renamed into place, on error the temp file is removed and the
/// destination is untouched.
[[nodiscard]] Status WriteFileAtomic(
    const std::string& path, const std::function<Status(std::FILE*)>& body);

}  // namespace common
}  // namespace tracer

#endif  // TRACER_COMMON_ATOMIC_FILE_H_
