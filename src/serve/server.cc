#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include <cmath>

#include "autograd/variable.h"
#include "common/macros.h"
#include "fault/fault.h"
#include "interpret/adapters.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace serve {

namespace {

ServeOptions Sanitize(ServeOptions options) {
  options.max_batch_size = std::max(1, options.max_batch_size);
  options.queue_capacity = std::max(1, options.queue_capacity);
  options.num_workers = std::max(1, options.num_workers);
  options.max_queue_delay_us = std::max<int64_t>(0, options.max_queue_delay_us);
  return options;
}

std::chrono::steady_clock::time_point ToTimePoint(uint64_t ns) {
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

// --- obs probes (no-ops unless the runtime switch is on) -----------------

void RecordAdmitted() {
  if (!obs::Enabled()) return;
  static obs::Counter* requests =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_requests_total");
  requests->Increment();
}

void RecordShed() {
  if (!obs::Enabled()) return;
  static obs::Counter* shed =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_shed_total");
  shed->Increment();
}

void RecordExpired() {
  if (!obs::Enabled()) return;
  static obs::Counter* expired =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_expired_total");
  expired->Increment();
}

void RecordQueueDepth(size_t depth) {
  if (!obs::Enabled()) return;
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetOrCreateGauge(
          "tracer_serve_queue_depth");
  gauge->Set(static_cast<double>(depth));
}

void RecordBatch(int batch_size) {
  if (!obs::Enabled()) return;
  static obs::Counter* batches =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_batches_total");
  static obs::Histogram* sizes =
      obs::MetricsRegistry::Global().GetOrCreateHistogram(
          "tracer_serve_batch_size",
          {1, 2, 4, 8, 16, 32, 64, 128, 256});
  batches->Increment();
  sizes->Observe(static_cast<double>(batch_size));
}

void RecordBreakerOpen() {
  if (!obs::Enabled()) return;
  static obs::Counter* opens =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_breaker_open_total");
  opens->Increment();
  // A breaker opening is the serving layer's incident signal: capture the
  // span ring + metrics now, while the evidence is still in the buffers.
  obs::TriggerFlightDump("breaker_open");
}

void RecordBreakerProbe() {
  if (!obs::Enabled()) return;
  static obs::Counter* probes =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_breaker_probes_total");
  probes->Increment();
}

void RecordDegraded(int count) {
  if (!obs::Enabled()) return;
  static obs::Counter* degraded =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_degraded_total");
  degraded->Increment(count);
}

/// A replica that emits NaN/Inf is as broken as one that throws: the score
/// is unusable for alerting, so it counts as a scoring failure.
bool AllFinite(const Tensor& scores) {
  for (int64_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) return false;
  }
  return true;
}

// Bounds shared by the time-in-queue and end-to-end latency histograms:
// 10µs .. 3s, roughly ×3 per bucket, so p50/p99 are readable at both
// interactive and saturated operating points.
const std::vector<double>& LatencyBoundsNs() {
  static const std::vector<double> bounds = {
      1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9};
  return bounds;
}

void RecordServed(const ServeResponse& response, bool alert) {
  if (!obs::Enabled()) return;
  static obs::Histogram* queue_ns =
      obs::MetricsRegistry::Global().GetOrCreateHistogram(
          "tracer_serve_queue_ns", LatencyBoundsNs());
  static obs::Histogram* latency_ns =
      obs::MetricsRegistry::Global().GetOrCreateHistogram(
          "tracer_serve_latency_ns", LatencyBoundsNs());
  static obs::Counter* alerts =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_alerts_total");
  queue_ns->Observe(static_cast<double>(response.queue_ns));
  latency_ns->Observe(static_cast<double>(response.total_ns));
  if (alert) alerts->Increment();
  // Per-stage tail-latency breakdown in log-bucketed histograms, with the
  // request's trace id as exemplar so a p99 bucket names a concrete trace.
  static obs::LogHistogram* queue_wait =
      obs::MetricsRegistry::Global().GetOrCreateLogHistogram(
          "tracer_serve_queue_wait_ns");
  static obs::LogHistogram* batch_wait =
      obs::MetricsRegistry::Global().GetOrCreateLogHistogram(
          "tracer_serve_batch_wait_ns");
  static obs::LogHistogram* compute =
      obs::MetricsRegistry::Global().GetOrCreateLogHistogram(
          "tracer_serve_compute_ns");
  static obs::LogHistogram* total =
      obs::MetricsRegistry::Global().GetOrCreateLogHistogram(
          "tracer_serve_total_ns");
  queue_wait->Observe(static_cast<double>(response.queue_ns),
                      response.trace_id);
  batch_wait->Observe(static_cast<double>(response.batch_ns),
                      response.trace_id);
  compute->Observe(static_cast<double>(response.compute_ns),
                   response.trace_id);
  total->Observe(static_cast<double>(response.total_ns), response.trace_id);
}

void RecordExplained(uint64_t explain_ns, uint64_t trace_id) {
  if (!obs::Enabled()) return;
  static obs::Counter* requests =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_interpret_requests_total");
  static obs::LogHistogram* latency =
      obs::MetricsRegistry::Global().GetOrCreateLogHistogram(
          "tracer_interpret_latency_ns");
  requests->Increment();
  latency->Observe(static_cast<double>(explain_ns), trace_id);
}

void RecordExplainFailure() {
  if (!obs::Enabled()) return;
  static obs::Counter* failures =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_interpret_failures_total");
  failures->Increment();
}

}  // namespace

InferenceServer::InferenceServer(ModelRegistry* registry, ServeOptions options)
    : registry_(registry), options_(Sanitize(options)) {
  TRACER_CHECK(registry_ != nullptr);
  breakers_.reserve(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(options_.breaker));
  }
  pool_ = std::make_unique<parallel::ThreadPool>(options_.num_workers);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<ServeResponse> InferenceServer::Submit(ServeRequest request) {
  return SubmitInternal(std::move(request), /*explain=*/false, ExplainSpec{});
}

std::future<ServeResponse> InferenceServer::SubmitExplain(ServeRequest request,
                                                          ExplainSpec spec) {
  if (spec.baseline == interpret::BaselineKind::kPopulationMean) {
    std::promise<ServeResponse> promise;
    ServeResponse response;
    response.status = Status::InvalidArgument(
        "population-mean baseline needs a fitted reference cohort, which "
        "the serving process does not hold");
    promise.set_value(std::move(response));
    return promise.get_future();
  }
  spec.ig_steps = std::min(128, std::max(1, spec.ig_steps));
  return SubmitInternal(std::move(request), /*explain=*/true, spec);
}

ServeResponse InferenceServer::Explain(ServeRequest request,
                                       ExplainSpec spec) {
  return SubmitExplain(std::move(request), spec).get();
}

std::future<ServeResponse> InferenceServer::SubmitInternal(
    ServeRequest request, bool explain, ExplainSpec spec) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();

  // Shape validation up front so malformed input never reaches a batch.
  bool well_formed = !request.windows.empty();
  const size_t dim = well_formed ? request.windows.front().size() : 0;
  if (dim == 0) well_formed = false;
  for (const std::vector<float>& window : request.windows) {
    if (window.size() != dim) well_formed = false;
  }
  if (!well_formed) {
    ServeResponse response;
    response.status = Status::InvalidArgument(
        "request windows must be non-empty and rectangular");
    promise.set_value(std::move(response));
    return future;
  }

  // Admission is where a request's trace is rooted: join the trace the
  // caller shipped in the request (cross-thread) or the caller's ambient
  // trace (same thread), else mint a fresh one. The root "serve.request"
  // span id is pre-minted here so every stage span — recorded later on the
  // scheduler and worker threads — parents under it.
  obs::TraceContext trace;
  uint64_t parent_span_id = 0;
  if (obs::Enabled()) {
    const obs::TraceContext ambient = obs::CurrentTraceContext();
    if (request.trace.active()) {
      trace.trace_id = request.trace.trace_id;
      parent_span_id = request.trace.span_id;
    } else if (ambient.active()) {
      trace.trace_id = ambient.trace_id;
      parent_span_id = ambient.span_id;
    } else {
      trace.trace_id = obs::NewTraceId();
    }
    trace.span_id = obs::NextSpanId();
  }

  const uint64_t now = obs::MonotonicNowNs();
  Status reject;
  {
    common::MutexLock lock(&mutex_);
    if (stop_) {
      reject = Status::Unavailable("server shutting down");
    } else if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      reject = Status::Unavailable("admission queue full");
    } else {
      Pending pending;
      pending.request = std::move(request);
      pending.promise = std::move(promise);
      pending.enqueue_ns = now;
      pending.trace = trace;
      pending.parent_span_id = parent_span_id;
      pending.explain = explain;
      pending.spec = spec;
      queue_.push_back(std::move(pending));
      accepted_.fetch_add(1, std::memory_order_relaxed);
      UpdateQueueDepthLocked();
    }
  }
  if (reject.ok()) {
    RecordAdmitted();
    scheduler_cv_.NotifyOne();
  } else {
    // Backpressure: shed immediately instead of blocking the producer.
    shed_.fetch_add(1, std::memory_order_relaxed);
    RecordShed();
    ServeResponse response;
    response.status = std::move(reject);
    promise.set_value(std::move(response));
  }
  return future;
}

ServeResponse InferenceServer::Infer(ServeRequest request) {
  return Submit(std::move(request)).get();
}

void InferenceServer::CollectExpiredLocked(uint64_t now_ns,
                                           std::vector<Pending>* out) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->request.deadline_ns != 0 && it->request.deadline_ns <= now_ns) {
      out->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  if (!out->empty()) UpdateQueueDepthLocked();
}

void InferenceServer::SchedulerLoop() {
  const uint64_t delay_ns =
      static_cast<uint64_t>(options_.max_queue_delay_us) * 1000;
  // Hand-over-hand locking, spelled as explicit Lock/Unlock so the
  // thread-safety analysis can verify it: the lock is held at the top of
  // every loop iteration and released around promise completion, registry
  // snapshot capture and pool dispatch (all of which run foreign code —
  // future continuations, registry locks — that must never execute under
  // the admission lock).
  mutex_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) scheduler_cv_.Wait(mutex_);
    if (stop_) break;

    // Expired requests complete with kDeadlineExceeded instead of occupying
    // batch slots — including ones buried behind other window lengths.
    const uint64_t now = obs::MonotonicNowNs();
    std::vector<Pending> timed_out;
    CollectExpiredLocked(now, &timed_out);
    if (!timed_out.empty()) {
      mutex_.Unlock();
      for (Pending& pending : timed_out) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        RecordExpired();
        ServeResponse response;
        response.status =
            Status::DeadlineExceeded("deadline expired in queue");
        CompleteOne(&pending, std::move(response));
      }
      mutex_.Lock();
      continue;
    }
    if (queue_.empty()) continue;

    // Batch formation: the oldest request anchors the batch; only requests
    // with the same window count can ride along (TITV consumes rectangular
    // T×D batches), and explain requests only batch with explain requests
    // of the identical spec (a batch computes one attribution pass).
    const size_t num_windows = queue_.front().request.windows.size();
    const bool explain_batch = queue_.front().explain;
    const ExplainSpec anchor_spec = queue_.front().spec;
    auto compatible = [&](const Pending& pending) {
      if (pending.request.windows.size() != num_windows) return false;
      if (pending.explain != explain_batch) return false;
      if (!explain_batch) return true;
      return pending.spec.method == anchor_spec.method &&
             pending.spec.ig_steps == anchor_spec.ig_steps &&
             pending.spec.baseline == anchor_spec.baseline;
    };
    const uint64_t close_ns = queue_.front().enqueue_ns + delay_ns;
    int ready = 0;
    uint64_t earliest_deadline = close_ns;
    for (const Pending& pending : queue_) {
      if (compatible(pending)) ++ready;
      if (pending.request.deadline_ns != 0) {
        earliest_deadline =
            std::min(earliest_deadline, pending.request.deadline_ns);
      }
    }
    const bool full = ready >= options_.max_batch_size;
    const bool aged = obs::MonotonicNowNs() >= close_ns;
    const bool idle_close =
        options_.close_on_idle && in_flight_batches_ < options_.num_workers;
    if (!full && !aged && !idle_close) {
      // Wait for the batch to fill, the age window to lapse, a deadline to
      // fire, or a worker to drain; then re-evaluate from scratch.
      scheduler_cv_.WaitUntil(mutex_, ToTimePoint(earliest_deadline));
      if (stop_) break;
      continue;
    }

    auto work = std::make_shared<BatchWork>();
    work->requests.reserve(
        std::min<size_t>(ready, options_.max_batch_size));
    const uint64_t form_ns = obs::MonotonicNowNs();
    std::vector<Pending> late;
    for (auto it = queue_.begin();
         it != queue_.end() &&
         static_cast<int>(work->requests.size()) < options_.max_batch_size;) {
      if (!compatible(*it)) {
        ++it;
        continue;
      }
      if (it->request.deadline_ns != 0 && it->request.deadline_ns <= form_ns) {
        late.push_back(std::move(*it));
      } else {
        work->requests.push_back(std::move(*it));
      }
      it = queue_.erase(it);
    }
    UpdateQueueDepthLocked();
    const bool dispatch = !work->requests.empty();
    if (dispatch) {
      work->close_ns = form_ns;
      ++in_flight_batches_;
    }
    mutex_.Unlock();

    if (dispatch) {
      // Snapshot capture runs outside the critical section: live() and
      // fallback() take the registry's own mutex, and holding the admission
      // lock across that foreign acquisition stalled every producer during
      // a hot-swap (annotation-sweep finding, see DESIGN.md "Static
      // analysis"). The batch's requests are already claimed off the queue,
      // so per-batch snapshot consistency is unchanged.
      work->snapshot = registry_->live();
      work->fallback = registry_->fallback();
    }
    for (Pending& pending : late) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      RecordExpired();
      ServeResponse response;
      response.status = Status::DeadlineExceeded("deadline expired in queue");
      CompleteOne(&pending, std::move(response));
    }
    if (dispatch) {
      batches_.fetch_add(1, std::memory_order_relaxed);
      const auto size = static_cast<int64_t>(work->requests.size());
      if (size > max_batch_.load(std::memory_order_relaxed)) {
        max_batch_.store(size, std::memory_order_relaxed);
      }
      RecordBatch(static_cast<int>(size));
      const bool submitted =
          !TRACER_FAULT_POINT("serve.dispatch") &&
          pool_->Submit([this, work] { RunBatch(work); });
      if (!submitted) {
        // Reachable if the pool is torn down mid-dispatch (or chaos
        // injection severs the hand-off); fail the batch rather than
        // orphan the promises.
        for (Pending& pending : work->requests) {
          ServeResponse response;
          response.status = Status::Unavailable("server shutting down");
          CompleteOne(&pending, std::move(response));
        }
        common::MutexLock relock(&mutex_);
        --in_flight_batches_;
      }
    }
    mutex_.Lock();
  }
  mutex_.Unlock();
}

CircuitBreaker& InferenceServer::BreakerForThisThread() {
  // Pool threads are created per server and outlive every batch, so a
  // once-per-thread slot assignment pins each worker to its own breaker.
  thread_local int slot = -1;
  if (slot < 0) {
    slot = breaker_slots_.fetch_add(1, std::memory_order_relaxed) %
           static_cast<int>(breakers_.size());
  }
  return *breakers_[slot];
}

void InferenceServer::RunBatch(const std::shared_ptr<BatchWork>& work) {
  TRACER_SPAN("serve.batch");
  // Worker pickup time: close→pickup is the batch-wait stage of every
  // request in this batch, pickup→scores-ready its compute stage.
  const uint64_t exec_ns = obs::MonotonicNowNs();
  // Per-worker replicas of the batch's primary and fallback snapshots,
  // rebuilt only when the snapshot changes. Each pool thread owns its
  // replicas outright, so concurrent batches never share autograd state;
  // the shared_ptrs keep the cached snapshots alive across hot-swaps.
  thread_local std::shared_ptr<const ModelSnapshot> cached_snapshot;
  thread_local std::unique_ptr<core::Titv> replica;
  thread_local std::shared_ptr<const ModelSnapshot> cached_fallback;
  thread_local std::unique_ptr<core::Titv> fallback_replica;

  const std::shared_ptr<const ModelSnapshot>& snapshot = work->snapshot;
  std::vector<Pending*> scorable;
  scorable.reserve(work->requests.size());
  for (Pending& pending : work->requests) {
    if (snapshot == nullptr) {
      ServeResponse response;
      response.status = Status::FailedPrecondition("no model published");
      CompleteOne(&pending, std::move(response));
    } else if (static_cast<int>(pending.request.windows.front().size()) !=
               snapshot->config.input_dim) {
      ServeResponse response;
      response.status = Status::InvalidArgument(
          "request feature dim does not match the served model");
      CompleteOne(&pending, std::move(response));
    } else {
      scorable.push_back(&pending);
    }
  }

  if (!scorable.empty()) {
    const int batch_size = static_cast<int>(scorable.size());
    const int num_windows =
        static_cast<int>(scorable.front()->request.windows.size());
    const int dim = snapshot->config.input_dim;
    std::vector<autograd::Variable> xs;
    xs.reserve(num_windows);
    for (int t = 0; t < num_windows; ++t) {
      Tensor x({batch_size, dim});
      for (int b = 0; b < batch_size; ++b) {
        const std::vector<float>& window = scorable[b]->request.windows[t];
        for (int j = 0; j < dim; ++j) x.at(b, j) = window[j];
      }
      xs.push_back(autograd::Variable::Constant(std::move(x)));
    }

    auto score_with = [&](const ModelSnapshot& model, core::Titv* titv) {
      autograd::Variable raw = titv->Forward(xs);
      return options_.classification
                 ? tracer::Sigmoid(raw.value())
                 : tracer::AddScalar(
                       tracer::Scale(raw.value(), model.output_scale),
                       model.output_offset);
    };

    CircuitBreaker& breaker = BreakerForThisThread();
    const int64_t probes_before = breaker.probes();
    const bool try_primary = breaker.Allow(obs::MonotonicNowNs());
    if (breaker.probes() > probes_before) RecordBreakerProbe();

    bool primary_ok = false;
    Tensor scores;
    if (try_primary) {
      bool failed = TRACER_FAULT_POINT("serve.score");
      if (!failed) {
        if (cached_snapshot.get() != snapshot.get()) {
          replica = snapshot->NewReplica();
          cached_snapshot = snapshot;
        }
        // Forward-only scoring; identical math to SequenceModel::Predict,
        // so a batched row is bit-identical to the same sample scored
        // alone.
        scores = score_with(*snapshot, replica.get());
        failed = !AllFinite(scores);
      }
      const uint64_t done_ns = obs::MonotonicNowNs();
      bool budget_exhausted = false;
      if (!failed && options_.breaker_on_deadline_budget) {
        for (const Pending* pending : scorable) {
          const uint64_t deadline = pending->request.deadline_ns;
          if (deadline != 0 && deadline <= done_ns) {
            budget_exhausted = true;
            break;
          }
        }
      }
      if (failed || budget_exhausted) {
        const int64_t opens_before = breaker.opens();
        breaker.RecordFailure(done_ns);
        if (breaker.opens() > opens_before) {
          breaker_opens_.fetch_add(1, std::memory_order_relaxed);
          RecordBreakerOpen();
        }
      } else {
        breaker.RecordSuccess();
      }
      // Deadline-budget exhaustion degrades *future* batches; this one
      // still carries valid scores and completes normally.
      primary_ok = !failed;
    }

    const std::shared_ptr<const ModelSnapshot>& fallback = work->fallback;
    bool degraded = false;
    if (!primary_ok && fallback != nullptr &&
        fallback->config.input_dim == dim) {
      if (cached_fallback.get() != fallback.get()) {
        fallback_replica = fallback->NewReplica();
        cached_fallback = fallback;
      }
      scores = score_with(*fallback, fallback_replica.get());
      degraded = AllFinite(scores);
    }

    if (primary_ok || degraded) {
      const ModelSnapshot& scored_by = degraded ? *fallback : *snapshot;
      if (degraded) {
        degraded_.fetch_add(batch_size, std::memory_order_relaxed);
        RecordDegraded(batch_size);
      }
      const uint64_t scored_ns = obs::MonotonicNowNs();

      // Explain batches attribute against the exact replica that produced
      // the scores — the per-batch snapshot — so a hot-swap between scoring
      // and attribution can never mix model versions in one response.
      const bool explain_batch = scorable.front()->explain;
      interpret::AttributionResult attribution;
      std::vector<char> explain_late;
      bool explain_ok = false;
      uint64_t explain_t0 = 0;
      uint64_t explain_t1 = 0;
      if (explain_batch) {
        explain_t0 = scored_ns;
        explain_late.assign(batch_size, 0);
        bool any_live = false;
        for (int b = 0; b < batch_size; ++b) {
          const uint64_t deadline = scorable[b]->request.deadline_ns;
          if (deadline != 0 && deadline <= explain_t0) {
            explain_late[b] = 1;
          } else {
            any_live = true;
          }
        }
        // Requests already past their deadline complete below with
        // kDeadlineExceeded instead of paying for attributions they cannot
        // use; when the whole batch is late the pass is skipped outright.
        if (any_live && !TRACER_FAULT_POINT("interpret.explain")) {
          core::Titv* model =
              degraded ? fallback_replica.get() : replica.get();
          const ExplainSpec& spec = scorable.front()->spec;
          std::vector<Tensor> windows;
          windows.reserve(xs.size());
          for (const autograd::Variable& x : xs) {
            windows.push_back(x.value());
          }
          interpret::BaselineBuilder baseline(spec.baseline);
          switch (spec.method) {
            case interpret::Method::kTitvNative: {
              interpret::TitvAttributor attributor(model,
                                                   options_.classification);
              attribution = attributor.Attribute(windows);
              break;
            }
            case interpret::Method::kIntegratedGradients: {
              interpret::ModelScorer scorer =
                  interpret::WrapSequenceModel(model);
              interpret::IntegratedGradientsOptions ig;
              ig.steps = spec.ig_steps;
              interpret::IntegratedGradients attributor(
                  scorer.tape, std::move(baseline), ig, scorer.reset);
              attribution = attributor.Attribute(windows);
              break;
            }
            case interpret::Method::kOcclusion: {
              interpret::ModelScorer scorer =
                  interpret::WrapSequenceModel(model);
              interpret::Occlusion attributor(scorer.score,
                                              std::move(baseline));
              attribution = attributor.Attribute(windows);
              break;
            }
          }
          explain_ok =
              static_cast<int>(attribution.samples.size()) == batch_size;
        }
        explain_t1 = obs::MonotonicNowNs();
        if (obs::Enabled() && explain_ok) {
          for (int b = 0; b < batch_size; ++b) {
            if (explain_late[b] || !scorable[b]->trace.active()) continue;
            obs::RecordSpan("interpret.explain", "serve.request",
                            scorable[b]->trace.trace_id, obs::NextSpanId(),
                            scorable[b]->trace.span_id, explain_t0,
                            explain_t1, 1);
          }
        }
      }

      for (int b = 0; b < batch_size; ++b) {
        if (explain_batch && explain_late[b]) {
          ServeResponse response;
          response.status = Status::DeadlineExceeded(
              "deadline expired before attribution");
          CompleteOne(scorable[b], std::move(response));
          continue;
        }
        if (explain_batch && !explain_ok) {
          RecordExplainFailure();
          ServeResponse response;
          response.status = Status::Unavailable("attribution pass failed");
          CompleteOne(scorable[b], std::move(response));
          continue;
        }
        ServeResponse response;
        response.decision.probability = scores.at(b, 0);
        response.decision.alert =
            options_.classification &&
            response.decision.probability >= options_.alert_threshold;
        response.model_version = scored_by.version;
        response.batch_size = batch_size;
        response.degraded = degraded;
        response.queue_ns = work->close_ns - scorable[b]->enqueue_ns;
        response.batch_ns =
            exec_ns > work->close_ns ? exec_ns - work->close_ns : 0;
        response.compute_ns = scored_ns > exec_ns ? scored_ns - exec_ns : 0;
        if (explain_batch) {
          response.attributions = std::move(attribution.samples[b].fi);
          response.attribution_method =
              interpret::MethodName(scorable.front()->spec.method);
          RecordExplained(explain_t1 - explain_t0,
                          scorable[b]->trace.trace_id);
        }
        CompleteOne(scorable[b], std::move(response));
      }
    } else {
      for (Pending* pending : scorable) {
        ServeResponse response;
        response.status = Status::Unavailable(
            "primary replica unhealthy and no usable fallback model");
        CompleteOne(pending, std::move(response));
      }
    }
  }

  {
    common::MutexLock lock(&mutex_);
    --in_flight_batches_;
  }
  // A drained worker may allow the scheduler to close a partial batch.
  scheduler_cv_.NotifyOne();
}

void InferenceServer::CompleteOne(Pending* pending, ServeResponse response) {
  response.total_ns = obs::MonotonicNowNs() - pending->enqueue_ns;
  response.trace_id = pending->trace.trace_id;
  if (obs::Enabled() && pending->trace.active()) {
    // Stitch this request's tree from the breakdown timestamps. Stage
    // begin/end happened on three different threads (submitter, scheduler,
    // worker), so spans are recorded here explicitly under the root span id
    // pre-minted at admission rather than via thread-ambient nesting.
    const uint64_t tid = pending->trace.trace_id;
    const uint64_t root = pending->trace.span_id;
    const uint64_t t0 = pending->enqueue_ns;
    const uint64_t end_ns = t0 + response.total_ns;
    if (response.status.ok() && response.compute_ns > 0) {
      const uint64_t close = t0 + response.queue_ns;
      const uint64_t pickup = close + response.batch_ns;
      const uint64_t scored = pickup + response.compute_ns;
      obs::RecordSpan("serve.queue", "serve.request", tid, obs::NextSpanId(),
                      root, t0, close, 1);
      obs::RecordSpan("serve.batch_wait", "serve.request", tid,
                      obs::NextSpanId(), root, close, pickup, 1);
      obs::RecordSpan("serve.score", "serve.request", tid, obs::NextSpanId(),
                      root, pickup, scored, 1);
    }
    obs::RecordSpan("serve.request", "", tid, root, pending->parent_span_id,
                    t0, end_ns, 0);
  }
  if (response.status.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    RecordServed(response, response.decision.alert);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  pending->promise.set_value(std::move(response));
}

void InferenceServer::UpdateQueueDepthLocked() {
  RecordQueueDepth(queue_.size());
}

void InferenceServer::Shutdown() {
  {
    common::MutexLock lock(&mutex_);
    stop_ = true;
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  scheduler_cv_.NotifyAll();
  if (scheduler_.joinable()) scheduler_.join();
  // Drains batches already handed to the workers; their futures complete
  // normally.
  pool_->Shutdown();
  // Whatever is still queued was never dispatched; complete it rather than
  // break the promises.
  std::deque<Pending> leftover;
  {
    common::MutexLock lock(&mutex_);
    leftover.swap(queue_);
    UpdateQueueDepthLocked();
  }
  for (Pending& pending : leftover) {
    ServeResponse response;
    response.status = Status::Unavailable("server shutting down");
    CompleteOne(&pending, std::move(response));
  }
}

InferenceServer::Stats InferenceServer::stats() const {
  Stats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.expired = expired_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.max_batch = max_batch_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace serve
}  // namespace tracer
