#ifndef TRACER_SERVE_CIRCUIT_BREAKER_H_
#define TRACER_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tracer {
namespace serve {

/// Tuning knobs of one CircuitBreaker.
struct CircuitBreakerOptions {
  /// Consecutive recorded failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long an open breaker rejects before allowing a half-open probe.
  uint64_t open_duration_ns = 100ull * 1000 * 1000;  // 100ms
};

/// Classic closed → open → half-open circuit breaker guarding one serving
/// replica (see DESIGN.md "Fault tolerance").
///
///  - closed: every call is allowed; `failure_threshold` consecutive
///    failures trip it open.
///  - open: calls are rejected (the server degrades to its fallback model)
///    until `open_duration_ns` has elapsed.
///  - half-open: exactly one probe call is let through; success closes the
///    breaker, failure re-opens it and restarts the cooldown.
///
/// Failure signals are recorded by the caller: a scoring error, a
/// non-finite score, or a forward pass that finished past every rider's
/// deadline (deadline-budget exhaustion). All methods are thread-safe;
/// timestamps come from the caller so tests can drive a fake clock.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options);

  /// True when a protected call may proceed now. An open breaker whose
  /// cooldown has elapsed transitions to half-open and admits exactly one
  /// probe (subsequent Allow calls reject until that probe is recorded).
  bool Allow(uint64_t now_ns);

  /// Records a successful protected call. Closes a half-open breaker and
  /// resets the consecutive-failure count.
  void RecordSuccess();

  /// Records a failed protected call; may trip the breaker open (from
  /// closed, after `failure_threshold` consecutive failures; from
  /// half-open, immediately).
  void RecordFailure(uint64_t now_ns);

  State state() const;

  /// Times the breaker transitioned into open, cumulative.
  int64_t opens() const;

  /// Half-open probes admitted, cumulative.
  int64_t probes() const;

 private:
  void TripLocked(uint64_t now_ns) TRACER_REQUIRES(mutex_);

  const CircuitBreakerOptions options_;
  mutable common::Mutex mutex_;
  State state_ TRACER_GUARDED_BY(mutex_) = State::kClosed;
  int consecutive_failures_ TRACER_GUARDED_BY(mutex_) = 0;
  uint64_t open_until_ns_ TRACER_GUARDED_BY(mutex_) = 0;
  bool probe_in_flight_ TRACER_GUARDED_BY(mutex_) = false;
  int64_t opens_ TRACER_GUARDED_BY(mutex_) = 0;
  int64_t probes_ TRACER_GUARDED_BY(mutex_) = 0;
};

}  // namespace serve
}  // namespace tracer

#endif  // TRACER_SERVE_CIRCUIT_BREAKER_H_
