#include "serve/circuit_breaker.h"

#include <algorithm>

namespace tracer {
namespace serve {

namespace {

CircuitBreakerOptions Sanitize(CircuitBreakerOptions options) {
  options.failure_threshold = std::max(1, options.failure_threshold);
  return options;
}

}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(Sanitize(options)) {}

bool CircuitBreaker::Allow(uint64_t now_ns) {
  common::MutexLock lock(&mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ns < open_until_ns_) return false;
      // Cooldown over: admit exactly one probe.
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      ++probes_;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      ++probes_;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  common::MutexLock lock(&mutex_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(uint64_t now_ns) {
  common::MutexLock lock(&mutex_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: back to open, restart the cooldown.
    TripLocked(now_ns);
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    TripLocked(now_ns);
  }
}

void CircuitBreaker::TripLocked(uint64_t now_ns) {
  state_ = State::kOpen;
  open_until_ns_ = now_ns + options_.open_duration_ns;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  ++opens_;
}

CircuitBreaker::State CircuitBreaker::state() const {
  common::MutexLock lock(&mutex_);
  return state_;
}

int64_t CircuitBreaker::opens() const {
  common::MutexLock lock(&mutex_);
  return opens_;
}

int64_t CircuitBreaker::probes() const {
  common::MutexLock lock(&mutex_);
  return probes_;
}

}  // namespace serve
}  // namespace tracer
