#include "serve/session.h"

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace tracer {
namespace serve {

namespace {

void RecordObservation() {
  if (!obs::Enabled()) return;
  static obs::Counter* observations =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_session_observations_total");
  observations->Increment();
}

}  // namespace

PatientSession::PatientSession(InferenceServer* server, std::string patient_id)
    : server_(server), patient_id_(std::move(patient_id)) {
  TRACER_CHECK(server_ != nullptr);
  // One trace per patient session: every Observe (and the serve.request
  // trees underneath) share this id, so a patient's full trajectory is one
  // tree in the dump.
  if (obs::Enabled()) trace_ = obs::NewTraceContext();
}

std::future<ServeResponse> PatientSession::Observe(std::vector<float> window,
                                                   uint64_t deadline_ns) {
  TRACER_TRACE_SCOPE(trace_);
  TRACER_SPAN("serve.observe");
  history_.push_back(std::move(window));
  RecordObservation();
  ServeRequest request;
  request.windows = history_;  // full history so far — the growing T
  request.deadline_ns = deadline_ns;
  // Explicit hand-off: Submit enqueues, but completion happens on server
  // threads; shipping the context in the request keeps the server's spans
  // in this session's trace even though they run elsewhere.
  request.trace = obs::CurrentTraceContext();
  return server_->Submit(std::move(request));
}

ServeResponse PatientSession::ObserveSync(std::vector<float> window,
                                          uint64_t deadline_ns) {
  ServeResponse response = Observe(std::move(window), deadline_ns).get();
  if (response.status.ok()) {
    newly_alerted_ = response.decision.alert && !alerting_;
    alerting_ = response.decision.alert;
  } else {
    newly_alerted_ = false;
  }
  return response;
}

}  // namespace serve
}  // namespace tracer
