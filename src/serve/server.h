#ifndef TRACER_SERVE_SERVER_H_
#define TRACER_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/tracer.h"
#include "interpret/attribution.h"
#include "obs/trace_context.h"
#include "parallel/thread_pool.h"
#include "serve/circuit_breaker.h"
#include "serve/model_registry.h"

namespace tracer {
namespace serve {

/// Tuning knobs of one InferenceServer.
struct ServeOptions {
  /// A batch closes as soon as this many compatible requests are waiting.
  int max_batch_size = 16;
  /// ... or once the oldest waiting request has been queued this long.
  int64_t max_queue_delay_us = 2000;
  /// Bound of the admission queue. A Submit that finds the queue full is
  /// shed immediately with kUnavailable — the backpressure contract: the
  /// server never blocks producers and never buffers unboundedly.
  int queue_capacity = 512;
  /// Worker threads running forward passes (each owns private replicas).
  int num_workers = 2;
  /// Close a partial batch early when every worker is idle: waiting out
  /// max_queue_delay would add latency without enabling any overlap. Under
  /// load batches still grow naturally (requests accumulate while workers
  /// are busy). Disable for strictly delay/size-driven batching.
  bool close_on_idle = true;
  /// Risk threshold for AlertDecision (§3; calibrate with core/alerting).
  float alert_threshold = 0.75f;
  /// Classification scores pass through a sigmoid; regression outputs go
  /// through the snapshot's affine output transform.
  bool classification = true;
  /// Per-replica circuit breaker (one per worker thread): consecutive
  /// scoring failures trip it open and batches degrade to the registry's
  /// fallback model (responses marked `degraded=true`) — or complete with
  /// kUnavailable when no fallback is designated — until a half-open probe
  /// succeeds. See DESIGN.md "Fault tolerance".
  CircuitBreakerOptions breaker;
  /// Also count deadline-budget exhaustion (a forward pass that finished
  /// past a rider's deadline; the response itself still succeeds) as a
  /// breaker failure signal, so a primary too slow for its clients degrades
  /// to the cheaper fallback. Off by default: with tight deadlines and no
  /// fallback this converts overload into kUnavailable bursts.
  bool breaker_on_deadline_budget = false;
};

/// One inference request: the time-window history of a single patient,
/// `windows[t]` being the D feature values of window t. Histories of
/// different lengths may be in flight at once; a batch only coalesces
/// requests with equal window counts.
struct ServeRequest {
  std::vector<std::vector<float>> windows;
  /// Absolute deadline on the obs::MonotonicNowNs() clock; 0 = none. A
  /// request still queued past its deadline completes with
  /// kDeadlineExceeded instead of occupying a batch slot.
  uint64_t deadline_ns = 0;
  /// Optional trace to join (e.g. a PatientSession's session trace,
  /// captured on another thread). Inactive (the default) means Submit
  /// adopts the caller's ambient trace, or mints a fresh one.
  obs::TraceContext trace;
};

/// How an explain-on-demand request wants its attributions computed.
/// Requests with identical specs (and window counts) coalesce into one
/// batch; differing specs ride in separate batches.
struct ExplainSpec {
  interpret::Method method = interpret::Method::kTitvNative;
  /// Path steps for integrated gradients (clamped to [1, 128] at submit).
  int ig_steps = 8;
  /// Reference input for IG / occlusion. kPopulationMean needs a fitted
  /// reference cohort, which the serving process does not hold —
  /// SubmitExplain rejects it with kInvalidArgument.
  interpret::BaselineKind baseline = interpret::BaselineKind::kZero;
};

/// Completion of one ServeRequest. `status` is OK when `decision` is valid;
/// kUnavailable = shed by backpressure, kDeadlineExceeded = expired in
/// queue, kFailedPrecondition = no model published, kInvalidArgument =
/// malformed input.
struct ServeResponse {
  Status status;
  core::AlertDecision decision;
  /// Version of the ModelSnapshot that scored this request. Every request
  /// of a batch is scored by exactly one consistent snapshot, even while
  /// Publish/Rollback swap the live version.
  uint64_t model_version = 0;
  /// Size of the micro-batch this request rode in (1 = unbatched).
  int batch_size = 0;
  /// True when the score came from the registry's fallback model because
  /// the worker's circuit breaker was open (or the primary failed);
  /// `model_version` is then the fallback's version.
  bool degraded = false;
  /// Admission → batch close.
  uint64_t queue_ns = 0;
  /// Batch close → worker pickup (time spent waiting for a worker).
  uint64_t batch_ns = 0;
  /// Worker pickup → scores ready (replica build + forward pass).
  uint64_t compute_ns = 0;
  /// Admission → completion.
  uint64_t total_ns = 0;
  /// Id of the trace this request's spans were recorded under (0 when
  /// observability is off) — the handle for finding "why was *this*
  /// patient's score late" in a trace dump.
  uint64_t trace_id = 0;
  /// Explain requests only: attributions[t][d] of window t, feature d,
  /// computed against the same snapshot (`model_version`) that produced
  /// `decision` — hot-swap consistent with the score by construction.
  std::vector<std::vector<float>> attributions;
  /// interpret::MethodName of the attribution method (empty for plain
  /// scoring requests).
  std::string attribution_method;
};

/// In-process online serving layer: callers submit single (x, Δ) requests;
/// a scheduler thread coalesces them into micro-batches closed by size
/// (`max_batch_size`) or age (`max_queue_delay_us`), runs forward-only TITV
/// on a parallel::ThreadPool whose workers each hold a private replica of
/// the current ModelSnapshot, and completes per-request futures with
/// AlertDecisions.
///
/// Contracts:
///  - Backpressure: the admission queue is bounded; a full queue sheds new
///    requests with kUnavailable immediately (never blocks, never OOMs).
///  - Deadlines: an expired request is completed with kDeadlineExceeded at
///    the next batch formation, not silently scored late.
///  - Consistency: the live snapshot is captured once per batch, so every
///    request is scored by exactly one model version even during hot-swap.
///  - Every accepted future is eventually completed, including across
///    Shutdown (drained requests complete with kUnavailable).
///  - Degraded mode: each worker guards its replica with a circuit breaker
///    (ServeOptions::breaker). While a breaker is open, batches are scored
///    by the registry's fallback model with `degraded=true`, or complete
///    with kUnavailable when no fallback is designated; a half-open probe
///    restores normal service once the primary is healthy again.
///
/// Instrumented through src/obs when enabled: tracer_serve_requests_total,
/// _shed_total, _expired_total, _alerts_total, _batches_total,
/// _queue_depth, _batch_size, _queue_ns, _latency_ns (see DESIGN.md
/// "Serving").
class InferenceServer {
 public:
  /// `registry` must outlive the server. Workers and the scheduler thread
  /// start immediately; requests submitted before a model is published
  /// complete with kFailedPrecondition.
  InferenceServer(ModelRegistry* registry, ServeOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues a request; the returned future completes with the decision or
  /// a non-OK status (see ServeResponse). Never blocks on the queue.
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Synchronous convenience wrapper: Submit + wait.
  ServeResponse Infer(ServeRequest request);

  /// Explain-on-demand: like Submit, but the response additionally carries
  /// per-window/per-feature attributions computed by `spec.method` against
  /// the same per-batch snapshot that scored the request. Explain batches
  /// honor deadlines (a request past its deadline when attribution starts
  /// completes with kDeadlineExceeded instead of paying for attributions it
  /// cannot use), are fault-injectable via the "interpret.explain" point,
  /// and export tracer_interpret_* metrics + "interpret.explain" spans.
  std::future<ServeResponse> SubmitExplain(ServeRequest request,
                                           ExplainSpec spec);

  /// Synchronous convenience wrapper: SubmitExplain + wait.
  ServeResponse Explain(ServeRequest request, ExplainSpec spec);

  /// Stops the scheduler, drains in-flight batches, and completes every
  /// still-queued request with kUnavailable. Idempotent; the destructor
  /// calls it.
  void Shutdown();

  /// Always-on (lock-free) serving counters, independent of src/obs.
  struct Stats {
    int64_t accepted = 0;
    int64_t shed = 0;
    int64_t expired = 0;
    int64_t completed = 0;  // completed OK
    int64_t failed = 0;     // completed non-OK after admission
    int64_t batches = 0;
    int64_t max_batch = 0;  // largest batch dispatched so far
    int64_t degraded = 0;       // completed OK via the fallback model
    int64_t breaker_opens = 0;  // breaker transitions into open, all workers
  };
  Stats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    uint64_t enqueue_ns = 0;
    /// Root context for this request: trace.span_id is the pre-minted
    /// "serve.request" span id every per-stage span parents under, so the
    /// tree stitches across the scheduler and worker threads.
    obs::TraceContext trace;
    /// Caller's ambient span at Submit (0 = request is the trace root).
    uint64_t parent_span_id = 0;
    /// Explain-on-demand request: attribute after scoring. Only requests
    /// with equal specs coalesce (see SchedulerLoop's compatibility check).
    bool explain = false;
    ExplainSpec spec;
  };
  struct BatchWork {
    std::shared_ptr<const ModelSnapshot> snapshot;
    /// Degraded-mode model, captured at batch formation like `snapshot` so
    /// the whole batch sees one consistent fallback across hot-swaps.
    std::shared_ptr<const ModelSnapshot> fallback;
    std::vector<Pending> requests;
    uint64_t close_ns = 0;
  };

  /// Shared admission path of Submit and SubmitExplain.
  std::future<ServeResponse> SubmitInternal(ServeRequest request, bool explain,
                                            ExplainSpec spec)
      TRACER_EXCLUDES(mutex_);
  void SchedulerLoop() TRACER_EXCLUDES(mutex_);
  /// Completes queued requests whose deadline has passed. Runs under
  /// `mutex_`; fulfilled promises are handed back for completion outside
  /// the lock.
  void CollectExpiredLocked(uint64_t now_ns, std::vector<Pending>* out)
      TRACER_REQUIRES(mutex_);
  void RunBatch(const std::shared_ptr<BatchWork>& work)
      TRACER_EXCLUDES(mutex_);
  /// The circuit breaker owned by the calling worker thread (assigned on
  /// first use; pool threads live exactly as long as the server).
  CircuitBreaker& BreakerForThisThread();
  /// Fulfils one promise. Completes user-visible futures — callers must
  /// NOT hold `mutex_` (a continuation attached to the future would run
  /// under the server's admission lock).
  void CompleteOne(Pending* pending, ServeResponse response)
      TRACER_EXCLUDES(mutex_);
  void UpdateQueueDepthLocked() TRACER_REQUIRES(mutex_);

  ModelRegistry* const registry_;
  const ServeOptions options_;

  common::Mutex mutex_;
  common::CondVar scheduler_cv_;
  std::deque<Pending> queue_ TRACER_GUARDED_BY(mutex_);
  bool stop_ TRACER_GUARDED_BY(mutex_) = false;
  bool shutdown_done_ TRACER_GUARDED_BY(mutex_) = false;
  int in_flight_batches_ TRACER_GUARDED_BY(mutex_) = 0;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> max_batch_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> breaker_opens_{0};

  /// One breaker per worker replica, fixed at construction.
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::atomic<int> breaker_slots_{0};

  std::unique_ptr<parallel::ThreadPool> pool_;
  std::thread scheduler_;
};

}  // namespace serve
}  // namespace tracer

#endif  // TRACER_SERVE_SERVER_H_
