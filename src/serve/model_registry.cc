#include "serve/model_registry.h"

#include "nn/serialization.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tracer {
namespace serve {

namespace {

// Matches the pseudo-tensor core::Tracer::SaveCheckpoint appends to carry
// the regression output calibration.
constexpr char kOutputTransformKey[] = "__output_transform";

void RecordLoad() {
  if (!obs::Enabled()) return;
  static obs::Counter* loads =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_model_loads_total");
  loads->Increment();
}

void RecordSwap(uint64_t version) {
  if (!obs::Enabled()) return;
  static obs::Counter* swaps =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_serve_hot_swaps_total");
  static obs::Gauge* live =
      obs::MetricsRegistry::Global().GetOrCreateGauge(
          "tracer_serve_live_version");
  swaps->Increment();
  live->Set(static_cast<double>(version));
}

}  // namespace

std::unique_ptr<core::Titv> ModelSnapshot::NewReplica() const {
  auto replica = std::make_unique<core::Titv>(config);
  auto named = replica->NamedParameters();
  TRACER_CHECK_EQ(named.size(), tensors.size())
      << "snapshot validated at registration cannot mismatch";
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value() = tensors[i].second;
  }
  replica->SetOutputTransform(output_scale, output_offset);
  return replica;
}

Result<uint64_t> ModelRegistry::Load(const std::string& path,
                                     const core::TitvConfig& config) {
  auto loaded = nn::LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  return Register(config, std::move(loaded).value(), path);
}

Result<uint64_t> ModelRegistry::Register(
    const core::TitvConfig& config,
    std::vector<std::pair<std::string, Tensor>> tensors,
    const std::string& source) {
  if (config.input_dim <= 0 || config.rnn_dim <= 0 || config.film_dim <= 0) {
    return Status::InvalidArgument("invalid TITV config for " + source);
  }
  // Validate layout against a freshly constructed probe of the target
  // architecture — exactly the check core::Tracer::LoadCheckpoint applies,
  // but performed once per registration instead of once per replica.
  const core::Titv probe(config);
  const auto named = probe.NamedParameters();
  const bool has_transform = tensors.size() == named.size() + 1 &&
                             tensors.back().first == kOutputTransformKey;
  if (!has_transform && tensors.size() != named.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch: " +
                                   source);
  }
  for (size_t i = 0; i < named.size(); ++i) {
    if (named[i].first != tensors[i].first ||
        !named[i].second.value().SameShape(tensors[i].second)) {
      return Status::InvalidArgument("checkpoint layout mismatch at " +
                                     tensors[i].first + ": " + source);
    }
  }
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->source = source;
  snapshot->config = config;
  if (has_transform) {
    const Tensor& transform = tensors.back().second;
    if (transform.size() != 2) {
      return Status::InvalidArgument("malformed output transform record: " +
                                     source);
    }
    snapshot->output_scale = transform[0];
    snapshot->output_offset = transform[1];
    tensors.pop_back();
  }
  snapshot->tensors = std::move(tensors);
  uint64_t version = 0;
  {
    common::MutexLock lock(&mutex_);
    version = next_version_++;
    snapshot->version = version;
    versions_.emplace(version, std::move(snapshot));
  }
  RecordLoad();
  return version;
}

Status ModelRegistry::Publish(uint64_t version) {
  std::shared_ptr<const ModelSnapshot> target;
  {
    common::MutexLock lock(&mutex_);
    const auto it = versions_.find(version);
    if (it == versions_.end()) {
      return Status::NotFound("version " + std::to_string(version) +
                              " was never staged");
    }
    target = it->second;
    previous_ = live_;
    live_ = target;
  }
  RecordSwap(version);
  return Status::OK();
}

Status ModelRegistry::Rollback() {
  uint64_t version = 0;
  {
    common::MutexLock lock(&mutex_);
    if (previous_ == nullptr) {
      return Status::FailedPrecondition("no previous version to roll back to");
    }
    std::swap(live_, previous_);
    version = live_->version;
  }
  RecordSwap(version);
  return Status::OK();
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::live() const {
  common::MutexLock lock(&mutex_);
  return live_;
}

Status ModelRegistry::SetFallback(uint64_t version) {
  common::MutexLock lock(&mutex_);
  const auto it = versions_.find(version);
  if (it == versions_.end()) {
    return Status::NotFound("fallback version " + std::to_string(version) +
                            " was never staged");
  }
  fallback_ = it->second;
  return Status::OK();
}

void ModelRegistry::ClearFallback() {
  common::MutexLock lock(&mutex_);
  fallback_ = nullptr;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::fallback() const {
  common::MutexLock lock(&mutex_);
  return fallback_;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Get(
    uint64_t version) const {
  common::MutexLock lock(&mutex_);
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

uint64_t ModelRegistry::live_version() const {
  common::MutexLock lock(&mutex_);
  return live_ == nullptr ? 0 : live_->version;
}

std::vector<uint64_t> ModelRegistry::Versions() const {
  common::MutexLock lock(&mutex_);
  std::vector<uint64_t> out;
  out.reserve(versions_.size());
  for (const auto& [version, snapshot] : versions_) {
    (void)snapshot;
    out.push_back(version);
  }
  return out;
}

}  // namespace serve
}  // namespace tracer
