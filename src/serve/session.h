#ifndef TRACER_SERVE_SESSION_H_
#define TRACER_SERVE_SESSION_H_

#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "serve/server.h"

namespace tracer {
namespace serve {

/// Streaming session for one admitted patient — the paper's real-time
/// prediction-and-alert scenario (§3, Fig. 2) as an online API. The session
/// accumulates the growing time-window history (e.g. one window per
/// monitored day) and re-scores the full history through the
/// InferenceServer on every new observation, so the risk trajectory and the
/// alert state are always computed over everything known so far.
///
/// A session is not thread-safe (one patient's observations arrive in
/// order); distinct sessions may share one server freely.
class PatientSession {
 public:
  /// `server` must outlive the session. `patient_id` is a caller label
  /// carried for logging/reporting.
  PatientSession(InferenceServer* server, std::string patient_id);

  /// Appends one observation window (the D feature values measured in the
  /// new time window) and submits the full history for scoring.
  /// `deadline_ns` is forwarded to ServeRequest::deadline_ns.
  std::future<ServeResponse> Observe(std::vector<float> window,
                                     uint64_t deadline_ns = 0);

  /// Synchronous Observe: waits for the decision. Tracks the alert state —
  /// `newly_alerted()` is true when this observation crossed the threshold
  /// upward (the moment a clinician would be paged).
  ServeResponse ObserveSync(std::vector<float> window,
                            uint64_t deadline_ns = 0);

  const std::string& patient_id() const { return patient_id_; }
  /// Number of windows observed so far.
  int num_windows() const { return static_cast<int>(history_.size()); }
  /// Whether the last ObserveSync decision was an alert.
  bool alerting() const { return alerting_; }
  /// Whether the last ObserveSync flipped the session into alert.
  bool newly_alerted() const { return newly_alerted_; }
  /// Id of the session-scoped trace every Observe of this patient joins
  /// (0 when observability is disabled). The whole risk trajectory of one
  /// patient is one trace.
  uint64_t trace_id() const { return trace_.trace_id; }

 private:
  InferenceServer* server_;
  std::string patient_id_;
  std::vector<std::vector<float>> history_;
  bool alerting_ = false;
  bool newly_alerted_ = false;
  /// Minted at construction; each Observe submits under it.
  obs::TraceContext trace_;
};

}  // namespace serve
}  // namespace tracer

#endif  // TRACER_SERVE_SESSION_H_
