#ifndef TRACER_SERVE_MODEL_REGISTRY_H_
#define TRACER_SERVE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/titv.h"
#include "tensor/tensor.h"

namespace tracer {
namespace serve {

/// Immutable, versioned model artifact held by the registry. A snapshot is
/// the validated parameter set of one TRCKPT1 checkpoint plus the TITV
/// architecture it belongs to; it never changes after registration, so any
/// number of threads may hold a `shared_ptr` to it while newer versions are
/// published. Worker threads materialise private `Titv` replicas from it
/// with NewReplica() (the replica owns deep copies of every tensor, so
/// concurrent forward passes never share autograd state).
struct ModelSnapshot {
  /// Registry-assigned version, 1-based and strictly increasing.
  uint64_t version = 0;
  /// Where the snapshot came from (checkpoint path, or a caller label for
  /// in-memory registrations).
  std::string source;
  core::TitvConfig config;
  /// Regression output calibration (identity for classification models).
  float output_scale = 1.0f;
  float output_offset = 0.0f;
  /// Parameters in Module::NamedParameters() order, shape-validated against
  /// `config` at registration time.
  std::vector<std::pair<std::string, Tensor>> tensors;

  /// Builds a fresh TITV replica loaded with this snapshot's weights.
  std::unique_ptr<core::Titv> NewReplica() const;
};

/// Versioned store of serving models with atomic hot-swap.
///
/// Lifecycle: `Load` (or `Register`) validates a checkpoint against the
/// given architecture and stages it under a new version number; `Publish`
/// makes a staged version the live one; `Rollback` swaps the live version
/// with the previously live one. `live()` hands out the current snapshot as
/// a `shared_ptr` — in-flight work keeps the snapshot it started with, so a
/// swap never changes the model under a request that has already been
/// batched (see serve::InferenceServer).
///
/// All operations are safe to call concurrently; a training loop can
/// promote its best-epoch checkpoint into a serving process without a
/// restart and without pausing traffic.
class ModelRegistry {
 public:
  /// Loads a TRCKPT1 checkpoint (written by core::Tracer::SaveCheckpoint or
  /// nn::SaveCheckpoint) and stages it as a new version. Fails if the file
  /// is unreadable/torn or its tensors do not match `config`'s
  /// architecture. Returns the staged version number.
  Result<uint64_t> Load(const std::string& path,
                        const core::TitvConfig& config);

  /// Stages an in-memory parameter set (same layout a checkpoint holds,
  /// including the optional trailing "__output_transform" record).
  Result<uint64_t> Register(
      const core::TitvConfig& config,
      std::vector<std::pair<std::string, Tensor>> tensors,
      const std::string& source);

  /// Makes a staged version the live one. NotFound if never staged.
  Status Publish(uint64_t version);

  /// Re-publishes the previously live version (a one-step undo; calling it
  /// twice swaps back). FailedPrecondition when there is no previous
  /// version.
  Status Rollback();

  /// Current live snapshot, or nullptr when nothing is published.
  std::shared_ptr<const ModelSnapshot> live() const;

  /// Designates a staged version as the degraded-mode fallback: when an
  /// InferenceServer's circuit breaker opens on the primary, batches are
  /// scored by this snapshot and responses are marked `degraded=true`
  /// instead of failing with kUnavailable. Typically a cheaper / older
  /// model known to be healthy. NotFound if never staged.
  Status SetFallback(uint64_t version);

  /// Removes the fallback designation (degraded scoring reverts to
  /// kUnavailable while a breaker is open).
  void ClearFallback();

  /// Current fallback snapshot, or nullptr when none is designated.
  std::shared_ptr<const ModelSnapshot> fallback() const;

  /// Any staged snapshot by version, or nullptr.
  std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const;

  /// Version of the live snapshot, 0 when nothing is published.
  uint64_t live_version() const;

  /// All staged versions, ascending.
  std::vector<uint64_t> Versions() const;

 private:
  mutable common::Mutex mutex_;
  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> versions_
      TRACER_GUARDED_BY(mutex_);
  std::shared_ptr<const ModelSnapshot> live_ TRACER_GUARDED_BY(mutex_);
  std::shared_ptr<const ModelSnapshot> previous_ TRACER_GUARDED_BY(mutex_);
  std::shared_ptr<const ModelSnapshot> fallback_ TRACER_GUARDED_BY(mutex_);
  uint64_t next_version_ TRACER_GUARDED_BY(mutex_) = 1;
};

}  // namespace serve
}  // namespace tracer

#endif  // TRACER_SERVE_MODEL_REGISTRY_H_
