#ifndef TRACER_FAULT_FAULT_POINTS_H_
#define TRACER_FAULT_FAULT_POINTS_H_

/// Canonical registry of every fault-injection point in the tree.
///
/// Each entry is X("name", "where it fires / what failing there means").
/// The list is the single source of truth consumed in two places:
///   - fault.cc builds FaultRegistry::KnownPoints() from it, so
///     FaultRegistry::Configure rejects a spec naming an unknown point;
///   - tools/lint.py rule R7 (fault-point-registered) scans the tree for
///     TRACER_FAULT_POINT("...") usages and fails the lint when a name is
///     not listed here.
///
/// Naming convention: "<subsystem>.<operation>", matching the span and
/// metric naming of src/obs (e.g. "ckpt.write", "serve.score").
#define TRACER_FAULT_POINT_LIST(X)                                          \
  X("ckpt.write",                                                           \
    "nn/serialization: writing the checkpoint body to the temp file fails") \
  X("ckpt.fsync",                                                           \
    "nn/serialization: flushing/fsyncing the temp checkpoint file fails")   \
  X("ckpt.rename",                                                          \
    "nn/serialization: the atomic rename over the destination fails")       \
  X("ckpt.read",                                                            \
    "nn/serialization: opening/reading a checkpoint fails transiently")     \
  X("serve.score",                                                          \
    "serve/server: the primary replica's forward pass fails for a batch")   \
  X("serve.dispatch",                                                       \
    "serve/server: handing a formed batch to the worker pool fails")        \
  X("pool.submit",                                                          \
    "parallel/thread_pool: Submit spuriously rejects a task")               \
  X("pipeline.clean",                                                       \
    "pipeline/emr_pipeline: the cleaning/imputation stage fails "           \
    "transiently")                                                           \
  X("interpret.explain",                                                     \
    "serve/server: computing attributions for an explain batch fails")      \
  X("dist.send",                                                             \
    "dist/transport: writing a framed message to a peer socket fails "      \
    "transiently")                                                           \
  X("dist.recv",                                                             \
    "dist/transport: reading a framed message from a peer socket fails "    \
    "transiently")                                                           \
  X("dist.heartbeat",                                                        \
    "dist/worker: a heartbeat send is dropped; enough in a row and the "    \
    "coordinator evicts the worker")

#endif  // TRACER_FAULT_FAULT_POINTS_H_
