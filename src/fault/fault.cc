#include "fault/fault.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "fault/fault_points.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tracer {
namespace fault {

namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = text.find(sep, begin);
    if (end == std::string::npos) {
      out.push_back(text.substr(begin));
      break;
    }
    out.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

/// Parsed but not yet installed; Configure stages into this first so a
/// malformed spec cannot half-apply.
struct ParsedRule {
  std::string point;
  double probability = 0.0;
  int64_t count = 0;
};

Status ParseSpec(const std::string& spec, std::vector<ParsedRule>* out) {
  for (const std::string& entry : SplitOn(spec, ',')) {
    if (entry.empty()) continue;
    const std::vector<std::string> fields = SplitOn(entry, ':');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "fault spec entry \"" + entry +
          "\" is not of the form name:prob:count");
    }
    ParsedRule rule;
    rule.point = fields[0];
    const std::vector<std::string>& known = FaultRegistry::KnownPoints();
    if (!std::binary_search(known.begin(), known.end(), rule.point)) {
      return Status::InvalidArgument(
          "unknown fault point \"" + rule.point +
          "\" (register it in fault/fault_points.h)");
    }
    char* end = nullptr;
    rule.probability = std::strtod(fields[1].c_str(), &end);
    if (fields[1].empty() || end == nullptr || *end != '\0' ||
        rule.probability < 0.0 || rule.probability > 1.0) {
      return Status::InvalidArgument(
          "fault probability \"" + fields[1] + "\" is not in [0, 1]");
    }
    rule.count = std::strtoll(fields[2].c_str(), &end, 10);
    if (fields[2].empty() || end == nullptr || *end != '\0' ||
        rule.count < 0) {
      return Status::InvalidArgument(
          "fault count \"" + fields[2] + "\" is not a non-negative integer");
    }
    out->push_back(std::move(rule));
  }
  return Status::OK();
}

uint64_t EnvSeed() {
  const char* env = std::getenv("TRACER_FAULTS_SEED");
  if (env == nullptr || *env == '\0') return 42;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

void RecordInjected() {
  if (!obs::Enabled()) return;
  static obs::Counter* injected =
      obs::MetricsRegistry::Global().GetOrCreateCounter(
          "tracer_fault_injected_total");
  injected->Increment();
}

}  // namespace

FaultRegistry::FaultRegistry() {
  const char* env = std::getenv("TRACER_FAULTS");
  if (env != nullptr && *env != '\0') {
    // A malformed env spec is a configuration error worth failing loudly
    // on, but Global() runs at static-init-adjacent times; arm nothing and
    // leave the status visible to Configure callers instead of aborting.
    TRACER_IGNORE_STATUS(Configure(env, EnvSeed()));
  }
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

Status FaultRegistry::Configure(const std::string& spec, uint64_t seed) {
  std::vector<ParsedRule> parsed;
  TRACER_RETURN_IF_ERROR(ParseSpec(spec, &parsed));
  common::MutexLock lock(&mutex_);
  rules_.clear();
  for (const ParsedRule& rule : parsed) {
    Rule installed;
    installed.probability = rule.probability;
    installed.budget = rule.count == 0 ? -1 : rule.count;
    rules_[rule.point] = installed;
  }
  rng_ = Rng(seed);
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultRegistry::Clear() {
  common::MutexLock lock(&mutex_);
  rules_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultRegistry::ShouldFail(const char* point) {
  bool fire = false;
  {
    common::MutexLock lock(&mutex_);
    auto it = rules_.find(point);
    if (it == rules_.end()) return false;
    Rule& rule = it->second;
    if (rule.budget == 0) return false;
    // One draw per hit keeps the stream deterministic for a fixed call
    // sequence regardless of how many points are armed.
    fire = rng_.Bernoulli(rule.probability);
    if (fire) {
      if (rule.budget > 0) --rule.budget;
      ++rule.fired;
    }
  }
  if (fire) {
    RecordInjected();
    // Outside the rules lock: dumping snapshots the span ring and metric
    // registry, which take their own locks.
    obs::TriggerFlightDump("fault");
  }
  return fire;
}

int64_t FaultRegistry::FireCount(const std::string& point) const {
  common::MutexLock lock(&mutex_);
  auto it = rules_.find(point);
  return it == rules_.end() ? 0 : it->second.fired;
}

int64_t FaultRegistry::TotalFired() const {
  common::MutexLock lock(&mutex_);
  int64_t total = 0;
  for (const auto& [name, rule] : rules_) total += rule.fired;
  return total;
}

const std::vector<std::string>& FaultRegistry::KnownPoints() {
  static const std::vector<std::string>* points = [] {
    auto* list = new std::vector<std::string>{
#define TRACER_FAULT_POINT_ENTRY(name, doc) name,
        TRACER_FAULT_POINT_LIST(TRACER_FAULT_POINT_ENTRY)
#undef TRACER_FAULT_POINT_ENTRY
    };
    std::sort(list->begin(), list->end());
    return list;
  }();
  return *points;
}

}  // namespace fault
}  // namespace tracer
