#ifndef TRACER_FAULT_FAULT_H_
#define TRACER_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

/// Compile-time fault-injection level, mirroring TRACER_OBS: 0 compiles
/// every TRACER_FAULT_POINT probe down to a constant `false` the optimizer
/// deletes; 1 (the default) compiles probes in behind a runtime armed flag
/// (one relaxed atomic load when no faults are configured). Set from the
/// build system with -DTRACER_FAULT=0.
#ifndef TRACER_FAULT
#define TRACER_FAULT 1
#endif

namespace tracer {
namespace fault {

/// Deterministic, seedable fault-injection registry. Production code marks
/// failure-prone operations with TRACER_FAULT_POINT("name"); chaos tests and
/// the TRACER_FAULTS env knob arm a subset of those points with a firing
/// probability and an optional budget:
///
///   TRACER_FAULTS="ckpt.write:0.2:0,serve.score:1:5" ./build/serve_test
///
/// arms "ckpt.write" to fail 20% of hits forever and "serve.score" to fail
/// its first 5 hits then heal (count 0 = unlimited). Draws come from one
/// seedable xoshiro256** stream (TRACER_FAULTS_SEED, default 42), so a given
/// spec + seed produces the same fire pattern on every run — chaos findings
/// reproduce.
///
/// Every point name must be listed in fault/fault_points.h; Configure
/// rejects unknown names and lint rule R7 enforces the same invariant
/// statically.
class FaultRegistry {
 public:
  /// Process-wide instance. First use parses the TRACER_FAULTS /
  /// TRACER_FAULTS_SEED environment variables.
  static FaultRegistry& Global();

  /// Replaces the active configuration from a "name:prob:count,..." spec
  /// ("" disarms everything) and re-seeds the draw stream. Validates every
  /// name against KnownPoints(), probabilities against [0,1] and counts
  /// against >= 0; on error the previous configuration is left untouched.
  Status Configure(const std::string& spec, uint64_t seed = 42);

  /// Disarms every fault point (including ones armed from the environment).
  void Clear();

  /// True when at least one point is armed. This is the only cost on the
  /// hot path while faults are off: a relaxed atomic load.
  bool Armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Draws for one hit of `point`; true means the caller must fail.
  /// Unconfigured points never fire. Thread-safe.
  bool ShouldFail(const char* point);

  /// Times `point` has actually fired since the last Configure/Clear.
  int64_t FireCount(const std::string& point) const;

  /// Total fires across all points since the last Configure/Clear.
  int64_t TotalFired() const;

  /// Every registered point name (from fault/fault_points.h), sorted.
  static const std::vector<std::string>& KnownPoints();

 private:
  FaultRegistry();

  struct Rule {
    double probability = 0.0;
    int64_t budget = 0;  // remaining fires; <0 = unlimited
    int64_t fired = 0;
  };

  mutable common::Mutex mutex_;
  std::atomic<bool> armed_{false};
  std::unordered_map<std::string, Rule> rules_ TRACER_GUARDED_BY(mutex_);
  Rng rng_ TRACER_GUARDED_BY(mutex_){42};
};

}  // namespace fault
}  // namespace tracer

#if TRACER_FAULT == 0
#define TRACER_FAULT_POINT(point) (false)
#else
/// Marks a failure-prone operation. Evaluates to true when the named fault
/// is armed and fires for this hit; the surrounding code must then take its
/// real error path (return a non-OK Status, reject the task, ...). Costs a
/// single relaxed atomic load when no faults are configured; compiles to
/// `false` under -DTRACER_FAULT=0.
#define TRACER_FAULT_POINT(point)                      \
  (::tracer::fault::FaultRegistry::Global().Armed() && \
   ::tracer::fault::FaultRegistry::Global().ShouldFail(point))
#endif

#endif  // TRACER_FAULT_FAULT_H_
