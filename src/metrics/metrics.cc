#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace tracer {
namespace metrics {

double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels) {
  TRACER_CHECK_EQ(scores.size(), labels.size());
  TRACER_CHECK(!scores.empty());
  const size_t n = scores.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  // Midranks for ties.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  int64_t pos = 0, neg = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5f) {
      pos_rank_sum += rank[k];
      ++pos;
    } else {
      ++neg;
    }
  }
  TRACER_CHECK(pos > 0 && neg > 0)
      << "AUC undefined without both classes (pos=" << pos << " neg=" << neg
      << ")";
  const double u = pos_rank_sum - 0.5 * static_cast<double>(pos) *
                                      (static_cast<double>(pos) + 1.0);
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double CrossEntropyLoss(const std::vector<float>& probs,
                        const std::vector<float>& labels) {
  TRACER_CHECK_EQ(probs.size(), labels.size());
  TRACER_CHECK(!probs.empty());
  constexpr double kEps = 1e-7;
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p = std::clamp(static_cast<double>(probs[i]), kEps,
                                1.0 - kEps);
    const double y = labels[i];
    acc += -y * std::log(p) - (1.0 - y) * std::log(1.0 - p);
  }
  return acc / static_cast<double>(probs.size());
}

double PrAuc(const std::vector<float>& scores,
             const std::vector<float>& labels) {
  TRACER_CHECK_EQ(scores.size(), labels.size());
  TRACER_CHECK(!scores.empty());
  const size_t n = scores.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  int64_t total_pos = 0;
  for (float y : labels) {
    if (y > 0.5f) ++total_pos;
  }
  TRACER_CHECK_GT(total_pos, 0) << "PR-AUC undefined without positives";
  // Average precision: sum precision-at-k over positive hits, handling
  // score ties by processing tied blocks together (interpolated within).
  double ap = 0.0;
  int64_t tp = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    int64_t block_pos = 0;
    while (j < n && scores[order[j]] == scores[order[i]]) {
      if (labels[order[j]] > 0.5f) ++block_pos;
      ++j;
    }
    // Positives in a tied block are credited with the precision at the end
    // of the block; for untied data this is exactly precision@rank of each
    // positive, i.e. standard average precision.
    const int64_t block_size = static_cast<int64_t>(j - i);
    if (block_pos > 0) {
      const double precision_at_end =
          static_cast<double>(tp + block_pos) /
          static_cast<double>(static_cast<int64_t>(i) + block_size);
      ap += precision_at_end * block_pos;
    }
    tp += block_pos;
    i = j;
  }
  return ap / static_cast<double>(total_pos);
}

double BrierScore(const std::vector<float>& probs,
                  const std::vector<float>& labels) {
  TRACER_CHECK_EQ(probs.size(), labels.size());
  TRACER_CHECK(!probs.empty());
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double d = static_cast<double>(probs[i]) - labels[i];
    acc += d * d;
  }
  return acc / static_cast<double>(probs.size());
}

double Rmse(const std::vector<float>& predictions,
            const std::vector<float>& targets) {
  TRACER_CHECK_EQ(predictions.size(), targets.size());
  TRACER_CHECK(!predictions.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = static_cast<double>(predictions[i]) - targets[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predictions.size()));
}

double Mae(const std::vector<float>& predictions,
           const std::vector<float>& targets) {
  TRACER_CHECK_EQ(predictions.size(), targets.size());
  TRACER_CHECK(!predictions.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    acc += std::fabs(static_cast<double>(predictions[i]) - targets[i]);
  }
  return acc / static_cast<double>(predictions.size());
}

double Accuracy(const std::vector<float>& probs,
                const std::vector<float>& labels, float threshold) {
  TRACER_CHECK_EQ(probs.size(), labels.size());
  TRACER_CHECK(!probs.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const bool pred = probs[i] >= threshold;
    const bool truth = labels[i] > 0.5f;
    if (pred == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probs.size());
}

double Confusion::Precision() const {
  const int denom = true_positive + false_positive;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / denom;
}

double Confusion::Recall() const {
  const int denom = true_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / denom;
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

Confusion ConfusionAt(const std::vector<float>& probs,
                      const std::vector<float>& labels, float threshold) {
  TRACER_CHECK_EQ(probs.size(), labels.size());
  Confusion c;
  for (size_t i = 0; i < probs.size(); ++i) {
    const bool pred = probs[i] >= threshold;
    const bool truth = labels[i] > 0.5f;
    if (pred && truth) {
      ++c.true_positive;
    } else if (pred && !truth) {
      ++c.false_positive;
    } else if (!pred && truth) {
      ++c.false_negative;
    } else {
      ++c.true_negative;
    }
  }
  return c;
}

double ExpectedCalibrationError(const std::vector<float>& probs,
                                const std::vector<float>& labels, int bins) {
  TRACER_CHECK_EQ(probs.size(), labels.size());
  TRACER_CHECK_GT(bins, 0);
  std::vector<double> conf_sum(bins, 0.0), label_sum(bins, 0.0);
  std::vector<int64_t> count(bins, 0);
  for (size_t i = 0; i < probs.size(); ++i) {
    int b = static_cast<int>(probs[i] * bins);
    b = std::clamp(b, 0, bins - 1);
    conf_sum[b] += probs[i];
    label_sum[b] += labels[i];
    ++count[b];
  }
  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    if (count[b] == 0) continue;
    const double conf = conf_sum[b] / count[b];
    const double acc = label_sum[b] / count[b];
    ece += (static_cast<double>(count[b]) / probs.size()) *
           std::fabs(conf - acc);
  }
  return ece;
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace metrics
}  // namespace tracer
