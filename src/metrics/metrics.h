#ifndef TRACER_METRICS_METRICS_H_
#define TRACER_METRICS_METRICS_H_

#include <vector>

namespace tracer {
namespace metrics {

/// Area under the ROC curve, computed exactly from the Mann–Whitney U rank
/// statistic with midrank handling for tied scores. Labels are {0,1};
/// requires at least one positive and one negative. This is the paper's
/// primary classification metric.
double Auc(const std::vector<float>& scores, const std::vector<float>& labels);

/// Mean binary cross-entropy per sample (the paper's CEL metric).
/// `probs` are probabilities in (0,1); clamped away from 0/1 for stability.
double CrossEntropyLoss(const std::vector<float>& probs,
                        const std::vector<float>& labels);

/// Area under the precision–recall curve (average precision over recall
/// steps). More informative than ROC-AUC at the paper's class imbalance
/// (4–8% positives). Requires at least one positive.
double PrAuc(const std::vector<float>& scores,
             const std::vector<float>& labels);

/// Brier score: mean squared error between probabilities and labels.
/// Proper scoring rule combining calibration and refinement.
double BrierScore(const std::vector<float>& probs,
                  const std::vector<float>& labels);

/// Root mean squared error (regression tasks: finance, temperature).
double Rmse(const std::vector<float>& predictions,
            const std::vector<float>& targets);

/// Mean absolute error.
double Mae(const std::vector<float>& predictions,
           const std::vector<float>& targets);

/// Classification accuracy at the given probability threshold.
double Accuracy(const std::vector<float>& probs,
                const std::vector<float>& labels, float threshold = 0.5f);

/// Confusion-matrix counts at a threshold.
struct Confusion {
  int true_positive = 0;
  int false_positive = 0;
  int true_negative = 0;
  int false_negative = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

Confusion ConfusionAt(const std::vector<float>& probs,
                      const std::vector<float>& labels,
                      float threshold = 0.5f);

/// Expected calibration error over `bins` equal-width probability bins.
double ExpectedCalibrationError(const std::vector<float>& probs,
                                const std::vector<float>& labels,
                                int bins = 10);

/// Mean and sample standard deviation of repeated measurements (used to
/// report "averaged over 10 repeats" rows).
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

}  // namespace metrics
}  // namespace tracer

#endif  // TRACER_METRICS_METRICS_H_
