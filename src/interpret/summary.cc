#include "interpret/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace tracer {
namespace interpret {

std::vector<WindowStats> FeatureDistribution(
    Attributor& attributor, const data::TimeSeriesDataset& dataset,
    int feature, const std::vector<int>& cohort, int batch_size) {
  TRACER_CHECK(feature >= 0 && feature < dataset.num_features());
  TRACER_CHECK_GE(batch_size, 1);
  std::vector<int> samples = cohort;
  if (samples.empty()) {
    samples.resize(dataset.num_samples());
    std::iota(samples.begin(), samples.end(), 0);
  }

  const int T = dataset.num_windows();
  std::vector<std::vector<float>> per_window(T);
  for (size_t begin = 0; begin < samples.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(samples.size(), begin + static_cast<size_t>(batch_size));
    const std::vector<int> idx(samples.begin() + begin,
                               samples.begin() + end);
    const data::Batch batch = data::MakeBatch(dataset, idx);
    const AttributionResult result = attributor.Attribute(batch.xs);
    for (int t = 0; t < T; ++t) {
      for (int b = 0; b < batch.batch_size(); ++b) {
        per_window[t].push_back(result.samples[b].fi[t][feature]);
      }
    }
  }

  std::vector<WindowStats> out(T);
  for (int t = 0; t < T; ++t) {
    std::vector<float>& values = per_window[t];
    TRACER_CHECK(!values.empty());
    std::sort(values.begin(), values.end());
    WindowStats stats;
    stats.window = t;
    double sum = 0.0;
    double abs_sum = 0.0;
    for (float v : values) {
      sum += v;
      abs_sum += std::fabs(v);
    }
    stats.mean = static_cast<float>(sum / values.size());
    stats.mean_abs = static_cast<float>(abs_sum / values.size());
    double sq = 0.0;
    for (float v : values) {
      sq += (v - stats.mean) * (v - stats.mean);
    }
    stats.stddev =
        values.size() > 1
            ? static_cast<float>(std::sqrt(sq / (values.size() - 1)))
            : 0.0f;
    auto quantile = [&](double q) {
      const size_t pos = static_cast<size_t>(q * (values.size() - 1));
      return values[pos];
    };
    stats.min = values.front();
    stats.p25 = quantile(0.25);
    stats.median = quantile(0.5);
    stats.p75 = quantile(0.75);
    stats.max = values.back();
    out[t] = stats;
  }
  return out;
}

double Slope(const std::vector<double>& series) {
  const int n = static_cast<int>(series.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    sx += i;
    sy += series[i];
    sxx += static_cast<double>(i) * i;
    sxy += i * series[i];
  }
  const double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

std::vector<int> TopRiskSamples(const std::vector<float>& probabilities,
                                const data::TimeSeriesDataset& dataset,
                                int count) {
  TRACER_CHECK_EQ(static_cast<int>(probabilities.size()),
                  dataset.num_samples());
  std::vector<int> order;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    if (dataset.label(static_cast<int>(i)) > 0.5f) {
      order.push_back(static_cast<int>(i));
    }
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return probabilities[a] > probabilities[b];
  });
  order.resize(std::min<size_t>(order.size(), count));
  return order;
}

}  // namespace interpret
}  // namespace tracer
