#ifndef TRACER_INTERPRET_SUMMARY_H_
#define TRACER_INTERPRET_SUMMARY_H_

#include <vector>

#include "data/dataset.h"
#include "interpret/attribution.h"

namespace tracer {
namespace interpret {

/// Distribution of one feature's attribution across a cohort, per time
/// window — the statistics behind the paper's §5.4 feature-level plots.
struct WindowStats {
  int window = 0;
  float mean = 0.0f;
  /// Mean of |FI| — robust to per-patient sign flips.
  float mean_abs = 0.0f;
  float stddev = 0.0f;
  float p25 = 0.0f;
  float median = 0.0f;
  float p75 = 0.0f;
  float min = 0.0f;
  float max = 0.0f;
};

/// Attributes the cohort in fixed-size minibatches through `attributor` and
/// summarises feature `feature` per window. `cohort` optionally restricts
/// the samples (empty = all). Deterministic: values are collected in cohort
/// order, sorted, then reduced serially.
std::vector<WindowStats> FeatureDistribution(Attributor& attributor,
                                             const data::TimeSeriesDataset& dataset,
                                             int feature,
                                             const std::vector<int>& cohort = {},
                                             int batch_size = 256);

/// Linear trend (least-squares slope) of a series — classifies FI curves as
/// rising / stable / falling when summarising figures.
double Slope(const std::vector<double>& series);

/// Indices of the `count` positively-labelled samples with the highest
/// predicted probability — the representative patients the paper's
/// interpretation figures study.
std::vector<int> TopRiskSamples(const std::vector<float>& probabilities,
                                const data::TimeSeriesDataset& dataset,
                                int count);

}  // namespace interpret
}  // namespace tracer

#endif  // TRACER_INTERPRET_SUMMARY_H_
