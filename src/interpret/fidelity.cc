#include "interpret/fidelity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace tracer {
namespace interpret {

namespace {

// Cells of one sample ranked by |fi| descending; flat index (t*D + d)
// ascending breaks ties, so the ranking is a pure function of the
// attribution values.
std::vector<int> RankedCells(const SampleAttribution& sample, int T, int D) {
  std::vector<int> order(static_cast<size_t>(T) * D);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const float fa = std::fabs(sample.fi[a / D][a % D]);
    const float fb = std::fabs(sample.fi[b / D][b % D]);
    if (fa != fb) return fa > fb;
    return a < b;
  });
  return order;
}

FidelityCurve PerturbationCurve(const ScoreFn& score,
                                const std::vector<Tensor>& xs,
                                const AttributionResult& attribution,
                                const BaselineBuilder& baseline,
                                const PerturbationOptions& options,
                                bool deletion) {
  TRACER_CHECK(!xs.empty());
  TRACER_CHECK(!options.fractions.empty());
  const int T = static_cast<int>(xs.size());
  const int B = xs[0].rows();
  const int D = xs[0].cols();
  TRACER_CHECK_EQ(static_cast<int>(attribution.samples.size()), B);
  const int total = T * D;

  std::vector<std::vector<std::vector<float>>> series(B);
  std::vector<std::vector<std::vector<float>>> base(B);
  std::vector<std::vector<int>> order(B);
  for (int b = 0; b < B; ++b) {
    series[b] = SampleSeries(xs, b);
    base[b] = baseline.Series(series[b]);
    order[b] = RankedCells(attribution.samples[b], T, D);
  }

  FidelityCurve curve;
  for (const double fraction : options.fractions) {
    TRACER_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const int k = static_cast<int>(std::lround(fraction * total));
    double sum = 0.0;
    for (int chunk_begin = 0; chunk_begin < B;
         chunk_begin += options.max_batch) {
      const int n = std::min(options.max_batch, B - chunk_begin);
      std::vector<std::vector<std::vector<float>>> modified(n);
      for (int r = 0; r < n; ++r) {
        const int b = chunk_begin + r;
        // Deletion walks from the observed input toward the baseline;
        // insertion from the baseline toward the observed input — in both
        // directions the most-attributed cells move first.
        modified[r] = deletion ? series[b] : base[b];
        const std::vector<std::vector<float>>& target =
            deletion ? base[b] : series[b];
        for (int i = 0; i < k; ++i) {
          const int cell = order[b][i];
          modified[r][cell / D][cell % D] = target[cell / D][cell % D];
        }
      }
      const Tensor scores = score(PackSeries(modified));
      for (int r = 0; r < n; ++r) sum += scores.at(r, 0);
    }
    curve.points.push_back({fraction, sum / B});
  }

  // Trapezoid area between the curve and its fraction-0 level: score drop
  // for deletion, score recovery for insertion.
  const double origin = curve.points.front().mean_score;
  double auc = 0.0;
  for (size_t i = 1; i < curve.points.size(); ++i) {
    const double w = curve.points[i].fraction - curve.points[i - 1].fraction;
    const double a = deletion ? origin - curve.points[i - 1].mean_score
                              : curve.points[i - 1].mean_score - origin;
    const double b = deletion ? origin - curve.points[i].mean_score
                              : curve.points[i].mean_score - origin;
    auc += w * (a + b) / 2.0;
  }
  curve.auc = auc;
  return curve;
}

// Tie-aware average ranks of `values`.
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  TRACER_CHECK_EQ(a.size(), b.size());
  TRACER_CHECK(!a.empty());
  const size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

FidelityCurve DeletionCurve(const ScoreFn& score,
                            const std::vector<Tensor>& xs,
                            const AttributionResult& attribution,
                            const BaselineBuilder& baseline,
                            const PerturbationOptions& options) {
  return PerturbationCurve(score, xs, attribution, baseline, options,
                           /*deletion=*/true);
}

FidelityCurve InsertionCurve(const ScoreFn& score,
                             const std::vector<Tensor>& xs,
                             const AttributionResult& attribution,
                             const BaselineBuilder& baseline,
                             const PerturbationOptions& options) {
  return PerturbationCurve(score, xs, attribution, baseline, options,
                           /*deletion=*/false);
}

bool MonotoneWithin(const FidelityCurve& curve, bool non_increasing,
                    double tolerance) {
  for (size_t i = 1; i < curve.points.size(); ++i) {
    const double step =
        curve.points[i].mean_score - curve.points[i - 1].mean_score;
    if (non_increasing ? step > tolerance : step < -tolerance) return false;
  }
  return true;
}

double SpearmanRankCorrelation(const std::vector<double>& a,
                               const std::vector<double>& b) {
  TRACER_CHECK_EQ(a.size(), b.size());
  TRACER_CHECK_GE(a.size(), 2u);
  return Pearson(AverageRanks(a), AverageRanks(b));
}

std::vector<double> MeanAbsPerFeature(const AttributionResult& attribution) {
  TRACER_CHECK(!attribution.samples.empty());
  const int T = attribution.num_windows;
  const int D = attribution.num_features;
  std::vector<double> out(D, 0.0);
  for (const SampleAttribution& sample : attribution.samples) {
    for (int t = 0; t < T; ++t) {
      for (int d = 0; d < D; ++d) out[d] += std::fabs(sample.fi[t][d]);
    }
  }
  const double denom = static_cast<double>(attribution.samples.size()) * T;
  for (double& v : out) v /= denom;
  return out;
}

std::vector<double> PlantedRelevance(
    const std::vector<datagen::FeatureSpec>& panel) {
  // Models consume min–max-normalised inputs, so a feature's attainable
  // importance is governed by how much of its dynamic range the latent
  // signal explains — the coupling-to-noise ratio, not the raw coupling
  // (whose units are arbitrary per lab test).
  std::vector<double> out;
  out.reserve(panel.size());
  for (const datagen::FeatureSpec& spec : panel) {
    const double noise = std::max(1e-6, static_cast<double>(spec.noise));
    double relevance = std::fabs(spec.coupling) / noise;
    if (spec.role == datagen::FeatureRole::kNull) {
      // The generator couples kNull features at 0.1× their nominal
      // strength; pure fillers (coupling 0) stay exactly 0.
      relevance *= 0.1;
    }
    out.push_back(relevance);
  }
  return out;
}

double AttributionCorrelation(const AttributionResult& a,
                              const AttributionResult& b) {
  TRACER_CHECK_EQ(a.samples.size(), b.samples.size());
  TRACER_CHECK_EQ(a.num_windows, b.num_windows);
  TRACER_CHECK_EQ(a.num_features, b.num_features);
  std::vector<double> va, vb;
  va.reserve(a.samples.size() * a.num_windows * a.num_features);
  vb.reserve(va.capacity());
  for (size_t s = 0; s < a.samples.size(); ++s) {
    for (int t = 0; t < a.num_windows; ++t) {
      for (int d = 0; d < a.num_features; ++d) {
        va.push_back(a.samples[s].fi[t][d]);
        vb.push_back(b.samples[s].fi[t][d]);
      }
    }
  }
  return Pearson(va, vb);
}

}  // namespace interpret
}  // namespace tracer
