#include "interpret/adapters.h"

#include <numeric>
#include <vector>

#include "common/macros.h"

namespace tracer {
namespace interpret {

ModelScorer WrapSequenceModel(nn::SequenceModel* model) {
  TRACER_CHECK(model != nullptr);
  ModelScorer scorer;
  scorer.tape = [model](const std::vector<autograd::Variable>& xs) {
    return model->Forward(xs);
  };
  scorer.score = [model](const std::vector<Tensor>& xs) {
    std::vector<autograd::Variable> vars;
    vars.reserve(xs.size());
    for (const Tensor& x : xs) {
      vars.push_back(autograd::Variable::Constant(x));
    }
    return model->Forward(vars).value();
  };
  scorer.reset = [model]() {
    std::vector<autograd::Variable> params = model->Parameters();
    for (autograd::Variable& p : params) p.ZeroGrad();
  };
  return scorer;
}

ScoreFn WrapGbdt(const baselines::Gbdt* model) {
  TRACER_CHECK(model != nullptr);
  return [model](const std::vector<Tensor>& xs) {
    TRACER_CHECK(!xs.empty());
    const int T = static_cast<int>(xs.size());
    const int B = xs[0].rows();
    const int D = xs[0].cols();
    // The same over-time averaging the baseline trains on
    // (baselines::AggregateOverTime), applied to the window layout.
    baselines::TabularData data;
    data.num_rows = B;
    data.num_cols = D;
    data.values.resize(static_cast<size_t>(B) * D);
    data.labels.assign(B, 0.0f);
    for (int b = 0; b < B; ++b) {
      for (int d = 0; d < D; ++d) {
        double sum = 0.0;
        for (int t = 0; t < T; ++t) sum += xs[t].at(b, d);
        data.values[static_cast<size_t>(b) * D + d] =
            static_cast<float>(sum / T);
      }
    }
    const std::vector<float> raw = model->PredictRaw(data);
    Tensor out({B, 1});
    for (int b = 0; b < B; ++b) out.at(b, 0) = raw[b];
    return out;
  };
}

TitvAttributor::TitvAttributor(core::Titv* model, bool classification)
    : model_(model), classification_(classification) {
  TRACER_CHECK(model_ != nullptr);
}

AttributionResult TitvAttributor::Attribute(const std::vector<Tensor>& xs) {
  TRACER_CHECK(!xs.empty());
  const int T = static_cast<int>(xs.size());
  const int B = xs[0].rows();
  const int D = xs[0].cols();

  data::Batch batch;
  batch.xs = xs;
  batch.labels = Tensor::Zeros({B, 1});
  batch.sample_indices.resize(B);
  std::iota(batch.sample_indices.begin(), batch.sample_indices.end(), 0);

  const core::FeatureImportanceTrace trace =
      model_->ComputeFeatureImportance(batch, classification_);

  AttributionResult result;
  result.method = Method::kTitvNative;
  result.num_windows = T;
  result.num_features = D;
  result.samples.resize(B);
  for (int b = 0; b < B; ++b) {
    SampleAttribution& sample = result.samples[b];
    sample.score = trace.outputs.at(b, 0);
    sample.baseline_score = 0.0f;
    sample.fi.assign(T, std::vector<float>(D, 0.0f));
    for (int t = 0; t < T; ++t) {
      for (int d = 0; d < D; ++d) sample.fi[t][d] = trace.fi[t].at(b, d);
    }
  }
  return result;
}

}  // namespace interpret
}  // namespace tracer
