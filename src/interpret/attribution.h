#ifndef TRACER_INTERPRET_ATTRIBUTION_H_
#define TRACER_INTERPRET_ATTRIBUTION_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace tracer {
namespace interpret {

/// Black-box scoring closure: xs[t] is the B×D matrix of time window t,
/// the result is the B×1 raw model output (a logit for classification, a
/// real prediction for regression). Every model family in the repo — TITV,
/// LR, the RNN baselines, GBDT — can be wrapped into this shape (see
/// adapters.h), which is what makes the attributors model-agnostic.
using ScoreFn = std::function<Tensor(const std::vector<Tensor>& xs)>;

/// White-box scoring closure over the autograd tape, for gradient-based
/// attribution. The input variables are Parameter leaves so Backward
/// deposits d(score)/d(input) into them.
using TapeScoreFn =
    std::function<autograd::Variable(const std::vector<autograd::Variable>&)>;

/// The attribution methods behind the unified interface.
enum class Method {
  /// TITV's native Eq. 17 importances (β ⊕ α_t) · w — free with the
  /// forward pass, but only defined for the TITV model.
  kTitvNative,
  /// Integrated gradients along the straight path from a baseline input:
  /// fi(t,d) = (x − x')_{t,d} · mean_k ∂f/∂x_{t,d}(x' + α_k(x − x')).
  kIntegratedGradients,
  /// Occlusion / feature ablation: fi(t,d) = f(x) − f(x with cell (t,d)
  /// replaced by its baseline value).
  kOcclusion,
};

const char* MethodName(Method method);

/// Reference-input family for IG paths and occlusion replacements.
enum class BaselineKind {
  /// All-zero input (the post-normalisation "feature absent" point).
  kZero,
  /// The admission state frozen in time: window 0 carried forward over the
  /// series, so attributions measure the contribution of *temporal change*.
  kCarryForward,
  /// Per-feature mean over a reference cohort (requires FitPopulation).
  kPopulationMean,
};

const char* BaselineName(BaselineKind kind);

/// Per-sample attribution: fi[t][d] plus the raw scores at the input and at
/// the baseline, so completeness (Σ fi ≈ score − baseline_score) is
/// checkable by the caller.
struct SampleAttribution {
  std::vector<std::vector<float>> fi;
  float score = 0.0f;
  float baseline_score = 0.0f;
};

struct AttributionResult {
  Method method = Method::kOcclusion;
  int num_windows = 0;
  int num_features = 0;
  std::vector<SampleAttribution> samples;
};

/// Builds reference inputs, reusing the data-cleaning imputation machinery
/// (data::Impute) so "carry forward" means exactly what the pipeline's
/// forward-fill means.
class BaselineBuilder {
 public:
  explicit BaselineBuilder(BaselineKind kind) : kind_(kind) {}

  BaselineKind kind() const { return kind_; }
  bool fitted() const { return fitted_; }

  /// Computes the per-feature population mean from a reference cohort.
  /// Required before use for kPopulationMean; a no-op hint otherwise.
  void FitPopulation(const data::TimeSeriesDataset& reference);

  /// Full reference series for one sample: series[t][d] in, baseline out.
  std::vector<std::vector<float>> Series(
      const std::vector<std::vector<float>>& series) const;

  /// Reference value for one cell (t, d) of the sample — what occlusion
  /// writes over the observed value.
  float Cell(const std::vector<std::vector<float>>& series, int window,
             int feature) const;

 private:
  BaselineKind kind_;
  bool fitted_ = false;
  std::vector<float> population_mean_;
};

/// One attribution method behind the model-agnostic interface. `xs` uses the
/// data::Batch window layout (xs[t] = B×D), so data::FullBatch(ds).xs feeds
/// straight in.
class Attributor {
 public:
  virtual ~Attributor() = default;

  virtual Method method() const = 0;
  const char* name() const { return MethodName(method()); }

  virtual AttributionResult Attribute(const std::vector<Tensor>& xs) = 0;
};

struct IntegratedGradientsOptions {
  /// Riemann midpoint steps along the path. Error decays as O(1/steps);
  /// exact for linear models at any step count.
  int steps = 16;
};

/// Integrated gradients over the autograd tape. The m path points of one
/// sample are batched as m rows of one forward pass, so the path rides the
/// blocked GEMM kernels; the per-cell step average is reduced serially in
/// ascending step order, which together with the gemm accumulation contract
/// makes results bit-identical across thread counts and kernels.
class IntegratedGradients : public Attributor {
 public:
  /// `after_backward` runs once per sample after gradients are harvested —
  /// wrap the model's parameter ZeroGrad here so tape reuse stays clean
  /// (input-leaf gradients are consumed via TakeGrad automatically).
  IntegratedGradients(TapeScoreFn tape, BaselineBuilder baseline,
                      IntegratedGradientsOptions options = {},
                      std::function<void()> after_backward = {});

  Method method() const override { return Method::kIntegratedGradients; }
  AttributionResult Attribute(const std::vector<Tensor>& xs) override;

 private:
  TapeScoreFn tape_;
  BaselineBuilder baseline_;
  IntegratedGradientsOptions options_;
  std::function<void()> after_backward_;
};

struct OcclusionOptions {
  /// Occluded variants scored per forward call. Fixed chunking (independent
  /// of the thread budget) keeps results deterministic for any parallelism.
  int max_batch = 256;
};

/// Occlusion attribution over a black-box ScoreFn: every cell is replaced by
/// its baseline value one at a time and the score drop recorded.
class Occlusion : public Attributor {
 public:
  Occlusion(ScoreFn score, BaselineBuilder baseline,
            OcclusionOptions options = {});

  Method method() const override { return Method::kOcclusion; }
  AttributionResult Attribute(const std::vector<Tensor>& xs) override;

 private:
  ScoreFn score_;
  BaselineBuilder baseline_;
  OcclusionOptions options_;
};

/// series[t][d] of one batch row (the per-sample view fidelity curves and
/// baselines operate on).
std::vector<std::vector<float>> SampleSeries(const std::vector<Tensor>& xs,
                                             int row);

/// Packs per-sample series back into the batch window layout (xs[t] = B×D).
std::vector<Tensor> PackSeries(
    const std::vector<std::vector<std::vector<float>>>& series);

}  // namespace interpret
}  // namespace tracer

#endif  // TRACER_INTERPRET_ATTRIBUTION_H_
