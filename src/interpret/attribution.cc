#include "interpret/attribution.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "data/imputation.h"
#include "parallel/parallel_for.h"

namespace tracer {
namespace interpret {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kTitvNative:
      return "native";
    case Method::kIntegratedGradients:
      return "ig";
    case Method::kOcclusion:
      return "occlusion";
  }
  return "unknown";
}

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kZero:
      return "zero";
    case BaselineKind::kCarryForward:
      return "carry_forward";
    case BaselineKind::kPopulationMean:
      return "population_mean";
  }
  return "unknown";
}

namespace {

// One-sample dataset holding `series`, the shape data::Impute consumes.
data::TimeSeriesDataset SeriesDataset(
    const std::vector<std::vector<float>>& series) {
  const int T = static_cast<int>(series.size());
  const int D = static_cast<int>(series[0].size());
  data::TimeSeriesDataset ds(data::TaskType::kBinaryClassification, 1, T, D);
  for (int t = 0; t < T; ++t) {
    for (int d = 0; d < D; ++d) ds.at(0, t, d) = series[t][d];
  }
  return ds;
}

}  // namespace

void BaselineBuilder::FitPopulation(const data::TimeSeriesDataset& reference) {
  TRACER_CHECK_GT(reference.num_samples(), 0);
  population_mean_.assign(reference.num_features(), 0.0f);
  for (int d = 0; d < reference.num_features(); ++d) {
    double sum = 0.0;
    for (int s = 0; s < reference.num_samples(); ++s) {
      for (int t = 0; t < reference.num_windows(); ++t) {
        sum += reference.at(s, t, d);
      }
    }
    population_mean_[d] = static_cast<float>(
        sum / (static_cast<double>(reference.num_samples()) *
               reference.num_windows()));
  }
  fitted_ = true;
}

std::vector<std::vector<float>> BaselineBuilder::Series(
    const std::vector<std::vector<float>>& series) const {
  TRACER_CHECK(!series.empty());
  const int T = static_cast<int>(series.size());
  const int D = static_cast<int>(series[0].size());
  std::vector<std::vector<float>> out(T, std::vector<float>(D, 0.0f));
  switch (kind_) {
    case BaselineKind::kZero:
      break;
    case BaselineKind::kCarryForward: {
      // Mark everything after window 0 unobserved (the mask constructs
      // fully observed) and forward-fill: the baseline is the admission
      // state frozen over the whole series.
      data::TimeSeriesDataset ds = SeriesDataset(series);
      data::MissingnessMask mask(1, T, D);
      for (int t = 1; t < T; ++t) {
        for (int d = 0; d < D; ++d) mask.set_observed(0, t, d, false);
      }
      data::Impute(&ds, mask, data::ImputationStrategy::kForwardFill);
      for (int t = 0; t < T; ++t) {
        for (int d = 0; d < D; ++d) out[t][d] = ds.at(0, t, d);
      }
      break;
    }
    case BaselineKind::kPopulationMean:
      TRACER_CHECK(fitted_)
          << "population-mean baseline used before FitPopulation";
      TRACER_CHECK_EQ(static_cast<int>(population_mean_.size()), D);
      for (int t = 0; t < T; ++t) {
        for (int d = 0; d < D; ++d) out[t][d] = population_mean_[d];
      }
      break;
  }
  return out;
}

float BaselineBuilder::Cell(const std::vector<std::vector<float>>& series,
                            int window, int feature) const {
  switch (kind_) {
    case BaselineKind::kZero:
      return 0.0f;
    case BaselineKind::kCarryForward: {
      // Mask exactly the occluded cell; forward fill carries the previous
      // window's value in (window 0 falls back to the feature's observed
      // mean, per the imputation contract).
      const int T = static_cast<int>(series.size());
      const int D = static_cast<int>(series[0].size());
      data::TimeSeriesDataset ds = SeriesDataset(series);
      data::MissingnessMask mask(1, T, D);
      for (int t = 0; t < T; ++t) {
        for (int d = 0; d < D; ++d) mask.set_observed(0, t, d, true);
      }
      mask.set_observed(0, window, feature, false);
      data::Impute(&ds, mask, data::ImputationStrategy::kForwardFill);
      return ds.at(0, window, feature);
    }
    case BaselineKind::kPopulationMean:
      TRACER_CHECK(fitted_)
          << "population-mean baseline used before FitPopulation";
      return population_mean_[feature];
  }
  return 0.0f;
}

std::vector<std::vector<float>> SampleSeries(const std::vector<Tensor>& xs,
                                             int row) {
  TRACER_CHECK(!xs.empty());
  const int T = static_cast<int>(xs.size());
  const int D = xs[0].cols();
  std::vector<std::vector<float>> series(T, std::vector<float>(D));
  for (int t = 0; t < T; ++t) {
    for (int d = 0; d < D; ++d) series[t][d] = xs[t].at(row, d);
  }
  return series;
}

std::vector<Tensor> PackSeries(
    const std::vector<std::vector<std::vector<float>>>& series) {
  TRACER_CHECK(!series.empty());
  const int B = static_cast<int>(series.size());
  const int T = static_cast<int>(series[0].size());
  const int D = static_cast<int>(series[0][0].size());
  std::vector<Tensor> xs(T);
  for (int t = 0; t < T; ++t) {
    Tensor w({B, D});
    for (int b = 0; b < B; ++b) {
      for (int d = 0; d < D; ++d) w.at(b, d) = series[b][t][d];
    }
    xs[t] = std::move(w);
  }
  return xs;
}

IntegratedGradients::IntegratedGradients(TapeScoreFn tape,
                                         BaselineBuilder baseline,
                                         IntegratedGradientsOptions options,
                                         std::function<void()> after_backward)
    : tape_(std::move(tape)),
      baseline_(std::move(baseline)),
      options_(options),
      after_backward_(std::move(after_backward)) {
  TRACER_CHECK(tape_ != nullptr);
  TRACER_CHECK_GE(options_.steps, 1);
}

AttributionResult IntegratedGradients::Attribute(
    const std::vector<Tensor>& xs) {
  TRACER_CHECK(!xs.empty());
  const int T = static_cast<int>(xs.size());
  const int B = xs[0].rows();
  const int D = xs[0].cols();
  const int m = options_.steps;

  AttributionResult result;
  result.method = Method::kIntegratedGradients;
  result.num_windows = T;
  result.num_features = D;
  result.samples.resize(B);

  for (int b = 0; b < B; ++b) {
    const std::vector<std::vector<float>> series = SampleSeries(xs, b);
    const std::vector<std::vector<float>> base = baseline_.Series(series);

    // All m path points of this sample as rows of one batch, so the whole
    // path is one forward/backward through the GEMM kernels. Midpoint rule:
    // alpha_k = (k + 1/2)/m.
    std::vector<autograd::Variable> path(T);
    for (int t = 0; t < T; ++t) {
      Tensor p({m, D});
      parallel::ParallelFor(64, m, [&](int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          const float alpha = (static_cast<float>(k) + 0.5f) / m;
          for (int d = 0; d < D; ++d) {
            p.at(static_cast<int>(k), d) =
                base[t][d] + alpha * (series[t][d] - base[t][d]);
          }
        }
      });
      path[t] = autograd::Variable::Parameter(std::move(p));
    }

    autograd::Variable out = tape_(path);
    TRACER_CHECK_EQ(out.value().rows(), m);
    TRACER_CHECK_EQ(out.value().cols(), 1);
    out.Backward(Tensor::Ones({m, 1}));

    SampleAttribution& sample = result.samples[b];
    sample.fi.assign(T, std::vector<float>(D, 0.0f));
    for (int t = 0; t < T; ++t) {
      const Tensor grad = path[t].TakeGrad();
      for (int d = 0; d < D; ++d) {
        // Serial ascending-k reduction: the step average is independent of
        // the thread budget by construction.
        double acc = 0.0;
        for (int k = 0; k < m; ++k) acc += grad.at(k, d);
        sample.fi[t][d] = static_cast<float>(
            (series[t][d] - base[t][d]) * (acc / m));
      }
    }
    if (after_backward_) after_backward_();

    // Path endpoints in one 2-row forward: row 0 the input, row 1 the
    // baseline.
    std::vector<autograd::Variable> endpoints(T);
    for (int t = 0; t < T; ++t) {
      Tensor e({2, D});
      for (int d = 0; d < D; ++d) {
        e.at(0, d) = series[t][d];
        e.at(1, d) = base[t][d];
      }
      endpoints[t] = autograd::Variable::Constant(std::move(e));
    }
    const Tensor scores = tape_(endpoints).value();
    sample.score = scores.at(0, 0);
    sample.baseline_score = scores.at(1, 0);
  }
  return result;
}

Occlusion::Occlusion(ScoreFn score, BaselineBuilder baseline,
                     OcclusionOptions options)
    : score_(std::move(score)),
      baseline_(std::move(baseline)),
      options_(options) {
  TRACER_CHECK(score_ != nullptr);
  TRACER_CHECK_GE(options_.max_batch, 1);
}

AttributionResult Occlusion::Attribute(const std::vector<Tensor>& xs) {
  TRACER_CHECK(!xs.empty());
  const int T = static_cast<int>(xs.size());
  const int B = xs[0].rows();
  const int D = xs[0].cols();

  AttributionResult result;
  result.method = Method::kOcclusion;
  result.num_windows = T;
  result.num_features = D;
  result.samples.resize(B);

  const Tensor base_scores = score_(xs);
  TRACER_CHECK_EQ(base_scores.rows(), B);

  for (int b = 0; b < B; ++b) {
    const std::vector<std::vector<float>> series = SampleSeries(xs, b);
    SampleAttribution& sample = result.samples[b];
    sample.score = base_scores.at(b, 0);
    sample.fi.assign(T, std::vector<float>(D, 0.0f));
    sample.baseline_score =
        score_(PackSeries({baseline_.Series(series)})).at(0, 0);

    // One occluded variant per cell, scored in fixed-size chunks so the
    // batching (and therefore the arithmetic) never depends on the thread
    // budget.
    const int total = T * D;
    for (int chunk_begin = 0; chunk_begin < total;
         chunk_begin += options_.max_batch) {
      const int n = std::min(options_.max_batch, total - chunk_begin);
      std::vector<Tensor> variants(T);
      for (int t = 0; t < T; ++t) {
        Tensor w({n, D});
        for (int r = 0; r < n; ++r) {
          for (int d = 0; d < D; ++d) w.at(r, d) = series[t][d];
        }
        variants[t] = std::move(w);
      }
      for (int r = 0; r < n; ++r) {
        const int cell = chunk_begin + r;
        const int t = cell / D;
        const int d = cell % D;
        variants[t].at(r, d) = baseline_.Cell(series, t, d);
      }
      const Tensor scores = score_(variants);
      for (int r = 0; r < n; ++r) {
        const int cell = chunk_begin + r;
        sample.fi[cell / D][cell % D] =
            sample.score - scores.at(r, 0);
      }
    }
  }
  return result;
}

}  // namespace interpret
}  // namespace tracer
