#ifndef TRACER_INTERPRET_ADAPTERS_H_
#define TRACER_INTERPRET_ADAPTERS_H_

#include "baselines/gbdt.h"
#include "core/titv.h"
#include "interpret/attribution.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace interpret {

/// Scoring closures of one model, in the shapes the attributors consume.
/// Scores are the model's raw outputs (logits for classification): additive
/// offsets and monotone activations do not change attribution rankings, and
/// raw outputs keep IG completeness exact on linear models.
struct ModelScorer {
  ScoreFn score;
  TapeScoreFn tape;
  /// Zeroes the model's parameter gradients; IntegratedGradients calls this
  /// after every backward pass so attribution never pollutes training state.
  std::function<void()> reset;
};

/// Wraps any nn::SequenceModel (TITV, LR, the RNN baselines) for both
/// black-box and gradient-based attribution.
ModelScorer WrapSequenceModel(nn::SequenceModel* model);

/// Wraps a trained GBDT: windows are averaged per feature (the same
/// aggregation the baseline trains on) and scored with the raw boosted
/// score. Trees have no useful gradients, so GBDT gets occlusion only.
ScoreFn WrapGbdt(const baselines::Gbdt* model);

/// Adapter over TITV's native Eq. 17 importances, free with one forward
/// pass. `score` / `baseline_score` report the model output in task units
/// (a probability for classification); `baseline_score` is 0 — the native
/// method has no reference input.
class TitvAttributor : public Attributor {
 public:
  explicit TitvAttributor(core::Titv* model, bool classification = true);

  Method method() const override { return Method::kTitvNative; }
  AttributionResult Attribute(const std::vector<Tensor>& xs) override;

 private:
  core::Titv* model_;
  bool classification_;
};

}  // namespace interpret
}  // namespace tracer

#endif  // TRACER_INTERPRET_ADAPTERS_H_
