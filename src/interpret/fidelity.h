#ifndef TRACER_INTERPRET_FIDELITY_H_
#define TRACER_INTERPRET_FIDELITY_H_

#include <vector>

#include "datagen/emr_generator.h"
#include "interpret/attribution.h"

namespace tracer {
namespace interpret {

// Robustness suite for attributions: perturbation-fidelity curves, planted
// ground-truth rank correlation and the model-randomization sanity check —
// the checks "Failure Modes of Time Series Interpretability Algorithms"
// argues attributions must ship with. Runnable both as ctest gates
// (tests/interpret_fidelity_test.cc) and as the BENCH_interp_fidelity.json
// artifact (bench/interp_fidelity.cc).

/// One point of a perturbation curve: `fraction` of the most-attributed
/// cells perturbed, mean raw score over the evaluated samples.
struct CurvePoint {
  double fraction = 0.0;
  double mean_score = 0.0;
};

/// Deletion/insertion fidelity curve. `auc` is the trapezoid area between
/// the curve and its fraction-0 value: the mean score *drop* for deletion,
/// the mean score *recovery* for insertion. A faithful attributor removes
/// (or restores) the influential cells first, so its AUC beats a random
/// ranking's.
struct FidelityCurve {
  std::vector<CurvePoint> points;
  double auc = 0.0;
};

struct PerturbationOptions {
  /// Fractions of cells perturbed, ascending, starting at 0.
  std::vector<double> fractions = {0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
  /// Samples scored per forward call.
  int max_batch = 256;
};

/// Deletion curve: per sample, rank cells by |fi| descending (index order
/// breaks ties, so the curve is deterministic) and replace the top fraction
/// with their baseline values.
FidelityCurve DeletionCurve(const ScoreFn& score,
                            const std::vector<Tensor>& xs,
                            const AttributionResult& attribution,
                            const BaselineBuilder& baseline,
                            const PerturbationOptions& options = {});

/// Insertion curve: start from the all-baseline input and restore the top
/// fraction of cells to their observed values.
FidelityCurve InsertionCurve(const ScoreFn& score,
                             const std::vector<Tensor>& xs,
                             const AttributionResult& attribution,
                             const BaselineBuilder& baseline,
                             const PerturbationOptions& options = {});

/// True when the curve's mean score moves monotonically (non-increasing for
/// deletion, non-decreasing for insertion) up to `tolerance` per step.
bool MonotoneWithin(const FidelityCurve& curve, bool non_increasing,
                    double tolerance);

/// Tie-aware Spearman rank correlation (average ranks + Pearson on ranks).
double SpearmanRankCorrelation(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Mean |fi| per feature across samples and windows — the per-feature
/// saliency profile compared against planted ground truth.
std::vector<double> MeanAbsPerFeature(const AttributionResult& attribution);

/// Ground-truth relevance of each panel feature: |coupling| for the driven
/// roles, the generator's residual 0.1·|coupling| for kNull, 0 for pure
/// fillers (coupling 0).
std::vector<double> PlantedRelevance(
    const std::vector<datagen::FeatureSpec>& panel);

/// Pearson correlation between two attribution sets over the flattened
/// (sample, window, feature) cells. The model-randomization sanity check
/// compares a trained model's attributions against a freshly re-initialised
/// model's: a faithful method decorrelates (|r| small) because its output
/// depends on the learned parameters.
double AttributionCorrelation(const AttributionResult& a,
                              const AttributionResult& b);

}  // namespace interpret
}  // namespace tracer

#endif  // TRACER_INTERPRET_FIDELITY_H_
