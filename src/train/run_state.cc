#include "train/run_state.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "nn/serialization.h"

namespace tracer {
namespace train {

namespace {

constexpr uint64_t kFormatVersion = 1;
constexpr char kHeaderName[] = "__run_state";

// The TRCKPT1 container stores float32 payloads, so scalar run state is
// bit-packed into a 1-D header tensor: each uint64 becomes four floats, one
// per 16-bit half-word. Every value in [0, 65535] is exactly representable
// in float32, so the round trip is lossless for arbitrary 64-bit patterns
// (including NaN loss accumulators and raw RNG words).
void PushU64(std::vector<float>* out, uint64_t v) {
  for (int k = 0; k < 4; ++k) {
    out->push_back(static_cast<float>((v >> (16 * k)) & 0xFFFFu));
  }
}

void PushF64(std::vector<float>* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PushU64(out, bits);
}

void PushF32(std::vector<float>* out, float v) {
  uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PushU64(out, bits);
}

/// Bounds- and integrality-checked cursor over the packed header tensor, so
/// a damaged header surfaces as a Status instead of undefined behaviour.
class HeaderReader {
 public:
  explicit HeaderReader(const Tensor& t) : t_(t) {}

  Status ReadU64(uint64_t* out) {
    if (pos_ + 4 > t_.size()) {
      return Status::InvalidArgument("run-state header truncated");
    }
    uint64_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const float f = t_.data()[pos_ + k];
      const int64_t w = static_cast<int64_t>(f);
      if (static_cast<float>(w) != f || w < 0 || w > 0xFFFF) {
        return Status::InvalidArgument(
            "run-state header is not half-word packed");
      }
      v |= static_cast<uint64_t>(w) << (16 * k);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadI64(int64_t* out) {
    uint64_t v = 0;
    TRACER_RETURN_IF_ERROR(ReadU64(&v));
    if (v > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
      return Status::InvalidArgument("run-state count out of range");
    }
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  Status ReadInt(int* out) {
    int64_t v = 0;
    TRACER_RETURN_IF_ERROR(ReadI64(&v));
    if (v > std::numeric_limits<int>::max()) {
      return Status::InvalidArgument("run-state count out of range");
    }
    *out = static_cast<int>(v);
    return Status::OK();
  }

  Status ReadF64(double* out) {
    uint64_t bits = 0;
    TRACER_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status ReadF32(float* out) {
    uint64_t bits = 0;
    TRACER_RETURN_IF_ERROR(ReadU64(&bits));
    const uint32_t low = static_cast<uint32_t>(bits);
    std::memcpy(out, &low, sizeof(*out));
    return Status::OK();
  }

 private:
  const Tensor& t_;
  int64_t pos_ = 0;
};

std::string IndexedName(const char* prefix, size_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s/%04zu", prefix, i);
  return std::string(buf);
}

void AppendTensors(std::vector<std::pair<std::string, Tensor>>* out,
                   const char* prefix, const std::vector<Tensor>& tensors) {
  for (size_t i = 0; i < tensors.size(); ++i) {
    out->emplace_back(IndexedName(prefix, i), tensors[i]);
  }
}

Status TakeTensors(const std::vector<std::pair<std::string, Tensor>>& entries,
                   size_t* cursor, const char* prefix, uint64_t count,
                   std::vector<Tensor>* out) {
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const std::string want = IndexedName(prefix, i);
    if (*cursor >= entries.size() || entries[*cursor].first != want) {
      return Status::InvalidArgument("run state missing tensor " + want);
    }
    out->push_back(entries[*cursor].second);
    ++*cursor;
  }
  return Status::OK();
}

}  // namespace

Status SaveRunState(const std::string& path, const RunState& state) {
  std::vector<float> header;
  header.reserve(4 * (24 + state.rng_state.size() + state.train_loss.size() +
                      state.val_loss.size()));
  PushU64(&header, kFormatVersion);
  PushU64(&header, state.completed ? 1 : 0);
  PushU64(&header, static_cast<uint64_t>(state.epoch));
  PushU64(&header, static_cast<uint64_t>(state.next_batch));
  PushF64(&header, state.loss_sum);
  PushF64(&header, state.grad_norm_sum);
  PushU64(&header, static_cast<uint64_t>(state.seen));
  PushU64(&header, static_cast<uint64_t>(state.batches));
  PushU64(&header, static_cast<uint64_t>(state.epoch_nonfinite));
  PushU64(&header, static_cast<uint64_t>(state.adam_step_count));
  PushF32(&header, state.lr);
  PushF32(&header, state.stopper_best);
  PushU64(&header, static_cast<uint64_t>(state.stopper_best_epoch));
  PushU64(&header, static_cast<uint64_t>(state.stopper_epochs));
  PushU64(&header, static_cast<uint64_t>(state.stopper_stale));
  PushU64(&header, static_cast<uint64_t>(state.best_epoch));
  PushU64(&header, static_cast<uint64_t>(state.epochs_run));
  PushU64(&header, static_cast<uint64_t>(state.nonfinite_batches));
  PushU64(&header, static_cast<uint64_t>(state.consecutive_nonfinite));
  PushU64(&header, static_cast<uint64_t>(state.lr_halvings));
  PushU64(&header, state.rng_state.size());
  for (uint64_t word : state.rng_state) PushU64(&header, word);
  PushU64(&header, state.train_loss.size());
  for (double v : state.train_loss) PushF64(&header, v);
  PushU64(&header, state.val_loss.size());
  for (double v : state.val_loss) PushF64(&header, v);
  PushU64(&header, state.model_state.size());
  PushU64(&header, state.best_state.size());
  PushU64(&header, state.adam_m.size());
  PushU64(&header, state.adam_v.size());

  std::vector<std::pair<std::string, Tensor>> entries;
  entries.reserve(1 + state.model_state.size() + state.best_state.size() +
                  state.adam_m.size() + state.adam_v.size());
  const int header_len = static_cast<int>(header.size());
  entries.emplace_back(kHeaderName, Tensor({header_len}, std::move(header)));
  AppendTensors(&entries, "model", state.model_state);
  AppendTensors(&entries, "best", state.best_state);
  AppendTensors(&entries, "adam_m", state.adam_m);
  AppendTensors(&entries, "adam_v", state.adam_v);
  return nn::SaveCheckpoint(path, entries);
}

Result<RunState> LoadRunState(const std::string& path) {
  Result<std::vector<std::pair<std::string, Tensor>>> loaded =
      nn::LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  const std::vector<std::pair<std::string, Tensor>>& entries = loaded.value();
  if (entries.empty() || entries[0].first != kHeaderName) {
    return Status::InvalidArgument("checkpoint is not a run state: " + path);
  }

  RunState state;
  HeaderReader reader(entries[0].second);
  uint64_t version = 0;
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&version));
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported run-state version");
  }
  uint64_t completed = 0;
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&completed));
  state.completed = completed != 0;
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.epoch));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.next_batch));
  TRACER_RETURN_IF_ERROR(reader.ReadF64(&state.loss_sum));
  TRACER_RETURN_IF_ERROR(reader.ReadF64(&state.grad_norm_sum));
  TRACER_RETURN_IF_ERROR(reader.ReadI64(&state.seen));
  TRACER_RETURN_IF_ERROR(reader.ReadI64(&state.batches));
  TRACER_RETURN_IF_ERROR(reader.ReadI64(&state.epoch_nonfinite));
  TRACER_RETURN_IF_ERROR(reader.ReadI64(&state.adam_step_count));
  TRACER_RETURN_IF_ERROR(reader.ReadF32(&state.lr));
  TRACER_RETURN_IF_ERROR(reader.ReadF32(&state.stopper_best));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.stopper_best_epoch));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.stopper_epochs));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.stopper_stale));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.best_epoch));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.epochs_run));
  TRACER_RETURN_IF_ERROR(reader.ReadI64(&state.nonfinite_batches));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.consecutive_nonfinite));
  TRACER_RETURN_IF_ERROR(reader.ReadInt(&state.lr_halvings));
  // Variable-length sections are bounded by the header size already read,
  // so a corrupt count fails the next bounds check rather than allocating.
  uint64_t rng_words = 0;
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&rng_words));
  const uint64_t header_capacity =
      static_cast<uint64_t>(entries[0].second.size());
  if (rng_words > header_capacity) {
    return Status::InvalidArgument("run-state count out of range");
  }
  state.rng_state.resize(rng_words);
  for (uint64_t i = 0; i < rng_words; ++i) {
    TRACER_RETURN_IF_ERROR(reader.ReadU64(&state.rng_state[i]));
  }
  uint64_t train_points = 0;
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&train_points));
  if (train_points > header_capacity) {
    return Status::InvalidArgument("run-state count out of range");
  }
  state.train_loss.resize(train_points);
  for (uint64_t i = 0; i < train_points; ++i) {
    TRACER_RETURN_IF_ERROR(reader.ReadF64(&state.train_loss[i]));
  }
  uint64_t val_points = 0;
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&val_points));
  if (val_points > header_capacity) {
    return Status::InvalidArgument("run-state count out of range");
  }
  state.val_loss.resize(val_points);
  for (uint64_t i = 0; i < val_points; ++i) {
    TRACER_RETURN_IF_ERROR(reader.ReadF64(&state.val_loss[i]));
  }

  uint64_t model_count = 0;
  uint64_t best_count = 0;
  uint64_t adam_m_count = 0;
  uint64_t adam_v_count = 0;
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&model_count));
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&best_count));
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&adam_m_count));
  TRACER_RETURN_IF_ERROR(reader.ReadU64(&adam_v_count));
  size_t cursor = 1;
  TRACER_RETURN_IF_ERROR(
      TakeTensors(entries, &cursor, "model", model_count, &state.model_state));
  TRACER_RETURN_IF_ERROR(
      TakeTensors(entries, &cursor, "best", best_count, &state.best_state));
  TRACER_RETURN_IF_ERROR(
      TakeTensors(entries, &cursor, "adam_m", adam_m_count, &state.adam_m));
  TRACER_RETURN_IF_ERROR(
      TakeTensors(entries, &cursor, "adam_v", adam_v_count, &state.adam_v));
  if (cursor != entries.size()) {
    return Status::InvalidArgument("run state has unexpected extra tensors");
  }
  return state;
}

}  // namespace train
}  // namespace tracer
