#include "train/signal_guard.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

#include "common/mutex.h"

namespace tracer {
namespace train {

namespace {

// Signal-handler state. The flag is the only thing the handler and the
// polling threads share; sig_atomic_t + volatile is the async-signal-safe
// idiom for exactly this handshake. The pipe write is a wake-up side
// channel for poll() loops, not the source of truth.
volatile std::sig_atomic_t g_shutdown = 0;
int g_pipe_rd = -1;
int g_pipe_wr = -1;

// Install bookkeeping (not touched by the handler).
common::Mutex g_install_mu;
int g_installs TRACER_GUARDED_BY(g_install_mu) = 0;
struct sigaction g_prev_term TRACER_GUARDED_BY(g_install_mu);
struct sigaction g_prev_int TRACER_GUARDED_BY(g_install_mu);

void OnSignal(int /*signo*/) {
  g_shutdown = 1;
  if (g_pipe_wr >= 0) {
    // Wake any poll() blocked on the read end. The pipe is non-blocking;
    // if it is full the wake-up already happened, so a failed write is
    // fine — and errno must be preserved for the interrupted code.
    const int saved_errno = errno;
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_pipe_wr, &byte, 1);
    errno = saved_errno;
  }
}

void EnsurePipe() {
  if (g_pipe_rd >= 0) return;
  int fds[2];
  if (::pipe(fds) != 0) return;  // degraded: flag-only operation
  for (int fd : {fds[0], fds[1]}) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  g_pipe_rd = fds[0];
  g_pipe_wr = fds[1];
}

}  // namespace

SignalGuard::SignalGuard() {
  common::MutexLock lock(&g_install_mu);
  if (g_installs++ > 0) return;
  EnsurePipe();
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_handler = OnSignal;
  // SA_RESTART: the trainer polls the flag between batches; interrupted
  // syscalls elsewhere should resume rather than surface spurious EINTRs.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, &g_prev_term);
  ::sigaction(SIGINT, &action, &g_prev_int);
}

SignalGuard::~SignalGuard() {
  common::MutexLock lock(&g_install_mu);
  if (--g_installs > 0) return;
  ::sigaction(SIGTERM, &g_prev_term, nullptr);
  ::sigaction(SIGINT, &g_prev_int, nullptr);
}

bool SignalGuard::ShutdownRequested() { return g_shutdown != 0; }

int SignalGuard::wake_fd() { return g_pipe_rd; }

void SignalGuard::Reset() {
  g_shutdown = 0;
  if (g_pipe_rd >= 0) {
    char drain[16];
    while (::read(g_pipe_rd, drain, sizeof(drain)) > 0) {
    }
  }
}

}  // namespace train
}  // namespace tracer
