#ifndef TRACER_TRAIN_TRAINER_H_
#define TRACER_TRAIN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/retry.h"
#include "data/dataset.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace train {

/// Pluggable gradient-reduction hook: when TrainConfig::grad_reducer is
/// set, the trainer delegates each batch's backward pass to the reducer
/// instead of running it inline, which is how the process-level
/// data-parallel runtime (src/dist) plugs in without the trainer knowing
/// about sockets or membership.
///
/// Contract: ReduceStep must leave the *reduced* gradient for the whole
/// batch installed in `params`' grad tensors and return the reduced mean
/// loss. Both must be bitwise identical on every participating worker for
/// the same step — the trainer then replays identical guard / LR /
/// early-stop decisions everywhere, keeping workers in lockstep without a
/// parameter broadcast.
class GradReducer {
 public:
  virtual ~GradReducer() = default;

  /// `eval(indices)` zeroes the gradients, runs forward+backward on the
  /// sub-batch `indices` (a subset of `batch_indices`) and returns its
  /// mean loss; after it returns, `params`' grads hold that sub-batch's
  /// mean gradient. The reducer calls it once per data shard it owns (and
  /// again for shards it is asked to cover for a crashed peer), exchanges
  /// the shard contributions, and installs the reduced result.
  ///
  /// `step_id` is (epoch << 32) | batch_index — monotone across resume.
  /// A non-OK result aborts the run (TrainResult::status carries it).
  virtual Result<float> ReduceStep(
      uint64_t step_id, const std::vector<int>& batch_indices,
      const std::vector<autograd::Variable>& params,
      const std::function<float(const std::vector<int>&)>& eval) = 0;

  /// Epoch-boundary barrier, called after the trainer persisted the
  /// (next_epoch, batch 0) run_state: membership changes (joins,
  /// rebalances) apply here, and a joiner's snapshot is served from the
  /// just-written state. `stopping` is true on the final fence (early
  /// stop or max_epochs), letting the runtime shut down cleanly.
  virtual Status EpochFence(int next_epoch, bool stopping) = 0;
};

/// Training hyperparameters. Defaults follow §5.1.2: Adam with learning
/// rate 1e-3 and weight decay 5e-5, early stopping on the validation
/// metric. Epoch counts are scaled down from the paper's 200 because the
/// synthetic cohorts are smaller; set `max_epochs` up for paper-scale runs.
struct TrainConfig {
  int max_epochs = 40;
  int batch_size = 64;
  float learning_rate = 1e-3f;
  float weight_decay = 5e-5f;
  /// Early-stopping patience in epochs (0 disables early stopping).
  int patience = 8;
  /// Global gradient-norm clip (0 disables clipping).
  float clip_norm = 5.0f;
  bool verbose = false;
  /// Seed for minibatch shuffling.
  uint64_t seed = 1;
  /// Emits one JSONL telemetry record per epoch into
  /// TrainResult::telemetry (keys: event, model, epoch, train_loss,
  /// val_loss, grad_norm, examples_per_sec, epoch_seconds, batches) and
  /// mirrors it to the log sink. Implied by obs::Enabled() (env
  /// TRACER_OBS=1); set explicitly to collect telemetry without enabling
  /// the rest of the observability stack.
  bool telemetry = false;
  /// Runs the autograd graph validator (autograd/graph_check.h) on every
  /// minibatch loss graph before Backward, including the NaN/Inf tripwire,
  /// and aborts with a structured report on the first defect. Defaults on
  /// in debug builds; opt in explicitly for release-build investigation.
  bool validate_graph = kValidateGraphDefault;
  /// Non-finite guard: when a minibatch produces a NaN/Inf loss or gradient
  /// norm, skip the optimizer step for that batch (keeping parameters and
  /// Adam moments untouched) instead of corrupting the run. Skips are
  /// counted in TrainResult::nonfinite_batches, surfaced per epoch in the
  /// telemetry records, and exported as tracer_train_nonfinite_batches.
  /// Note validate_graph aborts on the same conditions before the guard can
  /// act; the guard is the production-mode (NDEBUG) recovery path.
  bool nonfinite_guard = true;
  /// After this many *consecutive* skipped batches the guard halves the
  /// learning rate (the usual cause is a too-hot step) and resets the
  /// consecutive count. 0 disables LR backoff.
  int nonfinite_lr_patience = 3;
  /// Delegates gradient computation/reduction to a distributed runtime
  /// (not owned; must outlive the fit). See GradReducer.
  GradReducer* grad_reducer = nullptr;
  /// Honors SignalGuard (train/signal_guard.h): on SIGTERM/SIGINT the
  /// trainer finishes the in-flight batch, writes a final run_state (when
  /// checkpointing) and returns with TrainResult::interrupted set, so
  /// orchestrated preemption is a resume, not a loss. The caller must keep
  /// a SignalGuard alive around the fit for the handler to be installed.
  bool graceful_shutdown = false;

  static constexpr bool kValidateGraphDefault =
#ifdef NDEBUG
      false;
#else
      true;
#endif
};

/// Outcome of a fit: per-epoch curves, the best epoch and its checkpoint.
/// Fit() restores the model to `best_state` before returning, matching the
/// paper's use of the best-performing checkpoint for evaluation and
/// interpretation.
struct TrainResult {
  std::vector<double> train_loss;
  /// Validation loss (CEL for classification, MSE for regression).
  std::vector<double> val_loss;
  int best_epoch = 0;
  int epochs_run = 0;
  double seconds = 0.0;
  std::vector<Tensor> best_state;
  /// One JSON object per epoch when TrainConfig::telemetry (or the obs
  /// runtime switch) is on; empty otherwise. Each line is self-contained
  /// JSONL, suitable for appending to a metrics file. A resumed run only
  /// carries records for the epochs it ran itself.
  std::vector<std::string> telemetry;
  /// Batches skipped by the non-finite guard (TrainConfig::nonfinite_guard).
  int64_t nonfinite_batches = 0;
  /// Times the guard halved the learning rate.
  int lr_halvings = 0;
  /// True when the run stopped early via CheckpointOptions::
  /// stop_after_batches (the crash-simulation hook), a graceful-shutdown
  /// signal, or a reducer failure — the model then holds the in-progress
  /// parameters, not the best checkpoint.
  bool interrupted = false;
  /// Non-OK when the run aborted on a GradReducer error (transport down,
  /// worker evicted); OK for normal completion and local interruptions.
  Status status = Status::OK();
};

/// Evaluation summary on a dataset.
struct EvalResult {
  // Classification metrics (AUC/CEL, the paper's headline pair).
  double auc = 0.0;
  double cel = 0.0;
  // Regression metrics.
  double rmse = 0.0;
  double mae = 0.0;
};

/// Trains `model` on `train_set`, early-stopping on `val_set`.
TrainResult Fit(nn::SequenceModel* model,
                const data::TimeSeriesDataset& train_set,
                const data::TimeSeriesDataset& val_set,
                const TrainConfig& config);

/// Run-state checkpointing for crash-resumable training (see Trainer).
struct CheckpointOptions {
  /// Where the run-state container lives. Empty disables checkpointing.
  std::string path;
  /// Also checkpoint mid-epoch every N processed batches (0: only at epoch
  /// boundaries). Mid-epoch states record the batch cursor plus the RNG
  /// state from the start of the epoch so the shuffle can be replayed.
  int every_batches = 0;
  /// Retry policy for run-state writes. A write that still fails after the
  /// budget is logged and skipped — training continues with the previous
  /// checkpoint (durability degrades; the run does not abort).
  RetryPolicy retry;
  /// Test hook simulating a crash: when > 0, Fit returns after processing
  /// this many batches (counted across epochs, in this process) WITHOUT
  /// writing a final checkpoint or restoring the best state, exactly as if
  /// the process had died. TrainResult::interrupted is set.
  int stop_after_batches = 0;
};

/// Crash-resumable trainer. Fit periodically persists the complete run
/// state (model + optimizer + cursors + RNG) through atomic checkpoint
/// writes; Resume picks a run back up from the latest state and continues
/// bit-identically — the resumed run reaches exactly the parameters, curves
/// and best checkpoint the uninterrupted run would have produced.
class Trainer {
 public:
  Trainer(TrainConfig config, CheckpointOptions checkpoint);

  /// Starts a fresh run (any prior state at `checkpoint.path` is simply
  /// overwritten at the first checkpoint).
  TrainResult Fit(nn::SequenceModel* model,
                  const data::TimeSeriesDataset& train_set,
                  const data::TimeSeriesDataset& val_set) const;

  /// Resumes from `checkpoint.path`. Fails with the loader's error if the
  /// state cannot be read (kDataLoss when damaged) and with
  /// kInvalidArgument if the state does not match `model`'s architecture.
  /// If the recorded run had already completed, restores its best
  /// checkpoint and returns the reconstructed result without training.
  Result<TrainResult> Resume(nn::SequenceModel* model,
                             const data::TimeSeriesDataset& train_set,
                             const data::TimeSeriesDataset& val_set) const;

 private:
  TrainConfig config_;
  CheckpointOptions checkpoint_;
};

/// Scores the model on a dataset (AUC+CEL or RMSE+MAE by task).
EvalResult Evaluate(nn::SequenceModel* model,
                    const data::TimeSeriesDataset& dataset,
                    int batch_size = 256);

/// Mean loss of the model on a dataset without updating parameters.
double DatasetLoss(nn::SequenceModel* model,
                   const data::TimeSeriesDataset& dataset,
                   int batch_size = 256);

}  // namespace train
}  // namespace tracer

#endif  // TRACER_TRAIN_TRAINER_H_
