#ifndef TRACER_TRAIN_TRAINER_H_
#define TRACER_TRAIN_TRAINER_H_

#include <vector>

#include "data/dataset.h"
#include "nn/sequence_model.h"

namespace tracer {
namespace train {

/// Training hyperparameters. Defaults follow §5.1.2: Adam with learning
/// rate 1e-3 and weight decay 5e-5, early stopping on the validation
/// metric. Epoch counts are scaled down from the paper's 200 because the
/// synthetic cohorts are smaller; set `max_epochs` up for paper-scale runs.
struct TrainConfig {
  int max_epochs = 40;
  int batch_size = 64;
  float learning_rate = 1e-3f;
  float weight_decay = 5e-5f;
  /// Early-stopping patience in epochs (0 disables early stopping).
  int patience = 8;
  /// Global gradient-norm clip (0 disables clipping).
  float clip_norm = 5.0f;
  bool verbose = false;
  /// Seed for minibatch shuffling.
  uint64_t seed = 1;
  /// Emits one JSONL telemetry record per epoch into
  /// TrainResult::telemetry (keys: event, model, epoch, train_loss,
  /// val_loss, grad_norm, examples_per_sec, epoch_seconds, batches) and
  /// mirrors it to the log sink. Implied by obs::Enabled() (env
  /// TRACER_OBS=1); set explicitly to collect telemetry without enabling
  /// the rest of the observability stack.
  bool telemetry = false;
  /// Runs the autograd graph validator (autograd/graph_check.h) on every
  /// minibatch loss graph before Backward, including the NaN/Inf tripwire,
  /// and aborts with a structured report on the first defect. Defaults on
  /// in debug builds; opt in explicitly for release-build investigation.
  bool validate_graph = kValidateGraphDefault;

  static constexpr bool kValidateGraphDefault =
#ifdef NDEBUG
      false;
#else
      true;
#endif
};

/// Outcome of a fit: per-epoch curves, the best epoch and its checkpoint.
/// Fit() restores the model to `best_state` before returning, matching the
/// paper's use of the best-performing checkpoint for evaluation and
/// interpretation.
struct TrainResult {
  std::vector<double> train_loss;
  /// Validation loss (CEL for classification, MSE for regression).
  std::vector<double> val_loss;
  int best_epoch = 0;
  int epochs_run = 0;
  double seconds = 0.0;
  std::vector<Tensor> best_state;
  /// One JSON object per epoch when TrainConfig::telemetry (or the obs
  /// runtime switch) is on; empty otherwise. Each line is self-contained
  /// JSONL, suitable for appending to a metrics file.
  std::vector<std::string> telemetry;
};

/// Evaluation summary on a dataset.
struct EvalResult {
  // Classification metrics (AUC/CEL, the paper's headline pair).
  double auc = 0.0;
  double cel = 0.0;
  // Regression metrics.
  double rmse = 0.0;
  double mae = 0.0;
};

/// Trains `model` on `train_set`, early-stopping on `val_set`.
TrainResult Fit(nn::SequenceModel* model,
                const data::TimeSeriesDataset& train_set,
                const data::TimeSeriesDataset& val_set,
                const TrainConfig& config);

/// Scores the model on a dataset (AUC+CEL or RMSE+MAE by task).
EvalResult Evaluate(nn::SequenceModel* model,
                    const data::TimeSeriesDataset& dataset,
                    int batch_size = 256);

/// Mean loss of the model on a dataset without updating parameters.
double DatasetLoss(nn::SequenceModel* model,
                   const data::TimeSeriesDataset& dataset,
                   int batch_size = 256);

}  // namespace train
}  // namespace tracer

#endif  // TRACER_TRAIN_TRAINER_H_
