#ifndef TRACER_TRAIN_RUN_STATE_H_
#define TRACER_TRAIN_RUN_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tracer {
namespace train {

/// Complete dynamic state of an in-progress Fit, captured between batches:
/// everything a fresh process needs to continue the run bit-identically —
/// model parameters, Adam moments and step count, the epoch/batch cursor,
/// the shuffle RNG state as of the start of the current epoch, the partial-
/// epoch accumulators, early-stopping and non-finite-guard state, and the
/// curves/best-checkpoint accumulated so far (see Trainer::Resume).
struct RunState {
  /// True once training finished (early stop or max_epochs): Resume then
  /// just restores the best checkpoint instead of training further.
  bool completed = false;
  /// Epoch currently in progress (0-based).
  int epoch = 0;
  /// Batches of `epoch` already consumed; Resume replays the interrupted
  /// run's shuffles from TrainConfig::seed, regenerates `epoch`'s batch
  /// order, and skips this many batches.
  int next_batch = 0;
  /// Shuffle-RNG state captured before `epoch`'s shuffle (Rng::SaveState).
  /// Used as an integrity check: the shuffle replay must land exactly here
  /// or the state was written under a different seed/dataset.
  std::vector<uint64_t> rng_state;

  // Partial-epoch accumulators (exact bits; NaN-safe).
  double loss_sum = 0.0;
  double grad_norm_sum = 0.0;
  int64_t seen = 0;
  int64_t batches = 0;
  int64_t epoch_nonfinite = 0;

  // Optimizer state.
  int64_t adam_step_count = 0;
  float lr = 0.0f;
  std::vector<Tensor> adam_m;
  std::vector<Tensor> adam_v;

  // Early-stopping state.
  float stopper_best = 0.0f;
  int stopper_best_epoch = 0;
  int stopper_epochs = 0;
  int stopper_stale = 0;

  // Result accumulated so far.
  std::vector<double> train_loss;
  std::vector<double> val_loss;
  int best_epoch = 0;
  int epochs_run = 0;

  // Non-finite guard state.
  int64_t nonfinite_batches = 0;
  int consecutive_nonfinite = 0;
  int lr_halvings = 0;

  // Parameter tensors.
  std::vector<Tensor> model_state;
  std::vector<Tensor> best_state;
};

/// Persists `state` into one TRCKPT1 container at `path` (atomic
/// temp-file + rename write, like every checkpoint). Scalar state —
/// including uint64/double values the float32 tensor format cannot carry
/// directly — is bit-packed losslessly into a header tensor.
Status SaveRunState(const std::string& path, const RunState& state);

/// Reads a run state written by SaveRunState. Propagates kDataLoss from
/// the container reader; a container that is valid TRCKPT1 but not a run
/// state fails with kInvalidArgument.
Result<RunState> LoadRunState(const std::string& path);

}  // namespace train
}  // namespace tracer

#endif  // TRACER_TRAIN_RUN_STATE_H_
