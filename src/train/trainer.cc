#include "train/trainer.h"

#include <chrono>
#include <cmath>

#include "autograd/graph_check.h"
#include "autograd/ops.h"
#include "common/logging.h"
#include "metrics/metrics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"

namespace tracer {
namespace train {

namespace {

autograd::Variable BatchLoss(nn::SequenceModel* model,
                             const data::Batch& batch, data::TaskType task) {
  autograd::Variable raw =
      model->Forward(nn::SequenceModel::ToVariables(batch));
  if (task == data::TaskType::kBinaryClassification) {
    return autograd::BinaryCrossEntropyWithLogits(raw, batch.labels);
  }
  // Regression: apply the model's output calibration (set by Fit from the
  // training-label statistics) so the loss is taken in the target's scale.
  autograd::Variable pred = autograd::AddScalar(
      autograd::Scale(raw, model->output_scale()), model->output_offset());
  return autograd::MeanSquaredError(pred, batch.labels);
}

}  // namespace

double DatasetLoss(nn::SequenceModel* model,
                   const data::TimeSeriesDataset& dataset, int batch_size) {
  TRACER_CHECK_GT(dataset.num_samples(), 0);
  double total = 0.0;
  int64_t counted = 0;
  for (int begin = 0; begin < dataset.num_samples(); begin += batch_size) {
    const int end = std::min(dataset.num_samples(), begin + batch_size);
    std::vector<int> idx(end - begin);
    for (int i = begin; i < end; ++i) idx[i - begin] = i;
    const data::Batch batch = data::MakeBatch(dataset, idx);
    const autograd::Variable loss = BatchLoss(model, batch, dataset.task());
    total += static_cast<double>(loss.value()[0]) * (end - begin);
    counted += end - begin;
  }
  return total / static_cast<double>(counted);
}

TrainResult Fit(nn::SequenceModel* model,
                const data::TimeSeriesDataset& train_set,
                const data::TimeSeriesDataset& val_set,
                const TrainConfig& config) {
  TRACER_CHECK_GT(train_set.num_samples(), 0);
  TRACER_CHECK_GT(val_set.num_samples(), 0);
  TRACER_SPAN("train.fit");
  const bool telemetry = config.telemetry || obs::Enabled();
  const auto start = std::chrono::steady_clock::now();

  if (train_set.task() == data::TaskType::kRegression) {
    // Standardise regression targets through the model's output transform:
    // the network then learns a zero-mean unit-variance quantity.
    double mean = 0.0;
    for (float y : train_set.labels()) mean += y;
    mean /= train_set.num_samples();
    double var = 0.0;
    for (float y : train_set.labels()) var += (y - mean) * (y - mean);
    var /= train_set.num_samples();
    const float stddev = var > 1e-12 ? std::sqrt(var) : 1.0f;
    model->SetOutputTransform(static_cast<float>(stddev),
                              static_cast<float>(mean));
  }

  Rng rng(config.seed);
  data::Batcher batcher(train_set, config.batch_size, rng);
  optim::Adam optimizer(model->Parameters(), config.learning_rate, 0.9f,
                        0.999f, 1e-8f, config.weight_decay);
  optim::EarlyStopping stopper(config.patience > 0 ? config.patience
                                                   : config.max_epochs + 1,
                               /*higher_is_better=*/false);

  TrainResult result;
  result.best_state = model->StateDict();
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    TRACER_SPAN("train.epoch");
    const auto epoch_start = std::chrono::steady_clock::now();
    double epoch_loss = 0.0;
    double grad_norm_sum = 0.0;
    int64_t seen = 0;
    int64_t batches = 0;
    for (const std::vector<int>& idx : batcher.EpochBatches()) {
      const data::Batch batch = data::MakeBatch(train_set, idx);
      optimizer.ZeroGrad();
      autograd::Variable loss = BatchLoss(model, batch, train_set.task());
      if (config.validate_graph) {
        // Catches silent corruption (shape drift, NaN/Inf, severed gradient
        // flow) before it can reach the optimizer state; see
        // TrainConfig::validate_graph.
        autograd::ValidateOptions validate_options;
        validate_options.check_nonfinite = true;
        autograd::CheckGraph(loss, validate_options);
      }
      loss.Backward();
      if (config.clip_norm > 0.0f) {
        grad_norm_sum += optimizer.ClipGradNorm(config.clip_norm);
      } else if (telemetry) {
        grad_norm_sum += optim::GlobalGradNorm(optimizer.params());
      }
      optimizer.Step();
      epoch_loss += static_cast<double>(loss.value()[0]) * idx.size();
      seen += static_cast<int64_t>(idx.size());
      ++batches;
    }
    epoch_loss /= static_cast<double>(seen);
    const double val_loss = DatasetLoss(model, val_set, 256);
    result.train_loss.push_back(epoch_loss);
    result.val_loss.push_back(val_loss);
    result.epochs_run = epoch + 1;
    const double epoch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_start)
            .count();
    if (telemetry) {
      obs::JsonObject record;
      record.Add("event", "epoch");
      record.Add("model", model->name());
      record.Add("epoch", epoch + 1);
      record.Add("train_loss", epoch_loss);
      record.Add("val_loss", val_loss);
      record.Add("grad_norm", grad_norm_sum / static_cast<double>(batches));
      record.Add("examples_per_sec",
                 epoch_seconds > 0.0
                     ? static_cast<double>(seen) / epoch_seconds
                     : 0.0);
      record.Add("epoch_seconds", epoch_seconds);
      record.Add("batches", batches);
      result.telemetry.push_back(record.Build());
      if (obs::Enabled()) {
        TRACER_LOG(Info) << result.telemetry.back();
        obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
        registry.GetOrCreateCounter("tracer_train_batches_total")
            ->Increment(batches);
        registry.GetOrCreateCounter("tracer_train_examples_total")
            ->Increment(seen);
        registry
            .GetOrCreateHistogram("tracer_train_epoch_seconds",
                                  {0.01, 0.1, 0.5, 1, 5, 30, 120, 600})
            ->Observe(epoch_seconds);
      }
    }
    if (config.verbose) {
      TRACER_LOG(Info) << model->name() << " epoch " << epoch + 1
                       << " train_loss=" << epoch_loss
                       << " val_loss=" << val_loss;
    }
    if (stopper.Update(static_cast<float>(val_loss))) {
      result.best_epoch = epoch + 1;
      result.best_state = model->StateDict();
    }
    if (stopper.ShouldStop()) break;
  }
  model->LoadStateDict(result.best_state);
  const auto end = std::chrono::steady_clock::now();
  result.seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

EvalResult Evaluate(nn::SequenceModel* model,
                    const data::TimeSeriesDataset& dataset, int batch_size) {
  EvalResult out;
  const std::vector<float> predictions =
      model->Predict(dataset, batch_size);
  if (dataset.task() == data::TaskType::kBinaryClassification) {
    out.auc = metrics::Auc(predictions, dataset.labels());
    out.cel = metrics::CrossEntropyLoss(predictions, dataset.labels());
  } else {
    out.rmse = metrics::Rmse(predictions, dataset.labels());
    out.mae = metrics::Mae(predictions, dataset.labels());
  }
  return out;
}

}  // namespace train
}  // namespace tracer
