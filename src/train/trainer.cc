#include "train/trainer.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "autograd/graph_check.h"
#include "autograd/ops.h"
#include "common/logging.h"
#include "metrics/metrics.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"
#include "tensor/arena.h"
#include "train/run_state.h"
#include "train/signal_guard.h"

namespace tracer {
namespace train {

namespace {

autograd::Variable BatchLoss(nn::SequenceModel* model,
                             const data::Batch& batch, data::TaskType task) {
  autograd::Variable raw =
      model->Forward(nn::SequenceModel::ToVariables(batch));
  if (task == data::TaskType::kBinaryClassification) {
    return autograd::BinaryCrossEntropyWithLogits(raw, batch.labels);
  }
  // Regression: apply the model's output calibration (set by Fit from the
  // training-label statistics) so the loss is taken in the target's scale.
  autograd::Variable pred = autograd::AddScalar(
      autograd::Scale(raw, model->output_scale()), model->output_offset());
  return autograd::MeanSquaredError(pred, batch.labels);
}

void RecordNonfiniteBatch() {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetOrCreateCounter("tracer_train_nonfinite_batches")
      ->Increment();
}

void RecordRunStateWrite(bool ok) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetOrCreateCounter(ok ? "tracer_train_resume_checkpoints_total"
                             : "tracer_train_resume_checkpoint_failures_total")
      ->Increment();
}

void RecordResume() {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetOrCreateCounter("tracer_train_resume_total")
      ->Increment();
}

/// Shared implementation behind the free Fit() and Trainer::Fit/Resume.
/// `ckpt` enables run-state checkpointing when non-null with a path;
/// `resume` seeds the loop from a persisted RunState (already validated by
/// Trainer::Resume against the model architecture and shuffle stream).
TrainResult FitInternal(nn::SequenceModel* model,
                        const data::TimeSeriesDataset& train_set,
                        const data::TimeSeriesDataset& val_set,
                        const TrainConfig& config,
                        const CheckpointOptions* ckpt,
                        const RunState* resume) {
  TRACER_CHECK_GT(train_set.num_samples(), 0);
  TRACER_CHECK_GT(val_set.num_samples(), 0);
  TRACER_SPAN("train.fit");
  // Arm the graceful-shutdown latch for the duration of the fit; the
  // batch loop polls it after every completed batch.
  std::optional<SignalGuard> signal_guard;
  if (config.graceful_shutdown) signal_guard.emplace();
  const bool telemetry = config.telemetry || obs::Enabled();
  const bool checkpointing = ckpt != nullptr && !ckpt->path.empty();
  const auto start = std::chrono::steady_clock::now();

  if (train_set.task() == data::TaskType::kRegression) {
    // Standardise regression targets through the model's output transform:
    // the network then learns a zero-mean unit-variance quantity.
    double mean = 0.0;
    for (float y : train_set.labels()) mean += y;
    mean /= train_set.num_samples();
    double var = 0.0;
    for (float y : train_set.labels()) var += (y - mean) * (y - mean);
    var /= train_set.num_samples();
    const float stddev = var > 1e-12 ? std::sqrt(var) : 1.0f;
    model->SetOutputTransform(static_cast<float>(stddev),
                              static_cast<float>(mean));
  }

  Rng rng(config.seed);
  data::Batcher batcher(train_set, config.batch_size, rng);
  optim::Adam optimizer(model->Parameters(), config.learning_rate, 0.9f,
                        0.999f, 1e-8f, config.weight_decay);
  // Tape-aware step arena: each forward+backward runs inside a ScopedArena,
  // so after the warm-up batch plans the peak footprint, steady-state steps
  // allocate no heap memory for tensors. Parameter gradients outlive the
  // step (Adam reads them), so they are materialised on the heap here —
  // before any arena is installed — and Backward then accumulates in place.
  // The distributed path moves gradients across step boundaries, so the
  // arena stays local-only. TRACER_TRAIN_ARENA=0 is the operational escape
  // hatch (and the A/B knob the fig14 profile series uses to measure the
  // allocator's share of step time).
  const char* arena_env = std::getenv("TRACER_TRAIN_ARENA");
  const bool use_arena = config.grad_reducer == nullptr &&
                         (arena_env == nullptr ||
                          std::string(arena_env) != "0");
  TensorArena step_arena;
  for (autograd::Variable p : optimizer.params()) p.grad();
  optim::EarlyStopping stopper(config.patience > 0 ? config.patience
                                                   : config.max_epochs + 1,
                               /*higher_is_better=*/false);

  TrainResult result;
  result.best_state = model->StateDict();

  // Per-epoch accumulators, hoisted so a resumed run can seed them
  // mid-epoch; reset at each epoch start otherwise.
  double loss_sum = 0.0;
  double grad_norm_sum = 0.0;
  int64_t seen = 0;
  int64_t batches_done = 0;
  int64_t epoch_nonfinite = 0;
  int consecutive_nonfinite = 0;
  int start_epoch = 0;
  int resume_batch = 0;
  bool seeded = false;

  if (resume != nullptr) {
    model->LoadStateDict(resume->model_state);
    optimizer.RestoreState(resume->adam_m, resume->adam_v,
                           resume->adam_step_count);
    optimizer.set_lr(resume->lr);
    stopper.Restore(resume->stopper_best, resume->stopper_best_epoch,
                    resume->stopper_epochs, resume->stopper_stale);
    result.train_loss = resume->train_loss;
    result.val_loss = resume->val_loss;
    result.best_epoch = resume->best_epoch;
    result.epochs_run = resume->epochs_run;
    result.best_state = resume->best_state;
    result.nonfinite_batches = resume->nonfinite_batches;
    result.lr_halvings = resume->lr_halvings;
    loss_sum = resume->loss_sum;
    grad_norm_sum = resume->grad_norm_sum;
    seen = resume->seen;
    batches_done = resume->batches;
    epoch_nonfinite = resume->epoch_nonfinite;
    consecutive_nonfinite = resume->consecutive_nonfinite;
    start_epoch = resume->epoch;
    resume_batch = resume->next_batch;
    seeded = true;
    // Replay the shuffles the interrupted run already performed so the
    // resumed epoch draws the identical batch order from the same stream
    // position (Batcher reshuffles its running order in place each epoch).
    for (int e = 0; e < start_epoch; ++e) batcher.EpochBatches();
  }

  // Snapshot of everything a fresh process needs to continue from the
  // cursor (state_epoch, state_next_batch); written through the retry
  // policy, and non-fatal on persistent failure — training outlives its
  // checkpoint stream, it just resumes from an older point.
  const auto write_run_state = [&](int state_epoch, int state_next_batch,
                                   const std::vector<uint64_t>& rng_words,
                                   bool completed) {
    RunState s;
    s.completed = completed;
    s.epoch = state_epoch;
    s.next_batch = state_next_batch;
    s.rng_state = rng_words;
    s.loss_sum = loss_sum;
    s.grad_norm_sum = grad_norm_sum;
    s.seen = seen;
    s.batches = batches_done;
    s.epoch_nonfinite = epoch_nonfinite;
    s.adam_step_count = optimizer.step_count();
    s.lr = optimizer.lr();
    s.adam_m = optimizer.first_moments();
    s.adam_v = optimizer.second_moments();
    s.stopper_best = stopper.best();
    s.stopper_best_epoch = stopper.best_epoch();
    s.stopper_epochs = stopper.epochs_recorded();
    s.stopper_stale = stopper.epochs_since_best();
    s.train_loss = result.train_loss;
    s.val_loss = result.val_loss;
    s.best_epoch = result.best_epoch;
    s.epochs_run = result.epochs_run;
    s.nonfinite_batches = result.nonfinite_batches;
    s.consecutive_nonfinite = consecutive_nonfinite;
    s.lr_halvings = result.lr_halvings;
    s.model_state = model->StateDict();
    s.best_state = result.best_state;
    const Status written = CallWithRetry(
        ckpt->retry, [&] { return SaveRunState(ckpt->path, s); });
    RecordRunStateWrite(written.ok());
    if (!written.ok()) {
      TRACER_LOG(Warning) << "run-state checkpoint failed (training "
                          << "continues): " << written.ToString();
    }
  };

  if (checkpointing) {
    // Anchor the stream: with a state on disk from batch zero, a crash at
    // any point of the run has something to resume from. (On resume this
    // rewrites the state just loaded — the RNG is positioned pre-shuffle of
    // start_epoch after the replay above, so the cursor is identical.)
    write_run_state(start_epoch, resume_batch, rng.SaveState(),
                    /*completed=*/false);
  }

  int64_t processed_this_run = 0;
  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    TRACER_SPAN("train.epoch");
    const auto epoch_start = std::chrono::steady_clock::now();
    int first_batch = 0;
    if (seeded) {
      // First epoch of a resumed run: accumulators came from the run state
      // and the leading batches were already consumed before the crash.
      first_batch = resume_batch;
      seeded = false;
    } else {
      loss_sum = 0.0;
      grad_norm_sum = 0.0;
      seen = 0;
      batches_done = 0;
      epoch_nonfinite = 0;
    }
    const std::vector<uint64_t> epoch_rng = rng.SaveState();
    const std::vector<std::vector<int>> epoch_batches = batcher.EpochBatches();
    for (size_t bi = static_cast<size_t>(first_batch);
         bi < epoch_batches.size(); ++bi) {
      const std::vector<int>& idx = epoch_batches[bi];
      // `eval` is the per-sub-batch forward+backward shared by the local
      // and distributed paths: after it returns, the params' grads hold
      // the sub-batch's mean gradient. A non-finite loss short-circuits
      // before validation/backward (mirroring the local guard order); the
      // reduced loss then carries the non-finiteness to every worker so
      // they all skip the step identically.
      const auto eval = [&](const std::vector<int>& sub) -> float {
        float loss_value = 0.0f;
        {
          // Everything allocated in this block (batch tensors, the tape)
          // dies before the Reset below, so the arena can rewind.
          std::optional<ScopedArena> arena_scope;
          if (use_arena) arena_scope.emplace(&step_arena);
          const data::Batch batch = data::MakeBatch(train_set, sub);
          optimizer.ZeroGrad();
          autograd::Variable loss =
              BatchLoss(model, batch, train_set.task());
          loss_value = loss.value()[0];
          if (!(config.nonfinite_guard && !std::isfinite(loss_value))) {
            if (config.validate_graph) {
              // Catches silent corruption (shape drift, NaN/Inf, severed
              // gradient flow) before it can reach the optimizer state; see
              // TrainConfig::validate_graph.
              autograd::ValidateOptions validate_options;
              validate_options.check_nonfinite = true;
              autograd::CheckGraph(loss, validate_options);
            }
            loss.Backward();
          }
        }
        if (use_arena) step_arena.Reset();
        return loss_value;
      };
      const AllocCounters step_allocs_before = ThreadAllocCounters();
      float loss_value = 0.0f;
      if (config.grad_reducer != nullptr) {
        // Distributed step: the reducer computes this worker's shards via
        // `eval`, all-reduces in canonical shard order, and installs the
        // bitwise-deterministic whole-batch gradient.
        const uint64_t step_id =
            (static_cast<uint64_t>(epoch) << 32) | static_cast<uint64_t>(bi);
        Result<float> reduced = config.grad_reducer->ReduceStep(
            step_id, idx, optimizer.params(), eval);
        if (!reduced.ok()) {
          TRACER_LOG(Warning) << "distributed step aborted: "
                              << reduced.status().ToString();
          result.status = reduced.status();
          result.interrupted = true;
          result.seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
          return result;
        }
        loss_value = std::move(reduced).value();
      } else {
        loss_value = eval(idx);
      }
      if (obs::Enabled()) {
        // Heap allocations this step: warm-up steps pay arena-block and
        // stray heap mallocs; steady-state steps must read 0 (asserted by
        // the arena test, visible here in the metrics dump).
        const AllocCounters a = ThreadAllocCounters();
        obs::MetricsRegistry::Global()
            .GetOrCreateGauge("tracer_train_allocs_per_step")
            ->Set(static_cast<double>(
                (a.heap_allocs - step_allocs_before.heap_allocs) +
                (a.arena_blocks - step_allocs_before.arena_blocks)));
      }
      bool skip = config.nonfinite_guard && !std::isfinite(loss_value);
      float grad_norm = 0.0f;
      if (!skip) {
        if (config.clip_norm > 0.0f) {
          grad_norm = optimizer.ClipGradNorm(config.clip_norm);
        } else if (telemetry || config.nonfinite_guard) {
          grad_norm = optim::GlobalGradNorm(optimizer.params());
        }
        skip = config.nonfinite_guard && !std::isfinite(grad_norm);
      }
      if (skip) {
        // Non-finite guard: drop the batch before it can poison the
        // parameters or Adam moments, and back the LR off if the
        // instability persists.
        ++epoch_nonfinite;
        ++result.nonfinite_batches;
        ++consecutive_nonfinite;
        RecordNonfiniteBatch();
        if (config.nonfinite_lr_patience > 0 &&
            consecutive_nonfinite >= config.nonfinite_lr_patience) {
          const float new_lr = optimizer.lr() * 0.5f;
          optimizer.set_lr(new_lr);
          ++result.lr_halvings;
          consecutive_nonfinite = 0;
          TRACER_LOG(Warning)
              << model->name() << ": " << config.nonfinite_lr_patience
              << " consecutive non-finite batches; lr halved to " << new_lr;
        }
      } else {
        consecutive_nonfinite = 0;
        optimizer.Step();
        grad_norm_sum += grad_norm;
        loss_sum += static_cast<double>(loss_value) * idx.size();
        seen += static_cast<int64_t>(idx.size());
        ++batches_done;
      }
      ++processed_this_run;
      if (ckpt != nullptr && ckpt->stop_after_batches > 0 &&
          processed_this_run >= ckpt->stop_after_batches) {
        // Crash simulation: abandon the run exactly here, with whatever
        // checkpoint (if any) the cadence below last wrote.
        result.interrupted = true;
        result.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return result;
      }
      if (checkpointing && ckpt->every_batches > 0 &&
          processed_this_run % ckpt->every_batches == 0) {
        write_run_state(epoch, static_cast<int>(bi) + 1, epoch_rng,
                        /*completed=*/false);
      }
      if (config.graceful_shutdown && SignalGuard::ShutdownRequested()) {
        // Orchestrated preemption: the batch just finished cleanly, so
        // persist the exact cursor and leave — Resume continues the run
        // bit-identically from here.
        TRACER_LOG(Info) << model->name()
                         << ": shutdown signal received; writing final "
                         << "run state and exiting";
        if (checkpointing) {
          write_run_state(epoch, static_cast<int>(bi) + 1, epoch_rng,
                          /*completed=*/false);
        }
        result.interrupted = true;
        result.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return result;
      }
    }
    const double epoch_loss =
        seen > 0 ? loss_sum / static_cast<double>(seen)
                 : std::numeric_limits<double>::quiet_NaN();
    const double val_loss = DatasetLoss(model, val_set, 256);
    result.train_loss.push_back(epoch_loss);
    result.val_loss.push_back(val_loss);
    result.epochs_run = epoch + 1;
    const double epoch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_start)
            .count();
    if (telemetry) {
      obs::JsonObject record;
      record.Add("event", "epoch");
      record.Add("model", model->name());
      record.Add("epoch", epoch + 1);
      record.Add("train_loss", epoch_loss);
      record.Add("val_loss", val_loss);
      record.Add("grad_norm",
                 grad_norm_sum / static_cast<double>(batches_done));
      record.Add("examples_per_sec",
                 epoch_seconds > 0.0
                     ? static_cast<double>(seen) / epoch_seconds
                     : 0.0);
      record.Add("epoch_seconds", epoch_seconds);
      record.Add("batches", batches_done);
      record.Add("nonfinite_batches", epoch_nonfinite);
      result.telemetry.push_back(record.Build());
      if (obs::Enabled()) {
        TRACER_LOG(Info) << result.telemetry.back();
        obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
        registry.GetOrCreateCounter("tracer_train_batches_total")
            ->Increment(batches_done);
        registry.GetOrCreateCounter("tracer_train_examples_total")
            ->Increment(seen);
        registry
            .GetOrCreateHistogram("tracer_train_epoch_seconds",
                                  {0.01, 0.1, 0.5, 1, 5, 30, 120, 600})
            ->Observe(epoch_seconds);
      }
    }
    if (config.verbose) {
      TRACER_LOG(Info) << model->name() << " epoch " << epoch + 1
                       << " train_loss=" << epoch_loss
                       << " val_loss=" << val_loss;
    }
    if (stopper.Update(static_cast<float>(val_loss))) {
      result.best_epoch = epoch + 1;
      result.best_state = model->StateDict();
    }
    const bool stop =
        stopper.ShouldStop() || epoch + 1 == config.max_epochs;
    if (checkpointing) {
      // Epoch boundary: the next cursor is (epoch + 1, batch 0) with fresh
      // accumulators and the RNG positioned before the next shuffle.
      loss_sum = 0.0;
      grad_norm_sum = 0.0;
      seen = 0;
      batches_done = 0;
      epoch_nonfinite = 0;
      write_run_state(epoch + 1, 0, rng.SaveState(), stop);
    }
    if (config.grad_reducer != nullptr) {
      // Membership fence: runs after the (epoch + 1, 0) run_state write so
      // a joiner admitted here can be served that exact snapshot.
      const Status fence = config.grad_reducer->EpochFence(epoch + 1, stop);
      if (!fence.ok()) {
        TRACER_LOG(Warning) << "distributed epoch fence failed: "
                            << fence.ToString();
        result.status = fence;
        result.interrupted = true;
        result.seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return result;
      }
    }
    if (stopper.ShouldStop()) break;
  }
  model->LoadStateDict(result.best_state);
  const auto end = std::chrono::steady_clock::now();
  result.seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace

double DatasetLoss(nn::SequenceModel* model,
                   const data::TimeSeriesDataset& dataset, int batch_size) {
  TRACER_CHECK_GT(dataset.num_samples(), 0);
  double total = 0.0;
  int64_t counted = 0;
  for (int begin = 0; begin < dataset.num_samples(); begin += batch_size) {
    const int end = std::min(dataset.num_samples(), begin + batch_size);
    std::vector<int> idx(end - begin);
    for (int i = begin; i < end; ++i) idx[i - begin] = i;
    const data::Batch batch = data::MakeBatch(dataset, idx);
    const autograd::Variable loss = BatchLoss(model, batch, dataset.task());
    total += static_cast<double>(loss.value()[0]) * (end - begin);
    counted += end - begin;
  }
  return total / static_cast<double>(counted);
}

TrainResult Fit(nn::SequenceModel* model,
                const data::TimeSeriesDataset& train_set,
                const data::TimeSeriesDataset& val_set,
                const TrainConfig& config) {
  return FitInternal(model, train_set, val_set, config, /*ckpt=*/nullptr,
                     /*resume=*/nullptr);
}

Trainer::Trainer(TrainConfig config, CheckpointOptions checkpoint)
    : config_(std::move(config)), checkpoint_(std::move(checkpoint)) {}

TrainResult Trainer::Fit(nn::SequenceModel* model,
                         const data::TimeSeriesDataset& train_set,
                         const data::TimeSeriesDataset& val_set) const {
  return FitInternal(model, train_set, val_set, config_, &checkpoint_,
                     /*resume=*/nullptr);
}

Result<TrainResult> Trainer::Resume(
    nn::SequenceModel* model, const data::TimeSeriesDataset& train_set,
    const data::TimeSeriesDataset& val_set) const {
  if (checkpoint_.path.empty()) {
    return Status::FailedPrecondition(
        "Resume requires CheckpointOptions::path");
  }
  Result<RunState> loaded = LoadRunState(checkpoint_.path);
  if (!loaded.ok()) return loaded.status();
  RunState state = std::move(loaded).value();
  RecordResume();

  // The state must describe this exact model architecture; a mismatch is a
  // caller error, not data loss.
  const std::vector<Tensor> dict = model->StateDict();
  if (state.model_state.size() != dict.size() ||
      state.best_state.size() != dict.size()) {
    return Status::InvalidArgument(
        "run state does not match the model's parameter count");
  }
  for (size_t i = 0; i < dict.size(); ++i) {
    if (!state.model_state[i].SameShape(dict[i]) ||
        !state.best_state[i].SameShape(dict[i])) {
      return Status::InvalidArgument(
          "run state does not match the model's parameter shapes");
    }
  }
  const size_t param_count = model->Parameters().size();
  if (state.adam_m.size() != param_count ||
      state.adam_v.size() != param_count) {
    return Status::InvalidArgument(
        "run state does not match the optimizer's parameter count");
  }

  if (state.completed) {
    // Nothing left to train: reconstruct the result and restore the best
    // checkpoint, exactly what the finished run left behind.
    model->LoadStateDict(state.best_state);
    TrainResult result;
    result.train_loss = state.train_loss;
    result.val_loss = state.val_loss;
    result.best_epoch = state.best_epoch;
    result.epochs_run = state.epochs_run;
    result.best_state = std::move(state.best_state);
    result.nonfinite_batches = state.nonfinite_batches;
    result.lr_halvings = state.lr_halvings;
    return result;
  }

  if (state.epoch >= config_.max_epochs) {
    return Status::InvalidArgument(
        "run state cursor is beyond TrainConfig::max_epochs");
  }
  const int batches_per_epoch =
      (train_set.num_samples() + config_.batch_size - 1) /
      config_.batch_size;
  if (state.next_batch > batches_per_epoch) {
    return Status::InvalidArgument(
        "run state batch cursor is beyond the dataset's epoch length");
  }
  // Integrity check on the shuffle stream: replaying the recorded number of
  // epoch shuffles from TrainConfig::seed must land exactly on the saved
  // RNG state, or the state was written under a different seed/dataset and
  // the resumed batch order would silently diverge.
  {
    Rng probe(config_.seed);
    data::Batcher probe_batcher(train_set, config_.batch_size, probe);
    for (int e = 0; e < state.epoch; ++e) probe_batcher.EpochBatches();
    if (probe.SaveState() != state.rng_state) {
      return Status::InvalidArgument(
          "run state RNG does not match TrainConfig::seed and the dataset; "
          "resuming would diverge from the interrupted run");
    }
  }
  return FitInternal(model, train_set, val_set, config_, &checkpoint_,
                     &state);
}

EvalResult Evaluate(nn::SequenceModel* model,
                    const data::TimeSeriesDataset& dataset, int batch_size) {
  EvalResult out;
  const std::vector<float> predictions =
      model->Predict(dataset, batch_size);
  if (dataset.task() == data::TaskType::kBinaryClassification) {
    out.auc = metrics::Auc(predictions, dataset.labels());
    out.cel = metrics::CrossEntropyLoss(predictions, dataset.labels());
  } else {
    out.rmse = metrics::Rmse(predictions, dataset.labels());
    out.mae = metrics::Mae(predictions, dataset.labels());
  }
  return out;
}

}  // namespace train
}  // namespace tracer
