#ifndef TRACER_TRAIN_SIGNAL_GUARD_H_
#define TRACER_TRAIN_SIGNAL_GUARD_H_

namespace tracer {
namespace train {

/// Graceful-shutdown latch for SIGTERM/SIGINT: orchestrated preemption
/// (Kubernetes draining a node, a user's Ctrl-C) becomes a resumable
/// interruption instead of a lost run.
///
/// Construction installs handlers for SIGTERM and SIGINT (refcounted, so
/// nested guards are fine); destruction restores the previous handlers.
/// The handler is async-signal-safe: it sets a sig_atomic_t flag and
/// writes one byte to a self-pipe — no locks, no allocation, no stdio.
/// Compute loops poll ShutdownRequested() between batches; event loops
/// (the dist worker's framed recv) can additionally poll wake_fd() to be
/// woken out of a blocking wait the instant the signal lands.
///
/// The trainer honors the latch when TrainConfig::graceful_shutdown is
/// set: it finishes the in-flight batch, writes a final run_state, and
/// returns with TrainResult::interrupted — `Trainer::Resume` then picks
/// the run back up bit-identically.
class SignalGuard {
 public:
  SignalGuard();
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// True once SIGTERM or SIGINT was delivered while any guard was armed.
  static bool ShutdownRequested();

  /// Read end of the self-pipe; becomes readable when a signal lands.
  /// Pollable alongside socket fds. -1 if the pipe could not be created.
  static int wake_fd();

  /// Clears the latch and drains the pipe (tests; also lets a caller that
  /// handled one shutdown request arm for another).
  static void Reset();
};

}  // namespace train
}  // namespace tracer

#endif  // TRACER_TRAIN_SIGNAL_GUARD_H_
