#include "tensor/arena.h"

#include <algorithm>
#include <new>

#include "common/macros.h"

namespace tracer {
namespace {

// A 16-byte header precedes every tensor-buffer payload, tagging its owner
// so deallocation routes without any registry lookup — and so a buffer
// allocated inside an arena scope can safely be freed after the scope has
// ended (the common case: tape tensors created under ScopedArena are
// destroyed when the graph dies, wherever that happens on this thread).
constexpr uint64_t kArenaMagic = 0x41524e4154524352ull;  // "ARNATRCR"
constexpr uint64_t kHeapMagic = 0x4845415054524352ull;   // "HEAPTRCR"

struct alignas(16) BufferHeader {
  TensorArena* arena;  // nullptr for heap buffers
  uint64_t magic;
};
static_assert(sizeof(BufferHeader) == 16,
              "header must preserve 16-byte payload alignment");

thread_local TensorArena* g_current_arena = nullptr;
thread_local AllocCounters g_counters;

// Warm-up growth granularity. Big enough that chaining stays rare even
// before the plan exists; the post-plan steady state is one block anyway.
constexpr size_t kMinBlockBytes = size_t{256} * 1024;

size_t RoundUp16(size_t n) { return (n + 15) & ~size_t{15}; }

}  // namespace

TensorArena::~TensorArena() {
  TRACER_CHECK_EQ(live_, 0)
      << "tensor arena destroyed with live buffers (a tensor escaped its "
         "ScopedArena scope)";
  for (Block& b : blocks_) ::operator delete(b.data);
}

TensorArena::Block* TensorArena::Grow(size_t min_bytes) {
  Block b;
  b.capacity = std::max(kMinBlockBytes, RoundUp16(min_bytes));
  b.data = static_cast<char*>(::operator new(b.capacity));
  b.used = 0;
  ++g_counters.arena_blocks;
  blocks_.push_back(b);
  active_ = blocks_.size() - 1;
  return &blocks_.back();
}

void* TensorArena::Allocate(size_t bytes) {
  const size_t need = RoundUp16(bytes);
  Block* b = blocks_.empty() ? Grow(need) : &blocks_[active_];
  if (b->capacity - b->used < need) b = Grow(need);
  void* p = b->data + b->used;
  b->used += need;
  used_bytes_ += need;
  peak_bytes_ = std::max(peak_bytes_, used_bytes_);
  ++live_;
  return p;
}

void TensorArena::Reset() {
  TRACER_CHECK_EQ(live_, 0)
      << "tensor arena reset with live buffers (a tensor escaped its "
         "ScopedArena scope)";
  // The plan step: once the warm-up iteration has revealed the peak
  // footprint, consolidate to a single block of that size so steady-state
  // iterations bump inside it and never malloc.
  if (blocks_.size() != 1 || blocks_[0].capacity < peak_bytes_) {
    for (Block& b : blocks_) ::operator delete(b.data);
    blocks_.clear();
    if (peak_bytes_ > 0) Grow(peak_bytes_);
  }
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
  used_bytes_ = 0;
}

ScopedArena::ScopedArena(TensorArena* arena) : prev_(g_current_arena) {
  g_current_arena = arena;
}

ScopedArena::~ScopedArena() { g_current_arena = prev_; }

TensorArena* CurrentArena() { return g_current_arena; }

AllocCounters ThreadAllocCounters() { return g_counters; }

namespace detail {

void* AllocateTensorBuffer(size_t payload_bytes) {
  const size_t total = payload_bytes + sizeof(BufferHeader);
  BufferHeader* header;
  if (g_current_arena != nullptr) {
    header = static_cast<BufferHeader*>(g_current_arena->Allocate(total));
    header->arena = g_current_arena;
    header->magic = kArenaMagic;
    ++g_counters.arena_allocs;
  } else {
    header = static_cast<BufferHeader*>(::operator new(total));
    header->arena = nullptr;
    header->magic = kHeapMagic;
    ++g_counters.heap_allocs;
  }
  return header + 1;
}

void DeallocateTensorBuffer(void* payload) {
  if (payload == nullptr) return;
  BufferHeader* header = static_cast<BufferHeader*>(payload) - 1;
  if (header->magic == kArenaMagic) {
    header->arena->NoteFree();  // memory reclaimed wholesale at Reset()
  } else {
    TRACER_CHECK_EQ(header->magic, kHeapMagic)
        << "corrupt tensor buffer header";
    ::operator delete(header);
  }
}

}  // namespace detail
}  // namespace tracer
