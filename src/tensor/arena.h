#ifndef TRACER_TENSOR_ARENA_H_
#define TRACER_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace tracer {

/// Bump-allocator arena for tensor buffers — the tape-aware memory plan
/// behind the steady-state zero-malloc training contract (DESIGN.md
/// "Compute kernels").
///
/// Lifecycle: the trainer installs an arena (ScopedArena) around each
/// forward+backward evaluation. The warm-up iteration finds the arena
/// empty, so every allocation chains heap blocks while the arena records
/// the peak live footprint; the first Reset() consolidates those blocks
/// into one block sized to that peak. Because the tape re-records the same
/// op sequence with the same shapes every iteration, later iterations bump
/// inside the single planned block and never call malloc. Reset() also
/// CHECK-fails unless every buffer served since the previous Reset has
/// been destroyed — an arena-backed tensor escaping its scope is a
/// use-after-reset bug, caught on the very next step.
///
/// An arena is owned and used by one thread; buffers it serves must be
/// freed on that thread (tape construction and Backward already run on the
/// evaluating thread).
class TensorArena {
 public:
  TensorArena() = default;
  ~TensorArena();
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// 16-byte-aligned bump allocation. Never fails: when the planned block
  /// is exhausted a new heap block is chained (visible as an
  /// `arena_blocks` tick in ThreadAllocCounters, so steady-state growth is
  /// observable, not silent).
  void* Allocate(size_t bytes);

  /// Allocator callback when an arena-backed buffer dies. Memory is
  /// reclaimed wholesale at Reset(); this only maintains the live count.
  void NoteFree() { --live_; }

  /// Rewinds for the next iteration (see class comment for the
  /// consolidation and escape-check semantics).
  void Reset();

  /// Buffers served since the last Reset that are still alive.
  int64_t live() const { return live_; }
  /// High-water bytes across all iterations (header + padding included).
  size_t peak_bytes() const { return peak_bytes_; }
  /// 1 after the first Reset unless the plan has been outgrown.
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    char* data;
    size_t capacity;
    size_t used;
  };

  Block* Grow(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t active_ = 0;      // block currently being bumped
  size_t used_bytes_ = 0;  // bytes served this iteration
  size_t peak_bytes_ = 0;
  int64_t live_ = 0;
};

/// RAII install of `arena` as the calling thread's current arena: every
/// tensor buffer allocated on this thread inside the scope comes from the
/// arena and must be destroyed before the matching Reset(). Passing
/// nullptr suspends an enclosing arena for the scope (escape hatch for
/// values that must outlive it).
class ScopedArena {
 public:
  explicit ScopedArena(TensorArena* arena);
  ~ScopedArena();
  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

 private:
  TensorArena* prev_;
};

/// The calling thread's current arena, or nullptr.
TensorArena* CurrentArena();

/// Monotonic per-thread tensor-buffer allocation counters. Deltas around a
/// region measure its allocation behaviour: a steady-state training step
/// must show zero `heap_allocs` and zero `arena_blocks` growth (the
/// `tracer_train_allocs_per_step` gauge and the profiler's per-op alloc
/// columns are built on these).
struct AllocCounters {
  int64_t heap_allocs = 0;   ///< buffers served by operator new
  int64_t arena_allocs = 0;  ///< buffers served by the thread's arena
  int64_t arena_blocks = 0;  ///< arena block mallocs (warm-up / overflow)
};
AllocCounters ThreadAllocCounters();

namespace detail {
/// Allocates payload + ownership header from the thread's current arena
/// (heap when none is installed); DeallocateTensorBuffer reads the header
/// to route the release. Used by ArenaAllocator only.
void* AllocateTensorBuffer(size_t payload_bytes);
void DeallocateTensorBuffer(void* payload);
}  // namespace detail

/// Stateless std::vector allocator routing through the thread-current
/// arena. All instances compare equal, so container moves and swaps steal
/// buffers regardless of where they were allocated; the per-buffer header
/// keeps deallocation correct either way.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(detail::AllocateTensorBuffer(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) { detail::DeallocateTensorBuffer(p); }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
  friend bool operator!=(const ArenaAllocator&, const ArenaAllocator&) {
    return false;
  }
};

/// Storage type of Tensor::data_.
using FloatBuffer = std::vector<float, ArenaAllocator<float>>;

}  // namespace tracer

#endif  // TRACER_TENSOR_ARENA_H_
