#ifndef TRACER_TENSOR_GEMM_H_
#define TRACER_TENSOR_GEMM_H_

#include <cstdint>

namespace tracer {
namespace gemm {

// Accumulating single-precision GEMM over row-major contiguous matrices:
//
//   kNN:  C(m×n) += A(m×k)  · B(k×n)
//   kTN:  C(m×n) += A(k×m)ᵀ · B(k×n)     (backward: weight gradients)
//   kNT:  C(m×n) += A(m×k)  · B(n×k)ᵀ    (backward: input gradients)
//
// Every kernel honors one accumulation contract: each C[i][j] is updated by
// a single multiply-add chain over k in ascending order, rooted at the
// incoming C value. The blocked kernel tiles for cache and registers and
// runs row panels on parallel::ParallelFor, but never splits or reorders an
// element's k-chain — so for a given build, naive and blocked outputs are
// bit-identical, at every thread count. See DESIGN.md "Compute kernels".

enum class Variant { kNN, kTN, kNT };

enum class Kernel {
  kAuto,     ///< Size heuristic (or the TRACER_GEMM env override).
  kNaive,    ///< Reference triple loop, single-threaded.
  kBlocked,  ///< Cache-blocked, packed, register-tiled, thread-parallel.
};

/// C += op(A)·op(B) per `variant`, dispatching between the kernels.
/// Pointers must not alias. Zero-sized dims are no-ops (k == 0 leaves C
/// untouched).
void Gemm(Variant variant, int m, int n, int k, const float* a,
          const float* b, float* c, Kernel kernel = Kernel::kAuto);

/// Strided-batch GEMM: for s in [0, batch), C_s += op(A_s)·op(B_s) where
/// X_s = x + s·x_stride. Passing b_stride == 0 broadcasts one B across the
/// batch; c_stride == 0 accumulates every slice into one C (useful for the
/// batched weight-gradient reduction). The result is bitwise identical to
/// the equivalent sequential loop of 2-D Gemm calls: collapsible layouts
/// (broadcast-B row stacking, kTN accumulate-into-one-C k stacking) fold
/// into one large 2-D call whose per-element k-chains coincide with the
/// loop's, and everything else runs the loop itself.
void BatchGemm(Variant variant, int batch, int m, int n, int k,
               const float* a, int64_t a_stride, const float* b,
               int64_t b_stride, float* c, int64_t c_stride,
               Kernel kernel = Kernel::kAuto);

/// Reference implementation (canonical accumulation order, no threading).
void GemmNaive(Variant variant, int m, int n, int k, const float* a,
               const float* b, float* c);

/// Blocked implementation; callable directly for tests and benchmarks.
void GemmBlocked(Variant variant, int m, int n, int k, const float* a,
                 const float* b, float* c);

/// The kernel kAuto resolves to for this shape: TRACER_GEMM=naive|blocked
/// forces a family; otherwise small problems stay on the naive kernel
/// (packing overhead dominates) and everything else goes blocked. The
/// variant matters: the naive kNT kernel is a dot-product reduction that
/// defeats vectorization (~4 GF/s flat at any row count), so kNT blocks
/// from 2 rows up while kNN/kTN keep the 8-row guard that protects the
/// single-visit serve path.
Kernel ChooseKernel(int64_t m, int64_t n, int64_t k,
                    Variant variant = Variant::kNN);

/// Batched dispatch: judges the whole batch, not one slice. A per-slice
/// problem too skinny to block (e.g. 1×384·k gate stacks) still blocks
/// profitably once the batch stacks rows or k-chains into one large GEMM,
/// so the heuristic uses batch·m effective rows and batch·m·n·k volume.
Kernel ChooseKernel(int64_t batch, int64_t m, int64_t n, int64_t k,
                    Variant variant = Variant::kNN);

/// Re-reads TRACER_GEMM (cached after first use). Test hook.
void ReloadKernelEnvForTesting();

/// Flops for one call: 2·m·n·k.
inline int64_t FlopCount(int64_t m, int64_t n, int64_t k) {
  return 2 * m * n * k;
}

}  // namespace gemm
}  // namespace tracer

#endif  // TRACER_TENSOR_GEMM_H_
