#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.h"
#include "tensor/gemm.h"

namespace tracer {

namespace {

// Elementwise loops above this size run on parallel::ParallelFor in chunks
// of kElementwiseGrain. Indices are independent and each is written by
// exactly one chunk, so results are bit-identical at every thread count.
constexpr int64_t kElementwiseParallelMin = int64_t{1} << 16;
constexpr int64_t kElementwiseGrain = int64_t{1} << 14;

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  TRACER_CHECK(a.SameShape(b)) << op << ": shape mismatch " << a.ToString()
                               << " vs " << b.ToString();
}

template <typename F>
void ForEachIndex(int64_t n, F f) {
  if (n >= kElementwiseParallelMin) {
    parallel::ParallelFor(kElementwiseGrain, n,
                          [&f](int64_t begin, int64_t end) {
                            for (int64_t i = begin; i < end; ++i) f(i);
                          });
  } else {
    for (int64_t i = 0; i < n; ++i) f(i);
  }
}

template <typename F>
Tensor Elementwise(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  ForEachIndex(a.size(), [&](int64_t i) { dst[i] = f(src[i]); });
  return out;
}

template <typename F>
Tensor Binary(const Tensor& a, const Tensor& b, F f, const char* op) {
  CheckSameShape(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  ForEachIndex(a.size(), [&](int64_t i) { dst[i] = f(pa[i], pb[i]); });
  return out;
}

}  // namespace

// The three matmul entry points delegate to the compute-kernel layer
// (tensor/gemm.h): a size heuristic picks between the naive reference and
// the blocked, packed, thread-parallel kernel — both honoring the same
// per-element accumulation order, so the choice never changes results.

void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK_EQ(b.rank(), 2);
  const int m = a.rows(), k = a.cols(), n = b.cols();
  TRACER_CHECK_EQ(k, b.rows()) << "MatMul inner-dimension mismatch";
  TRACER_CHECK(out->rank() == 2 && out->rows() == m && out->cols() == n);
  gemm::Gemm(gemm::Variant::kNN, m, n, k, a.data(), b.data(), out->data());
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out({a.rows(), b.cols()});
  MatMulAccum(a, b, &out);
  return out;
}

void MatMulTransAAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK_EQ(b.rank(), 2);
  const int k = a.rows(), m = a.cols(), n = b.cols();
  TRACER_CHECK_EQ(k, b.rows()) << "MatMulTransA inner-dimension mismatch";
  TRACER_CHECK(out->rank() == 2 && out->rows() == m && out->cols() == n);
  gemm::Gemm(gemm::Variant::kTN, m, n, k, a.data(), b.data(), out->data());
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  Tensor out({a.cols(), b.cols()});
  MatMulTransAAccum(a, b, &out);
  return out;
}

void MatMulTransBAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK_EQ(b.rank(), 2);
  const int m = a.rows(), k = a.cols(), n = b.rows();
  TRACER_CHECK_EQ(k, b.cols()) << "MatMulTransB inner-dimension mismatch";
  TRACER_CHECK(out->rank() == 2 && out->rows() == m && out->cols() == n);
  gemm::Gemm(gemm::Variant::kNT, m, n, k, a.data(), b.data(), out->data());
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  Tensor out({a.rows(), b.rows()});
  MatMulTransBAccum(a, b, &out);
  return out;
}

namespace {

// Shared shape audit for the batched family. Returns whether B broadcasts.
bool CheckBatchShapes(const Tensor& a, const Tensor& b, const char* op,
                      int* batch, int* m, int* k, int* n) {
  TRACER_CHECK_EQ(a.rank(), 3) << op << ": A must be rank-3";
  *batch = a.dim(0);
  *m = a.dim(1);
  *k = a.dim(2);
  const bool broadcast = b.rank() == 2;
  if (broadcast) {
    TRACER_CHECK_EQ(b.rows(), *k) << op << " inner-dimension mismatch";
    *n = b.cols();
  } else {
    TRACER_CHECK_EQ(b.rank(), 3) << op << ": B must be rank-2 or rank-3";
    TRACER_CHECK_EQ(b.dim(0), *batch) << op << " batch mismatch";
    TRACER_CHECK_EQ(b.dim(1), *k) << op << " inner-dimension mismatch";
    *n = b.dim(2);
  }
  return broadcast;
}

}  // namespace

void BatchMatMulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  int batch, m, k, n;
  const bool broadcast = CheckBatchShapes(a, b, "BatchMatMul", &batch, &m,
                                          &k, &n);
  TRACER_CHECK(out->rank() == 3 && out->dim(0) == batch &&
               out->dim(1) == m && out->dim(2) == n);
  gemm::BatchGemm(gemm::Variant::kNN, batch, m, n, k, a.data(),
                  static_cast<int64_t>(m) * k, b.data(),
                  broadcast ? 0 : static_cast<int64_t>(k) * n, out->data(),
                  static_cast<int64_t>(m) * n);
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  int batch, m, k, n;
  CheckBatchShapes(a, b, "BatchMatMul", &batch, &m, &k, &n);
  Tensor out({batch, m, n});
  BatchMatMulAccum(a, b, &out);
  return out;
}

void BatchMatMulTransBAccum(const Tensor& dc, const Tensor& b, Tensor* da) {
  TRACER_CHECK_EQ(dc.rank(), 3);
  const int batch = dc.dim(0), m = dc.dim(1), n = dc.dim(2);
  const bool broadcast = b.rank() == 2;
  const int k = broadcast ? b.rows() : b.dim(1);
  if (broadcast) {
    TRACER_CHECK_EQ(b.cols(), n) << "BatchMatMulTransB shape mismatch";
  } else {
    TRACER_CHECK(b.rank() == 3 && b.dim(0) == batch && b.dim(2) == n)
        << "BatchMatMulTransB shape mismatch";
  }
  TRACER_CHECK(da->rank() == 3 && da->dim(0) == batch && da->dim(1) == m &&
               da->dim(2) == k);
  // Per slice: dA_s += dC_s · B_sᵀ, i.e. kNT with inner dimension n.
  gemm::BatchGemm(gemm::Variant::kNT, batch, m, k, n, dc.data(),
                  static_cast<int64_t>(m) * n, b.data(),
                  broadcast ? 0 : static_cast<int64_t>(k) * n, da->data(),
                  static_cast<int64_t>(m) * k);
}

void BatchMatMulTransAAccum(const Tensor& a, const Tensor& dc, Tensor* db) {
  TRACER_CHECK_EQ(a.rank(), 3);
  TRACER_CHECK_EQ(dc.rank(), 3);
  const int batch = a.dim(0), m = a.dim(1), k = a.dim(2);
  TRACER_CHECK(dc.dim(0) == batch && dc.dim(1) == m)
      << "BatchMatMulTransA shape mismatch";
  const int n = dc.dim(2);
  const bool reduce = db->rank() == 2;
  if (reduce) {
    TRACER_CHECK(db->rows() == k && db->cols() == n)
        << "BatchMatMulTransA shape mismatch";
  } else {
    TRACER_CHECK(db->rank() == 3 && db->dim(0) == batch &&
                 db->dim(1) == k && db->dim(2) == n)
        << "BatchMatMulTransA shape mismatch";
  }
  // Per slice: dB(_s) += A_sᵀ · dC_s, i.e. kTN with inner dimension m;
  // c_stride == 0 reduces every slice into the one broadcast gradient.
  gemm::BatchGemm(gemm::Variant::kTN, batch, k, n, m, a.data(),
                  static_cast<int64_t>(m) * k, dc.data(),
                  static_cast<int64_t>(m) * n, db->data(),
                  reduce ? 0 : static_cast<int64_t>(k) * n);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x + y; }, "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x - y; }, "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x * y; }, "Mul");
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return Binary(a, b, [](float x, float y) { return x / y; }, "Div");
}

void AddInPlace(Tensor* out, const Tensor& a) {
  CheckSameShape(*out, a, "AddInPlace");
  float* dst = out->data();
  const float* src = a.data();
  ForEachIndex(a.size(), [&](int64_t i) { dst[i] += src[i]; });
}

void Axpy(float scale, const Tensor& a, Tensor* out) {
  CheckSameShape(*out, a, "Axpy");
  float* dst = out->data();
  const float* src = a.data();
  ForEachIndex(a.size(), [&](int64_t i) { dst[i] += scale * src[i]; });
}

void MulAccum(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b, "MulAccum");
  CheckSameShape(*out, a, "MulAccum");
  float* dst = out->data();
  const float* pa = a.data();
  const float* pb = b.data();
  ForEachIndex(a.size(), [&](int64_t i) { dst[i] += pa[i] * pb[i]; });
}

void MulColBroadcastAccum(const Tensor& mat, const Tensor& col, Tensor* out) {
  TRACER_CHECK_EQ(mat.rank(), 2);
  TRACER_CHECK(col.rank() == 2 && col.cols() == 1 && col.rows() == mat.rows())
      << "MulColBroadcastAccum: col must be rows×1";
  CheckSameShape(*out, mat, "MulColBroadcastAccum");
  const int m = mat.rows(), n = mat.cols();
  const float* pm = mat.data();
  const float* pc = col.data();
  float* dst = out->data();
  for (int i = 0; i < m; ++i) {
    const float s = pc[i];
    for (int j = 0; j < n; ++j) {
      dst[static_cast<size_t>(i) * n + j] +=
          pm[static_cast<size_t>(i) * n + j] * s;
    }
  }
}

void ColSumAccum(const Tensor& a, Tensor* out) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK(out->rank() == 2 && out->rows() == 1 &&
               out->cols() == a.cols())
      << "ColSumAccum: out must be 1×cols";
  const int m = a.rows(), n = a.cols();
  const float* p = a.data();
  float* dst = out->data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) dst[j] += p[static_cast<size_t>(i) * n + j];
  }
}

void SliceColsAccum(const Tensor& src, int begin, int end, Tensor* out) {
  TRACER_CHECK_EQ(src.rank(), 2);
  TRACER_CHECK(0 <= begin && begin <= end && end <= src.cols())
      << "SliceColsAccum out of range";
  TRACER_CHECK(out->rank() == 2 && out->rows() == src.rows() &&
               out->cols() == end - begin);
  const int m = src.rows(), n = end - begin;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out->at(i, j) += src.at(i, begin + j);
  }
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK(row.rank() == 2 && row.rows() == 1 && row.cols() == a.cols())
      << "AddRowBroadcast: row must be 1×cols";
  Tensor out(a.shape());
  const int m = a.rows(), n = a.cols();
  const float* pa = a.data();
  const float* pr = row.data();
  float* dst = out.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      dst[static_cast<size_t>(i) * n + j] =
          pa[static_cast<size_t>(i) * n + j] + pr[j];
    }
  }
  return out;
}

Tensor MulColBroadcast(const Tensor& mat, const Tensor& col) {
  TRACER_CHECK_EQ(mat.rank(), 2);
  TRACER_CHECK(col.rank() == 2 && col.cols() == 1 && col.rows() == mat.rows())
      << "MulColBroadcast: col must be rows×1";
  Tensor out(mat.shape());
  const int m = mat.rows(), n = mat.cols();
  const float* pm = mat.data();
  const float* pc = col.data();
  float* dst = out.data();
  for (int i = 0; i < m; ++i) {
    const float s = pc[i];
    for (int j = 0; j < n; ++j) {
      dst[static_cast<size_t>(i) * n + j] =
          pm[static_cast<size_t>(i) * n + j] * s;
    }
  }
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  return Elementwise(a, [s](float x) { return x * s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Elementwise(a, [s](float x) { return x + s; });
}

Tensor Sigmoid(const Tensor& a) {
  return Elementwise(a, [](float x) {
    // Stable: avoid exp overflow for large |x|.
    if (x >= 0.0f) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}

Tensor Tanh(const Tensor& a) {
  return Elementwise(a, [](float x) { return std::tanh(x); });
}

Tensor Relu(const Tensor& a) {
  return Elementwise(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return Elementwise(a, [](float x) { return std::exp(x); });
}

Tensor Log(const Tensor& a) {
  return Elementwise(a, [](float x) { return std::log(x); });
}

float SumAll(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) acc += p[i];
  return static_cast<float>(acc);
}

float MeanAll(const Tensor& a) {
  TRACER_CHECK_GT(a.size(), 0);
  return SumAll(a) / static_cast<float>(a.size());
}

Tensor ColSum(const Tensor& a) {
  TRACER_CHECK_EQ(a.rank(), 2);
  Tensor out({1, a.cols()});
  const int m = a.rows(), n = a.cols();
  const float* p = a.data();
  float* dst = out.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) dst[j] += p[static_cast<size_t>(i) * n + j];
  }
  return out;
}

Tensor RowSum(const Tensor& a) {
  TRACER_CHECK_EQ(a.rank(), 2);
  Tensor out({a.rows(), 1});
  const int m = a.rows(), n = a.cols();
  const float* p = a.data();
  float* dst = out.data();
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += p[static_cast<size_t>(i) * n + j];
    dst[i] = static_cast<float>(acc);
  }
  return out;
}

Tensor SoftmaxRows(const Tensor& a) {
  TRACER_CHECK_EQ(a.rank(), 2);
  Tensor out(a.shape());
  const int m = a.rows(), n = a.cols();
  const float* p = a.data();
  float* dst = out.data();
  for (int i = 0; i < m; ++i) {
    const float* row = p + static_cast<size_t>(i) * n;
    float* orow = dst + static_cast<size_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    double sum = 0.0;
    for (int j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < n; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  TRACER_CHECK_EQ(a.rank(), 2);
  Tensor out({a.cols(), a.rows()});
  const int m = a.rows(), n = a.cols();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK_EQ(b.rank(), 2);
  TRACER_CHECK_EQ(a.rows(), b.rows()) << "ConcatCols row mismatch";
  const int m = a.rows(), na = a.cols(), nb = b.cols();
  Tensor out({m, na + nb});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < na; ++j) out.at(i, j) = a.at(i, j);
    for (int j = 0; j < nb; ++j) out.at(i, na + j) = b.at(i, j);
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int begin, int end) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK(0 <= begin && begin <= end && end <= a.cols())
      << "SliceCols out of range";
  const int m = a.rows(), n = end - begin;
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.at(i, j) = a.at(i, begin + j);
  }
  return out;
}

Tensor ConcatRows(const std::vector<const Tensor*>& parts) {
  TRACER_CHECK(!parts.empty()) << "ConcatRows: no inputs";
  const int n = parts[0]->cols();
  int rows = 0;
  for (const Tensor* part : parts) {
    TRACER_CHECK_EQ(part->rank(), 2);
    TRACER_CHECK_EQ(part->cols(), n) << "ConcatRows column mismatch";
    rows += part->rows();
  }
  Tensor out({rows, n});
  float* dst = out.data();
  for (const Tensor* part : parts) {
    const int64_t count = part->size();
    std::copy(part->data(), part->data() + count, dst);
    dst += count;
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int begin, int end) {
  TRACER_CHECK_EQ(a.rank(), 2);
  TRACER_CHECK(0 <= begin && begin <= end && end <= a.rows())
      << "SliceRows out of range";
  const int n = a.cols();
  Tensor out({end - begin, n});
  const float* src = a.data() + static_cast<int64_t>(begin) * n;
  std::copy(src, src + out.size(), out.data());
  return out;
}

void SliceRowsAccum(const Tensor& src, int begin, int end, Tensor* out) {
  TRACER_CHECK_EQ(src.rank(), 2);
  TRACER_CHECK(0 <= begin && begin <= end && end <= src.rows())
      << "SliceRowsAccum out of range";
  TRACER_CHECK(out->rank() == 2 && out->rows() == end - begin &&
               out->cols() == src.cols());
  const float* p = src.data() + static_cast<int64_t>(begin) * src.cols();
  float* dst = out->data();
  const int64_t count = out->size();
  for (int64_t i = 0; i < count; ++i) dst[i] += p[i];
}

void AddToRowsAccum(const Tensor& src, int begin, Tensor* dst) {
  TRACER_CHECK_EQ(src.rank(), 2);
  TRACER_CHECK(dst->rank() == 2 && dst->cols() == src.cols() &&
               begin >= 0 && begin + src.rows() <= dst->rows());
  float* p = dst->data() + static_cast<int64_t>(begin) * dst->cols();
  const float* s = src.data();
  const int64_t count = src.size();
  for (int64_t i = 0; i < count; ++i) p[i] += s[i];
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "MaxAbsDiff");
  float mx = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, std::fabs(pa[i] - pb[i]));
  }
  return mx;
}

float Norm(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]) * p[i];
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace tracer
