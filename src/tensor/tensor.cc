#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tracer {

namespace {

int64_t ShapeSize(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) {
    TRACER_CHECK_GE(d, 0);
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeSize(shape_)), 0.0f);
}

Tensor::Tensor(std::vector<int> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  TRACER_CHECK_EQ(ShapeSize(shape_), static_cast<int64_t>(data_.size()))
      << "value count does not match shape";
}

Tensor Tensor::Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(std::vector<int> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int> shape, Rng& rng, float lo,
                           float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::XavierUniform(int fan_in, int fan_out, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandUniform({fan_in, fan_out}, rng, -bound, bound);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Reshape(std::vector<int> new_shape) const {
  TRACER_CHECK_EQ(ShapeSize(new_shape), size()) << "reshape size mismatch";
  Tensor out(std::move(new_shape));
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  return out;
}

std::string Tensor::ToString() const {
  std::ostringstream os;
  os << "Tensor(shape=[";
  for (int i = 0; i < rank(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << "], data=[";
  const int64_t n = std::min<int64_t>(size(), 16);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (size() > n) os << ", ...";
  os << "])";
  return os.str();
}

}  // namespace tracer
