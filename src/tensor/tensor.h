#ifndef TRACER_TENSOR_TENSOR_H_
#define TRACER_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "tensor/arena.h"

namespace tracer {

/// Dense float32 tensor with row-major contiguous storage.
///
/// The library supports arbitrary rank, but the analytics stack uses rank-1
/// (vectors), rank-2 (matrices: batch × features) and rank-3 (sequence
/// batches: batch × time × features). Shape errors are programming errors and
/// CHECK-fail; Tensor itself never allocates past construction except through
/// explicit factory or resize calls.
class Tensor {
 public:
  /// Empty scalar-less tensor (rank 0, size 0).
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Builds a tensor with the given shape from existing values.
  Tensor(std::vector<int> shape, std::vector<float> values);

  // -- Factories --------------------------------------------------------

  static Tensor Zeros(std::vector<int> shape);
  static Tensor Ones(std::vector<int> shape);
  static Tensor Full(std::vector<int> shape, float value);
  /// Entries i.i.d. N(0, stddev^2).
  static Tensor Randn(std::vector<int> shape, Rng& rng, float stddev = 1.0f);
  /// Entries i.i.d. uniform in [lo, hi).
  static Tensor RandUniform(std::vector<int> shape, Rng& rng, float lo,
                            float hi);
  /// Xavier/Glorot uniform initialisation for a fan_in × fan_out matrix.
  static Tensor XavierUniform(int fan_in, int fan_out, Rng& rng);

  // -- Shape ------------------------------------------------------------

  const std::vector<int>& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  /// Total number of elements.
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  /// Extent along dimension `dim`.
  int dim(int d) const {
    TRACER_DCHECK(d >= 0 && d < rank());
    return shape_[d];
  }
  /// Rows of a rank-2 tensor.
  int rows() const {
    TRACER_DCHECK(rank() == 2);
    return shape_[0];
  }
  /// Columns of a rank-2 tensor.
  int cols() const {
    TRACER_DCHECK(rank() == 2);
    return shape_[1];
  }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // -- Element access ---------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) {
    TRACER_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    TRACER_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// Rank-2 accessor.
  float& at(int r, int c) {
    TRACER_DCHECK(rank() == 2);
    TRACER_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r) * shape_[1] + c];
  }
  float at(int r, int c) const {
    TRACER_DCHECK(rank() == 2);
    TRACER_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r) * shape_[1] + c];
  }

  /// Rank-3 accessor.
  float& at(int i, int j, int k) {
    TRACER_DCHECK(rank() == 3);
    return data_[(static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k];
  }
  float at(int i, int j, int k) const {
    TRACER_DCHECK(rank() == 3);
    return data_[(static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k];
  }

  // -- Mutation ---------------------------------------------------------

  /// Sets all entries to `value`.
  void Fill(float value);
  /// Sets all entries to zero.
  void SetZero() { Fill(0.0f); }
  /// Reinterprets the data with a new shape of equal size.
  Tensor Reshape(std::vector<int> new_shape) const;

  /// Human-readable rendering (small tensors only; large ones abbreviated).
  std::string ToString() const;

 private:
  std::vector<int> shape_;
  // Storage routes through the thread-current TensorArena when one is
  // installed (ScopedArena), so tape-lifetime tensors inside the training
  // loop cost zero mallocs in steady state. See tensor/arena.h.
  FloatBuffer data_;
};

}  // namespace tracer

#endif  // TRACER_TENSOR_TENSOR_H_
