#ifndef TRACER_TENSOR_TENSOR_OPS_H_
#define TRACER_TENSOR_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace tracer {

// Dense kernels over rank-2 tensors (and elementwise over any rank). These
// are the raw numeric primitives; the autograd layer builds differentiable
// graphs on top of them. All functions CHECK shape compatibility.
//
// The matmul family dispatches into the compute-kernel layer
// (tensor/gemm.h): large shapes run a cache-blocked, packed, thread-parallel
// kernel, small ones the naive reference. Both share one per-element
// accumulation order, so outputs are bit-identical regardless of kernel or
// thread count. Large elementwise loops parallelize the same way. Overrides:
// TRACER_GEMM=naive|blocked, TRACER_THREADS=<n>.

/// C = A · B for A (M×K), B (K×N).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C += A · B, accumulating into an existing M×N tensor.
void MatMulAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// C = Aᵀ · B for A (K×M), B (K×N) → (M×N). Used by backward passes.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
void MatMulTransAAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// C = A · Bᵀ for A (M×K), B (N×K) → (M×N). Used by backward passes.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
void MatMulTransBAccum(const Tensor& a, const Tensor& b, Tensor* out);

// -- Batched (rank-3) matmul family -------------------------------------
//
// A is S×M×K (one matrix per batch slice); B is either S×K×N or a rank-2
// K×N matrix broadcast across every slice. Results are bitwise identical
// to the per-slice 2-D loop: the strided-batch kernel (tensor/gemm.h
// BatchGemm) folds collapsible layouts into one large GEMM whose
// per-element k-chains coincide with the loop's, which is also what makes
// skinny per-slice shapes dispatch to the blocked kernel.

/// C_s = A_s · B(_s) → S×M×N.
Tensor BatchMatMul(const Tensor& a, const Tensor& b);
void BatchMatMulAccum(const Tensor& a, const Tensor& b, Tensor* out);

/// dA_s += dC_s · B(_s)ᵀ for dC (S×M×N), B (S×K×N or K×N) → dA (S×M×K).
/// Batched-input gradient.
void BatchMatMulTransBAccum(const Tensor& dc, const Tensor& b, Tensor* da);

/// dB += A_sᵀ · dC_s for A (S×M×K), dC (S×M×N). With dB rank-3 (S×K×N)
/// each slice gets its own product; with dB rank-2 (K×N, the broadcast
/// weight gradient) every slice reduces into it in ascending batch order.
void BatchMatMulTransAAccum(const Tensor& a, const Tensor& dc, Tensor* db);

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise difference.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) product.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise quotient.
Tensor Div(const Tensor& a, const Tensor& b);
/// out += a (elementwise accumulate).
void AddInPlace(Tensor* out, const Tensor& a);
/// out += scale * a.
void Axpy(float scale, const Tensor& a, Tensor* out);
/// out += a ∘ b (fused Hadamard accumulate — no temporary).
void MulAccum(const Tensor& a, const Tensor& b, Tensor* out);
/// out += mat scaled per-row by col (M×1). Fused backward helper.
void MulColBroadcastAccum(const Tensor& mat, const Tensor& col, Tensor* out);
/// out (1×N) += column sums of a (M×N). Fused bias-gradient helper.
void ColSumAccum(const Tensor& a, Tensor* out);
/// out += src[:, begin:end). Fused concat-backward helper.
void SliceColsAccum(const Tensor& src, int begin, int end, Tensor* out);

/// a + row, broadcasting a (1×N) row over every row of a (M×N) matrix.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);
/// Column-broadcast product: mat (M×N) scaled per-row by col (M×1).
Tensor MulColBroadcast(const Tensor& mat, const Tensor& col);

/// Scalar multiply.
Tensor Scale(const Tensor& a, float s);
/// Scalar add.
Tensor AddScalar(const Tensor& a, float s);

// Elementwise nonlinearities.
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);

/// Sum of all entries.
float SumAll(const Tensor& a);
/// Mean of all entries.
float MeanAll(const Tensor& a);
/// Column sums of an M×N matrix → 1×N.
Tensor ColSum(const Tensor& a);
/// Row sums of an M×N matrix → M×1.
Tensor RowSum(const Tensor& a);
/// Row-wise numerically stable softmax of an M×N matrix.
Tensor SoftmaxRows(const Tensor& a);

/// Matrix transpose (M×N → N×M).
Tensor Transpose(const Tensor& a);

/// Horizontal concatenation of matrices with equal row counts.
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Columns [begin, end) of an M×N matrix.
Tensor SliceCols(const Tensor& a, int begin, int end);

/// Vertical concatenation of matrices with equal column counts (row-major
/// rows are contiguous, so this is a straight copy). The batching
/// primitive: stacking rows never changes a GEMM element's k-chain.
Tensor ConcatRows(const std::vector<const Tensor*>& parts);
/// Rows [begin, end) of an M×N matrix.
Tensor SliceRows(const Tensor& a, int begin, int end);
/// out += src rows [begin, end). Fused row-concat-backward helper.
void SliceRowsAccum(const Tensor& src, int begin, int end, Tensor* out);
/// dst rows [begin, end) += src. Fused row-slice-backward helper.
void AddToRowsAccum(const Tensor& src, int begin, Tensor* dst);

/// Max |a - b| over all entries; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);
/// Frobenius / L2 norm of all entries.
float Norm(const Tensor& a);

}  // namespace tracer

#endif  // TRACER_TENSOR_TENSOR_OPS_H_
