#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "parallel/parallel_for.h"

namespace tracer {
namespace gemm {

namespace {

// This TU is always compiled with -ffp-contract=off (src/CMakeLists.txt):
// left to itself the compiler contracts the blocked micro-kernel's
// vectorized loop to FMA but not the naive kNT dot reduction, silently
// breaking the naive↔blocked bit-identity contract under -march=native.
// Pinning contraction off gives every multiply-add here one lowering.
// (Explicit fmaf would also be consistent, but defeats the vectorizer.)

// Register micro-tile. 4×8 keeps the 8 vector accumulators inside the
// baseline 16-register SSE file without spilling, and the same shape maps
// onto 8 single-ymm rows under TRACER_NATIVE AVX2 — measured fastest on
// both (wider NR tempts the compiler into 512-bit moves, which downclock
// or, on emulated AVX-512 hosts, collapse). Tile size only changes which
// elements share a task, never an element's accumulation order.
constexpr int MR = 4;
constexpr int NR = 8;
// Cache blocking: an MC×KC packed A tile (128 KiB) stays L2-resident while
// the micro-kernel streams KC×NR B panels over it.
constexpr int MC = 128;
constexpr int KC = 256;

// Dispatch thresholds (see DESIGN.md "Compute kernels"): packing costs
// O(k·n + m·k) against O(m·n·k) compute, so tiny or single-row problems
// (the serve scoring path) stay on the naive kernel.
constexpr int64_t kBlockedMinMnk = int64_t{32} * 1024;
constexpr int kBlockedMinRows = 8;
// The naive kNT kernel is a dot-product reduction (no contiguous
// accumulation to vectorize), measured ~4 GF/s regardless of row count,
// while the blocked kernel's B-packing absorbs the transpose. The packing
// only fails to amortize at a single row, so kNT blocks from 2 rows up.
constexpr int kBlockedMinRowsNt = 2;
// Minimum flops a ParallelFor task should amortize its scheduling over.
constexpr int64_t kMinFlopsPerTask = int64_t{1} << 21;

struct GemmMetrics {
  obs::Counter* calls;
  obs::Counter* blocked_calls;
  obs::Counter* flops;

  static GemmMetrics& Get() {
    static GemmMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return GemmMetrics{
          registry.GetOrCreateCounter("tracer_gemm_calls_total"),
          registry.GetOrCreateCounter("tracer_gemm_blocked_calls_total"),
          registry.GetOrCreateCounter("tracer_gemm_flops_total")};
    }();
    return metrics;
  }
};

// TRACER_GEMM env override, parsed once: -1 unparsed, 0 auto, 1 naive,
// 2 blocked.
std::atomic<int> g_env_kernel{-1};

int ParseEnvKernel() {
  const char* env = std::getenv("TRACER_GEMM");
  if (env == nullptr) return 0;
  const std::string value(env);
  if (value == "naive") return 1;
  if (value == "blocked") return 2;
  TRACER_CHECK(value == "auto" || value.empty())
      << "TRACER_GEMM must be auto|naive|blocked, got \"" << value << "\"";
  return 0;
}

int EnvKernel() {
  int cached = g_env_kernel.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = ParseEnvKernel();
    g_env_kernel.store(cached, std::memory_order_relaxed);
  }
  return cached;
}

// -- Packing ------------------------------------------------------------
//
// B is packed once per call into column panels of NR: for panel p the
// element bp[p·k·NR + kk·NR + jr] holds op(B)[kk][p·NR + jr], zero-padded
// past n. The packing absorbs the transpose of the kNT variant, so all
// variants share one micro-kernel reading both operands contiguously.

void PackBPanels(Variant variant, int n, int k, const float* b, float* bp) {
  const int panels = (n + NR - 1) / NR;
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerTask / (int64_t{2} * k * NR));
  parallel::ParallelFor(grain, panels, [&](int64_t p0, int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const int j0 = static_cast<int>(p) * NR;
      const int nr = std::min(NR, n - j0);
      float* dst = bp + p * static_cast<int64_t>(k) * NR;
      if (variant == Variant::kNT) {
        // op(B)[kk][j] = B[j][kk] with B stored n×k.
        for (int kk = 0; kk < k; ++kk) {
          for (int jr = 0; jr < nr; ++jr) {
            dst[kk * NR + jr] = b[static_cast<int64_t>(j0 + jr) * k + kk];
          }
          for (int jr = nr; jr < NR; ++jr) dst[kk * NR + jr] = 0.0f;
        }
      } else {
        // kNN/kTN share a k×n B operand.
        for (int kk = 0; kk < k; ++kk) {
          const float* src = b + static_cast<int64_t>(kk) * n + j0;
          for (int jr = 0; jr < nr; ++jr) dst[kk * NR + jr] = src[jr];
          for (int jr = nr; jr < NR; ++jr) dst[kk * NR + jr] = 0.0f;
        }
      }
    }
  });
}

// A tile [i0, i0+mc) × [k0, k0+kc) packed into MR row panels:
// ap[(ii/MR)·kc·MR + kk·MR + r] = op(A)[i0+ii+r][k0+kk], zero-padded past mc.
void PackATile(Variant variant, int m, int k, const float* a, int i0, int mc,
               int k0, int kc, float* ap) {
  (void)m;
  for (int ii = 0; ii < mc; ii += MR) {
    const int mr = std::min(MR, mc - ii);
    float* dst = ap + static_cast<int64_t>(ii / MR) * kc * MR;
    if (variant == Variant::kTN) {
      // op(A)[i][kk] = A[kk][i] with A stored k×m.
      for (int kk = 0; kk < kc; ++kk) {
        const float* src = a + static_cast<int64_t>(k0 + kk) * m + i0 + ii;
        for (int r = 0; r < mr; ++r) dst[kk * MR + r] = src[r];
        for (int r = mr; r < MR; ++r) dst[kk * MR + r] = 0.0f;
      }
    } else {
      // kNN/kNT share an m×k A operand.
      for (int kk = 0; kk < kc; ++kk) {
        for (int r = 0; r < mr; ++r) {
          dst[kk * MR + r] =
              a[static_cast<int64_t>(i0 + ii + r) * k + k0 + kk];
        }
        for (int r = mr; r < MR; ++r) dst[kk * MR + r] = 0.0f;
      }
    }
  }
}

// -- Micro-kernel -------------------------------------------------------

/// C[0..MR)[0..NR) += Ap·Bp over kc steps, k ascending, one multiply-add
/// chain per element rooted at the loaded C value — the accumulation
/// contract every kernel in this file shares. Fully unrolled fixed-trip
/// inner loops auto-vectorize over the NR lanes.
inline void MicroKernel(int kc, const float* ap, const float* bp, float* c,
                        int ldc) {
  float acc[MR][NR];
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < NR; ++j) acc[r][j] = c[static_cast<int64_t>(r) * ldc + j];
  }
  for (int kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * MR;
    const float* brow = bp + kk * NR;
    for (int r = 0; r < MR; ++r) {
      const float av = arow[r];
      for (int j = 0; j < NR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < NR; ++j) c[static_cast<int64_t>(r) * ldc + j] = acc[r][j];
  }
}

/// Edge tiles route through a padded MR×NR staging buffer so the one
/// micro-kernel serves every tile; padded lanes compute garbage that is
/// never copied back, and real lanes keep the exact per-element k-chain.
inline void MicroKernelEdge(int kc, int mr, int nr, const float* ap,
                            const float* bp, float* c, int ldc) {
  float staging[MR * NR] = {};
  for (int r = 0; r < mr; ++r) {
    for (int j = 0; j < nr; ++j) {
      staging[r * NR + j] = c[static_cast<int64_t>(r) * ldc + j];
    }
  }
  MicroKernel(kc, ap, bp, staging, NR);
  for (int r = 0; r < mr; ++r) {
    for (int j = 0; j < nr; ++j) {
      c[static_cast<int64_t>(r) * ldc + j] = staging[r * NR + j];
    }
  }
}

void BlockedRows(Variant variant, int m, int n, int k, const float* a,
                 const float* bp, float* c, int r0, int r1) {
  // Per-worker A staging, grown once and reused across calls.
  thread_local std::vector<float> ap;
  const size_t ap_size =
      static_cast<size_t>((MC + MR - 1) / MR) * MR * std::min(k, KC);
  if (ap.size() < ap_size) ap.resize(ap_size);
  const int panels = (n + NR - 1) / NR;
  // k blocks ascend so each element's accumulation chain stays in naive
  // order; the store/reload of C between blocks is exact.
  for (int k0 = 0; k0 < k; k0 += KC) {
    const int kc = std::min(KC, k - k0);
    for (int i0 = r0; i0 < r1; i0 += MC) {
      const int mc = std::min(MC, r1 - i0);
      PackATile(variant, m, k, a, i0, mc, k0, kc, ap.data());
      for (int p = 0; p < panels; ++p) {
        const int j0 = p * NR;
        const int nr = std::min(NR, n - j0);
        const float* bpanel =
            bp + (static_cast<int64_t>(p) * k + k0) * NR;
        for (int ii = 0; ii < mc; ii += MR) {
          const int mr = std::min(MR, mc - ii);
          const float* atile =
              ap.data() + static_cast<int64_t>(ii / MR) * kc * MR;
          float* ctile = c + static_cast<int64_t>(i0 + ii) * n + j0;
          if (mr == MR && nr == NR) {
            MicroKernel(kc, atile, bpanel, ctile, n);
          } else {
            MicroKernelEdge(kc, mr, nr, atile, bpanel, ctile, n);
          }
        }
      }
    }
  }
}

}  // namespace

void GemmNaive(Variant variant, int m, int n, int k, const float* a,
               const float* b, float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  switch (variant) {
    case Variant::kNN:
      // i-k-j: streams B and C rows; the j loop vectorizes.
      for (int i = 0; i < m; ++i) {
        const float* arow = a + static_cast<int64_t>(i) * k;
        float* crow = c + static_cast<int64_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
          const float av = arow[kk];
          const float* brow = b + static_cast<int64_t>(kk) * n;
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
      return;
    case Variant::kTN:
      // C[i][j] += sum_kk A[kk][i] * B[kk][j], k outermost.
      for (int kk = 0; kk < k; ++kk) {
        const float* arow = a + static_cast<int64_t>(kk) * m;
        const float* brow = b + static_cast<int64_t>(kk) * n;
        for (int i = 0; i < m; ++i) {
          const float av = arow[i];
          float* crow = c + static_cast<int64_t>(i) * n;
          for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
      return;
    case Variant::kNT:
      // Row-by-row dots; the chain starts from C so the accumulation
      // contract matches the other variants.
      for (int i = 0; i < m; ++i) {
        const float* arow = a + static_cast<int64_t>(i) * k;
        float* crow = c + static_cast<int64_t>(i) * n;
        for (int j = 0; j < n; ++j) {
          const float* brow = b + static_cast<int64_t>(j) * k;
          float acc = crow[j];
          for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] = acc;
        }
      }
      return;
  }
}

void GemmBlocked(Variant variant, int m, int n, int k, const float* a,
                 const float* b, float* c) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const int panels = (n + NR - 1) / NR;
  // Per-thread B packing buffer, grown once and reused: the steady-state
  // training loop must not heap-allocate per GEMM call (see the arena
  // contract in DESIGN.md).
  thread_local std::vector<float> bp;
  const size_t bp_size = static_cast<size_t>(panels) * k * NR;
  if (bp.size() < bp_size) bp.resize(bp_size);
  // Workers must read the packing thread's buffer, not their own
  // thread_local, so grab the pointer before the parallel region.
  float* const bp_data = bp.data();
  PackBPanels(variant, n, k, b, bp_data);

  // Parallelism partitions C rows in MR units: an output element is owned
  // by exactly one task, so results are partition- (thread-count-)
  // invariant.
  const int64_t row_units = (m + MR - 1) / MR;
  const int64_t flops_per_unit = FlopCount(MR, n, k);
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerTask / std::max<int64_t>(
                                                  flops_per_unit, 1));
  parallel::ParallelFor(grain, row_units, [&](int64_t u0, int64_t u1) {
    BlockedRows(variant, m, n, k, a, bp_data, c,
                static_cast<int>(u0 * MR),
                static_cast<int>(std::min<int64_t>(u1 * MR, m)));
  });
}

Kernel ChooseKernel(int64_t m, int64_t n, int64_t k, Variant variant) {
  const int env = EnvKernel();
  if (env == 1) return Kernel::kNaive;
  if (env == 2) return Kernel::kBlocked;
  const int min_rows =
      variant == Variant::kNT ? kBlockedMinRowsNt : kBlockedMinRows;
  if (m * n * k >= kBlockedMinMnk && m >= min_rows) {
    return Kernel::kBlocked;
  }
  return Kernel::kNaive;
}

Kernel ChooseKernel(int64_t batch, int64_t m, int64_t n, int64_t k,
                    Variant variant) {
  // Judge the stacked problem: a skinny per-slice shape (m < 8) that the
  // 2-D heuristic would bounce to naive becomes blockable once the batch
  // dimension supplies the rows (broadcast-B collapse) or lengthens the
  // accumulation chains (kTN gradient reduction).
  return ChooseKernel(batch * m, n, k, variant);
}

void ReloadKernelEnvForTesting() {
  g_env_kernel.store(-1, std::memory_order_relaxed);
}

void Gemm(Variant variant, int m, int n, int k, const float* a,
          const float* b, float* c, Kernel kernel) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (kernel == Kernel::kAuto) kernel = ChooseKernel(m, n, k, variant);
  if (obs::Enabled()) {
    GemmMetrics& metrics = GemmMetrics::Get();
    metrics.calls->Increment();
    metrics.flops->Increment(FlopCount(m, n, k));
    if (kernel == Kernel::kBlocked) metrics.blocked_calls->Increment();
  }
  if (kernel == Kernel::kBlocked) {
    GemmBlocked(variant, m, n, k, a, b, c);
  } else {
    GemmNaive(variant, m, n, k, a, b, c);
  }
}

void BatchGemm(Variant variant, int batch, int m, int n, int k,
               const float* a, int64_t a_stride, const float* b,
               int64_t b_stride, float* c, int64_t c_stride,
               Kernel kernel) {
  if (batch <= 0 || m <= 0 || n <= 0 || k <= 0) return;
  // Collapse 1: broadcast B with contiguously stacked A and C slices. The
  // batch dimension extends M: one (batch·m)×n GEMM whose row r of slice s
  // is row s·m+r of the stacked problem. Row stacking never touches an
  // element's k-chain, so this is bit-identical to the slice loop — and it
  // is what turns skinny per-slice shapes into one blockable call.
  if (b_stride == 0 && variant != Variant::kTN &&
      a_stride == static_cast<int64_t>(m) * k &&
      c_stride == static_cast<int64_t>(m) * n) {
    Gemm(variant, batch * m, n, k, a, b, c, kernel);
    return;
  }
  // Collapse 2: kTN reduction of every slice into one C (the batched
  // weight gradient dW += Σ_s A_sᵀ·B_s). The batch dimension extends K:
  // op(A) rows of slice s are rows s·k..s·k+k-1 of a (batch·k)×m operand.
  // Sequential slice calls chain each C element over k ascending, rooted
  // at the running value; one call over the stacked K walks the exact same
  // chain (KC-block store/reloads are exact), so bits match the loop.
  if (variant == Variant::kTN && c_stride == 0 &&
      a_stride == static_cast<int64_t>(k) * m &&
      b_stride == static_cast<int64_t>(k) * n) {
    Gemm(variant, m, n, batch * k, a, b, c, kernel);
    return;
  }
  // General layout: the definitional sequential loop (parallelism lives
  // inside each 2-D call). Sequential because c_stride == 0 layouts
  // accumulate into shared output, and determinism wants one slice order.
  for (int s = 0; s < batch; ++s) {
    Gemm(variant, m, n, k, a + s * a_stride, b + s * b_stride,
         c + s * c_stride, kernel);
  }
}

}  // namespace gemm
}  // namespace tracer
