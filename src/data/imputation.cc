#include "data/imputation.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tracer {
namespace data {

MissingnessMask::MissingnessMask(int num_samples, int num_windows,
                                 int num_features)
    : num_samples_(num_samples),
      num_windows_(num_windows),
      num_features_(num_features),
      mask_(static_cast<size_t>(num_samples) * num_windows * num_features,
            1) {}

double MissingnessMask::ObservedRate() const {
  if (mask_.empty()) return 0.0;
  size_t observed_count = 0;
  for (char c : mask_) {
    if (c != 0) ++observed_count;
  }
  return static_cast<double>(observed_count) / mask_.size();
}

MissingnessMask ApplyRandomMissingness(TimeSeriesDataset* dataset,
                                       double missing_rate, Rng& rng) {
  TRACER_CHECK(missing_rate >= 0.0 && missing_rate < 1.0);
  MissingnessMask mask(dataset->num_samples(), dataset->num_windows(),
                       dataset->num_features());
  for (int i = 0; i < dataset->num_samples(); ++i) {
    for (int t = 0; t < dataset->num_windows(); ++t) {
      for (int d = 0; d < dataset->num_features(); ++d) {
        if (rng.Bernoulli(missing_rate)) {
          mask.set_observed(i, t, d, false);
          dataset->at(i, t, d) = 0.0f;
        }
      }
    }
  }
  return mask;
}

namespace {

/// Per-feature means over the observed entries (0 for never-observed
/// features).
std::vector<float> ObservedMeans(const TimeSeriesDataset& dataset,
                                 const MissingnessMask& mask) {
  std::vector<double> sums(dataset.num_features(), 0.0);
  std::vector<int64_t> counts(dataset.num_features(), 0);
  for (int i = 0; i < dataset.num_samples(); ++i) {
    for (int t = 0; t < dataset.num_windows(); ++t) {
      for (int d = 0; d < dataset.num_features(); ++d) {
        if (mask.observed(i, t, d)) {
          sums[d] += dataset.at(i, t, d);
          ++counts[d];
        }
      }
    }
  }
  std::vector<float> means(dataset.num_features(), 0.0f);
  for (int d = 0; d < dataset.num_features(); ++d) {
    if (counts[d] > 0) {
      means[d] = static_cast<float>(sums[d] / counts[d]);
    }
  }
  return means;
}

void ForwardFill(TimeSeriesDataset* dataset, const MissingnessMask& mask,
                 const std::vector<float>& means) {
  for (int i = 0; i < dataset->num_samples(); ++i) {
    for (int d = 0; d < dataset->num_features(); ++d) {
      bool has_prior = false;
      float prior = means[d];
      for (int t = 0; t < dataset->num_windows(); ++t) {
        if (mask.observed(i, t, d)) {
          prior = dataset->at(i, t, d);
          has_prior = true;
        } else {
          dataset->at(i, t, d) = has_prior ? prior : means[d];
        }
      }
    }
  }
}

void CohortMeanFill(TimeSeriesDataset* dataset, const MissingnessMask& mask,
                    const std::vector<float>& means) {
  for (int i = 0; i < dataset->num_samples(); ++i) {
    for (int t = 0; t < dataset->num_windows(); ++t) {
      for (int d = 0; d < dataset->num_features(); ++d) {
        if (!mask.observed(i, t, d)) {
          dataset->at(i, t, d) = means[d];
        }
      }
    }
  }
}

void LinearInterpolate(TimeSeriesDataset* dataset,
                       const MissingnessMask& mask,
                       const std::vector<float>& means) {
  const int num_windows = dataset->num_windows();
  std::vector<int> observed_windows;
  for (int i = 0; i < dataset->num_samples(); ++i) {
    for (int d = 0; d < dataset->num_features(); ++d) {
      observed_windows.clear();
      for (int t = 0; t < num_windows; ++t) {
        if (mask.observed(i, t, d)) observed_windows.push_back(t);
      }
      if (observed_windows.empty()) {
        for (int t = 0; t < num_windows; ++t) {
          dataset->at(i, t, d) = means[d];
        }
        continue;
      }
      size_t next = 0;
      for (int t = 0; t < num_windows; ++t) {
        if (mask.observed(i, t, d)) {
          if (next < observed_windows.size() &&
              observed_windows[next] == t) {
            ++next;
          }
          continue;
        }
        // Nearest observed windows on each side of t.
        const int right_index =
            next < observed_windows.size() ? observed_windows[next] : -1;
        const int left_index = next > 0 ? observed_windows[next - 1] : -1;
        if (left_index < 0) {
          dataset->at(i, t, d) = dataset->at(i, right_index, d);
        } else if (right_index < 0) {
          dataset->at(i, t, d) = dataset->at(i, left_index, d);
        } else {
          const float left = dataset->at(i, left_index, d);
          const float right = dataset->at(i, right_index, d);
          const float frac = static_cast<float>(t - left_index) /
                             static_cast<float>(right_index - left_index);
          dataset->at(i, t, d) = left + frac * (right - left);
        }
      }
    }
  }
}

}  // namespace

void Impute(TimeSeriesDataset* dataset, const MissingnessMask& mask,
            ImputationStrategy strategy) {
  TRACER_CHECK_EQ(dataset->num_samples(), mask.num_samples());
  TRACER_CHECK_EQ(dataset->num_windows(), mask.num_windows());
  TRACER_CHECK_EQ(dataset->num_features(), mask.num_features());
  if (obs::Enabled()) {
    const int64_t total = static_cast<int64_t>(dataset->num_samples()) *
                          dataset->num_windows() * dataset->num_features();
    const int64_t imputed =
        total - static_cast<int64_t>(mask.ObservedRate() * total + 0.5);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetOrCreateCounter("tracer_data_impute_calls_total")
        ->Increment();
    registry.GetOrCreateCounter("tracer_data_imputed_cells_total")
        ->Increment(imputed);
  }
  if (strategy == ImputationStrategy::kZero) {
    for (int i = 0; i < dataset->num_samples(); ++i) {
      for (int t = 0; t < dataset->num_windows(); ++t) {
        for (int d = 0; d < dataset->num_features(); ++d) {
          if (!mask.observed(i, t, d)) dataset->at(i, t, d) = 0.0f;
        }
      }
    }
    return;
  }
  const std::vector<float> means = ObservedMeans(*dataset, mask);
  switch (strategy) {
    case ImputationStrategy::kForwardFill:
      ForwardFill(dataset, mask, means);
      break;
    case ImputationStrategy::kCohortMean:
      CohortMeanFill(dataset, mask, means);
      break;
    case ImputationStrategy::kLinearInterpolate:
      LinearInterpolate(dataset, mask, means);
      break;
    case ImputationStrategy::kZero:
      break;  // handled above
  }
}

}  // namespace data
}  // namespace tracer
