#ifndef TRACER_DATA_CSV_H_
#define TRACER_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace tracer {
namespace data {

/// Tabular writer used by the benchmark harnesses to dump figure series
/// (one row per point) so results can be re-plotted outside this repo.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Convenience: formats doubles with 6 significant decimals.
  void AddRow(const std::vector<double>& row);

  /// Serialises to a string (header + rows).
  std::string ToString() const;
  /// Writes to a file.
  Status WriteFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Exports a dataset in long form: sample,window,feature,value,label.
Status ExportDatasetCsv(const TimeSeriesDataset& dataset,
                        const std::string& path);

/// Parses CSV text into rows of fields (no quoting support; the formats this
/// library writes never need it).
std::vector<std::vector<std::string>> ParseCsv(const std::string& text);

/// Loads a dataset from the long-form CSV written by ExportDatasetCsv
/// (header: sample,window,feature,value,label). Sample/window indices must
/// be dense 0-based; feature columns are discovered from the file in order
/// of first appearance. Entries absent from the file stay 0.
Result<TimeSeriesDataset> ImportDatasetCsv(const std::string& path,
                                           TaskType task);

}  // namespace data
}  // namespace tracer

#endif  // TRACER_DATA_CSV_H_
