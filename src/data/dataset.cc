#include "data/dataset.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace tracer {
namespace data {

TimeSeriesDataset::TimeSeriesDataset(TaskType task, int num_samples,
                                     int num_windows, int num_features)
    : task_(task),
      num_samples_(num_samples),
      num_windows_(num_windows),
      num_features_(num_features) {
  TRACER_CHECK_GE(num_samples, 0);
  TRACER_CHECK_GT(num_windows, 0);
  TRACER_CHECK_GT(num_features, 0);
  values_.assign(static_cast<size_t>(num_samples) * num_windows *
                     num_features,
                 0.0f);
  labels_.assign(static_cast<size_t>(num_samples), 0.0f);
  feature_names_.resize(num_features);
  for (int d = 0; d < num_features; ++d) {
    feature_names_[d] = "feature_" + std::to_string(d);
  }
}

int TimeSeriesDataset::FeatureIndex(const std::string& name) const {
  for (int d = 0; d < num_features_; ++d) {
    if (feature_names_[d] == name) return d;
  }
  return -1;
}

int TimeSeriesDataset::CountPositive() const {
  int count = 0;
  for (float y : labels_) {
    if (y > 0.5f) ++count;
  }
  return count;
}

TimeSeriesDataset TimeSeriesDataset::Subset(
    const std::vector<int>& indices) const {
  TimeSeriesDataset out(task_, static_cast<int>(indices.size()),
                        num_windows_, num_features_);
  out.feature_names_ = feature_names_;
  for (size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    TRACER_CHECK(src >= 0 && src < num_samples_) << "subset index OOB";
    for (int t = 0; t < num_windows_; ++t) {
      for (int d = 0; d < num_features_; ++d) {
        out.at(static_cast<int>(i), t, d) = at(src, t, d);
      }
    }
    out.labels_[i] = labels_[src];
  }
  return out;
}

SplitIndices RandomSplit(int n, double train_frac, double val_frac,
                         Rng& rng) {
  TRACER_CHECK_GT(n, 0);
  TRACER_CHECK(train_frac > 0 && val_frac >= 0 &&
               train_frac + val_frac < 1.0 + 1e-9);
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const int n_train = static_cast<int>(train_frac * n);
  const int n_val = static_cast<int>(val_frac * n);
  SplitIndices split;
  split.train.assign(order.begin(), order.begin() + n_train);
  split.val.assign(order.begin() + n_train, order.begin() + n_train + n_val);
  split.test.assign(order.begin() + n_train + n_val, order.end());
  return split;
}

DatasetSplits SplitDataset(const TimeSeriesDataset& dataset, Rng& rng,
                           double train_frac, double val_frac) {
  const SplitIndices idx =
      RandomSplit(dataset.num_samples(), train_frac, val_frac, rng);
  DatasetSplits out;
  out.train = dataset.Subset(idx.train);
  out.val = dataset.Subset(idx.val);
  out.test = dataset.Subset(idx.test);
  return out;
}

void MinMaxNormalizer::Fit(const TimeSeriesDataset& dataset) {
  const int d_count = dataset.num_features();
  min_.assign(d_count, std::numeric_limits<float>::infinity());
  max_.assign(d_count, -std::numeric_limits<float>::infinity());
  for (int i = 0; i < dataset.num_samples(); ++i) {
    for (int t = 0; t < dataset.num_windows(); ++t) {
      for (int d = 0; d < d_count; ++d) {
        const float v = dataset.at(i, t, d);
        min_[d] = std::min(min_[d], v);
        max_[d] = std::max(max_[d], v);
      }
    }
  }
}

void MinMaxNormalizer::Apply(TimeSeriesDataset* dataset) const {
  TRACER_CHECK_EQ(static_cast<int>(min_.size()), dataset->num_features())
      << "normalizer fit on different feature count";
  for (int i = 0; i < dataset->num_samples(); ++i) {
    for (int t = 0; t < dataset->num_windows(); ++t) {
      for (int d = 0; d < dataset->num_features(); ++d) {
        const float range = max_[d] - min_[d];
        float& v = dataset->at(i, t, d);
        v = range > 0.0f ? (v - min_[d]) / range : 0.0f;
        // Clamp values outside the fitted range (val/test extremes).
        v = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

Batch MakeBatch(const TimeSeriesDataset& dataset,
                const std::vector<int>& indices) {
  const int batch = static_cast<int>(indices.size());
  TRACER_CHECK_GT(batch, 0);
  Batch out;
  out.sample_indices = indices;
  out.labels = Tensor({batch, 1});
  out.xs.reserve(dataset.num_windows());
  for (int t = 0; t < dataset.num_windows(); ++t) {
    Tensor x({batch, dataset.num_features()});
    for (int b = 0; b < batch; ++b) {
      for (int d = 0; d < dataset.num_features(); ++d) {
        x.at(b, d) = dataset.at(indices[b], t, d);
      }
    }
    out.xs.push_back(std::move(x));
  }
  for (int b = 0; b < batch; ++b) {
    out.labels.at(b, 0) = dataset.label(indices[b]);
  }
  if (obs::Enabled()) {
    // Rows materialised into model-ready batches — the dataset layer's
    // ingestion throughput. One relaxed atomic add per batch.
    static obs::Counter* rows = obs::MetricsRegistry::Global()
                                    .GetOrCreateCounter(
                                        "tracer_data_batch_rows_total");
    rows->Increment(batch);
  }
  return out;
}

Batch FullBatch(const TimeSeriesDataset& dataset) {
  std::vector<int> indices(dataset.num_samples());
  std::iota(indices.begin(), indices.end(), 0);
  return MakeBatch(dataset, indices);
}

std::vector<int> ShardSlice(const std::vector<int>& batch_indices, int shard,
                            int num_shards) {
  TRACER_CHECK_GT(num_shards, 0);
  TRACER_CHECK_GE(shard, 0);
  TRACER_CHECK_LT(shard, num_shards);
  const int n = static_cast<int>(batch_indices.size());
  const int base = n / num_shards;
  const int rem = n % num_shards;
  const int begin = shard * base + std::min(shard, rem);
  const int len = base + (shard < rem ? 1 : 0);
  return std::vector<int>(batch_indices.begin() + begin,
                          batch_indices.begin() + begin + len);
}

Batcher::Batcher(const TimeSeriesDataset& dataset, int batch_size, Rng& rng,
                 bool shuffle)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(rng),
      shuffle_(shuffle),
      order_(dataset.num_samples()) {
  TRACER_CHECK_GT(batch_size, 0);
  std::iota(order_.begin(), order_.end(), 0);
}

std::vector<std::vector<int>> Batcher::EpochBatches() {
  if (shuffle_) rng_.Shuffle(order_);
  std::vector<std::vector<int>> batches;
  for (size_t begin = 0; begin < order_.size();
       begin += static_cast<size_t>(batch_size_)) {
    const size_t end =
        std::min(order_.size(), begin + static_cast<size_t>(batch_size_));
    batches.emplace_back(order_.begin() + begin, order_.begin() + end);
  }
  return batches;
}

}  // namespace data
}  // namespace tracer
