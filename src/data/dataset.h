#ifndef TRACER_DATA_DATASET_H_
#define TRACER_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace tracer {
namespace data {

/// Learning task attached to a dataset.
enum class TaskType {
  kBinaryClassification,  // label in {0,1}; trained with BCE, scored AUC/CEL
  kRegression,            // real label; trained with MSE, scored RMSE/MAE
};

/// A cohort of fixed-length multivariate time series: for each of N samples,
/// T time windows of D features plus one label. This is the shape every model
/// in the paper consumes (§4: X = {x_1..x_T}, x_t ∈ R^D).
class TimeSeriesDataset {
 public:
  TimeSeriesDataset() = default;
  TimeSeriesDataset(TaskType task, int num_samples, int num_windows,
                    int num_features);

  TaskType task() const { return task_; }
  int num_samples() const { return num_samples_; }
  /// T — the number of time windows per sample.
  int num_windows() const { return num_windows_; }
  /// D — the number of features per window.
  int num_features() const { return num_features_; }

  float at(int sample, int window, int feature) const {
    TRACER_DCHECK(InRange(sample, window, feature));
    return values_[Offset(sample, window, feature)];
  }
  float& at(int sample, int window, int feature) {
    TRACER_DCHECK(InRange(sample, window, feature));
    return values_[Offset(sample, window, feature)];
  }

  float label(int sample) const {
    TRACER_DCHECK(sample >= 0 && sample < num_samples_);
    return labels_[sample];
  }
  void set_label(int sample, float value) {
    TRACER_DCHECK(sample >= 0 && sample < num_samples_);
    labels_[sample] = value;
  }

  const std::vector<float>& labels() const { return labels_; }

  std::vector<std::string>& feature_names() { return feature_names_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  /// Index of a named feature, or -1.
  int FeatureIndex(const std::string& name) const;

  /// Number of samples with label > 0.5 (classification cohort statistic).
  int CountPositive() const;

  /// New dataset with the selected samples (copies rows).
  TimeSeriesDataset Subset(const std::vector<int>& indices) const;

 private:
  bool InRange(int s, int w, int f) const {
    return s >= 0 && s < num_samples_ && w >= 0 && w < num_windows_ &&
           f >= 0 && f < num_features_;
  }
  size_t Offset(int s, int w, int f) const {
    return (static_cast<size_t>(s) * num_windows_ + w) * num_features_ + f;
  }

  TaskType task_ = TaskType::kBinaryClassification;
  int num_samples_ = 0;
  int num_windows_ = 0;
  int num_features_ = 0;
  std::vector<float> values_;
  std::vector<float> labels_;
  std::vector<std::string> feature_names_;
};

/// Index sets of the 80/10/10 random partition used throughout §5.
struct SplitIndices {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

/// Random partition of [0, n) into train/val/test by fraction.
SplitIndices RandomSplit(int n, double train_frac, double val_frac, Rng& rng);

/// The three materialised splits.
struct DatasetSplits {
  TimeSeriesDataset train;
  TimeSeriesDataset val;
  TimeSeriesDataset test;
};

/// Applies RandomSplit with the paper's 80/10/10 fractions.
DatasetSplits SplitDataset(const TimeSeriesDataset& dataset, Rng& rng,
                           double train_frac = 0.8, double val_frac = 0.1);

/// Per-feature min–max normalizer (§5.1.1: x' = (x − min)/(max − min)).
/// Fit on the training split, applied to all splits, matching standard
/// leakage-free practice.
class MinMaxNormalizer {
 public:
  /// Computes per-feature min/max over all samples and windows.
  void Fit(const TimeSeriesDataset& dataset);

  /// Rescales every value in place. Constant features map to 0.
  void Apply(TimeSeriesDataset* dataset) const;

  const std::vector<float>& feature_min() const { return min_; }
  const std::vector<float>& feature_max() const { return max_; }

 private:
  std::vector<float> min_;
  std::vector<float> max_;
};

/// One minibatch in model-ready layout: xs[t] is the B×D matrix of window t;
/// labels is B×1.
struct Batch {
  std::vector<Tensor> xs;
  Tensor labels;
  std::vector<int> sample_indices;
  int batch_size() const { return labels.rows(); }
};

/// Materialises the selected samples as a Batch.
Batch MakeBatch(const TimeSeriesDataset& dataset,
                const std::vector<int>& indices);

/// Every sample of the dataset as one batch (for evaluation).
Batch FullBatch(const TimeSeriesDataset& dataset);

/// Deterministic contiguous partition of a batch's index list for sharded
/// data-parallel loading: shard `shard` of `num_shards` gets the slice
/// [shard * base + min(shard, rem), ...) of length base + (shard < rem)
/// where base = n / num_shards and rem = n % num_shards. Depends only on
/// (batch_indices, shard, num_shards) — every worker computes the same
/// partition without coordination, and the union over shards is exactly
/// the batch in order. Slices can be empty when num_shards > n.
std::vector<int> ShardSlice(const std::vector<int>& batch_indices, int shard,
                            int num_shards);

/// Shuffling minibatch iterator over a dataset.
class Batcher {
 public:
  Batcher(const TimeSeriesDataset& dataset, int batch_size, Rng& rng,
          bool shuffle = true);

  /// Minibatch index lists for one epoch (reshuffled per call if enabled).
  std::vector<std::vector<int>> EpochBatches();

 private:
  const TimeSeriesDataset& dataset_;
  int batch_size_;
  Rng& rng_;
  bool shuffle_;
  std::vector<int> order_;
};

}  // namespace data
}  // namespace tracer

#endif  // TRACER_DATA_DATASET_H_
