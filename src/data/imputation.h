#ifndef TRACER_DATA_IMPUTATION_H_
#define TRACER_DATA_IMPUTATION_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace tracer {
namespace data {

/// Missingness mask companion to a TimeSeriesDataset: observed(i,t,d) is
/// false where the lab was not measured. Real EMR data is dominated by
/// missingness (§2.1 calls raw EMR "dirty"; the paper's pipeline cleans it
/// before modelling) — this module provides the cleaning step for cohorts
/// that carry a mask.
class MissingnessMask {
 public:
  MissingnessMask() = default;
  MissingnessMask(int num_samples, int num_windows, int num_features);

  bool observed(int sample, int window, int feature) const {
    return mask_[Offset(sample, window, feature)];
  }
  void set_observed(int sample, int window, int feature, bool value) {
    mask_[Offset(sample, window, feature)] = value;
  }

  int num_samples() const { return num_samples_; }
  int num_windows() const { return num_windows_; }
  int num_features() const { return num_features_; }

  /// Fraction of entries observed.
  double ObservedRate() const;

 private:
  size_t Offset(int s, int w, int f) const {
    TRACER_DCHECK(s >= 0 && s < num_samples_ && w >= 0 &&
                  w < num_windows_ && f >= 0 && f < num_features_);
    return (static_cast<size_t>(s) * num_windows_ + w) * num_features_ + f;
  }

  int num_samples_ = 0;
  int num_windows_ = 0;
  int num_features_ = 0;
  std::vector<char> mask_;
};

/// Drops entries of `dataset` at random (MCAR) with probability
/// `missing_rate`, returning the mask of what remains observed. Dropped
/// entries are zeroed in the dataset.
MissingnessMask ApplyRandomMissingness(TimeSeriesDataset* dataset,
                                       double missing_rate, Rng& rng);

/// Imputation strategies for unobserved entries.
enum class ImputationStrategy {
  /// Zero-fill (what the model sees if no imputation is run).
  kZero,
  /// Last observation carried forward within the sample; if no prior
  /// observation exists, falls back to the cohort feature mean.
  kForwardFill,
  /// Per-feature mean of the observed entries across the cohort.
  kCohortMean,
  /// Linear interpolation between the nearest observed windows of the same
  /// sample; boundary gaps use the nearest observation; fully-missing
  /// series fall back to the cohort mean.
  kLinearInterpolate,
};

/// Fills unobserved entries of `dataset` in place according to `strategy`.
/// The cohort means are computed from the observed entries only.
void Impute(TimeSeriesDataset* dataset, const MissingnessMask& mask,
            ImputationStrategy strategy);

}  // namespace data
}  // namespace tracer

#endif  // TRACER_DATA_IMPUTATION_H_
