#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace tracer {
namespace data {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> row) {
  TRACER_CHECK_EQ(row.size(), header_.size()) << "CSV row width mismatch";
  rows_.push_back(std::move(row));
}

void CsvWriter::AddRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(FormatFloat(v, 6));
  AddRow(std::move(fields));
}

std::string CsvWriter::ToString() const {
  std::ostringstream os;
  os << Join(header_, ",") << "\n";
  for (const auto& row : rows_) os << Join(row, ",") << "\n";
  return os.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << ToString();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ExportDatasetCsv(const TimeSeriesDataset& dataset,
                        const std::string& path) {
  CsvWriter writer({"sample", "window", "feature", "value", "label"});
  for (int i = 0; i < dataset.num_samples(); ++i) {
    for (int t = 0; t < dataset.num_windows(); ++t) {
      for (int d = 0; d < dataset.num_features(); ++d) {
        writer.AddRow({std::to_string(i), std::to_string(t),
                       dataset.feature_names()[d],
                       FormatFloat(dataset.at(i, t, d), 6),
                       FormatFloat(dataset.label(i), 6)});
      }
    }
  }
  return writer.WriteFile(path);
}

Result<TimeSeriesDataset> ImportDatasetCsv(const std::string& path,
                                           TaskType task) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto rows = ParseCsv(text);
  if (rows.empty() || rows[0].size() != 5 || rows[0][0] != "sample") {
    return Status::InvalidArgument(
        "expected header sample,window,feature,value,label in " + path);
  }
  // First pass: discover extents and the feature vocabulary.
  int max_sample = -1;
  int max_window = -1;
  std::vector<std::string> feature_order;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 5) {
      return Status::InvalidArgument("malformed row " + std::to_string(r) +
                                     " in " + path);
    }
    max_sample = std::max(max_sample, std::atoi(rows[r][0].c_str()));
    max_window = std::max(max_window, std::atoi(rows[r][1].c_str()));
    const std::string& feature = rows[r][2];
    bool known = false;
    for (const std::string& f : feature_order) {
      if (f == feature) {
        known = true;
        break;
      }
    }
    if (!known) feature_order.push_back(feature);
  }
  if (max_sample < 0 || max_window < 0 || feature_order.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  TimeSeriesDataset dataset(task, max_sample + 1, max_window + 1,
                            static_cast<int>(feature_order.size()));
  dataset.feature_names() = feature_order;
  // Second pass: fill values and labels.
  for (size_t r = 1; r < rows.size(); ++r) {
    const int sample = std::atoi(rows[r][0].c_str());
    const int window = std::atoi(rows[r][1].c_str());
    const int feature = dataset.FeatureIndex(rows[r][2]);
    if (sample < 0 || window < 0 || feature < 0) {
      return Status::InvalidArgument("bad indices at row " +
                                     std::to_string(r) + " in " + path);
    }
    dataset.at(sample, window, feature) =
        static_cast<float>(std::atof(rows[r][3].c_str()));
    dataset.set_label(sample,
                      static_cast<float>(std::atof(rows[r][4].c_str())));
  }
  return dataset;
}

std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(Split(line, ','));
  }
  return rows;
}

}  // namespace data
}  // namespace tracer
