#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tracer {
namespace parallel {

namespace {

int DefaultMaxThreads() {
  if (const char* env = std::getenv("TRACER_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::atomic<int>& MaxThreadsVar() {
  static std::atomic<int> value{DefaultMaxThreads()};
  return value;
}

/// One ParallelFor call's completion count. Chunks from concurrent calls
/// interleave freely on the shared pool; each call only waits on its own
/// latch, never on the pool as a whole.
struct Latch {
  common::Mutex mutex;
  common::CondVar done;
  int remaining TRACER_GUARDED_BY(mutex);

  explicit Latch(int count) : remaining(count) {}

  void CountDown() {
    common::MutexLock lock(&mutex);
    if (--remaining == 0) done.NotifyAll();
  }
  void Wait() {
    common::MutexLock lock(&mutex);
    while (remaining != 0) done.Wait(mutex);
  }
};

/// Set while a thread is inside a ParallelFor region (caller or worker).
/// A nested call runs serially: a worker blocking on chunks that are queued
/// behind it on the same pool would deadlock.
thread_local bool in_parallel_region = false;

}  // namespace

int MaxThreads() { return MaxThreadsVar().load(std::memory_order_relaxed); }

void SetMaxThreads(int n) {
  TRACER_CHECK_GT(n, 0);
  MaxThreadsVar().store(n, std::memory_order_relaxed);
}

ThreadPool& SharedPool() {
  // Leaked on purpose: workers park on the condition variable until process
  // exit, and no static-destruction order can tear the pool down under a
  // late caller. Capacity is fixed at first use; SetMaxThreads only narrows
  // how many chunks ParallelFor creates.
  static ThreadPool* pool = new ThreadPool(std::max(MaxThreads(), 1));
  return *pool;
}

void ParallelFor(int64_t grain, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<int64_t>(grain, 1);
  const int64_t max_chunks =
      std::min<int64_t>(MaxThreads(), (n + grain - 1) / grain);
  if (max_chunks <= 1 || in_parallel_region) {
    in_parallel_region = true;
    fn(0, n);
    in_parallel_region = false;
    return;
  }

  // Balanced contiguous partition: chunk c covers [c*n/k, (c+1)*n/k).
  const int chunks = static_cast<int>(max_chunks);
  Latch latch(chunks);
  ThreadPool& pool = SharedPool();
  for (int c = 1; c < chunks; ++c) {
    const int64_t begin = n * c / chunks;
    const int64_t end = n * (c + 1) / chunks;
    const bool accepted = pool.Submit([&fn, &latch, begin, end] {
      in_parallel_region = true;
      fn(begin, end);
      in_parallel_region = false;
      latch.CountDown();
    });
    if (!accepted) {
      // Pool shutting down or an injected submit fault: run here instead.
      in_parallel_region = true;
      fn(begin, end);
      in_parallel_region = false;
      latch.CountDown();
    }
  }
  in_parallel_region = true;
  fn(0, n / chunks);
  in_parallel_region = false;
  latch.CountDown();
  latch.Wait();
}

}  // namespace parallel
}  // namespace tracer
