#include "parallel/thread_pool.h"

#include <utility>

#include "common/macros.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace tracer {
namespace parallel {

namespace {

/// Registry handles resolved once; updates behind obs::Enabled() are then
/// single relaxed atomics, keeping Submit/WorkerLoop overhead negligible.
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* tasks;
  obs::Counter* busy_ns;
  obs::Counter* idle_ns;

  static PoolMetrics& Get() {
    static PoolMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PoolMetrics{
          registry.GetOrCreateGauge("tracer_pool_queue_depth"),
          registry.GetOrCreateCounter("tracer_pool_tasks_total"),
          registry.GetOrCreateCounter("tracer_pool_busy_ns_total"),
          registry.GetOrCreateCounter("tracer_pool_idle_ns_total")};
    }();
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  TRACER_CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  std::vector<std::thread> to_join;
  {
    common::MutexLock lock(&mutex_);
    shutting_down_ = true;
    // Claim the threads under the lock: if Shutdown races another Shutdown
    // (or the destructor), exactly one caller joins each worker.
    to_join.swap(threads_);
  }
  task_available_.NotifyAll();
  for (std::thread& t : to_join) t.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  // Chaos hook: a spurious rejection exercises every caller's documented
  // Submit-may-fail path (servers fail the batch, the data-parallel trainer
  // runs the shard inline) without tearing the pool down.
  if (TRACER_FAULT_POINT("pool.submit")) return false;
  // Resolve the metric handle before entering the critical section: the
  // first resolution acquires the MetricsRegistry mutex, and pool.mutex_ →
  // registry.mutex_ nesting is exactly the lock-order coupling the
  // annotations exist to keep out of this file. The update itself is one
  // relaxed atomic store and stays under the lock so the gauge tracks the
  // queue length exactly.
  obs::Gauge* queue_depth =
      obs::Enabled() ? PoolMetrics::Get().queue_depth : nullptr;
  {
    common::MutexLock lock(&mutex_);
    // Rejecting under the same lock that Shutdown takes closes the
    // enqueue-after-stop race: a task is either queued before the stop flag
    // is set (and will be drained by a live worker) or refused outright —
    // it can never sit in the queue with no worker left to run it, which
    // would hang a later WaitAll.
    if (shutting_down_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
    if (queue_depth != nullptr) {
      queue_depth->Set(static_cast<double>(tasks_.size()));
    }
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::WaitAll() {
  common::MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    const bool observe = obs::Enabled();
    const uint64_t idle_start = observe ? obs::MonotonicNowNs() : 0;
    obs::Gauge* queue_depth =
        observe ? PoolMetrics::Get().queue_depth : nullptr;
    {
      mutex_.Lock();
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(mutex_);
      if (tasks_.empty()) {
        // The wait predicate only passes an empty queue when shutdown has
        // started (snapshot the flag before dropping the lock).
        const bool stop = shutting_down_;
        mutex_.Unlock();
        if (stop) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      if (queue_depth != nullptr) {
        queue_depth->Set(static_cast<double>(tasks_.size()));
      }
      mutex_.Unlock();
    }
    uint64_t busy_start = 0;
    if (observe) {
      busy_start = obs::MonotonicNowNs();
      PoolMetrics::Get().idle_ns->Increment(
          static_cast<int64_t>(busy_start - idle_start));
    }
    task();
    if (observe) {
      PoolMetrics::Get().busy_ns->Increment(
          static_cast<int64_t>(obs::MonotonicNowNs() - busy_start));
      PoolMetrics::Get().tasks->Increment();
    }
    {
      common::MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace parallel
}  // namespace tracer
