#include "parallel/thread_pool.h"

#include "common/macros.h"

namespace tracer {
namespace parallel {

ThreadPool::ThreadPool(int num_threads) {
  TRACER_CHECK_GT(num_threads, 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace parallel
}  // namespace tracer
