#ifndef TRACER_PARALLEL_PARALLEL_FOR_H_
#define TRACER_PARALLEL_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "parallel/thread_pool.h"

namespace tracer {
namespace parallel {

/// Thread budget for ParallelFor. Defaults to TRACER_THREADS (env) when set,
/// otherwise std::thread::hardware_concurrency(); always >= 1. SetMaxThreads
/// changes the *chunking* budget at runtime (benchmarks sweep it); the shared
/// pool itself keeps its creation-time worker count.
int MaxThreads();
void SetMaxThreads(int n);

/// The process-wide compute pool behind ParallelFor. Created lazily on first
/// use with MaxThreads() workers and intentionally leaked (no teardown-order
/// hazards at exit). Callers other than ParallelFor should not WaitAll() on
/// it — it is shared.
ThreadPool& SharedPool();

/// Runs fn(begin, end) over a partition of [0, n) with at most MaxThreads()
/// contiguous chunks of at least `grain` iterations each. The calling thread
/// executes the first chunk itself; remaining chunks run on SharedPool().
///
/// Guarantees:
///  - every index in [0, n) is covered exactly once;
///  - each index is processed by exactly one invocation of fn, so any
///    computation whose per-index result does not depend on the partition
///    (e.g. disjoint writes with a fixed per-element reduction order) is
///    bit-identical for every thread count;
///  - re-entrant calls (fn itself calling ParallelFor) degrade to serial
///    execution instead of deadlocking the shared pool;
///  - if the pool rejects a task (shutdown or injected "pool.submit" fault),
///    the chunk runs inline on the caller — work is never lost.
///
/// fn must not throw: a chunk may execute on a pool worker where an escaped
/// exception would terminate the process.
void ParallelFor(int64_t grain, int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace parallel
}  // namespace tracer

#endif  // TRACER_PARALLEL_PARALLEL_FOR_H_
