#ifndef TRACER_PARALLEL_DATA_PARALLEL_H_
#define TRACER_PARALLEL_DATA_PARALLEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/sequence_model.h"
#include "parallel/thread_pool.h"
#include "train/trainer.h"

namespace tracer {
namespace parallel {

/// Builds a fresh, identically-architected model replica. Each worker owns
/// one replica; parameters are broadcast from the main model every step.
using ModelFactory = std::function<std::unique_ptr<nn::SequenceModel>()>;

/// Result of a data-parallel fit (the quantity Figure 14 plots is
/// `seconds`, the wall-clock convergence time).
struct ParallelTrainResult {
  std::vector<double> train_loss;
  std::vector<double> val_loss;
  int best_epoch = 0;
  int epochs_run = 0;
  double seconds = 0.0;
  /// Time spent in the "controlling" phase the paper's footnote 4
  /// describes: gradient aggregation across workers, parameter broadcast
  /// and best-checkpoint selection.
  double controlling_seconds = 0.0;
};

/// Synchronous data-parallel trainer: the multi-GPU training loop of §5.2.3
/// mapped onto CPU threads. Every step the global minibatch is sharded
/// across `num_workers` replicas, per-shard gradients are computed
/// concurrently, averaged into the main model (the "controlling" cost), and
/// updated parameters are broadcast back.
class DataParallelTrainer {
 public:
  DataParallelTrainer(nn::SequenceModel* main_model, ModelFactory factory,
                      int num_workers);

  ParallelTrainResult Fit(const data::TimeSeriesDataset& train_set,
                          const data::TimeSeriesDataset& val_set,
                          const train::TrainConfig& config);

  int num_workers() const { return num_workers_; }

 private:
  nn::SequenceModel* main_model_;
  int num_workers_;
  std::vector<std::unique_ptr<nn::SequenceModel>> replicas_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Analytic convergence-time model matching the shape of Figure 14: with
/// `workers` devices, per-epoch time = compute_seconds / workers +
/// controlling_seconds (aggregation + checkpointing, which does not shrink
/// with more devices). Small datasets (NUH-AKI) saturate early because the
/// controlling term dominates; larger ones (MIMIC-III) keep scaling.
double ModeledConvergenceSeconds(double compute_seconds,
                                 double controlling_seconds, int workers,
                                 int epochs);

}  // namespace parallel
}  // namespace tracer

#endif  // TRACER_PARALLEL_DATA_PARALLEL_H_
