#ifndef TRACER_PARALLEL_THREAD_POOL_H_
#define TRACER_PARALLEL_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tracer {
namespace parallel {

/// Fixed-size worker pool. Submit() enqueues a task; WaitAll() blocks until
/// every submitted task has finished. Used by the data-parallel trainer to
/// compute per-worker gradients concurrently.
///
/// When the observability stack is on (obs::Enabled()), the pool exports
/// `tracer_pool_queue_depth` (gauge), `tracer_pool_tasks_total` and the
/// per-worker `tracer_pool_busy_ns_total` / `tracer_pool_idle_ns_total`
/// counters through obs::MetricsRegistry::Global().
///
/// Shutdown discipline: once Shutdown() (or the destructor) has started,
/// Submit() rejects new work and returns false instead of racing the worker
/// teardown; tasks accepted before the stop are still drained. Submit and
/// Shutdown may be called concurrently from different threads, but never
/// from inside a pool task (a worker joining itself would deadlock).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Returns false — and does not take the
  /// task — if shutdown has already started.
  bool Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have completed.
  void WaitAll();

  /// Stops accepting work, drains every already-queued task and joins the
  /// workers. Idempotent and safe to race with Submit; the destructor calls
  /// it implicitly.
  void Shutdown();

  int num_threads() const { return num_threads_; }

 private:
  void WorkerLoop();

  const int num_threads_;
  common::Mutex mutex_;
  std::vector<std::thread> threads_ TRACER_GUARDED_BY(mutex_);
  std::queue<std::function<void()>> tasks_ TRACER_GUARDED_BY(mutex_);
  common::CondVar task_available_;
  common::CondVar all_done_;
  int in_flight_ TRACER_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ TRACER_GUARDED_BY(mutex_) = false;
};

}  // namespace parallel
}  // namespace tracer

#endif  // TRACER_PARALLEL_THREAD_POOL_H_
