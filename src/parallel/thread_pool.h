#ifndef TRACER_PARALLEL_THREAD_POOL_H_
#define TRACER_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tracer {
namespace parallel {

/// Fixed-size worker pool. Submit() enqueues a task; WaitAll() blocks until
/// every submitted task has finished. Used by the data-parallel trainer to
/// compute per-worker gradients concurrently.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have completed.
  void WaitAll();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace parallel
}  // namespace tracer

#endif  // TRACER_PARALLEL_THREAD_POOL_H_
