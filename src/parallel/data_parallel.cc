#include "parallel/data_parallel.h"

#include <chrono>

#include "autograd/ops.h"
#include "common/macros.h"
#include "optim/early_stopping.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace parallel {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

autograd::Variable ShardLoss(nn::SequenceModel* model,
                             const data::Batch& batch,
                             data::TaskType task) {
  autograd::Variable raw =
      model->Forward(nn::SequenceModel::ToVariables(batch));
  if (task == data::TaskType::kBinaryClassification) {
    return autograd::BinaryCrossEntropyWithLogits(raw, batch.labels);
  }
  return autograd::MeanSquaredError(raw, batch.labels);
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(nn::SequenceModel* main_model,
                                         ModelFactory factory,
                                         int num_workers)
    : main_model_(main_model), num_workers_(num_workers) {
  TRACER_CHECK_GT(num_workers, 0);
  TRACER_CHECK(main_model != nullptr);
  replicas_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    replicas_.push_back(factory());
    TRACER_CHECK_EQ(replicas_[w]->NumParameters(),
                    main_model->NumParameters())
        << "replica architecture mismatch";
  }
  pool_ = std::make_unique<ThreadPool>(num_workers);
}

ParallelTrainResult DataParallelTrainer::Fit(
    const data::TimeSeriesDataset& train_set,
    const data::TimeSeriesDataset& val_set,
    const train::TrainConfig& config) {
  const auto start = Clock::now();
  Rng rng(config.seed);
  data::Batcher batcher(train_set, config.batch_size, rng);
  optim::Adam optimizer(main_model_->Parameters(), config.learning_rate,
                        0.9f, 0.999f, 1e-8f, config.weight_decay);
  optim::EarlyStopping stopper(config.patience > 0 ? config.patience
                                                   : config.max_epochs + 1,
                               /*higher_is_better=*/false);

  auto main_params = main_model_->Parameters();
  std::vector<std::vector<autograd::Variable>> replica_params(num_workers_);
  for (int w = 0; w < num_workers_; ++w) {
    replica_params[w] = replicas_[w]->Parameters();
  }

  ParallelTrainResult result;
  std::vector<Tensor> best_state = main_model_->StateDict();

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    double epoch_loss = 0.0;
    int64_t seen = 0;
    for (const std::vector<int>& idx : batcher.EpochBatches()) {
      // --- controlling: broadcast current parameters to the replicas.
      const auto control_start = Clock::now();
      const std::vector<Tensor> state = main_model_->StateDict();
      for (int w = 0; w < num_workers_; ++w) {
        replicas_[w]->LoadStateDict(state);
      }
      result.controlling_seconds += SecondsSince(control_start);

      // --- shard the global minibatch across workers.
      std::vector<std::vector<int>> shards(num_workers_);
      for (size_t i = 0; i < idx.size(); ++i) {
        shards[i % num_workers_].push_back(idx[i]);
      }
      std::vector<double> shard_loss(num_workers_, 0.0);
      for (int w = 0; w < num_workers_; ++w) {
        if (shards[w].empty()) continue;
        const std::function<void()> shard_task = [&, w] {
          const data::Batch batch = data::MakeBatch(train_set, shards[w]);
          for (auto& p : replica_params[w]) p.ZeroGrad();
          autograd::Variable loss =
              ShardLoss(replicas_[w].get(), batch, train_set.task());
          loss.Backward();
          shard_loss[w] = loss.value()[0];
        };
        if (!pool_->Submit(shard_task)) {
          // Degraded mode: a rejected shard (pool teardown race, or chaos
          // injection at "pool.submit") runs inline on the controller —
          // slower, but the epoch completes with identical math.
          shard_task();
        }
      }
      pool_->WaitAll();

      // --- controlling: aggregate worker gradients (weighted by shard
      // size so the result equals a single large-batch gradient).
      const auto agg_start = Clock::now();
      optimizer.ZeroGrad();
      for (int w = 0; w < num_workers_; ++w) {
        if (shards[w].empty()) continue;
        const float weight = static_cast<float>(shards[w].size()) /
                             static_cast<float>(idx.size());
        for (size_t k = 0; k < main_params.size(); ++k) {
          Axpy(weight, replica_params[w][k].grad(), &main_params[k].grad());
        }
        epoch_loss += shard_loss[w] * shards[w].size();
      }
      if (config.clip_norm > 0.0f) optimizer.ClipGradNorm(config.clip_norm);
      optimizer.Step();
      result.controlling_seconds += SecondsSince(agg_start);
      seen += static_cast<int64_t>(idx.size());
    }
    epoch_loss /= static_cast<double>(seen);
    const double val_loss = train::DatasetLoss(main_model_, val_set, 256);
    result.train_loss.push_back(epoch_loss);
    result.val_loss.push_back(val_loss);
    result.epochs_run = epoch + 1;

    // --- controlling: best-checkpoint selection and saving.
    const auto ckpt_start = Clock::now();
    if (stopper.Update(static_cast<float>(val_loss))) {
      result.best_epoch = epoch + 1;
      best_state = main_model_->StateDict();
    }
    result.controlling_seconds += SecondsSince(ckpt_start);
    if (stopper.ShouldStop()) break;
  }
  main_model_->LoadStateDict(best_state);
  result.seconds = SecondsSince(start);
  return result;
}

double ModeledConvergenceSeconds(double compute_seconds,
                                 double controlling_seconds, int workers,
                                 int epochs) {
  TRACER_CHECK_GT(workers, 0);
  return static_cast<double>(epochs) *
         (compute_seconds / workers + controlling_seconds);
}

}  // namespace parallel
}  // namespace tracer
