#ifndef TRACER_NN_RNN_CONFIG_H_
#define TRACER_NN_RNN_CONFIG_H_

namespace tracer {
namespace nn {

/// Whether GRU/LSTM sequence runs use the batch-major path (timesteps
/// stacked into one rank-3 input projection GEMM, packed gate weights, one
/// recurrent GEMM per step). Default on; TRACER_BATCHED_RNN=0 selects the
/// per-timestep reference path. Both paths produce bitwise-identical
/// forward values — the switch exists for the equivalence tests and as an
/// escape hatch. Parsed once and cached.
bool BatchedRnnEnabled();

/// Re-reads TRACER_BATCHED_RNN. Test hook.
void ReloadBatchedRnnEnvForTesting();

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_RNN_CONFIG_H_
