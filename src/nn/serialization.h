#ifndef TRACER_NN_SERIALIZATION_H_
#define TRACER_NN_SERIALIZATION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace tracer {
namespace nn {

/// Writes named tensors to a small binary container ("TRCKPT1" magic,
/// little-endian). Used to persist best-epoch checkpoints so interpretation
/// runs can reload the exact model the metrics were reported for.
///
/// The write is crash-safe: the container goes to a temp file in the same
/// directory, is fsync'd, and is atomically renamed over `path`, so a
/// concurrent or subsequent reader never sees a torn checkpoint.
Status SaveCheckpoint(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& tensors);

/// Reads a checkpoint written by SaveCheckpoint. A container that opens but
/// is truncated or corrupt (bad lengths, impossible extents, trailing
/// bytes) fails with kDataLoss naming the failing byte offset — the file
/// must be restored, not retried; a file that is simply not a TRCKPT1
/// container fails with kInvalidArgument.
Result<std::vector<std::pair<std::string, Tensor>>> LoadCheckpoint(
    const std::string& path);

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_SERIALIZATION_H_
