#ifndef TRACER_NN_DROPOUT_H_
#define TRACER_NN_DROPOUT_H_

#include "autograd/variable.h"
#include "common/rng.h"

namespace tracer {
namespace nn {

/// Inverted dropout: during training, each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate) so the
/// expected activation is unchanged; during evaluation it is the identity.
/// Stateless apart from the RNG, so one instance can serve a whole model.
class Dropout {
 public:
  /// `rate` in [0, 1): the probability of dropping an activation.
  explicit Dropout(float rate, uint64_t seed = 97);

  /// Applies dropout when `training` is true; identity otherwise.
  autograd::Variable Apply(const autograd::Variable& x, bool training);

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
};

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_DROPOUT_H_
