#include "nn/lstm.h"

#include "common/macros.h"

namespace tracer {
namespace nn {

using autograd::Variable;

LstmCell::LstmCell(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto make_w = [&] { return Tensor::XavierUniform(input_dim, hidden_dim, rng); };
  auto make_u = [&] { return Tensor::XavierUniform(hidden_dim, hidden_dim, rng); };
  auto make_b = [&] { return Tensor::Zeros({1, hidden_dim}); };
  w_i_ = AddParameter("w_i", make_w());
  u_i_ = AddParameter("u_i", make_u());
  b_i_ = AddParameter("b_i", make_b());
  w_f_ = AddParameter("w_f", make_w());
  u_f_ = AddParameter("u_f", make_u());
  b_f_ = AddParameter("b_f", Tensor::Ones({1, hidden_dim}));
  w_o_ = AddParameter("w_o", make_w());
  u_o_ = AddParameter("u_o", make_u());
  b_o_ = AddParameter("b_o", make_b());
  w_c_ = AddParameter("w_c", make_w());
  u_c_ = AddParameter("u_c", make_u());
  b_c_ = AddParameter("b_c", make_b());
}

LstmCell::State LstmCell::InitialState(int batch_size) const {
  State state;
  state.h = Variable::Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  state.c = Variable::Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  return state;
}

LstmCell::State LstmCell::Step(const Variable& x, const State& prev) const {
  using namespace autograd;  // NOLINT
  const Variable i = Sigmoid(
      AddRows(Add(MatMul(x, w_i_), MatMul(prev.h, u_i_)), b_i_));
  const Variable f = Sigmoid(
      AddRows(Add(MatMul(x, w_f_), MatMul(prev.h, u_f_)), b_f_));
  const Variable o = Sigmoid(
      AddRows(Add(MatMul(x, w_o_), MatMul(prev.h, u_o_)), b_o_));
  const Variable candidate = Tanh(
      AddRows(Add(MatMul(x, w_c_), MatMul(prev.h, u_c_)), b_c_));
  State next;
  next.c = Add(Mul(f, prev.c), Mul(i, candidate));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

Lstm::Lstm(int input_dim, int hidden_dim, Rng& rng)
    : cell_(input_dim, hidden_dim, rng) {
  AddSubmodule("cell", &cell_);
}

std::vector<Variable> Lstm::Run(const std::vector<Variable>& xs,
                                bool reverse) const {
  TRACER_CHECK(!xs.empty());
  const int batch = xs[0].value().rows();
  const int time_steps = static_cast<int>(xs.size());
  LstmCell::State state = cell_.InitialState(batch);
  std::vector<Variable> states(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    const int t = reverse ? time_steps - 1 - i : i;
    state = cell_.Step(xs[t], state);
    states[t] = state.h;
  }
  return states;
}

BiLstm::BiLstm(int input_dim, int hidden_dim, Rng& rng)
    : forward_(input_dim, hidden_dim, rng),
      backward_(input_dim, hidden_dim, rng) {
  AddSubmodule("fwd", &forward_);
  AddSubmodule("bwd", &backward_);
}

std::vector<Variable> BiLstm::Run(const std::vector<Variable>& xs) const {
  std::vector<Variable> fwd = forward_.Run(xs, /*reverse=*/false);
  std::vector<Variable> bwd = backward_.Run(xs, /*reverse=*/true);
  std::vector<Variable> out(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    out[t] = autograd::ConcatCols(fwd[t], bwd[t]);
  }
  return out;
}

}  // namespace nn
}  // namespace tracer
