#include "nn/lstm.h"

#include "common/macros.h"
#include "nn/rnn_config.h"

namespace tracer {
namespace nn {

using autograd::Variable;

LstmCell::LstmCell(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto make_w = [&] { return Tensor::XavierUniform(input_dim, hidden_dim, rng); };
  auto make_u = [&] { return Tensor::XavierUniform(hidden_dim, hidden_dim, rng); };
  auto make_b = [&] { return Tensor::Zeros({1, hidden_dim}); };
  w_i_ = AddParameter("w_i", make_w());
  u_i_ = AddParameter("u_i", make_u());
  b_i_ = AddParameter("b_i", make_b());
  w_f_ = AddParameter("w_f", make_w());
  u_f_ = AddParameter("u_f", make_u());
  b_f_ = AddParameter("b_f", Tensor::Ones({1, hidden_dim}));
  w_o_ = AddParameter("w_o", make_w());
  u_o_ = AddParameter("u_o", make_u());
  b_o_ = AddParameter("b_o", make_b());
  w_c_ = AddParameter("w_c", make_w());
  u_c_ = AddParameter("u_c", make_u());
  b_c_ = AddParameter("b_c", make_b());
}

LstmCell::State LstmCell::InitialState(int batch_size) const {
  State state;
  state.h = Variable::Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  state.c = Variable::Constant(Tensor::Zeros({batch_size, hidden_dim_}));
  return state;
}

LstmCell::State LstmCell::Step(const Variable& x, const State& prev) const {
  using namespace autograd;  // NOLINT
  const Variable i = Sigmoid(
      AddRows(Add(MatMul(x, w_i_), MatMul(prev.h, u_i_)), b_i_));
  const Variable f = Sigmoid(
      AddRows(Add(MatMul(x, w_f_), MatMul(prev.h, u_f_)), b_f_));
  const Variable o = Sigmoid(
      AddRows(Add(MatMul(x, w_o_), MatMul(prev.h, u_o_)), b_o_));
  const Variable candidate = Tanh(
      AddRows(Add(MatMul(x, w_c_), MatMul(prev.h, u_c_)), b_c_));
  State next;
  next.c = Add(Mul(f, prev.c), Mul(i, candidate));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

std::vector<Variable> LstmCell::RunSequence(const std::vector<Variable>& xs,
                                            bool reverse) const {
  using namespace autograd;  // NOLINT
  TRACER_CHECK(!xs.empty());
  const int time_steps = static_cast<int>(xs.size());
  const int batch = xs[0].value().rows();
  const int hd = hidden_dim_;
  // Same batch-major layout as GruCell::RunSequence: per-gate stacked
  // input projections (one broadcast-B batched GEMM per gate over the
  // whole sequence), contiguous per-step row slices, and per-gate
  // recurrence GEMMs. Each slice is bitwise identical to Step()'s
  // MatMul(x_t, w_g) because row stacking preserves k-chains.
  std::vector<Variable> ordered(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    ordered[i] = xs[reverse ? time_steps - 1 - i : i];
  }
  const Variable x3 =
      Reshape(ConcatRows(ordered), {time_steps, batch, input_dim_});
  const std::vector<int> flat = {time_steps * batch, hd};
  const Variable xw_i = Reshape(BatchMatMul(x3, w_i_), flat);
  const Variable xw_f = Reshape(BatchMatMul(x3, w_f_), flat);
  const Variable xw_o = Reshape(BatchMatMul(x3, w_o_), flat);
  const Variable xw_c = Reshape(BatchMatMul(x3, w_c_), flat);
  State state;
  state.h = Variable::Constant(Tensor::Zeros({batch, hd}));
  state.c = Variable::Constant(Tensor::Zeros({batch, hd}));
  std::vector<Variable> states(xs.size());
  for (int s = 0; s < time_steps; ++s) {
    const int r0 = s * batch, r1 = (s + 1) * batch;
    // The recurrence serialises on h; these per-gate B×H·H×H GEMMs are
    // the irreducible per-timestep matmuls.
    // lint:allow-looped-matmul
    const Variable hu_i = MatMul(state.h, u_i_);
    // lint:allow-looped-matmul
    const Variable hu_f = MatMul(state.h, u_f_);
    // lint:allow-looped-matmul
    const Variable hu_o = MatMul(state.h, u_o_);
    // lint:allow-looped-matmul
    const Variable hu_c = MatMul(state.h, u_c_);
    const Variable i = Sigmoid(
        AddRows(Add(SliceRows(xw_i, r0, r1), hu_i), b_i_));
    const Variable f = Sigmoid(
        AddRows(Add(SliceRows(xw_f, r0, r1), hu_f), b_f_));
    const Variable o = Sigmoid(
        AddRows(Add(SliceRows(xw_o, r0, r1), hu_o), b_o_));
    const Variable candidate = Tanh(
        AddRows(Add(SliceRows(xw_c, r0, r1), hu_c), b_c_));
    State next;
    next.c = Add(Mul(f, state.c), Mul(i, candidate));
    next.h = Mul(o, Tanh(next.c));
    state = next;
    states[reverse ? time_steps - 1 - s : s] = state.h;
  }
  return states;
}

Lstm::Lstm(int input_dim, int hidden_dim, Rng& rng)
    : cell_(input_dim, hidden_dim, rng) {
  AddSubmodule("cell", &cell_);
}

std::vector<Variable> Lstm::Run(const std::vector<Variable>& xs,
                                bool reverse) const {
  TRACER_CHECK(!xs.empty());
  if (BatchedRnnEnabled()) {
    return cell_.RunSequence(xs, reverse);
  }
  // Per-timestep reference path (TRACER_BATCHED_RNN=0); bitwise identical
  // forward values to RunSequence.
  const int batch = xs[0].value().rows();
  const int time_steps = static_cast<int>(xs.size());
  LstmCell::State state = cell_.InitialState(batch);
  std::vector<Variable> states(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    const int t = reverse ? time_steps - 1 - i : i;
    state = cell_.Step(xs[t], state);
    states[t] = state.h;
  }
  return states;
}

BiLstm::BiLstm(int input_dim, int hidden_dim, Rng& rng)
    : forward_(input_dim, hidden_dim, rng),
      backward_(input_dim, hidden_dim, rng) {
  AddSubmodule("fwd", &forward_);
  AddSubmodule("bwd", &backward_);
}

std::vector<Variable> BiLstm::Run(const std::vector<Variable>& xs) const {
  std::vector<Variable> fwd = forward_.Run(xs, /*reverse=*/false);
  std::vector<Variable> bwd = backward_.Run(xs, /*reverse=*/true);
  std::vector<Variable> out(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    out[t] = autograd::ConcatCols(fwd[t], bwd[t]);
  }
  return out;
}

}  // namespace nn
}  // namespace tracer
