#ifndef TRACER_NN_LSTM_H_
#define TRACER_NN_LSTM_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace tracer {
namespace nn {

/// Long short-term memory cell (Hochreiter & Schmidhuber), the alternative
/// recurrent unit the paper discusses alongside the GRU (§2.3):
///   i_t = σ(x W_i + h U_i + b_i)        input gate
///   f_t = σ(x W_f + h U_f + b_f)        forget gate
///   o_t = σ(x W_o + h U_o + b_o)        output gate
///   c̃_t = tanh(x W_c + h U_c + b_c)     candidate cell
///   c_t = f_t ⊙ c_{t-1} + i_t ⊙ c̃_t
///   h_t = o_t ⊙ tanh(c_t)
/// The forget-gate bias is initialised to 1 (standard practice) so long
/// dependencies survive early training.
class LstmCell : public Module {
 public:
  LstmCell(int input_dim, int hidden_dim, Rng& rng);

  struct State {
    autograd::Variable h;
    autograd::Variable c;
  };

  /// Zero state for a batch.
  State InitialState(int batch_size) const;

  /// One recurrence step.
  State Step(const autograd::Variable& x, const State& prev) const;

  /// Batch-major sequence run: every timestep's input projection runs as
  /// one rank-3 BatchMatMul against the column-packed [W_i W_f W_o W_c],
  /// and each step uses a single recurrent GEMM against the packed
  /// [U_i U_f U_o U_c]. Forward values are bitwise identical to chaining
  /// Step (stacking preserves each element's accumulation chain).
  std::vector<autograd::Variable> RunSequence(
      const std::vector<autograd::Variable>& xs, bool reverse) const;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  autograd::Variable w_i_, u_i_, b_i_;
  autograd::Variable w_f_, u_f_, b_f_;
  autograd::Variable w_o_, u_o_, b_o_;
  autograd::Variable w_c_, u_c_, b_c_;
};

/// Unidirectional LSTM over a sequence (hidden states only).
class Lstm : public Module {
 public:
  Lstm(int input_dim, int hidden_dim, Rng& rng);

  /// Hidden states h_1..h_T; `reverse` runs the recurrence x_T→x_1 with
  /// the returned vector still indexed by original time.
  std::vector<autograd::Variable> Run(
      const std::vector<autograd::Variable>& xs, bool reverse = false) const;

  int hidden_dim() const { return cell_.hidden_dim(); }

 private:
  LstmCell cell_;
};

/// Bidirectional LSTM: states[t] = [→h_t ; ←h_t].
class BiLstm : public Module {
 public:
  BiLstm(int input_dim, int hidden_dim, Rng& rng);

  std::vector<autograd::Variable> Run(
      const std::vector<autograd::Variable>& xs) const;

  int hidden_dim() const { return forward_.hidden_dim(); }
  int output_dim() const { return 2 * forward_.hidden_dim(); }

 private:
  Lstm forward_;
  Lstm backward_;
};

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_LSTM_H_
