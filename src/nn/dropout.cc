#include "nn/dropout.h"

#include "autograd/ops.h"
#include "common/macros.h"

namespace tracer {
namespace nn {

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  TRACER_CHECK(rate >= 0.0f && rate < 1.0f) << "dropout rate out of range";
}

autograd::Variable Dropout::Apply(const autograd::Variable& x,
                                  bool training) {
  if (!training || rate_ == 0.0f) return x;
  Tensor mask(x.value().shape());
  const float keep_scale = 1.0f / (1.0f - rate_);
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng_.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  return autograd::Mul(x, autograd::Variable::Constant(std::move(mask)));
}

}  // namespace nn
}  // namespace tracer
