#include "nn/serialization.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

#include "common/atomic_file.h"
#include "fault/fault.h"

namespace tracer {
namespace nn {

namespace {

constexpr char kMagic[8] = {'T', 'R', 'C', 'K', 'P', 'T', '1', '\0'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

/// DataLoss with the byte offset the container stopped making sense at, so
/// a corrupt checkpoint report pinpoints the damage instead of just naming
/// the file.
Status CorruptAt(std::FILE* f, const std::string& path, const char* what) {
  const long offset = std::ftell(f);
  return Status::DataLoss(std::string(what) + " at offset " +
                          std::to_string(offset) + ": " + path);
}

Status WriteBody(std::FILE* f, const std::string& path,
                 const std::vector<std::pair<std::string, Tensor>>& tensors) {
  if (TRACER_FAULT_POINT("ckpt.write")) {
    return Status::IOError("injected fault ckpt.write: " + path);
  }
  if (std::fwrite(kMagic, sizeof(kMagic), 1, f) != 1 ||
      !WriteU32(f, static_cast<uint32_t>(tensors.size()))) {
    return Status::IOError("write failed: " + path);
  }
  for (const auto& [name, tensor] : tensors) {
    if (!WriteU32(f, static_cast<uint32_t>(name.size())) ||
        std::fwrite(name.data(), 1, name.size(), f) != name.size() ||
        !WriteU32(f, static_cast<uint32_t>(tensor.rank()))) {
      return Status::IOError("write failed: " + path);
    }
    for (int d = 0; d < tensor.rank(); ++d) {
      if (!WriteU32(f, static_cast<uint32_t>(tensor.dim(d)))) {
        return Status::IOError("write failed: " + path);
      }
    }
    const size_t n = static_cast<size_t>(tensor.size());
    if (n > 0 && std::fwrite(tensor.data(), sizeof(float), n, f) != n) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& tensors) {
  // Crash-safe protocol (common::AtomicFileWriter): write the full
  // container to a temp file in the same directory, flush it to stable
  // storage, then atomically rename it over the destination. A reader
  // (e.g. serve::ModelRegistry) can never observe a torn or partially
  // written checkpoint at `path`. The fault points sit between the
  // protocol stages so chaos tests can fail each stage independently.
  common::AtomicFileWriter writer(path);
  TRACER_RETURN_IF_ERROR(writer.Open());
  TRACER_RETURN_IF_ERROR(
      WriteBody(writer.stream(), writer.tmp_path(), tensors));
  if (TRACER_FAULT_POINT("ckpt.fsync")) {
    return Status::IOError("flush failed: " + writer.tmp_path());
  }
  TRACER_RETURN_IF_ERROR(writer.Flush());
  if (TRACER_FAULT_POINT("ckpt.rename")) {
    return Status::IOError("rename failed: " + writer.tmp_path() + " -> " +
                           path);
  }
  return writer.Commit();
}

Result<std::vector<std::pair<std::string, Tensor>>> LoadCheckpoint(
    const std::string& path) {
  if (TRACER_FAULT_POINT("ckpt.read")) {
    return Status::IOError("injected fault ckpt.read: " + path);
  }
  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "rb"));
  if (!file) return Status::IOError("cannot open for read: " + path);
  std::FILE* f = file.get();
  // The container size bounds every tensor payload: a corrupted extent can
  // otherwise claim gigabytes and turn one flipped byte into an OOM.
  struct stat st;
  if (::fstat(::fileno(f), &st) != 0) {
    return Status::IOError("cannot stat: " + path);
  }
  const int64_t file_size = static_cast<int64_t>(st.st_size);
  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f) != 1) {
    return CorruptAt(f, path, "truncated magic");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a TRACER checkpoint: " + path);
  }
  uint32_t count = 0;
  if (!ReadU32(f, &count)) {
    return CorruptAt(f, path, "truncated tensor count");
  }
  std::vector<std::pair<std::string, Tensor>> out;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(f, &name_len)) {
      return CorruptAt(f, path, "truncated name length");
    }
    if (static_cast<int64_t>(name_len) > file_size) {
      return CorruptAt(f, path, "corrupt name length");
    }
    std::string name(name_len, '\0');
    if (name_len > 0 && std::fread(name.data(), 1, name_len, f) != name_len) {
      return CorruptAt(f, path, "truncated name");
    }
    uint32_t rank = 0;
    if (!ReadU32(f, &rank)) {
      return CorruptAt(f, path, "truncated rank");
    }
    if (rank > 8) {
      return CorruptAt(f, path, "corrupt rank");
    }
    std::vector<int> shape(rank);
    int64_t size = rank == 0 ? 0 : 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t extent = 0;
      if (!ReadU32(f, &extent)) {
        return CorruptAt(f, path, "truncated shape");
      }
      // Overflow-safe accumulation: no real checkpoint approaches 2^40
      // elements, and a corrupted extent must not overflow int64.
      constexpr int64_t kMaxElements = int64_t{1} << 40;
      if (extent > static_cast<uint32_t>(
                       std::numeric_limits<int>::max()) ||
          (extent != 0 &&
           size > kMaxElements / static_cast<int64_t>(extent))) {
        return CorruptAt(f, path, "corrupt tensor extent");
      }
      shape[d] = static_cast<int>(extent);
      size *= static_cast<int64_t>(extent);
    }
    // Bytes still unread bound the payload this tensor may claim.
    const int64_t remaining = file_size - static_cast<int64_t>(std::ftell(f));
    if (size * static_cast<int64_t>(sizeof(float)) > remaining) {
      return CorruptAt(f, path, "corrupt tensor extent");
    }
    Tensor tensor(shape);
    const size_t n = static_cast<size_t>(size);
    if (n > 0 && std::fread(tensor.data(), sizeof(float), n, f) != n) {
      return CorruptAt(f, path, "truncated tensor payload");
    }
    out.emplace_back(std::move(name), std::move(tensor));
  }
  // A valid container ends exactly after the last tensor; trailing bytes
  // mean the file is not a checkpoint this reader understands (e.g. a
  // concatenation accident) and must be rejected rather than silently
  // ignored.
  if (std::fgetc(f) != EOF) {
    return CorruptAt(f, path, "trailing bytes after checkpoint");
  }
  return out;
}

}  // namespace nn
}  // namespace tracer
