#ifndef TRACER_NN_LINEAR_H_
#define TRACER_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace tracer {
namespace nn {

/// Affine map y = xW + b with W (in×out, Xavier-uniform) and b (1×out, zero).
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng& rng);

  /// x: B×in → B×out.
  autograd::Variable Forward(const autograd::Variable& x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  /// Weight matrix (in×out); exposed so interpretation code can read
  /// coefficients (e.g. LR weights in Fig. 1, the w of Eq. 17).
  autograd::Variable weight() const { return weight_; }
  autograd::Variable bias() const { return bias_; }

 private:
  int in_dim_;
  int out_dim_;
  autograd::Variable weight_;
  autograd::Variable bias_;
};

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_LINEAR_H_
