#include "nn/sequence_model.h"

#include <numeric>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"

namespace tracer {
namespace nn {

std::vector<autograd::Variable> SequenceModel::ToVariables(
    const data::Batch& batch) {
  std::vector<autograd::Variable> xs;
  xs.reserve(batch.xs.size());
  for (const Tensor& x : batch.xs) {
    xs.push_back(autograd::Variable::Constant(x));
  }
  return xs;
}

std::vector<float> SequenceModel::Predict(
    const data::TimeSeriesDataset& dataset, int batch_size) {
  std::vector<float> out;
  out.reserve(dataset.num_samples());
  std::vector<int> indices(dataset.num_samples());
  std::iota(indices.begin(), indices.end(), 0);
  const bool classify =
      dataset.task() == data::TaskType::kBinaryClassification;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(indices.size(),
                                begin + static_cast<size_t>(batch_size));
    const std::vector<int> batch_idx(indices.begin() + begin,
                                     indices.begin() + end);
    const data::Batch batch = data::MakeBatch(dataset, batch_idx);
    autograd::Variable raw = Forward(ToVariables(batch));
    const Tensor scores =
        classify ? tracer::Sigmoid(raw.value())
                 : tracer::AddScalar(
                       tracer::Scale(raw.value(), output_scale_),
                       output_offset_);
    for (int b = 0; b < scores.rows(); ++b) out.push_back(scores.at(b, 0));
  }
  return out;
}

}  // namespace nn
}  // namespace tracer
