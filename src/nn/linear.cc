#include "nn/linear.h"

namespace tracer {
namespace nn {

Linear::Linear(int in_dim, int out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(AddParameter("weight",
                           Tensor::XavierUniform(in_dim, out_dim, rng))),
      bias_(AddParameter("bias", Tensor::Zeros({1, out_dim}))) {}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  return autograd::AddRows(autograd::MatMul(x, weight_), bias_);
}

}  // namespace nn
}  // namespace tracer
