#include "nn/module.h"

#include "common/macros.h"

namespace tracer {
namespace nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, param] : params_) out.push_back(param);
  for (const auto& [name, sub] : submodules_) {
    auto child = sub->Parameters();
    out.insert(out.end(), child.begin(), child.end());
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& entry : params_) out.push_back(entry);
  for (const auto& [name, sub] : submodules_) {
    for (const auto& [child_name, param] : sub->NamedParameters()) {
      out.emplace_back(name + "." + child_name, param);
    }
  }
  return out;
}

std::vector<Tensor> Module::StateDict() const {
  std::vector<Tensor> out;
  for (const auto& [name, param] : NamedParameters()) {
    out.push_back(param.value());
  }
  return out;
}

void Module::LoadStateDict(const std::vector<Tensor>& state) {
  auto named = NamedParameters();
  TRACER_CHECK_EQ(named.size(), state.size())
      << "state dict size mismatch";
  for (size_t i = 0; i < named.size(); ++i) {
    TRACER_CHECK(named[i].second.value().SameShape(state[i]))
        << "state dict shape mismatch at " << named[i].first;
    named[i].second.mutable_value() = state[i];
  }
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& [name, param] : NamedParameters()) {
    n += param.value().size();
  }
  return n;
}

autograd::Variable Module::AddParameter(const std::string& name,
                                        Tensor init) {
  autograd::Variable param = autograd::Variable::Parameter(std::move(init));
  params_.emplace_back(name, param);
  return param;
}

void Module::AddSubmodule(const std::string& name, Module* submodule) {
  TRACER_CHECK(submodule != nullptr);
  submodules_.emplace_back(name, submodule);
}

}  // namespace nn
}  // namespace tracer
