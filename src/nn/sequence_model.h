#ifndef TRACER_NN_SEQUENCE_MODEL_H_
#define TRACER_NN_SEQUENCE_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"

namespace tracer {
namespace nn {

/// Common interface of every trainable time-series model in this repo (TITV
/// and the gradient-trained baselines). A model maps the T input windows to
/// one raw output per sample: a logit for binary classification, a real
/// prediction for regression. The trainer applies the task-appropriate loss
/// and output activation.
class SequenceModel : public Module {
 public:
  /// xs[t] is the B×D matrix of time window t. Returns B×1 raw outputs.
  virtual autograd::Variable Forward(
      const std::vector<autograd::Variable>& xs) = 0;

  /// Display name used in result tables ("TRACER", "RETAIN", ...).
  virtual std::string name() const = 0;

  /// Wraps a batch's windows as constant variables.
  static std::vector<autograd::Variable> ToVariables(const data::Batch& batch);

  /// Model outputs over a whole dataset, in sample order, evaluated in
  /// minibatches. For classification the logits are passed through a
  /// sigmoid so the result is a probability; regression outputs go through
  /// the affine output transform (see SetOutputTransform).
  std::vector<float> Predict(const data::TimeSeriesDataset& dataset,
                             int batch_size = 256);

  /// Affine output calibration for regression: the effective prediction is
  /// scale·raw + offset. The trainer standardises regression targets and
  /// stores (σ, μ) here so the network itself learns a zero-mean,
  /// unit-variance quantity — without this, targets far from zero (e.g.
  /// indoor temperatures around 21 °C) cost thousands of optimizer steps
  /// just to move the output bias. Identity by default; ignored by
  /// classification.
  void SetOutputTransform(float scale, float offset) {
    output_scale_ = scale;
    output_offset_ = offset;
  }
  float output_scale() const { return output_scale_; }
  float output_offset() const { return output_offset_; }

 private:
  float output_scale_ = 1.0f;
  float output_offset_ = 0.0f;
};

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_SEQUENCE_MODEL_H_
