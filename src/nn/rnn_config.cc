#include "nn/rnn_config.h"

#include <atomic>
#include <cstdlib>
#include <string>

namespace tracer {
namespace nn {

namespace {

// -1 unparsed, 0 stepwise reference, 1 batched.
std::atomic<int> g_batched_rnn{-1};

int ParseEnv() {
  const char* env = std::getenv("TRACER_BATCHED_RNN");
  if (env == nullptr) return 1;
  return std::string(env) == "0" ? 0 : 1;
}

}  // namespace

bool BatchedRnnEnabled() {
  int cached = g_batched_rnn.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = ParseEnv();
    g_batched_rnn.store(cached, std::memory_order_relaxed);
  }
  return cached == 1;
}

void ReloadBatchedRnnEnvForTesting() {
  g_batched_rnn.store(-1, std::memory_order_relaxed);
}

}  // namespace nn
}  // namespace tracer
