#ifndef TRACER_NN_MODULE_H_
#define TRACER_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace tracer {
namespace nn {

/// Base class for neural-network building blocks.
///
/// A Module owns named parameters and may reference submodules; Parameters()
/// flattens the tree so optimizers and checkpointing see every trainable
/// tensor exactly once. Submodules are referenced (not owned): the concrete
/// model stores them as members and registers them in its constructor.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its registered submodules.
  std::vector<autograd::Variable> Parameters() const;

  /// Parameters paired with hierarchical names ("gru.w_z", ...).
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// Deep copy of every parameter tensor, in NamedParameters() order.
  /// This is the in-memory checkpoint format used for "best epoch" restores.
  std::vector<Tensor> StateDict() const;

  /// Restores parameter values from a StateDict() snapshot (same module
  /// architecture required).
  void LoadStateDict(const std::vector<Tensor>& state);

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

 protected:
  /// Registers and returns a trainable parameter initialised to `init`.
  autograd::Variable AddParameter(const std::string& name, Tensor init);

  /// Registers a child module (must outlive this module).
  void AddSubmodule(const std::string& name, Module* submodule);

 private:
  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> submodules_;
};

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_MODULE_H_
