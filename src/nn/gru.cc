#include "nn/gru.h"

#include "common/macros.h"

namespace tracer {
namespace nn {

using autograd::Variable;

GruCell::GruCell(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto make_w = [&] { return Tensor::XavierUniform(input_dim, hidden_dim, rng); };
  auto make_u = [&] { return Tensor::XavierUniform(hidden_dim, hidden_dim, rng); };
  auto make_b = [&] { return Tensor::Zeros({1, hidden_dim}); };
  w_z_ = AddParameter("w_z", make_w());
  u_z_ = AddParameter("u_z", make_u());
  b_z_ = AddParameter("b_z", make_b());
  w_r_ = AddParameter("w_r", make_w());
  u_r_ = AddParameter("u_r", make_u());
  b_r_ = AddParameter("b_r", make_b());
  w_h_ = AddParameter("w_h", make_w());
  u_h_ = AddParameter("u_h", make_u());
  b_h_ = AddParameter("b_h", make_b());
}

Variable GruCell::Step(const Variable& x, const Variable& h_prev) const {
  using namespace autograd;  // NOLINT
  const Variable z = Sigmoid(
      AddRows(Add(MatMul(x, w_z_), MatMul(h_prev, u_z_)), b_z_));
  const Variable r = Sigmoid(
      AddRows(Add(MatMul(x, w_r_), MatMul(h_prev, u_r_)), b_r_));
  const Variable h_tilde = Tanh(AddRows(
      Add(MatMul(x, w_h_), Mul(r, MatMul(h_prev, u_h_))), b_h_));
  return Add(Mul(OneMinus(z), h_tilde), Mul(z, h_prev));
}

Gru::Gru(int input_dim, int hidden_dim, Rng& rng)
    : cell_(input_dim, hidden_dim, rng) {
  AddSubmodule("cell", &cell_);
}

std::vector<Variable> Gru::Run(const std::vector<Variable>& xs,
                               bool reverse) const {
  TRACER_CHECK(!xs.empty());
  const int batch = xs[0].value().rows();
  const int time_steps = static_cast<int>(xs.size());
  Variable h = Variable::Constant(
      Tensor::Zeros({batch, cell_.hidden_dim()}));
  std::vector<Variable> states(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    const int t = reverse ? time_steps - 1 - i : i;
    h = cell_.Step(xs[t], h);
    states[t] = h;
  }
  return states;
}

BiGru::BiGru(int input_dim, int hidden_dim, Rng& rng)
    : forward_(input_dim, hidden_dim, rng),
      backward_(input_dim, hidden_dim, rng) {
  AddSubmodule("fwd", &forward_);
  AddSubmodule("bwd", &backward_);
}

std::vector<Variable> BiGru::Run(const std::vector<Variable>& xs) const {
  std::vector<Variable> fwd = forward_.Run(xs, /*reverse=*/false);
  std::vector<Variable> bwd = backward_.Run(xs, /*reverse=*/true);
  std::vector<Variable> out(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    out[t] = autograd::ConcatCols(fwd[t], bwd[t]);
  }
  return out;
}

}  // namespace nn
}  // namespace tracer
