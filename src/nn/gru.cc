#include "nn/gru.h"

#include "common/macros.h"
#include "nn/rnn_config.h"

namespace tracer {
namespace nn {

using autograd::Variable;

GruCell::GruCell(int input_dim, int hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto make_w = [&] { return Tensor::XavierUniform(input_dim, hidden_dim, rng); };
  auto make_u = [&] { return Tensor::XavierUniform(hidden_dim, hidden_dim, rng); };
  auto make_b = [&] { return Tensor::Zeros({1, hidden_dim}); };
  w_z_ = AddParameter("w_z", make_w());
  u_z_ = AddParameter("u_z", make_u());
  b_z_ = AddParameter("b_z", make_b());
  w_r_ = AddParameter("w_r", make_w());
  u_r_ = AddParameter("u_r", make_u());
  b_r_ = AddParameter("b_r", make_b());
  w_h_ = AddParameter("w_h", make_w());
  u_h_ = AddParameter("u_h", make_u());
  b_h_ = AddParameter("b_h", make_b());
}

Variable GruCell::Step(const Variable& x, const Variable& h_prev) const {
  using namespace autograd;  // NOLINT
  const Variable z = Sigmoid(
      AddRows(Add(MatMul(x, w_z_), MatMul(h_prev, u_z_)), b_z_));
  const Variable r = Sigmoid(
      AddRows(Add(MatMul(x, w_r_), MatMul(h_prev, u_r_)), b_r_));
  const Variable h_tilde = Tanh(AddRows(
      Add(MatMul(x, w_h_), Mul(r, MatMul(h_prev, u_h_))), b_h_));
  return Add(Mul(OneMinus(z), h_tilde), Mul(z, h_prev));
}

std::vector<Variable> GruCell::RunSequence(const std::vector<Variable>& xs,
                                           bool reverse) const {
  using namespace autograd;  // NOLINT
  TRACER_CHECK(!xs.empty());
  const int time_steps = static_cast<int>(xs.size());
  const int batch = xs[0].value().rows();
  const int hd = hidden_dim_;
  // Stack timesteps (in recurrence order) into one rank-3 operand and push
  // each gate's input projections for the whole sequence through one
  // broadcast-B batched GEMM. Row stacking preserves each output element's
  // k-chain, so every SliceRows below is bitwise identical to the per-step
  // MatMul(x_t, w_g) of Step(). Gates stay in separate streams: slicing
  // contiguous row blocks out of per-gate streams is far cheaper than
  // strided per-step column slices out of a packed [T·B, 3H] block.
  std::vector<Variable> ordered(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    ordered[i] = xs[reverse ? time_steps - 1 - i : i];
  }
  const Variable x3 =
      Reshape(ConcatRows(ordered), {time_steps, batch, input_dim_});
  const std::vector<int> flat = {time_steps * batch, hd};
  const Variable xw_z = Reshape(BatchMatMul(x3, w_z_), flat);
  const Variable xw_r = Reshape(BatchMatMul(x3, w_r_), flat);
  const Variable xw_h = Reshape(BatchMatMul(x3, w_h_), flat);
  Variable h = Variable::Constant(Tensor::Zeros({batch, hd}));
  std::vector<Variable> states(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    const int r0 = i * batch, r1 = (i + 1) * batch;
    // The recurrence serialises on h, so these per-gate B×H·H×H GEMMs are
    // the irreducible per-timestep matmuls.
    // lint:allow-looped-matmul
    const Variable hu_z = MatMul(h, u_z_);
    // lint:allow-looped-matmul
    const Variable hu_r = MatMul(h, u_r_);
    // lint:allow-looped-matmul
    const Variable hu_h = MatMul(h, u_h_);
    const Variable z = Sigmoid(
        AddRows(Add(SliceRows(xw_z, r0, r1), hu_z), b_z_));
    const Variable r = Sigmoid(
        AddRows(Add(SliceRows(xw_r, r0, r1), hu_r), b_r_));
    const Variable h_tilde = Tanh(AddRows(
        Add(SliceRows(xw_h, r0, r1), Mul(r, hu_h)), b_h_));
    h = Add(Mul(OneMinus(z), h_tilde), Mul(z, h));
    states[reverse ? time_steps - 1 - i : i] = h;
  }
  return states;
}

Gru::Gru(int input_dim, int hidden_dim, Rng& rng)
    : cell_(input_dim, hidden_dim, rng) {
  AddSubmodule("cell", &cell_);
}

std::vector<Variable> Gru::Run(const std::vector<Variable>& xs,
                               bool reverse) const {
  TRACER_CHECK(!xs.empty());
  if (BatchedRnnEnabled()) {
    return cell_.RunSequence(xs, reverse);
  }
  // Per-timestep reference path (TRACER_BATCHED_RNN=0); bitwise identical
  // forward values to RunSequence.
  const int batch = xs[0].value().rows();
  const int time_steps = static_cast<int>(xs.size());
  Variable h = Variable::Constant(
      Tensor::Zeros({batch, cell_.hidden_dim()}));
  std::vector<Variable> states(xs.size());
  for (int i = 0; i < time_steps; ++i) {
    const int t = reverse ? time_steps - 1 - i : i;
    h = cell_.Step(xs[t], h);
    states[t] = h;
  }
  return states;
}

BiGru::BiGru(int input_dim, int hidden_dim, Rng& rng)
    : forward_(input_dim, hidden_dim, rng),
      backward_(input_dim, hidden_dim, rng) {
  AddSubmodule("fwd", &forward_);
  AddSubmodule("bwd", &backward_);
}

std::vector<Variable> BiGru::Run(const std::vector<Variable>& xs) const {
  std::vector<Variable> fwd = forward_.Run(xs, /*reverse=*/false);
  std::vector<Variable> bwd = backward_.Run(xs, /*reverse=*/true);
  std::vector<Variable> out(xs.size());
  for (size_t t = 0; t < xs.size(); ++t) {
    out[t] = autograd::ConcatCols(fwd[t], bwd[t]);
  }
  return out;
}

}  // namespace nn
}  // namespace tracer
