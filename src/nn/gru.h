#ifndef TRACER_NN_GRU_H_
#define TRACER_NN_GRU_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace tracer {
namespace nn {

/// Gated recurrent unit cell following the paper's formulation (Eq. 6–9 with
/// the FiLM transform factored out by the caller):
///   z_t = σ(x W_z + h_{t-1} U_z + b_z)
///   r_t = σ(x W_r + h_{t-1} U_r + b_r)
///   h̃_t = tanh(x W_h + r_t ⊙ (h_{t-1} U_h) + b_h)
///   h_t = (1 - z_t) ⊙ h̃_t + z_t ⊙ h_{t-1}
class GruCell : public Module {
 public:
  GruCell(int input_dim, int hidden_dim, Rng& rng);

  /// One recurrence step. x: B×input_dim, h_prev: B×hidden_dim → B×hidden.
  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& h_prev) const;

  /// Batch-major sequence run: all timesteps' input projections go through
  /// one rank-3 BatchMatMul against the column-packed [W_z W_r W_h], and
  /// each step runs a single recurrent GEMM against the packed [U_z U_r
  /// U_h]. Forward values are bitwise identical to chaining Step — column
  /// and row stacking never change a GEMM element's accumulation chain.
  std::vector<autograd::Variable> RunSequence(
      const std::vector<autograd::Variable>& xs, bool reverse) const;

  int input_dim() const { return input_dim_; }
  int hidden_dim() const { return hidden_dim_; }

 private:
  int input_dim_;
  int hidden_dim_;
  autograd::Variable w_z_, u_z_, b_z_;
  autograd::Variable w_r_, u_r_, b_r_;
  autograd::Variable w_h_, u_h_, b_h_;
};

/// Unidirectional GRU over a sequence of B×D inputs.
class Gru : public Module {
 public:
  Gru(int input_dim, int hidden_dim, Rng& rng);

  /// Hidden states h_1..h_T for inputs x_1..x_T (all B×hidden).
  /// If `reverse` is true the recurrence runs x_T→x_1 but the returned
  /// vector is still indexed by original time (states[t] belongs to x_t).
  std::vector<autograd::Variable> Run(
      const std::vector<autograd::Variable>& xs, bool reverse = false) const;

  int hidden_dim() const { return cell_.hidden_dim(); }
  const GruCell& cell() const { return cell_; }

 private:
  GruCell cell_;
};

/// Bidirectional GRU (Eq. 1): states[t] = [→h_t ; ←h_t], dimension 2×hidden.
class BiGru : public Module {
 public:
  BiGru(int input_dim, int hidden_dim, Rng& rng);

  std::vector<autograd::Variable> Run(
      const std::vector<autograd::Variable>& xs) const;

  /// Per-direction hidden size; outputs have twice this many columns.
  int hidden_dim() const { return forward_.hidden_dim(); }
  int output_dim() const { return 2 * forward_.hidden_dim(); }

 private:
  Gru forward_;
  Gru backward_;
};

}  // namespace nn
}  // namespace tracer

#endif  // TRACER_NN_GRU_H_
