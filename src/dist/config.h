#ifndef TRACER_DIST_CONFIG_H_
#define TRACER_DIST_CONFIG_H_

#include <string>

#include "common/retry.h"

namespace tracer {
namespace dist {

/// Shared knobs of the elastic data-parallel runtime. The same struct
/// configures the rank-0 Coordinator and every worker's SocketReducer so a
/// launcher can build one config and hand it to both sides.
struct DistConfig {
  /// Unix-domain socket the coordinator listens on. Keep it short:
  /// sockaddr_un caps paths at ~107 bytes.
  std::string socket_path;

  /// This worker's run_state file (train/run_state.h). Each worker owns a
  /// distinct path; the coordinator ships these bytes to a mid-run joiner.
  std::string run_state_path;

  /// Number of workers the initial formation waits for before training
  /// starts (the coordinator releases the first assignments when this
  /// many have joined). Later joiners are admitted at epoch fences.
  int world_size = 1;

  /// Fixed shard count for the whole run; 0 means world_size. The reduced
  /// gradient is the shard-index-ordered sum of shard contributions, so
  /// for a fixed shard count the result is bitwise invariant to which
  /// workers compute which shards — membership can change freely.
  int num_shards = 0;

  /// Worker heartbeat cadence.
  int heartbeat_interval_ms = 100;

  /// A member silent for this long while the coordinator is waiting on its
  /// shards is presumed dead and evicted.
  int heartbeat_timeout_ms = 2000;

  /// Breaker-style eviction: a member whose shards stalled a gather (while
  /// its heartbeats still arrive) gets its work reassigned for the step;
  /// this many consecutive stalls and it is evicted anyway.
  int evict_after_misses = 3;

  /// How long a worker blocks waiting for the reduced gradient of a step
  /// (and for fence release) before giving up on the coordinator.
  int step_timeout_ms = 30000;

  /// Transport retry policy for framed sends/recvs; decorrelated jitter
  /// spreads concurrent retriers, seeded deterministically (common/retry.h)
  /// so chaos runs replay.
  RetryPolicy retry = [] {
    RetryPolicy p;
    p.max_attempts = 4;
    p.initial_backoff_us = 200;
    p.max_backoff_us = 20000;
    p.jitter = true;
    p.retryable = {StatusCode::kUnavailable};
    return p;
  }();

  int shard_count() const { return num_shards > 0 ? num_shards : world_size; }
};

}  // namespace dist
}  // namespace tracer

#endif  // TRACER_DIST_CONFIG_H_
